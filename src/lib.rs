//! `intrinsic-verify` — umbrella crate of the reproduction of *Predictable
//! Verification using Intrinsic Definitions* (PLDI 2024).
//!
//! This crate re-exports the workspace members so that the examples and
//! integration tests at the repository root can exercise the whole pipeline
//! through a single dependency:
//!
//! * [`smt`] — quantifier-free SMT solver (EUF + linear arithmetic + sets +
//!   arrays with pointwise updates),
//! * [`ivl`] — the Boogie-like intermediate verification language,
//! * [`vcgen`] — heap modelling and verification-condition generation,
//! * [`core`] — intrinsic definitions and the fix-what-you-break methodology
//!   (the paper's contribution),
//! * [`heap`] — concrete operational semantics and runtime checking,
//! * [`structures`] — the benchmark suite of intrinsically defined data
//!   structures (Table 2 of the paper),
//! * [`driver`] — the parallel batch-verification engine with its persistent
//!   VC cache (the `ids-verify` CLI front end lives in that crate),
//! * [`obs`] — the zero-dependency tracing/metrics layer (span timelines,
//!   Chrome-trace export, progress heartbeats) threaded through all of the
//!   above.

#![forbid(unsafe_code)]

pub use ids_core as core;
pub use ids_driver as driver;
pub use ids_heap as heap;
pub use ids_ivl as ivl;
pub use ids_obs as obs;
pub use ids_smt as smt;
pub use ids_structures as structures;
pub use ids_vcgen as vcgen;
