//! The overlaid data structure that motivates §4.4 of the paper: the core of a
//! Linux-deadline-style I/O scheduler keeps every request simultaneously in a
//! FIFO list (dispatch order) and in a binary search tree (sector order),
//! sharing the same nodes.
//!
//! This example loads the benchmark suite's scheduler-queue definition (which
//! composes the list and BST intrinsic definitions and verifies with *two*
//! broken sets), checks its impact tables, and verifies its methods.
//!
//! Run with: `cargo run --example io_scheduler --release`

use intrinsic_verify::core::impact::check_impact_sets;
use intrinsic_verify::core::pipeline::{verify_all, PipelineConfig};
use intrinsic_verify::structures::overlaid;
use intrinsic_verify::vcgen::Encoding;

fn main() {
    let ids = overlaid::scheduler_queue();
    println!("Overlaid scheduler queue (SLL + BST on shared nodes)");
    println!(
        "  ghost monadic maps : {}",
        ids.ghost_maps()
            .map(|f| f.name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "  local condition    : {} conjuncts across two broken sets",
        ids.lc_size()
    );

    println!("\n== impact-set correctness (list condition + tree condition) ==");
    let results = check_impact_sets(&ids, Encoding::Decidable);
    for r in &results {
        println!(
            "  {:<11} {:<10} {:>9}  ({:.2}s)",
            r.field,
            if r.secondary {
                "(tree LC)"
            } else {
                "(list LC)"
            },
            if r.is_correct() {
                "correct"
            } else {
                "REJECTED"
            },
            r.duration.as_secs_f64()
        );
    }

    println!("\n== method verification ==");
    let reports = verify_all(
        &ids,
        overlaid::SCHEDULER_QUEUE_METHODS,
        PipelineConfig::default(),
    )
    .expect("pipeline runs");
    for r in &reports {
        println!(
            "  {:<28} -> {:<10} ({} VCs, {:.2}s)",
            r.method,
            if r.outcome.is_verified() {
                "verified"
            } else {
                "NOT verified"
            },
            r.num_vcs,
            r.duration.as_secs_f64()
        );
    }
}
