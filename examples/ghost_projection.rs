//! Ghost code and the projection theorem in action (Definition 3.3 /
//! Theorem 3.8 of the paper): the verification engineer writes ghost repairs
//! alongside the user program; once the augmented program verifies, the ghost
//! code is *erased* and the remaining user program is exactly the original
//! code — which therefore maintains the data structure.
//!
//! Run with: `cargo run --example ghost_projection --release`

use intrinsic_verify::core::fwyb::expand_program;
use intrinsic_verify::core::ghost::{check_ghost_legality, project};
use intrinsic_verify::core::pipeline::load_methods;
use intrinsic_verify::ivl::program_to_string;
use intrinsic_verify::structures::lists;

fn main() {
    let ids = lists::singly_linked_list();
    let merged =
        load_methods(&ids, lists::SINGLY_LINKED_LIST_METHODS).expect("benchmark methods load");

    println!("== ghost-code legality ==");
    let violations = check_ghost_legality(&merged);
    println!(
        "  {} procedures checked, {} violations",
        merged.procedures.len(),
        violations.len()
    );

    println!("\n== the FWYB-expanded program for insert_front (what the verifier sees) ==\n");
    let expanded = expand_program(&ids, &merged).expect("expansion");
    let proc = expanded
        .procedure("insert_front")
        .expect("insert_front exists");
    print!(
        "{}",
        intrinsic_verify::ivl::printer::procedure_to_string(proc)
    );

    println!("\n== the projected user program (ghost code erased) ==\n");
    let user = project(&merged);
    let mut only_insert = user.clone();
    only_insert.procedures.retain(|p| p.name == "insert_front");
    print!("{}", program_to_string(&only_insert));
    println!("Every ghost map update, broken-set manipulation and assertion is gone;");
    println!("what remains is the code a programmer would have written anyway.");
}
