//! Fix-what-you-break, observed at runtime.
//!
//! The static pipeline proves once and for all that a method repairs every
//! location it breaks. This example shows the same discipline on a *concrete*
//! heap using the `ids-heap` substrate: we execute an insert-front by hand,
//! watch the set of broken objects grow after each mutation, repair the ghost
//! maps, and watch it shrink back to empty — and then corrupt the structure
//! and see the local conditions flag exactly the damaged region.
//!
//! Run with: `cargo run --example runtime_checking --release`

use std::collections::BTreeMap;

use intrinsic_verify::core::ids::IntrinsicDefinition;
use intrinsic_verify::heap::{broken_objects, build_list, Heap, Type, Value};
use intrinsic_verify::ivl::Expr;

/// The quickstart list definition: `next`/`key` user fields, `prev`/`length`
/// ghost maps. (`ids-heap::build_list` builds heaps over exactly these
/// fields.)
fn list_definition() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "runtime-list",
        r#"
        field next: Loc;
        field key: Int;
        field ghost prev: Loc;
        field ghost length: Int;
        "#,
        "(x.next != nil ==> x.next.prev == x && x.length == x.next.length + 1) \
         && (x.prev != nil ==> x.prev.next == x) \
         && (x.next == nil ==> x.length == 1) \
         && x.length >= 1",
        "y",
        "y.prev == nil",
        &[
            ("next", &["x", "old(x.next)"]),
            ("key", &["x"]),
            ("prev", &["x", "old(x.prev)"]),
            ("length", &["x", "x.prev"]),
        ],
    )
    .expect("definition builds")
}

fn print_broken(step: &str, heap: &Heap, lc: &Expr) {
    let broken = broken_objects(heap, lc);
    println!("{:<44} broken set = {:?}", step, broken);
}

fn main() {
    let ids = list_definition();
    // The local condition instantiated at the free variable `x`, the shape the
    // runtime checker evaluates per object.
    let lc = ids.lc_at(&Expr::var("x"));

    // A well-formed three-element list [10, 20, 30].
    let (mut heap, head) = build_list(&[10, 20, 30]);
    let head = head.expect("non-empty list");
    println!("initial heap: {} objects, head = {}", heap.len(), head);
    print_broken("initial well-formed list", &heap, &lc);

    // ----------------------------------------------------------------- insert
    // Insert a new node carrying key 5 in front of `head`, exactly like the
    // verified `insert_front` benchmark method, tracking breakage as we go.
    let fields: &[(&str, Type)] = &[
        ("next", Type::Loc),
        ("key", Type::Int),
        ("prev", Type::Loc),
        ("length", Type::Int),
    ];
    let z = heap.alloc(fields);
    print_broken("after NewObj(z)", &heap, &lc);

    heap.set(z, "key", Value::Int(5));
    heap.set(z, "next", Value::Loc(Some(head)));
    print_broken("after z.key, z.next mutations", &heap, &lc);

    // Repair the ghost maps of z, then fix the old head's prev pointer.
    let head_len = heap.get(head, "length").as_int();
    heap.set(z, "length", Value::Int(head_len + 1));
    heap.set(z, "prev", Value::Loc(None));
    print_broken("after repairing z's ghost maps", &heap, &lc);

    heap.set(head, "prev", Value::Loc(Some(z)));
    print_broken("after repairing old head's prev", &heap, &lc);

    let broken = broken_objects(&heap, &lc);
    assert!(
        broken.is_empty(),
        "the repaired heap must satisfy LC everywhere, broken = {:?}",
        broken
    );
    println!("insert-front complete: every object satisfies LC again.\n");

    // ------------------------------------------------------------ corruption
    // Now damage the structure: make the last node point back to the head,
    // forming a cycle. The local conditions catch it immediately, and they
    // catch it *locally*: only the nodes adjacent to the damage are flagged.
    let mut last = z;
    while let Some(n) = heap.get(last, "next").as_loc() {
        last = n;
    }
    heap.set(last, "next", Value::Loc(Some(z)));
    let broken = broken_objects(&heap, &lc);
    print_broken("after corrupting the last node's next", &heap, &lc);
    assert!(!broken.is_empty(), "the cycle must be detected");

    // The evaluator can also answer ad-hoc queries about single objects.
    let mut env = BTreeMap::new();
    env.insert("x".to_string(), Value::Loc(Some(z)));
    println!(
        "\nthe head still satisfies LC locally: {}",
        intrinsic_verify::heap::eval_expr(&heap, &env, &lc).as_bool()
    );
    println!("runtime checking demo finished.");
}
