//! Quickstart: define a data structure *intrinsically*, annotate a method in
//! the fix-what-you-break style, and verify it — end to end in a few dozen
//! lines.
//!
//! Run with: `cargo run --example quickstart --release`

use intrinsic_verify::core::ids::IntrinsicDefinition;
use intrinsic_verify::core::impact::check_impact_sets;
use intrinsic_verify::core::pipeline::{verify_method, PipelineConfig};
use intrinsic_verify::vcgen::Encoding;

fn main() {
    // 1. An intrinsic definition of acyclic singly-linked lists:
    //    - ghost monadic maps: prev (inverse pointer), length (decreasing rank)
    //    - local condition LC(x): each node agrees with its one-hop neighbours
    //    - impact sets: which nodes can break when a field of x is mutated.
    let ids = IntrinsicDefinition::parse(
        "quickstart-list",
        r#"
        field next: Loc;
        field key: Int;
        field ghost prev: Loc;
        field ghost length: Int;
        "#,
        "(x.next != nil ==> x.next.prev == x && x.length == x.next.length + 1) \
         && (x.prev != nil ==> x.prev.next == x) \
         && (x.next == nil ==> x.length == 1) \
         && x.length >= 1",
        "y",
        "y.prev == nil",
        &[
            ("next", &["x", "old(x.next)"]),
            ("key", &["x"]),
            ("prev", &["x", "old(x.prev)"]),
            ("length", &["x", "x.prev"]),
        ],
    )
    .expect("definition builds");

    // 2. The declared impact sets are themselves proved correct (Appendix C).
    println!("== impact-set correctness ==");
    for r in check_impact_sets(&ids, Encoding::Decidable) {
        println!(
            "  field {:<8} {:>9}  ({:.2}s)",
            r.field,
            if r.is_correct() {
                "correct"
            } else {
                "REJECTED"
            },
            r.duration.as_secs_f64()
        );
    }

    // 3. A fix-what-you-break annotated method: push a new head onto the list.
    let methods = r#"
        procedure push(x: Loc, k: Int) returns (r: Loc)
          requires Br == {} && x != nil && x.prev == nil;
          ensures Br == {} && r != nil && r.prev == nil;
          ensures r.length == old(x.length) + 1;
          modifies {x};
        {
          InferLCOutsideBr(x);
          var z: Loc;
          NewObj(z);
          Mut(z, key, k);
          Mut(z, next, x);
          Mut(z, prev, nil);
          Mut(z, length, x.length + 1);
          Mut(x, prev, z);
          AssertLCAndRemove(z);
          AssertLCAndRemove(x);
          r := z;
        }

        // The same method, but the engineer forgot to repair the length map.
        procedure push_buggy(x: Loc, k: Int) returns (r: Loc)
          requires Br == {} && x != nil && x.prev == nil;
          ensures Br == {} && r != nil;
          modifies {x};
        {
          InferLCOutsideBr(x);
          var z: Loc;
          NewObj(z);
          Mut(z, key, k);
          Mut(z, next, x);
          Mut(z, prev, nil);
          Mut(x, prev, z);
          AssertLCAndRemove(z);
          AssertLCAndRemove(x);
          r := z;
        }
    "#;

    println!("\n== verification ==");
    for method in ["push", "push_buggy"] {
        let report =
            verify_method(&ids, methods, method, PipelineConfig::default()).expect("pipeline runs");
        println!(
            "  {:<12} -> {:<12} ({} VCs, {:.2}s)",
            method,
            if report.outcome.is_verified() {
                "verified"
            } else {
                "rejected"
            },
            report.num_vcs,
            report.duration.as_secs_f64()
        );
    }
    println!("\nThe broken variant is rejected exactly at the AssertLCAndRemove that the");
    println!("forgotten repair invalidates — predictably, with no solver hints needed.");
}
