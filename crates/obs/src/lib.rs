//! `ids-obs` — zero-dependency tracing and metrics for the verification
//! pipeline.
//!
//! The subsystem has three moving parts, all behind process-global toggles so
//! that instrumentation sites never thread a handle through the solver stack
//! (solver configurations are `Copy` and cross thread boundaries freely):
//!
//! * **Spans** — RAII timers ([`span`], [`SpanGuard`], [`SegmentedSpan`])
//!   that record `Begin`/`End` events into a per-thread buffer while a trace
//!   is active, and maintain a thread-local *span stack* (the "current phase"
//!   reported by heartbeats). Buffers are registered globally and merged at
//!   [`trace_stop`]; the hot path takes exactly one uncontended lock on the
//!   emitting thread's own buffer.
//! * **Chrome-trace export** — [`chrome_trace_json`] renders the collected
//!   [`Lane`]s as Chrome `trace_event` JSON (one lane per thread) that opens
//!   directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//! * **Heartbeats** — a registered [`RunObserver`] is invoked from inside the
//!   SAT search and simplex loops every [`heartbeat_interval`] conflicts (and
//!   at every restart), carrying live counters plus the innermost span name,
//!   so long-running VCs are diagnosable mid-flight.
//! * **Metrics** — mergeable log-bucketed [`Histogram`]s (restart-segment
//!   duration, theory-round duration, pivots per round, conflict
//!   inter-arrival) recorded per VC via [`record_metric`], plus a per-thread
//!   *flight recorder*: a ring buffer of recent [`Heartbeat`] snapshots that
//!   [`stuck_dossiers`] turns into a diagnosable dossier when a VC exceeds a
//!   watchdog deadline (or the run is interrupted). Armed separately from
//!   tracing via [`set_metrics`].
//!
//! **Overhead contract**: with tracing off, no observer installed, and
//! metrics disarmed, every entry point reduces to one relaxed atomic load and
//! an immediate return — no allocation, no locks, no clock reads.
//! Instrumented code must not change behavior either way; the driver's parity
//! tests pin byte-identical verdicts with the observer enabled vs disabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- global state

/// Event buffering on/off (flipped by [`trace_start`]/[`trace_stop`]).
static TRACING: AtomicBool = AtomicBool::new(false);
/// Fast-path gate: true iff tracing is on *or* an observer is installed.
/// Every instrumentation entry point loads this (relaxed) and bails early.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Heartbeat cadence in SAT conflicts (0 = heartbeats off).
static HEARTBEAT_CONFLICTS: AtomicU64 = AtomicU64::new(0);
/// Per-VC metrics (histograms + flight recorder) on/off; the single relaxed
/// load on every [`record_metric`] disarmed fast path.
static METRICS: AtomicBool = AtomicBool::new(false);
/// Every thread that ever recorded a metric registers its flight recorder
/// here so watchdogs on other threads can inspect in-flight VCs.
static RECORDERS: Mutex<Vec<Arc<Mutex<Recorder>>>> = Mutex::new(Vec::new());
/// The installed progress observer, if any.
static OBSERVER: RwLock<Option<Arc<dyn RunObserver>>> = RwLock::new(None);
/// Process-wide clock epoch; all event timestamps are microseconds since it.
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Every thread that ever emitted registers its buffer here; [`trace_stop`]
/// drains them all. The `Arc` keeps buffers alive past worker-thread exit.
static REGISTRY: Mutex<Vec<Arc<Mutex<ThreadBuf>>>> = Mutex::new(Vec::new());
/// Monotone lane allocator (Chrome `tid`), one lane per OS thread.
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

struct ThreadBuf {
    lane: u64,
    label: String,
    events: Vec<Event>,
}

thread_local! {
    static BUF: Arc<Mutex<ThreadBuf>> = register_thread();
    static SPANS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static TASK: RefCell<Option<String>> = const { RefCell::new(None) };
}

fn register_thread() -> Arc<Mutex<ThreadBuf>> {
    let lane = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    let buf = Arc::new(Mutex::new(ThreadBuf {
        lane,
        label: format!("thread-{lane}"),
        events: Vec::new(),
    }));
    REGISTRY
        .lock()
        .expect("obs registry")
        .push(Arc::clone(&buf));
    buf
}

fn refresh_active() {
    let observing = OBSERVER.read().map(|o| o.is_some()).unwrap_or(false);
    ACTIVE.store(
        TRACING.load(Ordering::Relaxed) || observing || METRICS.load(Ordering::Relaxed),
        Ordering::Relaxed,
    );
}

fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn push_event(event: Event) {
    // `try_with` so a drop racing thread-local teardown degrades to a lost
    // event instead of a panic.
    let _ = BUF.try_with(|buf| buf.lock().expect("obs thread buffer").events.push(event));
}

/// True while instrumentation must do *any* work (tracing on, or an observer
/// installed). This is the single relaxed load on the disabled fast path.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// True while events are being buffered for trace export.
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

// --------------------------------------------------------------------- events

/// The Chrome `trace_event` phase of an [`Event`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A span opened (`ph: "B"`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
}

/// One buffered trace event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Span or marker name (a phase like `"sat"`, `"euf"`, `"vc"`).
    pub name: &'static str,
    /// Optional free-form payload rendered into the event's `args`.
    pub detail: Option<String>,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Microseconds since the process trace epoch.
    pub ts_us: u64,
}

/// All events of one thread, in emission order (timestamps are monotone
/// within a lane).
#[derive(Clone, Debug)]
pub struct Lane {
    /// Chrome `tid` of this lane (unique per thread).
    pub lane: u64,
    /// Human-readable lane name (set via [`set_thread_label`]).
    pub label: String,
    /// The buffered events.
    pub events: Vec<Event>,
}

// ---------------------------------------------------------------------- spans

/// RAII span: records a `Begin` event now and the matching `End` on drop, and
/// keeps the span name on the thread's phase stack in between. Construction
/// snapshots the toggles, so a span stays balanced even if tracing is flipped
/// while it is open.
pub struct SpanGuard {
    name: &'static str,
    pushed: bool,
    buffered: bool,
    end_detail: Option<String>,
}

impl SpanGuard {
    fn open(name: &'static str, detail: Option<String>) -> SpanGuard {
        let pushed = active();
        if pushed {
            let _ = SPANS.try_with(|s| s.borrow_mut().push(name));
        }
        let buffered = tracing();
        if buffered {
            push_event(Event {
                name,
                detail,
                kind: EventKind::Begin,
                ts_us: now_us(),
            });
        }
        SpanGuard {
            name,
            pushed,
            buffered,
            end_detail: None,
        }
    }

    /// Attaches a lazily-built payload to the span's `End` event (e.g. a
    /// pivot count only known when the phase finishes). The closure only runs
    /// while tracing is buffering events.
    pub fn note(&mut self, detail: impl FnOnce() -> String) {
        if self.buffered {
            self.end_detail = Some(detail());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.buffered {
            push_event(Event {
                name: self.name,
                detail: self.end_detail.take(),
                kind: EventKind::End,
                ts_us: now_us(),
            });
        }
        if self.pushed {
            let _ = SPANS.try_with(|s| s.borrow_mut().pop());
        }
    }
}

/// Opens a span named `name`; the span closes when the guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::open(name, None)
}

/// Like [`span`], with a lazily-built `Begin` payload (only evaluated while
/// tracing is buffering events).
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    let detail = if tracing() { Some(detail()) } else { None };
    SpanGuard::open(name, detail)
}

/// A span that is closed and immediately reopened at interior *segment*
/// boundaries — the SAT search uses one per solve call, restarting the
/// segment at every restart so the trace shows search effort per restart.
/// The drop guarantee of the inner [`SpanGuard`] keeps `Begin`/`End` pairs
/// matched on every exit path.
pub struct SegmentedSpan {
    name: &'static str,
    inner: Option<SpanGuard>,
}

impl SegmentedSpan {
    /// Opens the first segment.
    pub fn new(name: &'static str) -> SegmentedSpan {
        SegmentedSpan {
            name,
            inner: Some(SpanGuard::open(name, None)),
        }
    }

    /// Ends the current segment and begins the next one, labelled by
    /// `detail` (only evaluated while tracing is buffering events).
    pub fn restart(&mut self, detail: impl FnOnce() -> String) {
        // Drop first so the End of the old segment precedes the new Begin.
        self.inner = None;
        self.inner = Some(SpanGuard::open(
            self.name,
            if tracing() { Some(detail()) } else { None },
        ));
    }
}

/// Records a point-in-time marker event.
pub fn instant(name: &'static str) {
    if tracing() {
        push_event(Event {
            name,
            detail: None,
            kind: EventKind::Instant,
            ts_us: now_us(),
        });
    }
}

/// Like [`instant`], with a lazily-built payload (only evaluated while
/// tracing is buffering events).
pub fn instant_with(name: &'static str, detail: impl FnOnce() -> String) {
    if tracing() {
        push_event(Event {
            name,
            detail: Some(detail()),
            kind: EventKind::Instant,
            ts_us: now_us(),
        });
    }
}

// ------------------------------------------------------------- task / threads

/// Labels the current thread's lane in trace exports (e.g. `"worker-3"`).
pub fn set_thread_label(label: String) {
    let _ = BUF.try_with(|buf| buf.lock().expect("obs thread buffer").label = label);
}

/// Sets the task label (typically a VC description) heartbeats from this
/// thread report. No-op unless instrumentation is [`active`].
pub fn set_task(task: Option<String>) {
    if active() {
        let _ = TASK.try_with(|t| *t.borrow_mut() = task);
    }
}

// ----------------------------------------------------------------- heartbeats

/// Live progress counters delivered to a [`RunObserver`]. Counter fields are
/// cumulative over the emitting solver's lifetime (a warm pooled solver keeps
/// counting across the VCs it discharges); each emission site fills the
/// counters it knows and leaves the rest 0.
#[derive(Clone, Debug, Default)]
pub struct Heartbeat {
    /// The task (VC) the emitting thread is working on, if labelled.
    pub task: Option<String>,
    /// Innermost open span name on the emitting thread (`""` if none).
    pub phase: &'static str,
    /// SAT conflicts.
    pub conflicts: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// SAT unit propagations.
    pub propagations: u64,
    /// SAT restarts.
    pub restarts: u64,
    /// Live learned clauses in the SAT core.
    pub learned: u64,
    /// DPLL(T) theory rounds of the current check.
    pub theory_rounds: u64,
    /// Simplex pivots.
    pub pivots: u64,
}

/// A progress observer. The default implementation ignores everything, so
/// implementors override only what they consume; observers must be cheap and
/// non-blocking — they run inside solver hot loops.
pub trait RunObserver: Send + Sync {
    /// Called from solver loops every [`heartbeat_interval`] conflicts, at
    /// every restart, and once per theory round.
    fn heartbeat(&self, _hb: &Heartbeat) {}
}

/// Installs (or, with `None`, removes) the process-wide observer.
pub fn set_observer(observer: Option<Arc<dyn RunObserver>>) {
    *OBSERVER.write().expect("obs observer") = observer;
    refresh_active();
}

/// Sets the heartbeat cadence in SAT conflicts (0 disables heartbeats).
pub fn set_heartbeat_conflicts(every: u64) {
    HEARTBEAT_CONFLICTS.store(every, Ordering::Relaxed);
}

/// The heartbeat cadence in SAT conflicts (0 = off). Emission sites gate on
/// this before building a [`Heartbeat`].
pub fn heartbeat_interval() -> u64 {
    HEARTBEAT_CONFLICTS.load(Ordering::Relaxed)
}

/// Delivers a heartbeat to the installed observer (and, when metrics are
/// armed, to this thread's flight-recorder ring), filling in the emitting
/// thread's task label and current phase. No-op without an observer or armed
/// metrics.
pub fn emit_heartbeat(mut hb: Heartbeat) {
    let recording = metrics_active();
    let observer = {
        let guard = OBSERVER.read().expect("obs observer");
        guard.clone()
    };
    if observer.is_none() && !recording {
        return;
    }
    hb.task = TASK
        .try_with(|t| t.borrow().clone())
        .ok()
        .flatten()
        .or(hb.task);
    hb.phase = SPANS
        .try_with(|s| s.borrow().last().copied())
        .ok()
        .flatten()
        .unwrap_or(hb.phase);
    if recording {
        let ts = now_us();
        let _ = RECORDER.try_with(|r| {
            let mut rec = r.lock().expect("obs recorder");
            if rec.task.is_some() {
                if rec.ring.len() == RING_CAP {
                    rec.ring.pop_front();
                }
                rec.ring.push_back((ts, hb.clone()));
            }
        });
    }
    if let Some(observer) = observer {
        observer.heartbeat(&hb);
    }
}

// ------------------------------------------------------- histograms & metrics

/// The per-VC solver-dynamics metrics collected into [`Histogram`]s.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Wall time of one SAT restart segment, in microseconds.
    RestartSegmentUs = 0,
    /// Wall time of one DPLL(T) theory round, in microseconds.
    TheoryRoundUs = 1,
    /// Simplex pivots performed in one theory round.
    PivotsPerRound = 2,
    /// Wall time between consecutive SAT conflicts, in microseconds.
    ConflictGapUs = 3,
    /// Literals asserted plus retracted by the persistent theory session in
    /// one DPLL(T) round (the trail delta against the previous model; a
    /// rebuild round counts every literal).
    TheoryDeltaLits = 4,
    /// Hypotheses a successful unsat-core slice never asserted for one VC
    /// check (the per-hit saving of `--slice-hyps` re-verification).
    SliceDroppedHyps = 5,
}

/// Number of [`Metric`] kinds (the arity of a [`HistogramSet`]).
pub const METRIC_COUNT: usize = 6;

impl Metric {
    /// All metric kinds, in `HistogramSet` storage order.
    pub const ALL: [Metric; METRIC_COUNT] = [
        Metric::RestartSegmentUs,
        Metric::TheoryRoundUs,
        Metric::PivotsPerRound,
        Metric::ConflictGapUs,
        Metric::TheoryDeltaLits,
        Metric::SliceDroppedHyps,
    ];

    /// Stable snake_case name used in JSON/ledger output.
    pub fn name(self) -> &'static str {
        match self {
            Metric::RestartSegmentUs => "restart_segment_us",
            Metric::TheoryRoundUs => "theory_round_us",
            Metric::PivotsPerRound => "pivots_per_round",
            Metric::ConflictGapUs => "conflict_gap_us",
            Metric::TheoryDeltaLits => "theory_delta_lits",
            Metric::SliceDroppedHyps => "slice_dropped_hyps",
        }
    }

    /// Parses a [`Metric::name`] back to the metric (for ledger readers).
    pub fn from_name(name: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.name() == name)
    }
}

/// Number of log2 buckets per histogram; bucket `i` counts values whose
/// `floor(log2(v))` is `i` (values `0` and `1` both land in bucket 0), with
/// everything at or beyond `2^31` clamped into the last bucket.
pub const HIST_BUCKETS: usize = 32;

/// A mergeable log-bucketed histogram over `u64` samples.
///
/// Buckets are powers of two, which keeps `record` allocation-free and makes
/// merging across VCs, methods, and runs a plain vector add — the property
/// the run ledger needs to aggregate per-VC dynamics into per-run summaries
/// without keeping raw samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    fn bucket_index(v: u64) -> usize {
        let idx = 63 - (v | 1).leading_zeros() as usize;
        idx.min(HIST_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 <= q <= 1.0`); returns 0 for an empty histogram. Resolution is
    /// the bucket width (one octave), which is plenty for phase attribution.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// The raw bucket counts (log2 buckets, see [`HIST_BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Rebuilds a histogram from previously-exported parts (ledger readers).
    /// `buckets` longer than [`HIST_BUCKETS`] is truncated, shorter is
    /// zero-extended; `count`/`sum`/`max` are trusted as recorded.
    pub fn from_parts(buckets: &[u64], count: u64, sum: u64, max: u64) -> Histogram {
        let mut h = Histogram {
            count,
            sum,
            max,
            ..Histogram::default()
        };
        for (dst, src) in h.buckets.iter_mut().zip(buckets.iter()) {
            *dst = *src;
        }
        h
    }
}

/// Inclusive upper bound of log2 bucket `i` (`2^(i+1) - 1`).
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// One [`Histogram`] per [`Metric`]; the unit of per-VC metric collection and
/// of merging up the report tree (VC → method → run).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSet {
    hists: [Histogram; METRIC_COUNT],
}

impl HistogramSet {
    /// Records one sample for `metric`.
    pub fn record(&mut self, metric: Metric, v: u64) {
        self.hists[metric as usize].record(v);
    }

    /// Folds another set into this one, metric by metric.
    pub fn merge(&mut self, other: &HistogramSet) {
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
    }

    /// The histogram for `metric`.
    pub fn get(&self, metric: Metric) -> &Histogram {
        &self.hists[metric as usize]
    }

    /// Mutable access for `metric` (ledger readers reassembling a set).
    pub fn get_mut(&mut self, metric: Metric) -> &mut Histogram {
        &mut self.hists[metric as usize]
    }

    /// True when every histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(Histogram::is_empty)
    }
}

/// How many heartbeat snapshots the per-thread flight recorder retains.
pub const RING_CAP: usize = 64;

/// Per-thread flight-recorder state: which VC this thread is solving, since
/// when, the trailing [`Heartbeat`] ring, and the VC's histograms.
struct Recorder {
    label: String,
    task: Option<String>,
    started_us: u64,
    ring: VecDeque<(u64, Heartbeat)>,
    hists: HistogramSet,
    dumped: bool,
}

thread_local! {
    static RECORDER: Arc<Mutex<Recorder>> = register_recorder();
}

fn register_recorder() -> Arc<Mutex<Recorder>> {
    let label = BUF
        .try_with(|b| b.lock().expect("obs thread buffer").label.clone())
        .unwrap_or_else(|_| "thread-?".to_string());
    let rec = Arc::new(Mutex::new(Recorder {
        label,
        task: None,
        started_us: 0,
        ring: VecDeque::with_capacity(RING_CAP),
        hists: HistogramSet::default(),
        dumped: false,
    }));
    RECORDERS
        .lock()
        .expect("obs recorders")
        .push(Arc::clone(&rec));
    rec
}

/// Arms (or disarms) per-VC metrics: histogram recording and the heartbeat
/// flight recorder. Disarmed, [`record_metric`] is one relaxed load.
pub fn set_metrics(on: bool) {
    METRICS.store(on, Ordering::Relaxed);
    refresh_active();
}

/// True while per-VC metrics are being collected. This is the single relaxed
/// load on the disarmed [`record_metric`] fast path.
pub fn metrics_active() -> bool {
    METRICS.load(Ordering::Relaxed)
}

/// Records one metric sample against the VC currently open on this thread.
/// No-op (one relaxed load) while metrics are disarmed.
pub fn record_metric(metric: Metric, v: u64) {
    if !metrics_active() {
        return;
    }
    let _ = RECORDER.try_with(|r| r.lock().expect("obs recorder").hists.record(metric, v));
}

/// Marks the start of a VC on this thread: resets this thread's flight
/// recorder (ring, histograms, dump latch) and stamps the task label and
/// start time the watchdog ages against. No-op while metrics are disarmed.
pub fn vc_begin(task: &str) {
    if !metrics_active() {
        return;
    }
    let ts = now_us();
    let label = BUF
        .try_with(|b| b.lock().expect("obs thread buffer").label.clone())
        .unwrap_or_else(|_| "thread-?".to_string());
    let _ = RECORDER.try_with(|r| {
        let mut rec = r.lock().expect("obs recorder");
        rec.label = label;
        rec.task = Some(task.to_string());
        rec.started_us = ts;
        rec.ring.clear();
        rec.hists = HistogramSet::default();
        rec.dumped = false;
    });
}

/// Closes the VC opened by [`vc_begin`] on this thread and returns its
/// collected histograms (empty while metrics are disarmed).
pub fn vc_take() -> HistogramSet {
    if !metrics_active() {
        return HistogramSet::default();
    }
    RECORDER
        .try_with(|r| {
            let mut rec = r.lock().expect("obs recorder");
            rec.task = None;
            rec.ring.clear();
            std::mem::take(&mut rec.hists)
        })
        .unwrap_or_default()
}

// ------------------------------------------------------------------- dossiers

/// A snapshot of one in-flight VC assembled from its thread's flight
/// recorder: what is running, for how long, its recent heartbeat trail, and
/// its histograms so far. Produced by [`stuck_dossiers`] / [`flight_dossiers`]
/// and rendered with [`render_dossier`].
#[derive(Clone, Debug)]
pub struct Dossier {
    /// Lane label of the thread solving the VC (e.g. `"worker-3"`).
    pub thread: String,
    /// The VC's task label (description).
    pub task: String,
    /// Seconds the VC has been in flight when the snapshot was taken.
    pub age_s: f64,
    /// Trailing heartbeat snapshots, oldest first: `(age-in-VC seconds, hb)`.
    pub trail: Vec<(f64, Heartbeat)>,
    /// Histograms collected for the VC so far.
    pub hists: HistogramSet,
}

fn snapshot_recorder(rec: &mut Recorder, now: u64) -> Dossier {
    let started = rec.started_us;
    Dossier {
        thread: rec.label.clone(),
        task: rec.task.clone().unwrap_or_default(),
        age_s: (now.saturating_sub(started)) as f64 / 1e6,
        trail: rec
            .ring
            .iter()
            .map(|(ts, hb)| ((ts.saturating_sub(started)) as f64 / 1e6, hb.clone()))
            .collect(),
        hists: rec.hists.clone(),
    }
}

/// Returns a dossier for every in-flight VC older than `min_age` whose
/// dossier has not been dumped yet, latching each so a polling watchdog
/// reports a stuck VC exactly once. Safe to call from any thread.
pub fn stuck_dossiers(min_age: Duration) -> Vec<Dossier> {
    let now = now_us();
    let min_us = min_age.as_micros() as u64;
    let mut out = Vec::new();
    for rec in RECORDERS.lock().expect("obs recorders").iter() {
        let mut rec = rec.lock().expect("obs recorder");
        if rec.task.is_none() || rec.dumped || now.saturating_sub(rec.started_us) < min_us {
            continue;
        }
        rec.dumped = true;
        out.push(snapshot_recorder(&mut rec, now));
    }
    out
}

/// Returns a dossier for every VC currently in flight, regardless of age or
/// the stuck latch — the interrupt/panic path, where whatever is running is
/// exactly what the user wants evidence about.
pub fn flight_dossiers() -> Vec<Dossier> {
    let now = now_us();
    let mut out = Vec::new();
    for rec in RECORDERS.lock().expect("obs recorders").iter() {
        let mut rec = rec.lock().expect("obs recorder");
        if rec.task.is_none() {
            continue;
        }
        out.push(snapshot_recorder(&mut rec, now));
    }
    out
}

/// Renders a dossier as a human-readable text block (the `[dossier]` stderr
/// artifact the `--vc-timeout` watchdog and Ctrl-C handler emit).
pub fn render_dossier(d: &Dossier) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "[dossier] stuck VC: {} ({}, in flight {:.1}s)",
        d.task, d.thread, d.age_s
    );
    let phase = d
        .trail
        .last()
        .map(|(_, hb)| hb.phase)
        .filter(|p| !p.is_empty())
        .unwrap_or("unknown");
    let _ = writeln!(out, "[dossier]   current phase: {phase}");
    let tail_from = d.trail.len().saturating_sub(8);
    let _ = writeln!(
        out,
        "[dossier]   heartbeat trail (last {} of {}):",
        d.trail.len() - tail_from,
        d.trail.len()
    );
    for (age, hb) in &d.trail[tail_from..] {
        let _ = writeln!(
            out,
            "[dossier]     +{age:8.1}s {phase:<8} conflicts={} decisions={} \
             propagations={} restarts={} learned={} rounds={} pivots={}",
            hb.conflicts,
            hb.decisions,
            hb.propagations,
            hb.restarts,
            hb.learned,
            hb.theory_rounds,
            hb.pivots,
            phase = hb.phase,
        );
    }
    for metric in Metric::ALL {
        let h = d.hists.get(metric);
        if h.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "[dossier]   hist {:<20} count={} p50<={} p90<={} max={}",
            metric.name(),
            h.count(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.max()
        );
    }
    out
}

// -------------------------------------------------------------- trace control

/// Starts buffering trace events (clearing any previous buffers).
pub fn trace_start() {
    EPOCH.get_or_init(Instant::now);
    for buf in REGISTRY.lock().expect("obs registry").iter() {
        buf.lock().expect("obs thread buffer").events.clear();
    }
    TRACING.store(true, Ordering::Relaxed);
    refresh_active();
}

/// Stops buffering and returns every lane that recorded at least one event.
pub fn trace_stop() -> Vec<Lane> {
    TRACING.store(false, Ordering::Relaxed);
    refresh_active();
    let mut lanes: Vec<Lane> = REGISTRY
        .lock()
        .expect("obs registry")
        .iter()
        .filter_map(|buf| {
            let mut buf = buf.lock().expect("obs thread buffer");
            if buf.events.is_empty() {
                return None;
            }
            Some(Lane {
                lane: buf.lane,
                label: buf.label.clone(),
                events: std::mem::take(&mut buf.events),
            })
        })
        .collect();
    lanes.sort_by_key(|l| l.lane);
    lanes
}

/// Snapshots every lane's buffered events *without* draining them or
/// stopping the trace. The interrupt guard and the watchdog use this to keep
/// a loadable partial trace on disk while a run is still in flight (open
/// spans appear as unclosed `Begin` events, which Perfetto tolerates).
pub fn trace_snapshot() -> Vec<Lane> {
    let mut lanes: Vec<Lane> = REGISTRY
        .lock()
        .expect("obs registry")
        .iter()
        .filter_map(|buf| {
            let buf = buf.lock().expect("obs thread buffer");
            if buf.events.is_empty() {
                return None;
            }
            Some(Lane {
                lane: buf.lane,
                label: buf.label.clone(),
                events: buf.events.clone(),
            })
        })
        .collect();
    lanes.sort_by_key(|l| l.lane);
    lanes
}

// -------------------------------------------------------- Chrome-trace export

/// Renders lanes as Chrome `trace_event` JSON (the object form, with a
/// `traceEvents` array), loadable in `chrome://tracing` and Perfetto. Each
/// lane becomes one `tid` under `pid` 1, named via `thread_name` metadata.
pub fn chrome_trace_json(lanes: &[Lane]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    emit(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"ids-verify\"}}"
            .to_string(),
        &mut first,
    );
    for lane in lanes {
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                lane.lane,
                escape_json(&lane.label)
            ),
            &mut first,
        );
        for event in &lane.events {
            let ph = match event.kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "i",
            };
            let mut body = format!(
                "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\"",
                ph,
                lane.lane,
                event.ts_us,
                escape_json(event.name)
            );
            if event.kind == EventKind::Instant {
                body.push_str(",\"s\":\"t\"");
            }
            if let Some(detail) = &event.detail {
                body.push_str(",\"args\":{\"detail\":\"");
                body.push_str(&escape_json(detail));
                body.push_str("\"}");
            }
            body.push('}');
            emit(body, &mut first);
        }
    }
    out.push_str("]}");
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct Counting {
        calls: AtomicUsize,
        last_phase: Mutex<String>,
    }
    impl RunObserver for Counting {
        fn heartbeat(&self, hb: &Heartbeat) {
            self.calls.fetch_add(1, Ordering::Relaxed);
            *self.last_phase.lock().unwrap() = hb.phase.to_string();
        }
    }

    /// One sequential test for everything touching the process-global
    /// toggles: `cargo test` runs tests concurrently within a binary, so
    /// splitting these up would race on `TRACING`/`OBSERVER`.
    #[test]
    fn global_lifecycle() {
        // Disabled fast path: nothing is recorded, nothing is active.
        assert!(!active() && !tracing());
        {
            let _s = span("dead");
            instant("dead_marker");
        }
        trace_start();
        assert!(tracing() && active());

        // Spans nest, segment, and carry details.
        set_thread_label("test-main".to_string());
        {
            let mut outer = span_with("vc", || "demo vc".to_string());
            {
                let mut seg = SegmentedSpan::new("sat");
                seg.restart(|| "restart 1".to_string());
            }
            instant_with("cache_hit", || "key=42".to_string());
            outer.note(|| "done".to_string());
        }

        let lanes = trace_stop();
        assert!(!tracing() && !active());
        let lane = lanes
            .iter()
            .find(|l| l.label == "test-main")
            .expect("this thread's lane");
        // The "dead" span from before trace_start must not appear.
        assert!(lanes
            .iter()
            .all(|l| l.events.iter().all(|e| !e.name.starts_with("dead"))));
        // Begin/End pairs are matched per lane and timestamps are monotone.
        let mut depth = 0i64;
        let mut last_ts = 0u64;
        for event in &lane.events {
            assert!(event.ts_us >= last_ts, "timestamps monotone");
            last_ts = event.ts_us;
            match event.kind {
                EventKind::Begin => depth += 1,
                EventKind::End => depth -= 1,
                EventKind::Instant => {}
            }
            assert!(depth >= 0, "End without Begin");
        }
        assert_eq!(depth, 0, "unclosed span");
        // The segmented span produced two "sat" Begin events.
        let sat_begins = lane
            .events
            .iter()
            .filter(|e| e.name == "sat" && e.kind == EventKind::Begin)
            .count();
        assert_eq!(sat_begins, 2);
        // The outer span's End event carries the note.
        assert!(lane
            .events
            .iter()
            .any(|e| e.kind == EventKind::End && e.detail.as_deref() == Some("done")));

        // JSON export is well-formed enough to spot-check.
        let json = chrome_trace_json(&lanes);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"test-main\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"s\":\"t\""));

        // Heartbeats reach the observer with the thread's phase and task.
        let observer = Arc::new(Counting {
            calls: AtomicUsize::new(0),
            last_phase: Mutex::new(String::new()),
        });
        set_observer(Some(Arc::clone(&observer) as Arc<dyn RunObserver>));
        assert!(active() && !tracing());
        set_task(Some("vc 3".to_string()));
        {
            let _s = span("simplex");
            emit_heartbeat(Heartbeat {
                pivots: 17,
                ..Heartbeat::default()
            });
        }
        assert_eq!(observer.calls.load(Ordering::Relaxed), 1);
        assert_eq!(&*observer.last_phase.lock().unwrap(), "simplex");
        set_observer(None);
        set_task(None);
        assert!(!active());
        // With no observer, emission is a no-op.
        emit_heartbeat(Heartbeat::default());
        assert_eq!(observer.calls.load(Ordering::Relaxed), 1);

        // Heartbeat cadence plumbing.
        assert_eq!(heartbeat_interval(), 0);
        set_heartbeat_conflicts(1024);
        assert_eq!(heartbeat_interval(), 1024);
        set_heartbeat_conflicts(0);

        // Metrics disarmed: recording and VC bracketing are no-ops.
        assert!(!metrics_active());
        record_metric(Metric::TheoryRoundUs, 10);
        vc_begin("dead vc");
        assert!(vc_take().is_empty());
        assert!(flight_dossiers().is_empty());

        // Metrics armed: histograms accumulate per VC, heartbeats land in
        // the flight-recorder ring, and dossiers surface in-flight VCs.
        set_metrics(true);
        assert!(metrics_active() && active());
        vc_begin("list/insert/ensures#0");
        record_metric(Metric::RestartSegmentUs, 700);
        record_metric(Metric::RestartSegmentUs, 1500);
        record_metric(Metric::PivotsPerRound, 9);
        emit_heartbeat(Heartbeat {
            conflicts: 42,
            ..Heartbeat::default()
        });
        let stuck = stuck_dossiers(Duration::from_secs(0));
        assert_eq!(stuck.len(), 1);
        let d = &stuck[0];
        assert_eq!(d.task, "list/insert/ensures#0");
        assert_eq!(d.trail.len(), 1);
        assert_eq!(d.trail[0].1.conflicts, 42);
        assert_eq!(d.hists.get(Metric::RestartSegmentUs).count(), 2);
        // The stuck latch reports each VC once; the flight view still sees it.
        assert!(stuck_dossiers(Duration::from_secs(0)).is_empty());
        assert_eq!(flight_dossiers().len(), 1);
        let rendered = render_dossier(d);
        assert!(rendered.contains("list/insert/ensures#0"));
        assert!(rendered.contains("restart_segment_us"));
        assert!(rendered.contains("conflicts=42"));
        // Nothing younger than a large min_age is stuck.
        vc_begin("list/insert/ensures#1");
        assert!(stuck_dossiers(Duration::from_secs(3600)).is_empty());
        let hists = vc_take();
        assert!(hists.is_empty(), "vc_begin resets per-VC histograms");
        assert!(flight_dossiers().is_empty(), "vc_take closes the VC");
        set_metrics(false);
        assert!(!active());
    }

    #[test]
    fn histogram_buckets_merge_and_quantiles() {
        // Bucketing: 0 and 1 share bucket 0; powers of two start new buckets.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);

        let mut h = Histogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        // Median sample (rank 3) is 3 → bucket [2,3], upper bound 3.
        assert_eq!(h.quantile(0.5), 3);
        // Top quantiles are clamped to the observed max.
        assert_eq!(h.quantile(1.0), 1000);

        let mut other = Histogram::default();
        other.record(1 << 20);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1 << 20);

        // Round-trip through exported parts (the ledger path).
        let back = Histogram::from_parts(h.bucket_counts(), h.count(), h.sum(), h.max());
        assert_eq!(back, h);
    }

    #[test]
    fn histogram_set_merges_per_metric() {
        let mut a = HistogramSet::default();
        a.record(Metric::TheoryRoundUs, 50);
        let mut b = HistogramSet::default();
        b.record(Metric::TheoryRoundUs, 70);
        b.record(Metric::ConflictGapUs, 5);
        a.merge(&b);
        assert_eq!(a.get(Metric::TheoryRoundUs).count(), 2);
        assert_eq!(a.get(Metric::ConflictGapUs).count(), 1);
        assert!(a.get(Metric::RestartSegmentUs).is_empty());
        assert!(!a.is_empty());
        for metric in Metric::ALL {
            assert_eq!(Metric::from_name(metric.name()), Some(metric));
        }
        assert_eq!(Metric::from_name("nope"), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("process_name"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
