//! `ids-obs` — zero-dependency tracing and metrics for the verification
//! pipeline.
//!
//! The subsystem has three moving parts, all behind process-global toggles so
//! that instrumentation sites never thread a handle through the solver stack
//! (solver configurations are `Copy` and cross thread boundaries freely):
//!
//! * **Spans** — RAII timers ([`span`], [`SpanGuard`], [`SegmentedSpan`])
//!   that record `Begin`/`End` events into a per-thread buffer while a trace
//!   is active, and maintain a thread-local *span stack* (the "current phase"
//!   reported by heartbeats). Buffers are registered globally and merged at
//!   [`trace_stop`]; the hot path takes exactly one uncontended lock on the
//!   emitting thread's own buffer.
//! * **Chrome-trace export** — [`chrome_trace_json`] renders the collected
//!   [`Lane`]s as Chrome `trace_event` JSON (one lane per thread) that opens
//!   directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//! * **Heartbeats** — a registered [`RunObserver`] is invoked from inside the
//!   SAT search and simplex loops every [`heartbeat_interval`] conflicts (and
//!   at every restart), carrying live counters plus the innermost span name,
//!   so long-running VCs are diagnosable mid-flight.
//!
//! **Overhead contract**: with tracing off and no observer installed, every
//! entry point reduces to one relaxed atomic load and an immediate return —
//! no allocation, no locks, no clock reads. Instrumented code must not change
//! behavior either way; the driver's parity tests pin byte-identical verdicts
//! with the observer enabled vs disabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------- global state

/// Event buffering on/off (flipped by [`trace_start`]/[`trace_stop`]).
static TRACING: AtomicBool = AtomicBool::new(false);
/// Fast-path gate: true iff tracing is on *or* an observer is installed.
/// Every instrumentation entry point loads this (relaxed) and bails early.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Heartbeat cadence in SAT conflicts (0 = heartbeats off).
static HEARTBEAT_CONFLICTS: AtomicU64 = AtomicU64::new(0);
/// The installed progress observer, if any.
static OBSERVER: RwLock<Option<Arc<dyn RunObserver>>> = RwLock::new(None);
/// Process-wide clock epoch; all event timestamps are microseconds since it.
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Every thread that ever emitted registers its buffer here; [`trace_stop`]
/// drains them all. The `Arc` keeps buffers alive past worker-thread exit.
static REGISTRY: Mutex<Vec<Arc<Mutex<ThreadBuf>>>> = Mutex::new(Vec::new());
/// Monotone lane allocator (Chrome `tid`), one lane per OS thread.
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

struct ThreadBuf {
    lane: u64,
    label: String,
    events: Vec<Event>,
}

thread_local! {
    static BUF: Arc<Mutex<ThreadBuf>> = register_thread();
    static SPANS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static TASK: RefCell<Option<String>> = const { RefCell::new(None) };
}

fn register_thread() -> Arc<Mutex<ThreadBuf>> {
    let lane = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    let buf = Arc::new(Mutex::new(ThreadBuf {
        lane,
        label: format!("thread-{lane}"),
        events: Vec::new(),
    }));
    REGISTRY
        .lock()
        .expect("obs registry")
        .push(Arc::clone(&buf));
    buf
}

fn refresh_active() {
    let observing = OBSERVER.read().map(|o| o.is_some()).unwrap_or(false);
    ACTIVE.store(
        TRACING.load(Ordering::Relaxed) || observing,
        Ordering::Relaxed,
    );
}

fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn push_event(event: Event) {
    // `try_with` so a drop racing thread-local teardown degrades to a lost
    // event instead of a panic.
    let _ = BUF.try_with(|buf| buf.lock().expect("obs thread buffer").events.push(event));
}

/// True while instrumentation must do *any* work (tracing on, or an observer
/// installed). This is the single relaxed load on the disabled fast path.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// True while events are being buffered for trace export.
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

// --------------------------------------------------------------------- events

/// The Chrome `trace_event` phase of an [`Event`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A span opened (`ph: "B"`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
}

/// One buffered trace event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Span or marker name (a phase like `"sat"`, `"euf"`, `"vc"`).
    pub name: &'static str,
    /// Optional free-form payload rendered into the event's `args`.
    pub detail: Option<String>,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Microseconds since the process trace epoch.
    pub ts_us: u64,
}

/// All events of one thread, in emission order (timestamps are monotone
/// within a lane).
#[derive(Clone, Debug)]
pub struct Lane {
    /// Chrome `tid` of this lane (unique per thread).
    pub lane: u64,
    /// Human-readable lane name (set via [`set_thread_label`]).
    pub label: String,
    /// The buffered events.
    pub events: Vec<Event>,
}

// ---------------------------------------------------------------------- spans

/// RAII span: records a `Begin` event now and the matching `End` on drop, and
/// keeps the span name on the thread's phase stack in between. Construction
/// snapshots the toggles, so a span stays balanced even if tracing is flipped
/// while it is open.
pub struct SpanGuard {
    name: &'static str,
    pushed: bool,
    buffered: bool,
    end_detail: Option<String>,
}

impl SpanGuard {
    fn open(name: &'static str, detail: Option<String>) -> SpanGuard {
        let pushed = active();
        if pushed {
            let _ = SPANS.try_with(|s| s.borrow_mut().push(name));
        }
        let buffered = tracing();
        if buffered {
            push_event(Event {
                name,
                detail,
                kind: EventKind::Begin,
                ts_us: now_us(),
            });
        }
        SpanGuard {
            name,
            pushed,
            buffered,
            end_detail: None,
        }
    }

    /// Attaches a lazily-built payload to the span's `End` event (e.g. a
    /// pivot count only known when the phase finishes). The closure only runs
    /// while tracing is buffering events.
    pub fn note(&mut self, detail: impl FnOnce() -> String) {
        if self.buffered {
            self.end_detail = Some(detail());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.buffered {
            push_event(Event {
                name: self.name,
                detail: self.end_detail.take(),
                kind: EventKind::End,
                ts_us: now_us(),
            });
        }
        if self.pushed {
            let _ = SPANS.try_with(|s| s.borrow_mut().pop());
        }
    }
}

/// Opens a span named `name`; the span closes when the guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::open(name, None)
}

/// Like [`span`], with a lazily-built `Begin` payload (only evaluated while
/// tracing is buffering events).
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    let detail = if tracing() { Some(detail()) } else { None };
    SpanGuard::open(name, detail)
}

/// A span that is closed and immediately reopened at interior *segment*
/// boundaries — the SAT search uses one per solve call, restarting the
/// segment at every restart so the trace shows search effort per restart.
/// The drop guarantee of the inner [`SpanGuard`] keeps `Begin`/`End` pairs
/// matched on every exit path.
pub struct SegmentedSpan {
    name: &'static str,
    inner: Option<SpanGuard>,
}

impl SegmentedSpan {
    /// Opens the first segment.
    pub fn new(name: &'static str) -> SegmentedSpan {
        SegmentedSpan {
            name,
            inner: Some(SpanGuard::open(name, None)),
        }
    }

    /// Ends the current segment and begins the next one, labelled by
    /// `detail` (only evaluated while tracing is buffering events).
    pub fn restart(&mut self, detail: impl FnOnce() -> String) {
        // Drop first so the End of the old segment precedes the new Begin.
        self.inner = None;
        self.inner = Some(SpanGuard::open(
            self.name,
            if tracing() { Some(detail()) } else { None },
        ));
    }
}

/// Records a point-in-time marker event.
pub fn instant(name: &'static str) {
    if tracing() {
        push_event(Event {
            name,
            detail: None,
            kind: EventKind::Instant,
            ts_us: now_us(),
        });
    }
}

/// Like [`instant`], with a lazily-built payload (only evaluated while
/// tracing is buffering events).
pub fn instant_with(name: &'static str, detail: impl FnOnce() -> String) {
    if tracing() {
        push_event(Event {
            name,
            detail: Some(detail()),
            kind: EventKind::Instant,
            ts_us: now_us(),
        });
    }
}

// ------------------------------------------------------------- task / threads

/// Labels the current thread's lane in trace exports (e.g. `"worker-3"`).
pub fn set_thread_label(label: String) {
    let _ = BUF.try_with(|buf| buf.lock().expect("obs thread buffer").label = label);
}

/// Sets the task label (typically a VC description) heartbeats from this
/// thread report. No-op unless instrumentation is [`active`].
pub fn set_task(task: Option<String>) {
    if active() {
        let _ = TASK.try_with(|t| *t.borrow_mut() = task);
    }
}

// ----------------------------------------------------------------- heartbeats

/// Live progress counters delivered to a [`RunObserver`]. Counter fields are
/// cumulative over the emitting solver's lifetime (a warm pooled solver keeps
/// counting across the VCs it discharges); each emission site fills the
/// counters it knows and leaves the rest 0.
#[derive(Clone, Debug, Default)]
pub struct Heartbeat {
    /// The task (VC) the emitting thread is working on, if labelled.
    pub task: Option<String>,
    /// Innermost open span name on the emitting thread (`""` if none).
    pub phase: &'static str,
    /// SAT conflicts.
    pub conflicts: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// SAT unit propagations.
    pub propagations: u64,
    /// SAT restarts.
    pub restarts: u64,
    /// Live learned clauses in the SAT core.
    pub learned: u64,
    /// DPLL(T) theory rounds of the current check.
    pub theory_rounds: u64,
    /// Simplex pivots.
    pub pivots: u64,
}

/// A progress observer. The default implementation ignores everything, so
/// implementors override only what they consume; observers must be cheap and
/// non-blocking — they run inside solver hot loops.
pub trait RunObserver: Send + Sync {
    /// Called from solver loops every [`heartbeat_interval`] conflicts, at
    /// every restart, and once per theory round.
    fn heartbeat(&self, _hb: &Heartbeat) {}
}

/// Installs (or, with `None`, removes) the process-wide observer.
pub fn set_observer(observer: Option<Arc<dyn RunObserver>>) {
    *OBSERVER.write().expect("obs observer") = observer;
    refresh_active();
}

/// Sets the heartbeat cadence in SAT conflicts (0 disables heartbeats).
pub fn set_heartbeat_conflicts(every: u64) {
    HEARTBEAT_CONFLICTS.store(every, Ordering::Relaxed);
}

/// The heartbeat cadence in SAT conflicts (0 = off). Emission sites gate on
/// this before building a [`Heartbeat`].
pub fn heartbeat_interval() -> u64 {
    HEARTBEAT_CONFLICTS.load(Ordering::Relaxed)
}

/// Delivers a heartbeat to the installed observer, filling in the emitting
/// thread's task label and current phase. No-op without an observer.
pub fn emit_heartbeat(mut hb: Heartbeat) {
    let observer = {
        let guard = OBSERVER.read().expect("obs observer");
        guard.clone()
    };
    let Some(observer) = observer else {
        return;
    };
    hb.task = TASK
        .try_with(|t| t.borrow().clone())
        .ok()
        .flatten()
        .or(hb.task);
    hb.phase = SPANS
        .try_with(|s| s.borrow().last().copied())
        .ok()
        .flatten()
        .unwrap_or(hb.phase);
    observer.heartbeat(&hb);
}

// -------------------------------------------------------------- trace control

/// Starts buffering trace events (clearing any previous buffers).
pub fn trace_start() {
    EPOCH.get_or_init(Instant::now);
    for buf in REGISTRY.lock().expect("obs registry").iter() {
        buf.lock().expect("obs thread buffer").events.clear();
    }
    TRACING.store(true, Ordering::Relaxed);
    refresh_active();
}

/// Stops buffering and returns every lane that recorded at least one event.
pub fn trace_stop() -> Vec<Lane> {
    TRACING.store(false, Ordering::Relaxed);
    refresh_active();
    let mut lanes: Vec<Lane> = REGISTRY
        .lock()
        .expect("obs registry")
        .iter()
        .filter_map(|buf| {
            let mut buf = buf.lock().expect("obs thread buffer");
            if buf.events.is_empty() {
                return None;
            }
            Some(Lane {
                lane: buf.lane,
                label: buf.label.clone(),
                events: std::mem::take(&mut buf.events),
            })
        })
        .collect();
    lanes.sort_by_key(|l| l.lane);
    lanes
}

// -------------------------------------------------------- Chrome-trace export

/// Renders lanes as Chrome `trace_event` JSON (the object form, with a
/// `traceEvents` array), loadable in `chrome://tracing` and Perfetto. Each
/// lane becomes one `tid` under `pid` 1, named via `thread_name` metadata.
pub fn chrome_trace_json(lanes: &[Lane]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    emit(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"ids-verify\"}}"
            .to_string(),
        &mut first,
    );
    for lane in lanes {
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                lane.lane,
                escape_json(&lane.label)
            ),
            &mut first,
        );
        for event in &lane.events {
            let ph = match event.kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "i",
            };
            let mut body = format!(
                "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\"",
                ph,
                lane.lane,
                event.ts_us,
                escape_json(event.name)
            );
            if event.kind == EventKind::Instant {
                body.push_str(",\"s\":\"t\"");
            }
            if let Some(detail) = &event.detail {
                body.push_str(",\"args\":{\"detail\":\"");
                body.push_str(&escape_json(detail));
                body.push_str("\"}");
            }
            body.push('}');
            emit(body, &mut first);
        }
    }
    out.push_str("]}");
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct Counting {
        calls: AtomicUsize,
        last_phase: Mutex<String>,
    }
    impl RunObserver for Counting {
        fn heartbeat(&self, hb: &Heartbeat) {
            self.calls.fetch_add(1, Ordering::Relaxed);
            *self.last_phase.lock().unwrap() = hb.phase.to_string();
        }
    }

    /// One sequential test for everything touching the process-global
    /// toggles: `cargo test` runs tests concurrently within a binary, so
    /// splitting these up would race on `TRACING`/`OBSERVER`.
    #[test]
    fn global_lifecycle() {
        // Disabled fast path: nothing is recorded, nothing is active.
        assert!(!active() && !tracing());
        {
            let _s = span("dead");
            instant("dead_marker");
        }
        trace_start();
        assert!(tracing() && active());

        // Spans nest, segment, and carry details.
        set_thread_label("test-main".to_string());
        {
            let mut outer = span_with("vc", || "demo vc".to_string());
            {
                let mut seg = SegmentedSpan::new("sat");
                seg.restart(|| "restart 1".to_string());
            }
            instant_with("cache_hit", || "key=42".to_string());
            outer.note(|| "done".to_string());
        }

        let lanes = trace_stop();
        assert!(!tracing() && !active());
        let lane = lanes
            .iter()
            .find(|l| l.label == "test-main")
            .expect("this thread's lane");
        // The "dead" span from before trace_start must not appear.
        assert!(lanes
            .iter()
            .all(|l| l.events.iter().all(|e| !e.name.starts_with("dead"))));
        // Begin/End pairs are matched per lane and timestamps are monotone.
        let mut depth = 0i64;
        let mut last_ts = 0u64;
        for event in &lane.events {
            assert!(event.ts_us >= last_ts, "timestamps monotone");
            last_ts = event.ts_us;
            match event.kind {
                EventKind::Begin => depth += 1,
                EventKind::End => depth -= 1,
                EventKind::Instant => {}
            }
            assert!(depth >= 0, "End without Begin");
        }
        assert_eq!(depth, 0, "unclosed span");
        // The segmented span produced two "sat" Begin events.
        let sat_begins = lane
            .events
            .iter()
            .filter(|e| e.name == "sat" && e.kind == EventKind::Begin)
            .count();
        assert_eq!(sat_begins, 2);
        // The outer span's End event carries the note.
        assert!(lane
            .events
            .iter()
            .any(|e| e.kind == EventKind::End && e.detail.as_deref() == Some("done")));

        // JSON export is well-formed enough to spot-check.
        let json = chrome_trace_json(&lanes);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"test-main\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"s\":\"t\""));

        // Heartbeats reach the observer with the thread's phase and task.
        let observer = Arc::new(Counting {
            calls: AtomicUsize::new(0),
            last_phase: Mutex::new(String::new()),
        });
        set_observer(Some(Arc::clone(&observer) as Arc<dyn RunObserver>));
        assert!(active() && !tracing());
        set_task(Some("vc 3".to_string()));
        {
            let _s = span("simplex");
            emit_heartbeat(Heartbeat {
                pivots: 17,
                ..Heartbeat::default()
            });
        }
        assert_eq!(observer.calls.load(Ordering::Relaxed), 1);
        assert_eq!(&*observer.last_phase.lock().unwrap(), "simplex");
        set_observer(None);
        set_task(None);
        assert!(!active());
        // With no observer, emission is a no-op.
        emit_heartbeat(Heartbeat::default());
        assert_eq!(observer.calls.load(Ordering::Relaxed), 1);

        // Heartbeat cadence plumbing.
        assert_eq!(heartbeat_interval(), 0);
        set_heartbeat_conflicts(1024);
        assert_eq!(heartbeat_interval(), 1024);
        set_heartbeat_conflicts(0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("process_name"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
