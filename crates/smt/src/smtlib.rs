//! SMT-LIB 2 rendering of terms and assertion sets.
//!
//! The paper cross-checks that the queries Boogie generates are quantifier
//! free and fall in decidable theories; we reproduce that check by rendering
//! every verification condition to SMT-LIB and scanning it (see
//! `ids-vcgen::qfcheck`), and the rendering is also invaluable for debugging
//! the pipeline.

use std::collections::BTreeMap;

use crate::term::{Op, Sort, TermId, TermManager};

/// Renders a single term to SMT-LIB 2 concrete syntax.
pub fn term_to_smtlib(tm: &TermManager, t: TermId) -> String {
    let term = tm.term(t);
    let args = || -> Vec<String> {
        term.args
            .iter()
            .map(|&a| term_to_smtlib(tm, a))
            .collect::<Vec<_>>()
    };
    let nary = |head: &str| -> String { format!("({} {})", head, args().join(" ")) };
    match &term.op {
        Op::True => "true".into(),
        Op::False => "false".into(),
        Op::Var(name) => sanitize(name),
        Op::IntLit(n) => {
            if *n < 0 {
                format!("(- {})", -n)
            } else {
                format!("{}", n)
            }
        }
        Op::RealLit(r) => {
            if r.denom() == 1 {
                format!("{}.0", r.numer())
            } else {
                format!("(/ {}.0 {}.0)", r.numer(), r.denom())
            }
        }
        Op::Not => nary("not"),
        Op::And => nary("and"),
        Op::Or => nary("or"),
        Op::Implies => nary("=>"),
        Op::Iff => nary("="),
        Op::Ite => nary("ite"),
        Op::Eq => nary("="),
        Op::Distinct => nary("distinct"),
        Op::Add => nary("+"),
        Op::Sub => nary("-"),
        Op::Neg => nary("-"),
        Op::MulConst(k) => {
            let inner = term_to_smtlib(tm, term.args[0]);
            if k.denom() == 1 {
                format!("(* {} {})", k.numer(), inner)
            } else {
                format!("(* (/ {} {}) {})", k.numer(), k.denom(), inner)
            }
        }
        Op::Le => nary("<="),
        Op::Lt => nary("<"),
        Op::Select => nary("select"),
        Op::Store => nary("store"),
        Op::EmptySet(_) => "emptyset".into(),
        Op::Singleton => nary("singleton"),
        Op::Union => nary("union"),
        Op::Inter => nary("intersection"),
        Op::Diff => nary("setminus"),
        Op::Member => nary("member"),
        Op::Subset => nary("subset"),
        Op::MapIte => nary("map-ite"),
        Op::App(name) => {
            if term.args.is_empty() {
                sanitize(name)
            } else {
                format!("({} {})", sanitize(name), args().join(" "))
            }
        }
        Op::Forall(bound) => {
            let binders: Vec<String> = bound
                .iter()
                .map(|(n, s)| format!("({} {})", sanitize(n), s))
                .collect();
            format!(
                "(forall ({}) {})",
                binders.join(" "),
                term_to_smtlib(tm, term.args[0])
            )
        }
    }
}

fn sanitize(name: &str) -> String {
    if name
        .chars()
        .all(|c| c.is_alphanumeric() || c == '_' || c == '.' || c == '!' || c == '$')
    {
        name.to_string()
    } else {
        format!("|{}|", name)
    }
}

/// Renders a full `(set-logic …) … (check-sat)` script that asserts all roots.
///
/// Free constants and uninterpreted functions are declared; set sorts are
/// declared as arrays to Bool for compatibility with common solvers.
pub fn to_smtlib(tm: &TermManager, roots: &[TermId]) -> String {
    let mut decls: BTreeMap<String, String> = BTreeMap::new();
    for t in tm.subterms(roots) {
        let term = tm.term(t);
        match &term.op {
            Op::Var(name) => {
                decls.insert(
                    sanitize(name),
                    format!(
                        "(declare-const {} {})",
                        sanitize(name),
                        sort_str(&term.sort)
                    ),
                );
            }
            Op::App(name) => {
                let arg_sorts: Vec<String> =
                    term.args.iter().map(|&a| sort_str(tm.sort(a))).collect();
                decls.insert(
                    sanitize(name),
                    format!(
                        "(declare-fun {} ({}) {})",
                        sanitize(name),
                        arg_sorts.join(" "),
                        sort_str(&term.sort)
                    ),
                );
            }
            _ => {}
        }
    }
    let mut out = String::new();
    out.push_str("(set-logic ALL)\n(declare-sort Loc 0)\n");
    for d in decls.values() {
        out.push_str(d);
        out.push('\n');
    }
    for &r in roots {
        out.push_str(&format!("(assert {})\n", term_to_smtlib(tm, r)));
    }
    out.push_str("(check-sat)\n");
    out
}

fn sort_str(s: &Sort) -> String {
    match s {
        Sort::Bool => "Bool".into(),
        Sort::Int => "Int".into(),
        Sort::Real => "Real".into(),
        Sort::Loc => "Loc".into(),
        Sort::Set(e) => format!("(Array {} Bool)", sort_str(e)),
        Sort::Array(a, b) => format!("(Array {} {})", sort_str(a), sort_str(b)),
    }
}

/// Returns true if the rendered assertions contain no quantifiers or lambda
/// binders — the check the paper performs on Boogie's SMT output.
pub fn is_quantifier_free(tm: &TermManager, roots: &[TermId]) -> bool {
    tm.subterms(roots)
        .iter()
        .all(|&t| !matches!(tm.term(t).op, Op::Forall(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_script() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let one = tm.int(1);
        let s = tm.add(x, one);
        let le = tm.le(s, x);
        let script = to_smtlib(&tm, &[le]);
        assert!(script.contains("(declare-const x Int)"));
        assert!(script.contains("(assert (<= (+ x 1) x))"));
        assert!(script.contains("(check-sat)"));
    }

    #[test]
    fn quantifier_detection() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let p = tm.app("p", vec![x], Sort::Bool);
        assert!(is_quantifier_free(&tm, &[p]));
        let q = tm.forall(vec![("x".into(), Sort::Loc)], p);
        assert!(!is_quantifier_free(&tm, &[q]));
    }

    #[test]
    fn negative_literals_and_rationals() {
        let mut tm = TermManager::new();
        let n = tm.int(-5);
        let r = tm.real(crate::Rat::new(1, 2));
        let e = tm.eq(n, n);
        let _ = e;
        assert_eq!(term_to_smtlib(&tm, n), "(- 5)");
        assert_eq!(term_to_smtlib(&tm, r), "(/ 1.0 2.0)");
    }
}
