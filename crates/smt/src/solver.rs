//! The lazy DPLL(T) driver tying together lowering, CNF conversion, the CDCL
//! SAT core and the combined theory checker.
//!
//! The loop is the classic *offline lazy SMT* scheme: find a propositional
//! model of the lowered formula, check it against the theories, and if the
//! theories reject it add the (negated) conflict explanation as a new clause
//! and repeat. Because the lowering pass already instantiated all the set and
//! array structure, termination is guaranteed for the decidable FWYB fragment
//! (finitely many propositional models, each rejected at most once).

use crate::cnf::{tseitin, AtomMap};
use crate::lower::lower;
use crate::model::Model;
use crate::quant::{contains_forall, eliminate_quantifiers, QuantConfig};
use crate::sat::{SatOptions, SatResult, SatSolver};
use crate::simplex::PivotRule;
use crate::term::{TermId, TermManager};
use crate::theory::{TheoryCheck, TheoryChecker};

/// A named bundle of search-heuristic settings (restart policy, clause
/// database management, simplex pivot rule).
///
/// Verdicts are identical under every profile — the profiles differ only in
/// how fast they get there (and in the telemetry they produce). `legacy` is
/// the pre-tuning behaviour, kept selectable for benchmarking and as a
/// differential-testing oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SolverProfile {
    /// Luby restarts, LBD-based clause deletion, hybrid simplex pivoting.
    #[default]
    Default,
    /// Geometric restarts, no clause deletion, Bland pivoting.
    Legacy,
}

impl SolverProfile {
    /// Parses a CLI value (`default` / `legacy`).
    pub fn parse(s: &str) -> Option<SolverProfile> {
        match s {
            "default" => Some(SolverProfile::Default),
            "legacy" => Some(SolverProfile::Legacy),
            _ => None,
        }
    }

    /// The CLI spelling of this profile.
    pub fn as_str(&self) -> &'static str {
        match self {
            SolverProfile::Default => "default",
            SolverProfile::Legacy => "legacy",
        }
    }
}

/// Tuning knobs of the solver.
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Maximum number of theory-check/conflict-clause rounds.
    pub max_theory_rounds: usize,
    /// Whether quantifiers are allowed (RQ3 quantified mode); if false, a
    /// formula containing `forall` yields `Unknown`.
    pub allow_quantifiers: bool,
    /// Quantifier instantiation configuration (quantified mode only).
    pub quant: QuantConfig,
    /// If true (the default), the CDCL search is continued across theory
    /// rounds instead of being restarted from scratch after every theory
    /// conflict clause. The `ablation_bench` bench compares both modes.
    pub incremental_sat: bool,
    /// SAT-core options: restart policy and learned-clause database.
    pub sat: SatOptions,
    /// Simplex pivot rule used by the theory checker.
    pub pivot: PivotRule,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_theory_rounds: 200_000,
            allow_quantifiers: false,
            quant: QuantConfig::default(),
            incremental_sat: true,
            sat: SatOptions::default(),
            pivot: PivotRule::hybrid(),
        }
    }
}

impl SolverConfig {
    /// The configuration used for the quantified (Dafny-style) encoding.
    pub fn quantified() -> SolverConfig {
        SolverConfig {
            allow_quantifiers: true,
            ..SolverConfig::default()
        }
    }

    /// The configuration of a named heuristics profile.
    pub fn with_profile(profile: SolverProfile) -> SolverConfig {
        match profile {
            SolverProfile::Default => SolverConfig::default(),
            SolverProfile::Legacy => SolverConfig {
                sat: SatOptions::legacy(),
                pivot: PivotRule::Bland,
                ..SolverConfig::default()
            },
        }
    }
}

/// Statistics of the last `check` call.
///
/// # Merge semantics
///
/// [`SolverStats::merge`] aggregates the stats of the many checks that
/// discharge one method's VCs — possibly across *multiple* solver sessions
/// (warm pools, repair passes). Every field carries one of exactly two rules,
/// documented per field below:
///
/// * **sum** — effort counters and elapsed wall-clock times. Work done in two
///   checks is the total of both, regardless of whether the checks shared a
///   session; this includes `sat_time`/`theory_time` and the per-phase
///   `lower_time`/`euf_time`/`simplex_time` splits.
/// * **max** — point-in-time gauges. `learned_kept` and `max_lbd` describe
///   solver *state*, not work; summing them across the checks of one warm
///   session would double-count the same live clauses once per check, so
///   merging keeps the largest observed value.
///
/// New fields must pick a rule here and extend the exhaustive
/// `merge_rule_per_field` unit test, which destructures the struct so that an
/// added field fails compilation until its rule is pinned.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Theory check rounds performed. Merge: **sum**.
    pub theory_rounds: u64,
    /// SAT conflicts. Merge: **sum**.
    pub sat_conflicts: u64,
    /// SAT decisions. Merge: **sum**.
    pub sat_decisions: u64,
    /// SAT unit propagations. Merge: **sum**.
    pub sat_propagations: u64,
    /// Number of clauses after CNF conversion (before learning).
    /// Merge: **sum**.
    pub initial_clauses: u64,
    /// Number of theory atoms. Merge: **sum**.
    pub atoms: u64,
    /// Wall-clock time spent inside the SAT core. Merge: **sum**.
    pub sat_time: std::time::Duration,
    /// Wall-clock time spent inside the theory checker (EUF + simplex +
    /// conflict explanation). Merge: **sum**.
    pub theory_time: std::time::Duration,
    /// Wall-clock time spent lowering assertions (set/array finite
    /// instantiation) before CNF conversion. Merge: **sum**.
    pub lower_time: std::time::Duration,
    /// Wall-clock time of the EUF congruence passes (a component of
    /// `theory_time`). Merge: **sum**.
    pub euf_time: std::time::Duration,
    /// Wall-clock time of the simplex passes (a component of `theory_time`).
    /// Merge: **sum**.
    pub simplex_time: std::time::Duration,
    /// Assertions answered from already-lowered session state (a warm solver
    /// pool's structure-scope prelude, or any re-asserted formula whose
    /// lowering and CNF encoding were still live). Always 0 for the batch
    /// solver. Merge: **sum**.
    pub prelude_reused: u64,
    /// Assertions lowered and clause-converted fresh. Always 0 for the batch
    /// solver (which does not count per-assertion reuse). Merge: **sum**.
    pub prelude_lowered: u64,
    /// SAT-core restarts. Merge: **sum**.
    pub restarts: u64,
    /// Live learned clauses at the end of the check (after any deletions).
    /// A point-in-time gauge, not a counter. Merge: **max**.
    pub learned_kept: u64,
    /// Learned clauses deleted by clause-database reductions. Merge: **sum**.
    pub learned_deleted: u64,
    /// Largest literal-block distance of any clause learned during the check.
    /// A gauge. Merge: **max**.
    pub max_lbd: u64,
    /// Simplex pivots performed across all theory rounds. Merge: **sum**.
    pub pivots: u64,
    /// Unsatisfiable cores extracted from the activation-literal assumption
    /// mechanism (at most one per check; summing over a run counts how many
    /// VCs closed with a core). Always 0 for the batch solver, which asserts
    /// clauses directly instead of assuming activation literals. Merge:
    /// **sum**.
    pub unsat_cores: u64,
    /// Size of the largest extracted unsat core (number of assumption
    /// literals the refutation actually used; 0 when no core was extracted
    /// or the input was unsatisfiable without any assumption). A gauge.
    /// Merge: **max**.
    pub unsat_core_size: u64,
    /// Checks discharged from a *sliced* hypothesis selection (a cached unsat
    /// core) without needing the full hypothesis set. Always 0 for the batch
    /// solver. Merge: **sum**.
    pub slice_hits: u64,
    /// Sliced checks that were inconclusive and fell back to the full
    /// hypothesis set (the sound fallback: dropping hypotheses only weakens
    /// the antecedent, so only a Valid slice verdict is conclusive). Always 0
    /// for the batch solver. Merge: **sum**.
    pub slice_fallbacks: u64,
    /// Hypotheses that a successful slice never asserted (summed over all
    /// slice hits; the saving the cached cores bought). Always 0 for the
    /// batch solver. Merge: **sum**.
    pub slice_dropped_hyps: u64,
}

impl SolverStats {
    /// Accumulates another stats record into this one following the per-field
    /// rules documented on [`SolverStats`]: counters and times are summed;
    /// the `learned_kept` and `max_lbd` gauges take the maximum.
    pub fn merge(&mut self, other: &SolverStats) {
        self.theory_rounds += other.theory_rounds;
        self.sat_conflicts += other.sat_conflicts;
        self.sat_decisions += other.sat_decisions;
        self.sat_propagations += other.sat_propagations;
        self.initial_clauses += other.initial_clauses;
        self.atoms += other.atoms;
        self.sat_time += other.sat_time;
        self.theory_time += other.theory_time;
        self.lower_time += other.lower_time;
        self.euf_time += other.euf_time;
        self.simplex_time += other.simplex_time;
        self.prelude_reused += other.prelude_reused;
        self.prelude_lowered += other.prelude_lowered;
        self.restarts += other.restarts;
        self.learned_kept = self.learned_kept.max(other.learned_kept);
        self.learned_deleted += other.learned_deleted;
        self.max_lbd = self.max_lbd.max(other.max_lbd);
        self.pivots += other.pivots;
        self.unsat_cores += other.unsat_cores;
        self.unsat_core_size = self.unsat_core_size.max(other.unsat_core_size);
        self.slice_hits += other.slice_hits;
        self.slice_fallbacks += other.slice_fallbacks;
        self.slice_dropped_hyps += other.slice_dropped_hyps;
    }
}

/// The SMT solver facade.
///
/// # Example
/// ```
/// use ids_smt::{TermManager, Sort, Solver, SatResult};
/// let mut tm = TermManager::new();
/// let x = tm.var("x", Sort::Loc);
/// let y = tm.var("y", Sort::Loc);
/// let f = tm.app("f", vec![x], Sort::Int);
/// let g = tm.app("f", vec![y], Sort::Int);
/// let eq_xy = tm.eq(x, y);
/// let ne_fg = tm.neq(f, g);
/// let mut solver = Solver::new();
/// assert_eq!(solver.check(&mut tm, &[eq_xy, ne_fg]), SatResult::Unsat);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Solver {
    config: SolverConfig,
    stats: SolverStats,
    model: Option<Model>,
}

impl Solver {
    /// Creates a solver with the default (decidable-mode) configuration.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            config,
            ..Solver::default()
        }
    }

    /// Statistics of the last `check` call.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The model of the last `check` call, if it returned [`SatResult::Sat`].
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Checks satisfiability of the conjunction of `assertions`.
    pub fn check(&mut self, tm: &mut TermManager, assertions: &[TermId]) -> SatResult {
        self.stats = SolverStats::default();
        self.model = None;

        let has_quant = assertions.iter().any(|&a| contains_forall(tm, a));
        let mut approximate = false;
        let assertions: Vec<TermId> = if has_quant {
            if !self.config.allow_quantifiers {
                return SatResult::Unknown;
            }
            let (out, approx) = eliminate_quantifiers(tm, assertions, self.config.quant);
            approximate = approx;
            out
        } else {
            assertions.to_vec()
        };
        // If instantiation could not eliminate every quantifier we can still
        // be sound for Unsat by dropping the remaining quantified assertions
        // (weakening); a Sat answer is then reported as Unknown.
        let assertions: Vec<TermId> = assertions
            .into_iter()
            .filter(|&a| !contains_forall(tm, a))
            .collect();

        let lower_start = std::time::Instant::now();
        let roots = {
            let _obs = ids_obs::span("lower");
            lower(tm, &assertions)
        };
        self.stats.lower_time = lower_start.elapsed();

        let mut sat = SatSolver::with_options(self.config.sat);
        let atom_map: AtomMap = {
            let _obs = ids_obs::span("cnf");
            tseitin(tm, &roots, &mut sat)
        };
        self.stats.initial_clauses = sat.num_clauses() as u64;
        self.stats.atoms = atom_map.atom_of_var.len() as u64;

        // The expensive per-atom setup (term universe, congruence template,
        // linearized arithmetic forms) is done once; every theory round below
        // only resets the cheap mutable state.
        let atoms: Vec<TermId> = atom_map.atom_of_var.values().copied().collect();
        let checker = TheoryChecker::new(tm, &atoms);

        for round in 0..self.config.max_theory_rounds {
            self.stats.theory_rounds = round as u64 + 1;
            let sat_start = std::time::Instant::now();
            // The first round builds a full model; later rounds continue the
            // search from wherever the last theory conflict clause left it.
            let sat_result = if round == 0 || !self.config.incremental_sat {
                sat.solve()
            } else {
                sat.solve_continue()
            };
            self.stats.sat_time += sat_start.elapsed();
            match sat_result {
                SatResult::Unsat => {
                    self.snapshot_sat(&sat);
                    return SatResult::Unsat;
                }
                SatResult::Unknown => {
                    self.snapshot_sat(&sat);
                    return SatResult::Unknown;
                }
                SatResult::Sat => {}
            }
            let literals = atom_map.model_literals(&sat);
            let theory_start = std::time::Instant::now();
            let (theory_result, theory_tel) = checker.check_with(tm, &literals, self.config.pivot);
            let theory_elapsed = theory_start.elapsed();
            self.stats.theory_time += theory_elapsed;
            self.stats.pivots += theory_tel.pivots;
            self.stats.euf_time += theory_tel.euf_time;
            self.stats.simplex_time += theory_tel.simplex_time;
            if ids_obs::metrics_active() {
                ids_obs::record_metric(
                    ids_obs::Metric::TheoryRoundUs,
                    theory_elapsed.as_micros() as u64,
                );
                ids_obs::record_metric(ids_obs::Metric::PivotsPerRound, theory_tel.pivots);
            }
            if ids_obs::heartbeat_interval() != 0 {
                ids_obs::emit_heartbeat(ids_obs::Heartbeat {
                    conflicts: sat.conflicts,
                    decisions: sat.decisions,
                    propagations: sat.propagations,
                    restarts: sat.restarts,
                    learned: sat.num_learned() as u64,
                    theory_rounds: self.stats.theory_rounds,
                    pivots: self.stats.pivots,
                    ..ids_obs::Heartbeat::default()
                });
            }
            match theory_result {
                TheoryCheck::Consistent => {
                    self.snapshot_sat(&sat);
                    self.model = Some(Model::new(literals));
                    // Positive-forall instantiation is incomplete: a model of
                    // the instances is not necessarily a model of the original
                    // formula, so report Unknown in that case.
                    return if approximate {
                        SatResult::Unknown
                    } else {
                        SatResult::Sat
                    };
                }
                TheoryCheck::Unknown => {
                    if std::env::var("IDS_SMT_DEBUG").is_ok() {
                        for (t, b) in &literals {
                            eprintln!(
                                "UNKNOWN-LIT {} {}",
                                b,
                                crate::smtlib::term_to_smtlib(tm, *t)
                            );
                        }
                    }
                    self.snapshot_sat(&sat);
                    return SatResult::Unknown;
                }
                TheoryCheck::Conflict(indices) => {
                    // Add the blocking clause: the negation of the conflicting
                    // literal subset.
                    let clause: Vec<_> = indices
                        .iter()
                        .map(|&i| {
                            let (atom, positive) = literals[i];
                            atom_map.lit_of(atom, !positive)
                        })
                        .collect();
                    if clause.is_empty() {
                        // Theories rejected the empty set: the axioms alone
                        // are inconsistent — impossible, but be safe.
                        self.snapshot_sat(&sat);
                        return SatResult::Unsat;
                    }
                    let clause_ok = if self.config.incremental_sat {
                        sat.add_theory_conflict(clause)
                    } else {
                        sat.add_clause(clause)
                    };
                    if !clause_ok {
                        self.snapshot_sat(&sat);
                        return SatResult::Unsat;
                    }
                }
            }
        }
        // Theory-round budget exhausted.
        self.snapshot_sat(&sat);
        SatResult::Unknown
    }

    /// Copies the SAT core's counters into the stats record.
    fn snapshot_sat(&mut self, sat: &SatSolver) {
        self.stats.sat_conflicts = sat.conflicts;
        self.stats.sat_decisions = sat.decisions;
        self.stats.sat_propagations = sat.propagations;
        self.stats.restarts = sat.restarts;
        self.stats.learned_kept = sat.num_learned() as u64;
        self.stats.learned_deleted = sat.learned_deleted;
        self.stats.max_lbd = sat.max_lbd as u64;
    }

    /// Convenience wrapper: checks whether `formula` is valid (its negation is
    /// unsatisfiable).
    pub fn check_valid(&mut self, tm: &mut TermManager, formula: TermId) -> SatResult {
        let neg = tm.not(formula);
        match self.check(tm, &[neg]) {
            SatResult::Unsat => SatResult::Sat, // valid
            SatResult::Sat => SatResult::Unsat, // counterexample exists
            SatResult::Unknown => SatResult::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn euf_arith_combination() {
        // next(x) = y, len(y) = 3, len(next(x)) = 4 : unsat.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let nx = tm.app("next", vec![x], Sort::Loc);
        let len_y = tm.app("len", vec![y], Sort::Int);
        let len_nx = tm.app("len", vec![nx], Sort::Int);
        let three = tm.int(3);
        let four = tm.int(4);
        let a1 = tm.eq(nx, y);
        let a2 = tm.eq(len_y, three);
        let a3 = tm.eq(len_nx, four);
        let mut s = Solver::new();
        assert_eq!(s.check(&mut tm, &[a1, a2, a3]), SatResult::Unsat);
    }

    #[test]
    fn stats_are_populated_after_check() {
        // A query that needs decisions, propagations and a theory round:
        // (p -> x <= 0) && (!p -> x <= 1) && x >= 5 : unsat.
        let mut tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let x = tm.var("x", Sort::Int);
        let zero = tm.int(0);
        let one = tm.int(1);
        let five = tm.int(5);
        let le0 = tm.le(x, zero);
        let le1 = tm.le(x, one);
        let np = tm.not(p);
        let c1 = tm.implies(p, le0);
        let c2 = tm.implies(np, le1);
        let c3 = tm.ge(x, five);
        let mut s = Solver::new();
        assert_eq!(s.check(&mut tm, &[c1, c2, c3]), SatResult::Unsat);
        let stats = s.stats();
        assert!(stats.theory_rounds > 0, "{:?}", stats);
        assert!(stats.sat_propagations > 0, "{:?}", stats);
        assert!(stats.atoms > 0, "{:?}", stats);
        assert!(stats.initial_clauses > 0, "{:?}", stats);

        // merge() accumulates every counter.
        let mut acc = SolverStats::default();
        acc.merge(&stats);
        acc.merge(&stats);
        assert_eq!(acc.sat_propagations, 2 * stats.sat_propagations);
        assert_eq!(acc.theory_rounds, 2 * stats.theory_rounds);
    }

    #[test]
    fn heuristic_telemetry_is_populated_and_merges() {
        use crate::sat::{ClauseDbOptions, RestartPolicy, SatOptions};

        // A conflict-heavy propositional core (pigeonhole 5→4 over Bool
        // vars) plus an arithmetic refutation, under restart/deletion knobs
        // aggressive enough to fire on a test-sized query.
        let mut tm = TermManager::new();
        let p: Vec<Vec<TermId>> = (0..5)
            .map(|i| {
                (0..4)
                    .map(|j| tm.var(&format!("p{}_{}", i, j), Sort::Bool))
                    .collect()
            })
            .collect();
        let mut assertions = Vec::new();
        for row in &p {
            assertions.push(tm.or(row.clone()));
        }
        for j in 0..p[0].len() {
            for i in 0..p.len() {
                for k in (i + 1)..p.len() {
                    let (a, b) = (p[i][j], p[k][j]);
                    let na = tm.not(a);
                    let nb = tm.not(b);
                    assertions.push(tm.or2(na, nb));
                }
            }
        }
        // Arithmetic that needs simplex pivots: a chain with a contradiction.
        let xs: Vec<TermId> = (0..4)
            .map(|i| tm.var(&format!("x{}", i), Sort::Int))
            .collect();
        for w in xs.windows(2) {
            assertions.push(tm.le(w[0], w[1]));
        }
        let one = tm.int(1);
        let last_plus = tm.add(xs[3], one);
        assertions.push(tm.le(last_plus, xs[0]));

        let config = SolverConfig {
            sat: SatOptions {
                restart: RestartPolicy::Luby { unit: 1 },
                clause_db: ClauseDbOptions {
                    enabled: true,
                    first_reduce: 1,
                    reduce_inc: 0,
                    glue_lbd: 1,
                },
            },
            ..SolverConfig::default()
        };
        let mut s = Solver::with_config(config);
        assert_eq!(s.check(&mut tm, &assertions), SatResult::Unsat);
        let stats = s.stats();
        assert!(stats.restarts > 0, "{:?}", stats);
        assert!(stats.learned_deleted > 0, "{:?}", stats);
        assert!(stats.max_lbd > 0, "{:?}", stats);

        // Pivots need the arithmetic chain to actually reach the simplex: a
        // pure-arithmetic query pins that counter deterministically.
        let arith: Vec<TermId> = assertions[assertions.len() - 4..].to_vec();
        let mut s2 = Solver::new();
        assert_eq!(s2.check(&mut tm, &arith), SatResult::Unsat);
        assert!(s2.stats().pivots > 0, "{:?}", s2.stats());

        // merge(): counters sum, max_lbd takes the maximum.
        let mut acc = SolverStats {
            max_lbd: 1,
            ..SolverStats::default()
        };
        acc.merge(&stats);
        acc.merge(&s2.stats());
        assert_eq!(acc.restarts, stats.restarts + s2.stats().restarts);
        assert_eq!(
            acc.learned_deleted,
            stats.learned_deleted + s2.stats().learned_deleted
        );
        assert_eq!(
            acc.learned_kept,
            stats.learned_kept.max(s2.stats().learned_kept),
            "learned_kept is a gauge: merge takes the max"
        );
        assert_eq!(acc.pivots, stats.pivots + s2.stats().pivots);
        assert_eq!(acc.max_lbd, stats.max_lbd.max(s2.stats().max_lbd).max(1));
    }

    /// Pins the merge rule of *every* `SolverStats` field: counters and
    /// elapsed times sum, the `learned_kept`/`max_lbd` gauges take the max.
    /// The struct is fully destructured, so adding a field without choosing
    /// (and asserting) its rule here is a compile error.
    #[test]
    fn merge_rule_per_field() {
        use std::time::Duration;

        let ms = Duration::from_millis;
        let mk = |seed: u64| SolverStats {
            theory_rounds: seed,
            sat_conflicts: seed + 1,
            sat_decisions: seed + 2,
            sat_propagations: seed + 3,
            initial_clauses: seed + 4,
            atoms: seed + 5,
            sat_time: ms(seed + 6),
            theory_time: ms(seed + 7),
            lower_time: ms(seed + 8),
            euf_time: ms(seed + 9),
            simplex_time: ms(seed + 10),
            prelude_reused: seed + 11,
            prelude_lowered: seed + 12,
            restarts: seed + 13,
            learned_kept: seed + 14,
            learned_deleted: seed + 15,
            max_lbd: seed + 16,
            pivots: seed + 17,
            unsat_cores: seed + 18,
            unsat_core_size: seed + 19,
            slice_hits: seed + 20,
            slice_fallbacks: seed + 21,
            slice_dropped_hyps: seed + 22,
        };
        let (a, b) = (mk(100), mk(5));
        let mut merged = a;
        merged.merge(&b);
        let SolverStats {
            theory_rounds,
            sat_conflicts,
            sat_decisions,
            sat_propagations,
            initial_clauses,
            atoms,
            sat_time,
            theory_time,
            lower_time,
            euf_time,
            simplex_time,
            prelude_reused,
            prelude_lowered,
            restarts,
            learned_kept,
            learned_deleted,
            max_lbd,
            pivots,
            unsat_cores,
            unsat_core_size,
            slice_hits,
            slice_fallbacks,
            slice_dropped_hyps,
        } = merged;
        // Sums: effort counters and wall-clock times.
        assert_eq!(theory_rounds, a.theory_rounds + b.theory_rounds);
        assert_eq!(sat_conflicts, a.sat_conflicts + b.sat_conflicts);
        assert_eq!(sat_decisions, a.sat_decisions + b.sat_decisions);
        assert_eq!(sat_propagations, a.sat_propagations + b.sat_propagations);
        assert_eq!(initial_clauses, a.initial_clauses + b.initial_clauses);
        assert_eq!(atoms, a.atoms + b.atoms);
        assert_eq!(sat_time, a.sat_time + b.sat_time);
        assert_eq!(theory_time, a.theory_time + b.theory_time);
        assert_eq!(lower_time, a.lower_time + b.lower_time);
        assert_eq!(euf_time, a.euf_time + b.euf_time);
        assert_eq!(simplex_time, a.simplex_time + b.simplex_time);
        assert_eq!(prelude_reused, a.prelude_reused + b.prelude_reused);
        assert_eq!(prelude_lowered, a.prelude_lowered + b.prelude_lowered);
        assert_eq!(restarts, a.restarts + b.restarts);
        assert_eq!(learned_deleted, a.learned_deleted + b.learned_deleted);
        assert_eq!(pivots, a.pivots + b.pivots);
        assert_eq!(unsat_cores, a.unsat_cores + b.unsat_cores);
        assert_eq!(slice_hits, a.slice_hits + b.slice_hits);
        assert_eq!(slice_fallbacks, a.slice_fallbacks + b.slice_fallbacks);
        assert_eq!(
            slice_dropped_hyps,
            a.slice_dropped_hyps + b.slice_dropped_hyps
        );
        // Gauges: merge must keep the maximum, in either merge order.
        assert_eq!(learned_kept, a.learned_kept.max(b.learned_kept));
        assert_eq!(max_lbd, a.max_lbd.max(b.max_lbd));
        assert_eq!(unsat_core_size, a.unsat_core_size.max(b.unsat_core_size));
        let mut reversed = b;
        reversed.merge(&a);
        assert_eq!(reversed.learned_kept, learned_kept);
        assert_eq!(reversed.max_lbd, max_lbd);
        assert_eq!(reversed.unsat_core_size, unsat_core_size);
    }

    /// A method with *multiple* UNSAT VCs merges its per-check core stats as
    /// counter-plus-gauge: `unsat_cores` counts how many checks closed with a
    /// core (sum), `unsat_core_size` reports the largest core any of them
    /// used (max) — not the last one and not the total.
    #[test]
    fn multi_unsat_vc_core_merge_is_sum_plus_max() {
        let vc = |core_size: u64| SolverStats {
            unsat_cores: 1,
            unsat_core_size: core_size,
            ..SolverStats::default()
        };
        let mut method = SolverStats::default();
        for &size in &[3, 11, 7] {
            method.merge(&vc(size));
        }
        assert_eq!(method.unsat_cores, 3, "one core per UNSAT VC, summed");
        assert_eq!(method.unsat_core_size, 11, "gauge keeps the largest core");
        // A VC refuted without any core (unsatisfiable from the clause set
        // alone, no assumption used) contributes nothing to either field.
        method.merge(&SolverStats::default());
        assert_eq!(method.unsat_cores, 3);
        assert_eq!(method.unsat_core_size, 11);
    }

    #[test]
    fn legacy_profile_matches_default_verdicts() {
        // The two shipped profiles must agree on every verdict; spot-check
        // the module's own test queries under the legacy profile.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let fx = tm.app("f", vec![x], Sort::Int);
        let fy = tm.app("f", vec![y], Sort::Int);
        let eq_xy = tm.eq(x, y);
        let ne_fg = tm.neq(fx, fy);
        for profile in [SolverProfile::Default, SolverProfile::Legacy] {
            let mut s = Solver::with_config(SolverConfig::with_profile(profile));
            assert_eq!(s.check(&mut tm, &[eq_xy, ne_fg]), SatResult::Unsat);
            assert_eq!(s.check(&mut tm, &[eq_xy]), SatResult::Sat);
        }
        assert_eq!(SolverProfile::parse("legacy"), Some(SolverProfile::Legacy));
        assert_eq!(
            SolverProfile::parse("default"),
            Some(SolverProfile::Default)
        );
        assert_eq!(SolverProfile::parse("bogus"), None);
        assert_eq!(SolverProfile::Legacy.as_str(), "legacy");
    }

    #[test]
    fn model_is_returned_on_sat() {
        let mut tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let q = tm.var("q", Sort::Bool);
        let nq = tm.not(q);
        let f = tm.and2(p, nq);
        let mut s = Solver::new();
        assert_eq!(s.check(&mut tm, &[f]), SatResult::Sat);
        let m = s.model().expect("model");
        assert_eq!(m.value_of(p), Some(true));
        assert_eq!(m.value_of(q), Some(false));
    }

    #[test]
    fn check_valid_wrapper() {
        // (x = y) -> (f(x) = f(y)) is valid.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let fx = tm.app("f", vec![x], Sort::Int);
        let fy = tm.app("f", vec![y], Sort::Int);
        let eq = tm.eq(x, y);
        let eqf = tm.eq(fx, fy);
        let imp = tm.implies(eq, eqf);
        let mut s = Solver::new();
        assert_eq!(s.check_valid(&mut tm, imp), SatResult::Sat);
        // x = y -> x = z is not valid.
        let z = tm.var("z", Sort::Loc);
        let eq2 = tm.eq(x, z);
        let imp2 = tm.implies(eq, eq2);
        assert_eq!(s.check_valid(&mut tm, imp2), SatResult::Unsat);
    }

    #[test]
    fn quantifier_rejected_in_decidable_mode() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let p = tm.app("p", vec![x], Sort::Bool);
        let all = tm.forall(vec![("x".into(), Sort::Loc)], p);
        let mut s = Solver::new();
        assert_eq!(s.check(&mut tm, &[all]), SatResult::Unknown);
    }

    #[test]
    fn sorted_list_insert_core_reasoning() {
        // A miniature of the sorted-list LC check after insertion:
        //   key(x) <= k, k <= key(y), next(x) = z, next(z) = y,
        //   key(z) = k, and the claim "key(x) <= key(z) and key(z) <= key(y)".
        // Asserting the negation of the claim must be unsat.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let z = tm.var("z", Sort::Loc);
        let k = tm.var("k", Sort::Int);
        let key = |tm: &mut TermManager, l| tm.app("key", vec![l], Sort::Int);
        let kx = key(&mut tm, x);
        let ky = key(&mut tm, y);
        let kz = key(&mut tm, z);
        let nx = tm.app("next", vec![x], Sort::Loc);
        let nz = tm.app("next", vec![z], Sort::Loc);
        let h1 = tm.le(kx, k);
        let h2 = tm.le(k, ky);
        let h3 = tm.eq(nx, z);
        let h4 = tm.eq(nz, y);
        let h5 = tm.eq(kz, k);
        let c1 = tm.le(kx, kz);
        let c2 = tm.le(kz, ky);
        let claim = tm.and2(c1, c2);
        let nclaim = tm.not(claim);
        let mut s = Solver::new();
        assert_eq!(
            s.check(&mut tm, &[h1, h2, h3, h4, h5, nclaim]),
            SatResult::Unsat
        );
    }
}
