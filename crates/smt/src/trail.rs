//! Trail-based persistent theory state for the incremental DPLL(T) loop.
//!
//! The batch [`crate::theory::TheoryChecker`] rebuilds congruence closure and
//! a fresh simplex tableau for every propositional model the SAT core hands
//! over. On heavyweight VCs the models of consecutive rounds share almost all
//! of their literals (CDCL backjumps keep a long trail prefix), so nearly all
//! of that work is re-derivation of state the previous round already had.
//!
//! [`TheorySession`] keeps the theory state alive across rounds and processes
//! only the *delta*: the literals retracted and asserted since the previous
//! model. Retraction is exact undo —
//!
//! * EUF is a union-find **without path compression** (so links can be
//!   unwound), with union-by-size, a proof forest for explanations, per-class
//!   use-lists for incremental congruence, and an exact signature table in
//!   which *every* mutation is recorded on an undo trail. Popping a literal
//!   restores the structure bit-for-bit, which is what makes the replay
//!   oracle in the tests meaningful.
//! * Simplex keeps its tableau, basis and slack variables across rounds
//!   (warm restart); retraction only rolls back bound tightenings via
//!   [`crate::simplex::Simplex::undo_to`]. Slack variables are reused across
//!   re-assertions of the same linear form so the tableau does not grow with
//!   the number of rounds.
//!
//! Verdicts are identical to the batch path: congruence closure reaches the
//! same fixpoint regardless of merge order, simplex verdicts are independent
//! of pivot history, and the EUF-derived equality propagation is restricted
//! to exactly the numeric leaf terms of the *currently asserted* literals
//! (the same set the batch path derives per round). Conflict *explanations*
//! may differ from the batch path's (different merge/pivot order picks a
//! different valid inconsistent subset), which is fine for DPLL(T): any
//! inconsistent subset yields a sound theory lemma.

use std::borrow::Cow;
use std::collections::HashMap;

use crate::euf::{EufTemplate, Reason};
use crate::fxmap::FxHashMap;
use crate::rational::Rat;
use crate::simplex::{ArithOutcome, LinExpr, PivotRule, Rel, Simplex};
use crate::term::{TermId, TermManager};
use crate::theory::{AtomKind, LinForm, TheoryChecker, TheoryTelemetry, AXIOM_TAG};

/// Tags at or above this refer to per-round EUF-derived equalities; their
/// explanations (trail tags) replace them in conflicts. Trail indices are far
/// below this for any conceivable literal count.
const DERIVED_BASE: usize = usize::MAX / 2;

/// One reversible mutation of [`EufState`], undone in reverse order.
#[derive(Clone, Debug)]
enum UndoOp {
    /// A class merge: `loser_root`'s class was absorbed into `winner_root`'s,
    /// and the proof-forest edge `pf_child -> …` was added after re-rooting
    /// `pf_child`'s tree (whose old root is recorded for the reverse re-root).
    Merge {
        pf_child: usize,
        old_pf_root: usize,
        loser_root: usize,
        winner_root: usize,
        winner_use_len: usize,
    },
    /// A fresh signature-table entry under this key (entries are never
    /// overwritten: a colliding key means congruent nodes, which get merged).
    SigInsert(Vec<u32>),
    /// A pushed disequality.
    Diseq,
    /// A pushed asserted-equation tag.
    EqTag,
}

/// Backtrackable congruence closure: the incremental, exact-undo counterpart
/// of the batch [`crate::euf::Euf`] solver. Congruence is maintained eagerly
/// on every assertion (use-list driven), so there is no per-round fixpoint
/// pass over all application nodes.
#[derive(Clone, Debug)]
pub(crate) struct EufState {
    template: EufTemplate,
    /// Union-find links; no path compression so that [`EufState::undo_to`]
    /// can restore them exactly.
    parent: Vec<usize>,
    /// Class sizes (union by size keeps find paths logarithmic without
    /// compression).
    size: Vec<usize>,
    /// Proof forest for explanations, exactly as in the batch solver.
    pf_parent: Vec<Option<(usize, Reason)>>,
    /// `use_lists[r]`: application nodes with at least one argument in the
    /// class rooted at `r` (maintained by appending the loser's list to the
    /// winner's on merge; undo truncates the winner's list).
    use_lists: Vec<Vec<u32>>,
    /// Exact signature table: `[op, rep(arg0), rep(arg1), …]` → application
    /// index. A lookup hit means true congruence (no hashing ambiguity).
    /// Keys containing a merged-away root are unreachable until the merge is
    /// undone, at which point the table has been restored to match.
    sig_table: FxHashMap<Vec<u32>, u32>,
    diseqs: Vec<(usize, usize, usize)>,
    eq_tags: Vec<usize>,
    undo: Vec<UndoOp>,
    explain_incomplete: bool,
}

impl EufState {
    fn new(checker: &TheoryChecker) -> EufState {
        let template = checker.template.clone();
        let n = template.terms.len();
        let mut st = EufState {
            parent: (0..n).collect(),
            size: vec![1; n],
            pf_parent: vec![None; n],
            use_lists: vec![Vec::new(); n],
            sig_table: FxHashMap::default(),
            diseqs: Vec::new(),
            eq_tags: Vec::new(),
            undo: Vec::new(),
            explain_incomplete: false,
            template,
        };
        for (ai, app) in st.template.app_nodes.iter().enumerate() {
            for &arg in &app.args {
                st.use_lists[arg].push(ai as u32);
            }
        }
        // Seed the signature table. Terms are hash-consed, so two distinct
        // application nodes cannot collide while every class is a singleton;
        // the merge arm is defensive.
        for ai in 0..st.template.app_nodes.len() {
            let key = st.sig(ai);
            match st.sig_table.get(&key).copied() {
                Some(aj) => {
                    let ni = st.template.app_nodes[ai].node;
                    let nj = st.template.app_nodes[aj as usize].node;
                    st.merge_classes(ni, nj, Reason::Congruence(ni, nj));
                }
                None => {
                    st.undo.push(UndoOp::SigInsert(key.clone()));
                    st.sig_table.insert(key, ai as u32);
                }
            }
        }
        st.assert_neq(checker.tru, checker.fls, AXIOM_TAG);
        st
    }

    fn node(&self, t: TermId) -> usize {
        *self
            .template
            .node_of_term
            .get(&t)
            .unwrap_or_else(|| panic!("term {:?} not in EUF universe", t))
    }

    /// Union-find lookup without path compression (undo safety).
    fn find(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    /// Exact signature of an application node under the current classes.
    fn sig(&self, ai: usize) -> Vec<u32> {
        let app = &self.template.app_nodes[ai];
        let mut key = Vec::with_capacity(app.args.len() + 1);
        key.push(app.op);
        for &arg in &app.args {
            key.push(self.find(arg) as u32);
        }
        key
    }

    fn pf_root(&self, mut x: usize) -> usize {
        while let Some((p, _)) = &self.pf_parent[x] {
            x = *p;
        }
        x
    }

    /// A restore point for [`EufState::undo_to`].
    fn mark(&self) -> usize {
        self.undo.len()
    }

    fn undo_to(&mut self, mark: usize) {
        while self.undo.len() > mark {
            match self.undo.pop().expect("undo above mark") {
                UndoOp::Merge {
                    pf_child,
                    old_pf_root,
                    loser_root,
                    winner_root,
                    winner_use_len,
                } => {
                    self.use_lists[winner_root].truncate(winner_use_len);
                    self.size[winner_root] -= self.size[loser_root];
                    self.parent[loser_root] = loser_root;
                    self.pf_parent[pf_child] = None;
                    self.reroot(old_pf_root);
                }
                UndoOp::SigInsert(key) => {
                    self.sig_table.remove(&key);
                }
                UndoOp::Diseq => {
                    self.diseqs.pop();
                }
                UndoOp::EqTag => {
                    self.eq_tags.pop();
                }
            }
        }
    }

    fn assert_eq(&mut self, a: TermId, b: TermId, tag: usize) {
        let (na, nb) = (self.node(a), self.node(b));
        self.eq_tags.push(tag);
        self.undo.push(UndoOp::EqTag);
        self.merge_classes(na, nb, Reason::Asserted(tag));
    }

    fn assert_neq(&mut self, a: TermId, b: TermId, tag: usize) {
        let (na, nb) = (self.node(a), self.node(b));
        self.diseqs.push((na, nb, tag));
        self.undo.push(UndoOp::Diseq);
    }

    /// Merges the classes of nodes `a` and `b` and eagerly processes the
    /// congruence cascade via the use-lists.
    fn merge_classes(&mut self, a: usize, b: usize, reason: Reason) {
        let mut pending: Vec<(usize, usize, Reason)> = vec![(a, b, reason)];
        while let Some((x, y, reason)) = pending.pop() {
            let (rx, ry) = (self.find(x), self.find(y));
            if rx == ry {
                continue;
            }
            // Union by size; the proof-forest edge always connects the two
            // *nodes* whose equality was derived, independent of which root
            // wins.
            let (winner, loser, pf_child, pf_other) = if self.size[rx] >= self.size[ry] {
                (rx, ry, x, y)
            } else {
                (ry, rx, y, x)
            };
            self.undo.push(UndoOp::Merge {
                pf_child,
                old_pf_root: self.pf_root(pf_child),
                loser_root: loser,
                winner_root: winner,
                winner_use_len: self.use_lists[winner].len(),
            });
            self.reroot(pf_child);
            self.pf_parent[pf_child] = Some((pf_other, reason));
            self.parent[loser] = winner;
            self.size[winner] += self.size[loser];
            // Re-hash every application with an argument in the absorbed
            // class: a signature-table hit is a true congruence (exact keys),
            // a miss records the new signature. The loser's list is kept
            // intact (undo restores by truncating the winner's).
            let lost = std::mem::take(&mut self.use_lists[loser]);
            for &ai_u in &lost {
                let ai = ai_u as usize;
                let key = self.sig(ai);
                match self.sig_table.get(&key).copied() {
                    Some(aj) => {
                        let ni = self.template.app_nodes[ai].node;
                        let nj = self.template.app_nodes[aj as usize].node;
                        if self.find(ni) != self.find(nj) {
                            pending.push((ni, nj, Reason::Congruence(ni, nj)));
                        }
                    }
                    None => {
                        self.undo.push(UndoOp::SigInsert(key.clone()));
                        self.sig_table.insert(key, ai_u);
                    }
                }
            }
            self.use_lists[winner].extend(lost.iter().copied());
            self.use_lists[loser] = lost;
        }
    }

    fn reroot(&mut self, a: usize) {
        let mut path = vec![a];
        let mut cur = a;
        while let Some((p, _)) = &self.pf_parent[cur] {
            cur = *p;
            path.push(cur);
        }
        for i in (1..path.len()).rev() {
            let child = path[i - 1];
            let parent = path[i];
            let (_, reason) = self.pf_parent[child].clone().expect("edge on path");
            self.pf_parent[parent] = Some((child, reason));
        }
        self.pf_parent[a] = None;
    }

    /// Scans the disequalities (in assertion order, like the batch solver)
    /// and returns the conflict tags of the first violated one.
    fn check_diseqs(&mut self, tm: &TermManager) -> Option<Vec<usize>> {
        for k in 0..self.diseqs.len() {
            let (a, b, tag) = self.diseqs[k];
            if self.find(a) == self.find(b) {
                self.explain_incomplete = false;
                let mut tags = self.explain(tm, a, b);
                if self.explain_incomplete {
                    // Sound fallback: blame every asserted equation.
                    tags = self.eq_tags.clone();
                }
                tags.push(tag);
                tags.sort_unstable();
                tags.dedup();
                return Some(tags);
            }
        }
        None
    }

    /// A canonical class index for `t` (comparable only within one state).
    fn class_index(&self, t: TermId) -> Option<usize> {
        let n = *self.template.node_of_term.get(&t)?;
        Some(self.find(n))
    }

    /// Explains why two equal terms are equal: the tags of the asserted
    /// equations used (all of them if the explanation was incomplete).
    fn explain_terms(&mut self, tm: &TermManager, a: TermId, b: TermId) -> Vec<usize> {
        self.explain_incomplete = false;
        let (na, nb) = (self.node(a), self.node(b));
        let tags = self.explain(tm, na, nb);
        if self.explain_incomplete {
            self.eq_tags.clone()
        } else {
            tags
        }
    }

    fn explain(&mut self, tm: &TermManager, a: usize, b: usize) -> Vec<usize> {
        let mut tags = Vec::new();
        self.explain_rec(tm, a, b, &mut tags, 0);
        tags
    }

    fn explain_rec(
        &mut self,
        tm: &TermManager,
        a: usize,
        b: usize,
        tags: &mut Vec<usize>,
        depth: usize,
    ) {
        if a == b {
            return;
        }
        if depth > 10_000 {
            self.explain_incomplete = true;
            return;
        }
        let mut ancestors_a = HashMap::new();
        let mut cur = a;
        let mut idx = 0usize;
        ancestors_a.insert(cur, idx);
        while let Some((p, _)) = &self.pf_parent[cur] {
            cur = *p;
            idx += 1;
            ancestors_a.insert(cur, idx);
        }
        let mut lca = b;
        while !ancestors_a.contains_key(&lca) {
            match &self.pf_parent[lca] {
                Some((p, _)) => lca = *p,
                None => {
                    self.explain_incomplete = true;
                    return;
                }
            }
        }
        let walk =
            |mut x: usize, stop: usize, this: &mut Self, tags: &mut Vec<usize>, depth: usize| {
                while x != stop {
                    let (p, reason) = this.pf_parent[x].clone().expect("path to lca");
                    match reason {
                        Reason::Asserted(t) => tags.push(t),
                        Reason::Congruence(u, v) => {
                            let (tu, tv) = (this.template.terms[u], this.template.terms[v]);
                            let args_u = tm.term(tu).args.clone();
                            let args_v = tm.term(tv).args.clone();
                            for (x_arg, y_arg) in args_u.iter().zip(args_v.iter()) {
                                let (nu, nv) = (this.node(*x_arg), this.node(*y_arg));
                                this.explain_rec(tm, nu, nv, tags, depth + 1);
                            }
                        }
                    }
                    x = p;
                }
            };
        walk(a, lca, self, tags, depth);
        walk(b, lca, self, tags, depth);
    }
}

/// One asserted literal on the session trail, with the restore points that
/// retract it.
#[derive(Clone, Debug)]
struct TrailEntry {
    atom: TermId,
    positive: bool,
    /// EUF undo-trail length before this literal's EUF assertions.
    euf_mark: usize,
    /// Simplex bound-trail length before this literal's bound assertions
    /// (`usize::MAX` until the simplex phase of its round reaches it; every
    /// committed entry has a real mark).
    simplex_mark: usize,
    /// Numeric leaf terms of this literal's linear form (empty for
    /// non-arithmetic literals). The EUF-derived equality propagation is
    /// restricted to these, matching the batch path's per-round set.
    arith_terms: Vec<TermId>,
    /// Whether the literal carries a simplex constraint at all. Distinct from
    /// `arith_terms.is_empty()`: a linear form whose terms cancel (e.g. the
    /// negation of `x <= x`, i.e. `0 < 0`) has no leaf terms but still must
    /// be sent to the simplex, which refutes constant infeasible constraints.
    has_arith: bool,
}

/// Result of one [`TheorySession::check_round`], with conflicts already
/// mapped back to `(atom, polarity)` literal pairs (trail indices are an
/// internal detail of the session).
#[derive(Clone, Debug)]
pub(crate) enum SessionCheck {
    /// The asserted literal set is consistent.
    Consistent,
    /// Inconsistent; a jointly inconsistent subset of the asserted literals.
    Conflict(Vec<(TermId, bool)>),
    /// Inconclusive (integer branching limit).
    Unknown,
}

/// Persistent theory state for one [`crate::IncrementalSolver`]: EUF and
/// simplex survive across DPLL(T) rounds, and each round asserts/retracts
/// only the literals that changed since the previous propositional model.
#[derive(Clone, Debug)]
pub(crate) struct TheorySession {
    euf: Option<EufState>,
    simplex: Simplex,
    /// Simplex variable per numeric leaf term, persistent across rounds.
    var_of_term: FxHashMap<TermId, usize>,
    trail: Vec<TrailEntry>,
    /// Number of atoms the checker knew when the session state was built;
    /// a differing count means the atom universe changed (new atoms pushed,
    /// or a method scope popped) and the session rebuilds from the template.
    known_atoms: usize,
    pivot: PivotRule,
}

impl TheorySession {
    /// An empty session; state is materialized lazily on the first round.
    pub(crate) fn new(pivot: PivotRule) -> TheorySession {
        TheorySession {
            euf: None,
            simplex: Simplex::with_rule(pivot),
            var_of_term: FxHashMap::default(),
            trail: Vec::new(),
            known_atoms: 0,
            pivot,
        }
    }

    /// Number of literals currently asserted on the session trail.
    pub(crate) fn trail_len(&self) -> usize {
        self.trail.len()
    }

    /// Drops all per-session state and rebuilds from the checker's current
    /// template. The cumulative pivot counter is carried over so telemetry
    /// deltas stay monotonic.
    fn rebuild(&mut self, checker: &TheoryChecker) {
        self.euf = Some(EufState::new(checker));
        let mut simplex = Simplex::with_rule(self.pivot);
        simplex.enable_slack_reuse();
        simplex.pivots = self.simplex.pivots;
        self.simplex = simplex;
        self.var_of_term.clear();
        self.trail.clear();
        self.known_atoms = checker.kinds.len();
    }

    /// Checks the conjunction of `literals` for consistency, reusing the
    /// state left by the previous round. `literals` must be in a stable
    /// assignment order (the SAT trail order): the longest common prefix
    /// with the previous round's literals is kept asserted, the rest of the
    /// old trail is retracted and the rest of `literals` asserted.
    ///
    /// Returns the verdict, the round's telemetry, and the number of delta
    /// literals processed (retracted + asserted).
    pub(crate) fn check_round(
        &mut self,
        tm: &TermManager,
        checker: &TheoryChecker,
        literals: &[(TermId, bool)],
    ) -> (SessionCheck, TheoryTelemetry, u64) {
        let mut tel = TheoryTelemetry::default();

        // ------------------------------------------------------------ EUF phase
        let euf_start = std::time::Instant::now();
        let euf_span = ids_obs::span("euf");

        if self.euf.is_none() || checker.kinds.len() != self.known_atoms {
            self.rebuild(checker);
        }
        let pivots_before = self.simplex.pivots;

        let TheorySession {
            euf,
            simplex,
            var_of_term,
            trail,
            ..
        } = self;
        let euf = euf.as_mut().expect("session rebuilt above");

        // Longest common prefix with the previous round's trail.
        let mut common = 0;
        while common < trail.len()
            && common < literals.len()
            && (trail[common].atom, trail[common].positive) == literals[common]
        {
            common += 1;
        }
        let popped = trail.len() - common;
        if popped > 0 {
            euf.undo_to(trail[common].euf_mark);
            if trail[common].simplex_mark != usize::MAX {
                simplex.undo_to(trail[common].simplex_mark);
            }
            trail.truncate(common);
        }
        let pushed = literals.len() - common;
        let delta_lits = (popped + pushed) as u64;

        // Assert the EUF part of each delta literal; arithmetic parts are
        // collected and loaded after the disequality check, because EUF
        // equalities over numeric terms must be propagated into the simplex.
        struct ArithPart<'k> {
            idx: usize,
            form: Cow<'k, LinForm>,
            rel: Rel,
            both_int: bool,
        }
        let mut arith_parts: Vec<ArithPart<'_>> = Vec::new();
        for (i, &(atom, positive)) in literals.iter().enumerate().skip(common) {
            let euf_mark = euf.mark();
            let mut arith_terms = Vec::new();
            let parts_before = arith_parts.len();
            match checker.kinds.get(&atom) {
                Some(AtomKind::Eq { a, b, lin }) => {
                    if positive {
                        euf.assert_eq(*a, *b, i);
                        if let Some(form) = lin {
                            arith_terms = form.terms.iter().map(|&(t, _)| t).collect();
                            arith_parts.push(ArithPart {
                                idx: i,
                                form: Cow::Borrowed(form),
                                rel: Rel::Eq,
                                both_int: false,
                            });
                        }
                    } else {
                        euf.assert_neq(*a, *b, i);
                        // Negative numeric equalities are covered by the
                        // trichotomy lemmas added during lowering.
                    }
                }
                Some(AtomKind::Ineq {
                    lin,
                    strict,
                    both_int,
                }) => {
                    let (form, rel) = if positive {
                        (Cow::Borrowed(lin), if *strict { Rel::Lt } else { Rel::Le })
                    } else {
                        (
                            Cow::Owned(lin.negated()),
                            if *strict { Rel::Le } else { Rel::Lt },
                        )
                    };
                    arith_terms = lin.terms.iter().map(|&(t, _)| t).collect();
                    arith_parts.push(ArithPart {
                        idx: i,
                        form,
                        rel,
                        both_int: *both_int,
                    });
                }
                Some(AtomKind::Pred) | None => {
                    let target = if positive { checker.tru } else { checker.fls };
                    euf.assert_eq(atom, target, i);
                }
            }
            trail.push(TrailEntry {
                atom,
                positive,
                euf_mark,
                simplex_mark: usize::MAX,
                arith_terms,
                has_arith: arith_parts.len() > parts_before,
            });
        }

        if let Some(tags) = euf.check_diseqs(tm) {
            let conflict = conflict_lits(trail, &tags, &[]);
            // The delta's simplex parts were never asserted; a partially
            // asserted trail would under-constrain later rounds, so rewind
            // the whole delta.
            rewind(trail, euf, simplex, common);
            tel.euf_time = euf_start.elapsed();
            return (SessionCheck::Conflict(conflict), tel, delta_lits);
        }
        drop(euf_span);
        tel.euf_time = euf_start.elapsed();

        // ------------------------------------------------------- simplex phase
        let any_arith = trail.iter().any(|e| e.has_arith);
        if !any_arith {
            for e in trail.iter_mut().skip(common) {
                e.simplex_mark = simplex.mark();
            }
            return (SessionCheck::Consistent, tel, delta_lits);
        }

        let simplex_start = std::time::Instant::now();
        let mut simplex_span = ids_obs::span("simplex");

        let mut parts = arith_parts.into_iter().peekable();
        let mut load_error: Option<Vec<usize>> = None;
        for (i, entry) in trail.iter_mut().enumerate().skip(common) {
            entry.simplex_mark = simplex.mark();
            let part = match parts.peek() {
                Some(p) if p.idx == i => parts.next().expect("peeked"),
                _ => continue,
            };
            let mut expr = LinExpr::zero();
            expr.constant = part.form.constant;
            for &(leaf, coeff) in &part.form.terms {
                let v = *var_of_term.entry(leaf).or_insert_with(|| {
                    simplex.new_var(*checker.leaf_is_int.get(&leaf).unwrap_or(&false))
                });
                expr.add_term(coeff, v);
            }
            // Strict integer inequalities are tightened to non-strict ones
            // (`a < b` becomes `a + 1 <= b`), exactly like the batch path.
            let rel = if part.rel == Rel::Lt && part.both_int {
                expr.constant += Rat::ONE;
                Rel::Le
            } else {
                part.rel
            };
            if let Err(tags) = simplex.add_constraint(&expr, rel, part.idx) {
                load_error = Some(tags);
                break;
            }
        }
        if let Some(tags) = load_error {
            let round_pivots = simplex.pivots - pivots_before;
            simplex_span.note(|| format!("pivots={}", round_pivots));
            tel.pivots = round_pivots;
            tel.simplex_time = simplex_start.elapsed();
            let conflict = conflict_lits(trail, &tags, &[]);
            // A literal may assert two bounds (an equality); failing halfway
            // through must not leave a half-asserted literal on the trail.
            rewind(trail, euf, simplex, common);
            return (SessionCheck::Conflict(conflict), tel, delta_lits);
        }

        // Propagate EUF-derived equalities between the numeric leaf terms of
        // the currently asserted literals. These are justified by the current
        // congruence classes, so they never outlive the round: they are
        // always popped below, whatever the verdict.
        let derived_mark = simplex.mark();
        let mut derived_explanations: Vec<Vec<usize>> = Vec::new();
        let mut seen: FxHashMap<TermId, ()> = FxHashMap::default();
        let mut terms_in_order: Vec<TermId> = Vec::new();
        for e in trail.iter() {
            for &t in &e.arith_terms {
                if seen.insert(t, ()).is_none() {
                    terms_in_order.push(t);
                }
            }
        }
        let mut by_class: FxHashMap<usize, Vec<TermId>> = FxHashMap::default();
        for &t in &terms_in_order {
            if let Some(c) = euf.class_index(t) {
                by_class.entry(c).or_default().push(t);
            }
        }
        let mut derived_error: Option<Vec<usize>> = None;
        'groups: for (_, group) in by_class {
            if group.len() < 2 {
                continue;
            }
            for w in group.windows(2) {
                let (a, b) = (w[0], w[1]);
                let explanation = euf.explain_terms(tm, a, b);
                let derived_tag = DERIVED_BASE + derived_explanations.len();
                derived_explanations.push(explanation);
                let mut expr = LinExpr::variable(var_of_term[&a]);
                expr.add_term(-Rat::ONE, var_of_term[&b]);
                if let Err(tags) = simplex.add_constraint(&expr, Rel::Eq, derived_tag) {
                    derived_error = Some(tags);
                    break 'groups;
                }
            }
        }

        let outcome = if let Some(tags) = derived_error {
            SessionCheck::Conflict(conflict_lits(trail, &tags, &derived_explanations))
        } else {
            match simplex.check() {
                ArithOutcome::Sat(_) => SessionCheck::Consistent,
                ArithOutcome::Conflict(tags) => {
                    SessionCheck::Conflict(conflict_lits(trail, &tags, &derived_explanations))
                }
                ArithOutcome::Unknown => SessionCheck::Unknown,
            }
        };
        // Retract the derived equalities; the trail literals themselves are
        // fully asserted and stay (also on Conflict/Unknown — the next round
        // retracts whatever the SAT core changes).
        simplex.undo_to(derived_mark);
        let round_pivots = simplex.pivots - pivots_before;
        simplex_span.note(|| format!("pivots={}", round_pivots));
        tel.pivots = round_pivots;
        tel.simplex_time = simplex_start.elapsed();
        (outcome, tel, delta_lits)
    }
}

/// Maps conflict tags (trail indices, derived tags, the axiom sentinel) back
/// to `(atom, polarity)` pairs of asserted literals.
fn conflict_lits(
    trail: &[TrailEntry],
    tags: &[usize],
    derived: &[Vec<usize>],
) -> Vec<(TermId, bool)> {
    let mut idxs: Vec<usize> = Vec::new();
    for &t in tags {
        if t == AXIOM_TAG {
            continue;
        }
        if t >= DERIVED_BASE {
            for &u in &derived[t - DERIVED_BASE] {
                if u != AXIOM_TAG {
                    idxs.push(u);
                }
            }
        } else {
            idxs.push(t);
        }
    }
    idxs.sort_unstable();
    idxs.dedup();
    idxs.into_iter()
        .map(|t| (trail[t].atom, trail[t].positive))
        .collect()
}

/// Retracts every trail entry from `common` on, restoring EUF and simplex to
/// the state before the round's delta was asserted.
fn rewind(trail: &mut Vec<TrailEntry>, euf: &mut EufState, simplex: &mut Simplex, common: usize) {
    if trail.len() > common {
        euf.undo_to(trail[common].euf_mark);
        if trail[common].simplex_mark != usize::MAX {
            simplex.undo_to(trail[common].simplex_mark);
        }
        trail.truncate(common);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;
    use crate::theory::TheoryCheck;

    /// Deterministic xorshift generator for the differential fuzz.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }

        fn chance(&mut self, percent: u64) -> bool {
            self.next() % 100 < percent
        }
    }

    fn verdict_name(c: &SessionCheck) -> &'static str {
        match c {
            SessionCheck::Consistent => "consistent",
            SessionCheck::Conflict(_) => "conflict",
            SessionCheck::Unknown => "unknown",
        }
    }

    fn batch_verdict_name(c: &TheoryCheck) -> &'static str {
        match c {
            TheoryCheck::Consistent => "consistent",
            TheoryCheck::Conflict(_) => "conflict",
            TheoryCheck::Unknown => "unknown",
        }
    }

    /// A mixed EUF + arithmetic atom universe exercising congruence chains,
    /// predicates, derived-equality propagation and integer tightening.
    fn mixed_universe() -> (TermManager, Vec<TermId>) {
        let mut tm = TermManager::new();
        let locs: Vec<TermId> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| tm.var(n, Sort::Loc))
            .collect();
        let keys: Vec<TermId> = locs
            .iter()
            .map(|&l| tm.app("key", vec![l], Sort::Int))
            .collect();
        let mut atoms = Vec::new();
        for i in 0..locs.len() {
            for j in (i + 1)..locs.len() {
                atoms.push(tm.eq(locs[i], locs[j]));
            }
        }
        let fa = tm.app("f", vec![locs[0]], Sort::Loc);
        let fb = tm.app("f", vec![locs[1]], Sort::Loc);
        atoms.push(tm.eq(fa, fb));
        atoms.push(tm.app("p", vec![locs[0]], Sort::Bool));
        atoms.push(tm.app("p", vec![locs[2]], Sort::Bool));
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                atoms.push(tm.le(keys[i], keys[j]));
            }
        }
        let five = tm.int(5);
        let seven = tm.int(7);
        atoms.push(tm.le(keys[0], five));
        atoms.push(tm.ge(keys[1], seven));
        atoms.push(tm.lt(keys[2], keys[3]));
        atoms.push(tm.eq(keys[0], keys[3]));
        (tm, atoms)
    }

    /// An EUF-only universe (no arithmetic atoms), where the trail engine and
    /// a fresh rebuild are bit-exact — verdicts AND conflict explanations.
    fn euf_universe() -> (TermManager, Vec<TermId>) {
        let mut tm = TermManager::new();
        let vars: Vec<TermId> = ["x", "y", "z", "w"]
            .iter()
            .map(|n| tm.var(n, Sort::Loc))
            .collect();
        let apps: Vec<TermId> = vars
            .iter()
            .map(|&v| tm.app("g", vec![v], Sort::Loc))
            .collect();
        let nested: Vec<TermId> = apps
            .iter()
            .map(|&a| tm.app("g", vec![a], Sort::Loc))
            .collect();
        let mut atoms = Vec::new();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                atoms.push(tm.eq(vars[i], vars[j]));
            }
        }
        for i in 0..apps.len() {
            for j in (i + 1)..apps.len() {
                atoms.push(tm.eq(apps[i], apps[j]));
            }
        }
        atoms.push(tm.eq(nested[0], nested[2]));
        atoms.push(tm.app("q", vec![vars[0]], Sort::Bool));
        atoms.push(tm.app("q", vec![vars[3]], Sort::Bool));
        (tm, atoms)
    }

    /// Evolves a literal sequence like a CDCL trail: pop a random suffix,
    /// then append random fresh literals (each atom at most once).
    fn evolve(rng: &mut Rng, atoms: &[TermId], current: &mut Vec<(TermId, bool)>) {
        let keep = if current.is_empty() {
            0
        } else {
            rng.below(current.len() + 1)
        };
        current.truncate(keep);
        let used: Vec<TermId> = current.iter().map(|&(a, _)| a).collect();
        let mut candidates: Vec<TermId> = atoms
            .iter()
            .copied()
            .filter(|a| !used.contains(a))
            .collect();
        let add = rng.below(candidates.len() + 1);
        for _ in 0..add {
            if candidates.is_empty() {
                break;
            }
            let k = rng.below(candidates.len());
            let atom = candidates.swap_remove(k);
            current.push((atom, rng.chance(60)));
        }
    }

    /// Asserting exactly the reported conflict literals must itself be
    /// inconsistent (checked with the independent batch path): every
    /// explanation the session returns is a true theory lemma.
    fn assert_conflict_valid(
        tm: &TermManager,
        checker: &TheoryChecker,
        conflict: &[(TermId, bool)],
        context: &str,
    ) {
        assert!(
            !conflict.is_empty(),
            "{context}: empty conflict (would be the trivially-unsat clause)"
        );
        match checker.check(tm, conflict) {
            TheoryCheck::Conflict(_) => {}
            other => panic!("{context}: reported conflict is not inconsistent: {other:?}"),
        }
    }

    /// Differential fuzz, mixed theories: the persistent session must agree
    /// on the verdict with (a) the batch rebuild-per-round checker and
    /// (b) a fresh session asserting the same literals in one shot, on every
    /// round of a long random assert/retract schedule; every conflict either
    /// engine reports must be independently valid.
    #[test]
    fn fuzz_session_agrees_with_rebuild_mixed() {
        let (tm, atoms) = mixed_universe();
        let mut tm = tm;
        let checker = TheoryChecker::new(&mut tm, &atoms);
        let mut rng = Rng(0x5eed_cafe_f00d_0001);
        let mut session = TheorySession::new(PivotRule::Bland);
        let mut literals: Vec<(TermId, bool)> = Vec::new();
        for round in 0..400 {
            evolve(&mut rng, &atoms, &mut literals);
            let (got, _, _) = session.check_round(&tm, &checker, &literals);
            let (want, _) = checker.check_with(&tm, &literals, PivotRule::Bland);
            assert_eq!(
                verdict_name(&got),
                batch_verdict_name(&want),
                "round {round}: session vs batch on {literals:?}"
            );
            let mut fresh = TheorySession::new(PivotRule::Bland);
            let (replay, _, _) = fresh.check_round(&tm, &checker, &literals);
            assert_eq!(
                verdict_name(&got),
                verdict_name(&replay),
                "round {round}: session vs fresh replay on {literals:?}"
            );
            if let SessionCheck::Conflict(c) = &got {
                assert_conflict_valid(&tm, &checker, c, &format!("round {round} session"));
            }
            if let SessionCheck::Conflict(c) = &replay {
                assert_conflict_valid(&tm, &checker, c, &format!("round {round} replay"));
            }
        }
    }

    /// Differential fuzz, EUF only: with no simplex involved the persistent
    /// session and a fresh rebuild are bit-exact, so verdicts AND conflict
    /// explanations must be identical on every round.
    #[test]
    fn fuzz_euf_explanations_identical_to_rebuild() {
        let (tm, atoms) = euf_universe();
        let mut tm = tm;
        let checker = TheoryChecker::new(&mut tm, &atoms);
        let mut rng = Rng(0xdead_beef_0000_0042);
        let mut session = TheorySession::new(PivotRule::Bland);
        let mut literals: Vec<(TermId, bool)> = Vec::new();
        let mut conflicts_seen = 0;
        for round in 0..400 {
            evolve(&mut rng, &atoms, &mut literals);
            let (got, _, _) = session.check_round(&tm, &checker, &literals);
            let mut fresh = TheorySession::new(PivotRule::Bland);
            let (replay, _, _) = fresh.check_round(&tm, &checker, &literals);
            match (&got, &replay) {
                (SessionCheck::Consistent, SessionCheck::Consistent) => {}
                (SessionCheck::Conflict(a), SessionCheck::Conflict(b)) => {
                    assert_eq!(a, b, "round {round}: explanations diverged on {literals:?}");
                    assert_conflict_valid(&tm, &checker, a, &format!("round {round}"));
                    conflicts_seen += 1;
                }
                other => panic!("round {round}: verdicts diverged: {other:?}"),
            }
            let (want, _) = checker.check_with(&tm, &literals, PivotRule::Bland);
            assert_eq!(
                verdict_name(&got),
                batch_verdict_name(&want),
                "round {round}"
            );
        }
        assert!(
            conflicts_seen >= 20,
            "fuzz schedule too tame: only {conflicts_seen} conflicts"
        );
    }

    /// Exact-undo check on the internals: push a round, retract it by running
    /// a round with the old literals, and compare every EUF structure field
    /// against a snapshot taken before the push.
    #[test]
    fn undo_restores_euf_state_exactly() {
        let (tm, atoms) = mixed_universe();
        let mut tm = tm;
        let checker = TheoryChecker::new(&mut tm, &atoms);
        let mut rng = Rng(0x0123_4567_89ab_cdef);
        let mut session = TheorySession::new(PivotRule::Bland);
        let mut literals: Vec<(TermId, bool)> = Vec::new();
        let mut compared = 0;
        for _ in 0..400 {
            evolve(&mut rng, &atoms, &mut literals);
            let (res, _, _) = session.check_round(&tm, &checker, &literals);
            if matches!(res, SessionCheck::Conflict(_)) {
                // Conflicting rounds may rewind their delta; skip the
                // push/pop comparison and keep evolving.
                continue;
            }
            let snapshot = session.clone();
            let mut extended = literals.clone();
            evolve(&mut rng, &atoms, &mut extended);
            session.check_round(&tm, &checker, &extended);
            // Retract by re-checking the original sequence.
            session.check_round(&tm, &checker, &literals);
            let (a, b) = (
                session.euf.as_ref().expect("euf"),
                snapshot.euf.as_ref().expect("euf"),
            );
            assert_eq!(a.parent, b.parent, "union-find links");
            assert_eq!(a.size, b.size, "class sizes");
            assert_eq!(a.use_lists, b.use_lists, "use lists");
            assert_eq!(a.sig_table, b.sig_table, "signature table");
            assert_eq!(a.diseqs, b.diseqs, "disequalities");
            assert_eq!(a.eq_tags, b.eq_tags, "equation tags");
            assert_eq!(a.undo.len(), b.undo.len(), "undo trail length");
            assert_eq!(
                session.trail_len(),
                snapshot.trail_len(),
                "session trail length"
            );
            assert_eq!(
                session.simplex.mark(),
                snapshot.simplex.mark(),
                "simplex bound trail length"
            );
            compared += 1;
        }
        assert!(compared >= 30, "too few comparable rounds: {compared}");
    }

    /// Directed regression: a linear form whose terms cancel entirely (the
    /// negation of `x <= x` is `0 < 0`) carries no numeric leaf terms, but
    /// its constant constraint must still reach the simplex and conflict by
    /// itself. An early version skipped the simplex phase whenever no trail
    /// literal had leaf terms, wrongly declaring such rounds consistent.
    #[test]
    fn constant_infeasible_ineq_conflicts_alone() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let le_xx = tm.le(x, x);
        let checker = TheoryChecker::new(&mut tm, &[le_xx]);
        let mut session = TheorySession::new(PivotRule::Bland);
        let lits = vec![(le_xx, false)];
        let (res, _, _) = session.check_round(&tm, &checker, &lits);
        match res {
            SessionCheck::Conflict(c) => assert_eq!(c, vec![(le_xx, false)]),
            other => panic!("expected conflict, got {other:?}"),
        }
        // And the positive polarity (0 <= 0) is consistent.
        let lits = vec![(le_xx, true)];
        let (res, _, _) = session.check_round(&tm, &checker, &lits);
        assert!(matches!(res, SessionCheck::Consistent), "{res:?}");
    }

    /// Directed: a congruence conflict discovered only after a retraction
    /// swapped which equality chain is asserted.
    #[test]
    fn congruence_conflict_across_retraction() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let z = tm.var("z", Sort::Loc);
        let fx = tm.app("f", vec![x], Sort::Loc);
        let fz = tm.app("f", vec![z], Sort::Loc);
        let eq_xy = tm.eq(x, y);
        let eq_yz = tm.eq(y, z);
        let eq_f = tm.eq(fx, fz);
        let checker = TheoryChecker::new(&mut tm, &[eq_xy, eq_yz, eq_f]);
        let mut session = TheorySession::new(PivotRule::Bland);
        // Round 1: x=y alone, consistent.
        let r1 = vec![(eq_xy, true), (eq_f, false)];
        let (res, _, _) = session.check_round(&tm, &checker, &r1);
        assert!(matches!(res, SessionCheck::Consistent), "{res:?}");
        // Round 2: retract f(x)!=f(z), assert y=z and f(x)!=f(z) again after
        // it — the congruence f(x)=f(z) now follows and conflicts.
        let r2 = vec![(eq_xy, true), (eq_yz, true), (eq_f, false)];
        let (res, _, delta) = session.check_round(&tm, &checker, &r2);
        match res {
            SessionCheck::Conflict(mut c) => {
                c.sort();
                let mut want = vec![(eq_xy, true), (eq_yz, true), (eq_f, false)];
                want.sort();
                assert_eq!(c, want);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        // Old trail shared the [(eq_xy, true)] prefix: popped 1, pushed 2.
        assert_eq!(delta, 3);
    }

    /// Directed: warm simplex restart keeps bounds of retained literals and
    /// retracts only the popped ones.
    #[test]
    fn simplex_bounds_retract_with_their_literals() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let five = tm.int(5);
        let three = tm.int(3);
        let le3 = tm.le(x, three);
        let ge5 = tm.ge(x, five);
        let checker = TheoryChecker::new(&mut tm, &[le3, ge5]);
        let mut session = TheorySession::new(PivotRule::Bland);
        // x <= 3 alone: consistent.
        let (res, _, _) = session.check_round(&tm, &checker, &[(le3, true)]);
        assert!(matches!(res, SessionCheck::Consistent));
        // + x >= 5: conflict {x<=3, x>=5}.
        let (res, _, _) = session.check_round(&tm, &checker, &[(le3, true), (ge5, true)]);
        match res {
            SessionCheck::Conflict(mut c) => {
                c.sort();
                let mut want = vec![(le3, true), (ge5, true)];
                want.sort();
                assert_eq!(c, want);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        // Retract x <= 3, keep x >= 5: consistent again — the old bound must
        // not linger in the warm-restarted tableau.
        let (res, _, _) = session.check_round(&tm, &checker, &[(ge5, true)]);
        assert!(matches!(res, SessionCheck::Consistent), "{res:?}");
    }

    /// The session detects checker growth (new atoms pushed mid-scope) and
    /// rebuilds instead of answering from a stale template.
    #[test]
    fn rebuilds_when_checker_learns_new_atoms() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let eq_xy = tm.eq(x, y);
        let mut checker = TheoryChecker::new(&mut tm, &[eq_xy]);
        let mut session = TheorySession::new(PivotRule::Bland);
        let (res, _, _) = session.check_round(&tm, &checker, &[(eq_xy, true)]);
        assert!(matches!(res, SessionCheck::Consistent));
        // New atoms arrive (a later assertion batch).
        let fx = tm.app("f", vec![x], Sort::Loc);
        let fy = tm.app("f", vec![y], Sort::Loc);
        let eq_f = tm.eq(fx, fy);
        checker.extend(&tm, &[eq_f]);
        let lits = vec![(eq_xy, true), (eq_f, false)];
        let (res, _, _) = session.check_round(&tm, &checker, &lits);
        match res {
            SessionCheck::Conflict(mut c) => {
                c.sort();
                let mut want = lits.clone();
                want.sort();
                assert_eq!(c, want);
            }
            other => panic!("expected congruence conflict, got {other:?}"),
        }
    }
}
