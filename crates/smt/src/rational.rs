//! Exact rational arithmetic over `i128` numerator/denominator pairs.
//!
//! The simplex core and the coefficients of FWYB verification conditions are
//! tiny (±1, ±2, halves), so 128-bit components are ample; every operation is
//! checked and panics on overflow rather than silently wrapping, which keeps
//! the solver sound (an overflow would abort verification, never mis-verify).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
///
/// # Example
/// ```
/// use ids_smt::Rat;
/// let half = Rat::new(1, 2);
/// let third = Rat::new(1, 3);
/// assert_eq!(half + third, Rat::new(5, 6));
/// assert!(half > third);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// The rational zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates the rational `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let mut num = num;
        let mut den = den;
        if den < 0 {
            num = -num;
            den = -den;
        }
        let g = gcd(num, den);
        if g > 1 {
            num /= g;
            den /= g;
        }
        Rat { num, den }
    }

    /// Creates the integer rational `n`.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// The numerator (after normalization; carries the sign).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns true if this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns true if this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns true if this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns true if this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// The largest integer `<= self`.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The smallest integer `>= self`.
    pub fn ceil(&self) -> i128 {
        -((-*self).floor())
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    pub fn recip(&self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// A lossy `f64` approximation, for *heuristic* comparisons only (pivot
    /// selection): exact rational arithmetic normalizes through gcd on every
    /// operation, far too expensive for a scan that only needs a ranking.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    fn checked_mul_i(a: i128, b: i128) -> i128 {
        a.checked_mul(b).expect("rational overflow")
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::from_int(n as i128)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        let n = Rat::checked_mul_i(self.num, rhs.den)
            .checked_add(Rat::checked_mul_i(rhs.num, self.den))
            .expect("rational overflow");
        Rat::new(n, Rat::checked_mul_i(self.den, rhs.den))
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-reduce first to keep components small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = Rat::checked_mul_i(self.num / g1, rhs.num / g2);
        let den = Rat::checked_mul_i(self.den / g2, rhs.den / g1);
        Rat::new(num, den)
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiply-by-reciprocal
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        let lhs = Rat::checked_mul_i(self.num, other.den);
        let rhs = Rat::checked_mul_i(other.num, self.den);
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// A "delta rational" `r + k·δ` where `δ` is an infinitesimal, used by the
/// simplex core to handle strict inequalities exactly.
///
/// # Example
/// ```
/// use ids_smt::rational::{DeltaRat, Rat};
/// let just_above_zero = DeltaRat::new(Rat::ZERO, Rat::ONE);
/// assert!(just_above_zero > DeltaRat::from_rat(Rat::ZERO));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct DeltaRat {
    /// The standard (real) component.
    pub real: Rat,
    /// The coefficient of the infinitesimal δ.
    pub delta: Rat,
}

impl DeltaRat {
    /// The zero delta-rational.
    pub const ZERO: DeltaRat = DeltaRat {
        real: Rat::ZERO,
        delta: Rat::ZERO,
    };

    /// Creates `real + delta·δ`.
    pub fn new(real: Rat, delta: Rat) -> DeltaRat {
        DeltaRat { real, delta }
    }

    /// Embeds a rational with no infinitesimal part.
    pub fn from_rat(real: Rat) -> DeltaRat {
        DeltaRat {
            real,
            delta: Rat::ZERO,
        }
    }

    /// Scales by a rational factor.
    pub fn scale(&self, k: Rat) -> DeltaRat {
        DeltaRat {
            real: self.real * k,
            delta: self.delta * k,
        }
    }
}

impl Add for DeltaRat {
    type Output = DeltaRat;
    fn add(self, rhs: DeltaRat) -> DeltaRat {
        DeltaRat {
            real: self.real + rhs.real,
            delta: self.delta + rhs.delta,
        }
    }
}

impl Sub for DeltaRat {
    type Output = DeltaRat;
    fn sub(self, rhs: DeltaRat) -> DeltaRat {
        DeltaRat {
            real: self.real - rhs.real,
            delta: self.delta - rhs.delta,
        }
    }
}

impl Neg for DeltaRat {
    type Output = DeltaRat;
    fn neg(self) -> DeltaRat {
        DeltaRat {
            real: -self.real,
            delta: -self.delta,
        }
    }
}

impl PartialOrd for DeltaRat {
    fn partial_cmp(&self, other: &DeltaRat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeltaRat {
    fn cmp(&self, other: &DeltaRat) -> Ordering {
        self.real
            .cmp(&other.real)
            .then_with(|| self.delta.cmp(&other.delta))
    }
}

impl fmt::Display for DeltaRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delta.is_zero() {
            write!(f, "{}", self.real)
        } else {
            write!(f, "{} + {}δ", self.real, self.delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::from_int(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::from_int(7) > Rat::new(13, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from_int(5).floor(), 5);
        assert_eq!(Rat::from_int(5).ceil(), 5);
    }

    #[test]
    fn delta_ordering() {
        let zero = DeltaRat::from_rat(Rat::ZERO);
        let eps = DeltaRat::new(Rat::ZERO, Rat::ONE);
        let one = DeltaRat::from_rat(Rat::ONE);
        assert!(zero < eps);
        assert!(eps < one);
        assert_eq!(eps + eps, DeltaRat::new(Rat::ZERO, Rat::from_int(2)));
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 4).to_string(), "3/4");
        assert_eq!(Rat::from_int(-2).to_string(), "-2");
    }
}
