//! A minimal Fx-style hasher for the solver's hot inner-loop maps.
//!
//! The standard library's default `HashMap` hasher (SipHash) is
//! DoS-resistant but costs real time in the congruence-closure and theory
//! loops, which perform millions of lookups keyed by small integers
//! (`TermId`s, node indices, variable indices) per heavyweight VC — the
//! PR-5 profile showed ~25% of total solve time inside SipHash alone.
//! Solver-internal maps are never keyed by attacker-controlled data, so the
//! classic Firefox multiply-rotate hash is the right trade.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// `HashMap` with the Fx hasher — a drop-in for solver-internal maps.
pub(crate) type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Builder for [`FxHasher`] (zero-sized, `Default`-constructible so the map
/// type works with `HashMap::default`).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;
    fn build_hasher(&self) -> FxHasher {
        FxHasher(0)
    }
}

/// The word-at-a-time multiply-rotate hasher.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 1000);
    }
}
