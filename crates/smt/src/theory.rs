//! The combined theory checker: decides whether a conjunction of asserted
//! theory literals (a propositional model of the lowered formula) is
//! consistent in the combination EUF + linear arithmetic.
//!
//! Sets, arrays and pointwise updates were already reduced to EUF applications
//! plus instantiated ground axioms by [`crate::lower`], so the only theories
//! that remain are equality/uninterpreted functions and linear arithmetic.
//! The two are combined Nelson–Oppen-style in one direction: congruence
//! closure runs first and the equalities it derives between numeric terms are
//! propagated into the simplex (with their EUF explanations attached so that
//! arithmetic conflicts translate back to input literals). The reverse
//! direction (equalities implied by arithmetic feeding congruence) is not
//! needed for FWYB verification conditions and is intentionally omitted; the
//! trichotomy lemmas added by the lowering pass cover the common cases.
//!
//! The lazy DPLL(T) loop calls the checker once per propositional model, so
//! everything that only depends on the *atoms* (term universe, congruence
//! template, linearized arithmetic forms) is precomputed once per solver call
//! in a [`TheoryChecker`] and reused across rounds.

use crate::euf::{Euf, EufOutcome, EufTemplate};
use crate::fxmap::FxHashMap;
use crate::rational::Rat;
use crate::simplex::{ArithOutcome, LinExpr, PivotRule, Rel, Simplex};
use crate::term::{Op, Sort, TermId, TermManager};

/// Result of a theory consistency check over asserted literals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryCheck {
    /// The literal set is consistent in the combined theory.
    Consistent,
    /// Inconsistent; indices (into the literal slice) of a conflicting subset.
    Conflict(Vec<usize>),
    /// The check was inconclusive (integer branching limit).
    Unknown,
}

/// Sentinel tag for internal axioms (e.g. `true != false`) that must never be
/// reported in conflicts.
pub(crate) const AXIOM_TAG: usize = usize::MAX - 1;

/// A linear form `Σ cᵢ·leafᵢ + constant` over uninterpreted numeric leaf
/// terms, precomputed from one side-difference `a − b` of an arithmetic atom.
#[derive(Clone, Debug, Default)]
pub(crate) struct LinForm {
    pub(crate) terms: Vec<(TermId, Rat)>,
    pub(crate) constant: Rat,
}

impl LinForm {
    pub(crate) fn negated(&self) -> LinForm {
        LinForm {
            terms: self.terms.iter().map(|&(t, c)| (t, -c)).collect(),
            constant: -self.constant,
        }
    }
}

/// How one theory atom is handled by the checker.
#[derive(Clone, Debug)]
pub(crate) enum AtomKind {
    /// Equality between two terms; `lin` is the linear form of `a − b` when
    /// both sides are numeric (propagated to the simplex on positive
    /// assertion).
    Eq {
        a: TermId,
        b: TermId,
        lin: Option<LinForm>,
    },
    /// `a ≤ b` (`strict = false`) or `a < b` (`strict = true`); `lin` is the
    /// linear form of `a − b`, `both_int` whether both sides are integers.
    Ineq {
        lin: LinForm,
        strict: bool,
        both_int: bool,
    },
    /// Any other Boolean-sorted term: an EUF predicate constrained to equal
    /// `true`/`false`.
    Pred,
}

/// Precomputed theory-checking context for a fixed set of atoms.
#[derive(Clone, Debug)]
pub struct TheoryChecker {
    pub(crate) template: EufTemplate,
    pub(crate) kinds: FxHashMap<TermId, AtomKind>,
    /// Whether each numeric leaf term is integer-sorted.
    pub(crate) leaf_is_int: FxHashMap<TermId, bool>,
    /// The Boolean constants, used to constrain predicate atoms.
    pub(crate) tru: TermId,
    pub(crate) fls: TermId,
}

impl TheoryChecker {
    /// Builds the checker for the given atoms (the theory atoms of the lowered
    /// formula). Sub-terms are collected automatically.
    pub fn new(tm: &mut TermManager, atoms: &[TermId]) -> TheoryChecker {
        let tru = tm.tru();
        let fls = tm.fls();
        let mut checker = TheoryChecker {
            template: EufTemplate::new(tm, &[tru, fls]),
            kinds: FxHashMap::default(),
            leaf_is_int: FxHashMap::default(),
            tru,
            fls,
        };
        checker.extend(tm, atoms);
        checker
    }

    /// Extends the checker with additional atoms (incremental sessions): the
    /// congruence template grows in place instead of being rebuilt, and the
    /// precomputed linear forms of existing atoms are reused. Atoms already
    /// known are ignored.
    pub fn extend(&mut self, tm: &TermManager, atoms: &[TermId]) {
        let fresh: Vec<TermId> = atoms
            .iter()
            .copied()
            .filter(|a| !self.kinds.contains_key(a))
            .collect();
        if fresh.is_empty() {
            return;
        }
        let mut obs_span = ids_obs::span("theory_extend");
        obs_span.note(|| format!("atoms={}", fresh.len()));
        self.template.extend(tm, &fresh);
        for &atom in &fresh {
            let term = tm.term(atom);
            let kind = match term.op {
                Op::Eq => {
                    let (a, b) = (term.args[0], term.args[1]);
                    let lin = if tm.sort(a).is_numeric() {
                        Some(difference_form(tm, a, b, &mut self.leaf_is_int))
                    } else {
                        None
                    };
                    AtomKind::Eq { a, b, lin }
                }
                Op::Le | Op::Lt => {
                    let (a, b) = (term.args[0], term.args[1]);
                    let lin = difference_form(tm, a, b, &mut self.leaf_is_int);
                    let both_int = tm.sort(a) == &Sort::Int && tm.sort(b) == &Sort::Int;
                    AtomKind::Ineq {
                        lin,
                        strict: term.op == Op::Lt,
                        both_int,
                    }
                }
                _ => AtomKind::Pred,
            };
            self.kinds.insert(atom, kind);
        }
    }

    /// Checks the conjunction of `literals` (atom term, polarity) for
    /// consistency in EUF + linear arithmetic, using Bland's pivot rule.
    pub fn check(&self, tm: &TermManager, literals: &[(TermId, bool)]) -> TheoryCheck {
        self.check_with(tm, literals, PivotRule::Bland).0
    }

    /// Like [`TheoryChecker::check`], but with an explicit simplex pivot rule
    /// and returning the per-theory telemetry of the check (the `pivots` and
    /// `euf_time`/`simplex_time` fields of [`crate::SolverStats`]).
    pub fn check_with(
        &self,
        tm: &TermManager,
        literals: &[(TermId, bool)],
        pivot: PivotRule,
    ) -> (TheoryCheck, TheoryTelemetry) {
        let (tru, fls) = (self.tru, self.fls);
        let mut tel = TheoryTelemetry::default();

        // ------------------------------------------------------------- EUF pass
        let euf_start = std::time::Instant::now();
        let euf_span = ids_obs::span("euf");
        let mut euf = Euf::with_template(tm, &self.template);
        euf.assert_neq(tru, fls, AXIOM_TAG);

        // Arithmetic literals are collected and loaded after EUF, because EUF
        // equalities over numeric terms must be propagated into the simplex.
        struct ArithLit<'f> {
            form: std::borrow::Cow<'f, LinForm>,
            rel: Rel,
            both_int: bool,
            tag: usize,
        }
        let mut arith_lits: Vec<ArithLit<'_>> = Vec::new();

        for (idx, &(atom, positive)) in literals.iter().enumerate() {
            match self.kinds.get(&atom) {
                Some(AtomKind::Eq { a, b, lin }) => {
                    if positive {
                        euf.assert_eq(*a, *b, idx);
                        if let Some(form) = lin {
                            arith_lits.push(ArithLit {
                                form: std::borrow::Cow::Borrowed(form),
                                rel: Rel::Eq,
                                both_int: false,
                                tag: idx,
                            });
                        }
                    } else {
                        euf.assert_neq(*a, *b, idx);
                        // Negative numeric equalities are covered by the
                        // trichotomy lemmas added during lowering.
                    }
                }
                Some(AtomKind::Ineq {
                    lin,
                    strict,
                    both_int,
                }) => {
                    // positive `a ≤ b` is `a − b ≤ 0`; its negation is `b < a`.
                    let (form, rel) = if positive {
                        (
                            std::borrow::Cow::Borrowed(lin),
                            if *strict { Rel::Lt } else { Rel::Le },
                        )
                    } else {
                        (
                            std::borrow::Cow::Owned(lin.negated()),
                            if *strict { Rel::Le } else { Rel::Lt },
                        )
                    };
                    arith_lits.push(ArithLit {
                        form,
                        rel,
                        both_int: *both_int,
                        tag: idx,
                    });
                }
                Some(AtomKind::Pred) | None => {
                    let target = if positive { tru } else { fls };
                    euf.assert_eq(atom, target, idx);
                }
            }
        }

        match euf.check() {
            EufOutcome::Conflict(tags) => {
                tel.euf_time = euf_start.elapsed();
                return (TheoryCheck::Conflict(clean_tags(tags)), tel);
            }
            EufOutcome::Consistent => {}
        }
        drop(euf_span);
        tel.euf_time = euf_start.elapsed();

        // ------------------------------------------------------ arithmetic pass
        if arith_lits.is_empty() {
            return (TheoryCheck::Consistent, tel);
        }

        let simplex_start = std::time::Instant::now();
        let mut simplex_span = ids_obs::span("simplex");
        let mut simplex = Simplex::with_rule(pivot);
        let mut var_of_term: FxHashMap<TermId, usize> = FxHashMap::default();
        // Tags >= DERIVED_BASE refer to EUF-derived equalities; their explanation
        // replaces them in conflicts.
        let derived_base = literals.len() + 10;
        let mut derived_explanations: Vec<Vec<usize>> = Vec::new();

        let conflict_from =
            |tags: Vec<usize>, derived_explanations: &Vec<Vec<usize>>| -> TheoryCheck {
                let mut out = Vec::new();
                for t in tags {
                    if t >= derived_base {
                        out.extend(derived_explanations[t - derived_base].iter().copied());
                    } else {
                        out.push(t);
                    }
                }
                TheoryCheck::Conflict(clean_tags(out))
            };

        // Load the arithmetic literals. Strict inequalities over integer-sorted
        // sides are tightened to non-strict ones (`a < b` becomes `a + 1 <= b`),
        // which keeps integer reasoning inside plain simplex and avoids
        // branch-and-bound chasing infinitesimals.
        let mut load_error: Option<Vec<usize>> = None;
        for lit in &arith_lits {
            let mut expr = LinExpr::zero();
            expr.constant = lit.form.constant;
            for &(leaf, coeff) in &lit.form.terms {
                let v = *var_of_term.entry(leaf).or_insert_with(|| {
                    simplex.new_var(*self.leaf_is_int.get(&leaf).unwrap_or(&false))
                });
                expr.add_term(coeff, v);
            }
            let rel = if lit.rel == Rel::Lt && lit.both_int {
                expr.constant += Rat::ONE;
                Rel::Le
            } else {
                lit.rel
            };
            if let Err(tags) = simplex.add_constraint(&expr, rel, lit.tag) {
                load_error = Some(tags);
                break;
            }
        }
        if let Some(tags) = load_error {
            simplex_span.note(|| format!("pivots={}", simplex.pivots));
            tel.pivots = simplex.pivots;
            tel.simplex_time = simplex_start.elapsed();
            return (conflict_from(tags, &derived_explanations), tel);
        }

        // Propagate EUF-derived equalities between numeric atom terms.
        let atom_terms: Vec<TermId> = var_of_term.keys().copied().collect();
        let mut by_class: FxHashMap<usize, Vec<TermId>> = FxHashMap::default();
        for &t in &atom_terms {
            if let Some(c) = euf.class_index(t) {
                by_class.entry(c).or_default().push(t);
            }
        }
        for (_, group) in by_class {
            if group.len() < 2 {
                continue;
            }
            for w in group.windows(2) {
                let (a, b) = (w[0], w[1]);
                let explanation = euf.explain_terms(a, b);
                let derived_tag = derived_base + derived_explanations.len();
                derived_explanations.push(explanation);
                let mut expr = LinExpr::variable(var_of_term[&a]);
                expr.add_term(-Rat::ONE, var_of_term[&b]);
                if let Err(tags) = simplex.add_constraint(&expr, Rel::Eq, derived_tag) {
                    simplex_span.note(|| format!("pivots={}", simplex.pivots));
                    tel.pivots = simplex.pivots;
                    tel.simplex_time = simplex_start.elapsed();
                    return (conflict_from(tags, &derived_explanations), tel);
                }
            }
        }

        let outcome = match simplex.check() {
            ArithOutcome::Sat(_) => TheoryCheck::Consistent,
            ArithOutcome::Conflict(tags) => conflict_from(tags, &derived_explanations),
            ArithOutcome::Unknown => TheoryCheck::Unknown,
        };
        simplex_span.note(|| format!("pivots={}", simplex.pivots));
        tel.pivots = simplex.pivots;
        tel.simplex_time = simplex_start.elapsed();
        (outcome, tel)
    }
}

/// Per-theory telemetry of one [`TheoryChecker::check_with`] call, folded
/// into [`crate::SolverStats`] by the DPLL(T) loops.
#[derive(Clone, Copy, Debug, Default)]
pub struct TheoryTelemetry {
    /// Simplex pivots performed (0 when the arithmetic pass did not run).
    pub pivots: u64,
    /// Wall-clock time of the EUF congruence pass.
    pub euf_time: std::time::Duration,
    /// Wall-clock time of the simplex pass (zero when it did not run).
    pub simplex_time: std::time::Duration,
}

/// Checks the conjunction of `literals` (atom term, polarity) for consistency.
///
/// This is the one-shot convenience wrapper around [`TheoryChecker`]; the lazy
/// DPLL(T) loop builds the checker once and calls [`TheoryChecker::check`]
/// directly.
pub fn check_literals(tm: &mut TermManager, literals: &[(TermId, bool)]) -> TheoryCheck {
    let atoms: Vec<TermId> = literals.iter().map(|&(t, _)| t).collect();
    let checker = TheoryChecker::new(tm, &atoms);
    checker.check(tm, literals)
}

fn clean_tags(mut tags: Vec<usize>) -> Vec<usize> {
    tags.retain(|&t| t != AXIOM_TAG);
    tags.sort_unstable();
    tags.dedup();
    tags
}

/// Precomputes the linear form of `a − b` over uninterpreted numeric leaves,
/// recording the integer-sortedness of every leaf encountered.
fn difference_form(
    tm: &TermManager,
    a: TermId,
    b: TermId,
    leaf_is_int: &mut FxHashMap<TermId, bool>,
) -> LinForm {
    let mut form = LinForm::default();
    accumulate(tm, a, Rat::ONE, &mut form, leaf_is_int);
    accumulate(tm, b, -Rat::ONE, &mut form, leaf_is_int);
    // Merge duplicate leaves.
    form.terms.sort_by_key(|&(t, _)| t);
    let mut merged: Vec<(TermId, Rat)> = Vec::with_capacity(form.terms.len());
    for (t, c) in form.terms {
        match merged.last_mut() {
            Some((lt, lc)) if *lt == t => *lc += c,
            _ => merged.push((t, c)),
        }
    }
    merged.retain(|&(_, c)| c != Rat::ZERO);
    form.terms = merged;
    form
}

/// Adds `scale · t` to the linear form, descending through interpreted
/// arithmetic operators and treating everything else as an uninterpreted leaf.
fn accumulate(
    tm: &TermManager,
    t: TermId,
    scale: Rat,
    form: &mut LinForm,
    leaf_is_int: &mut FxHashMap<TermId, bool>,
) {
    let term = tm.term(t);
    match &term.op {
        Op::IntLit(n) => form.constant += scale * Rat::from_int(*n),
        Op::RealLit(r) => form.constant += scale * *r,
        Op::Add => {
            for &a in &term.args {
                accumulate(tm, a, scale, form, leaf_is_int);
            }
        }
        Op::Sub => {
            accumulate(tm, term.args[0], scale, form, leaf_is_int);
            accumulate(tm, term.args[1], -scale, form, leaf_is_int);
        }
        Op::Neg => accumulate(tm, term.args[0], -scale, form, leaf_is_int),
        Op::MulConst(k) => accumulate(tm, term.args[0], scale * *k, form, leaf_is_int),
        _ => {
            leaf_is_int.insert(t, tm.sort(t) == &Sort::Int);
            form.terms.push((t, scale));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euf_only_conflict() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let fx = tm.app("f", vec![x], Sort::Loc);
        let fy = tm.app("f", vec![y], Sort::Loc);
        let eq_xy = tm.eq(x, y);
        let eq_f = tm.eq(fx, fy);
        let lits = vec![(eq_xy, true), (eq_f, false)];
        match check_literals(&mut tm, &lits) {
            TheoryCheck::Conflict(c) => assert_eq!(c, vec![0, 1]),
            other => panic!("expected conflict, got {:?}", other),
        }
    }

    #[test]
    fn arith_only_conflict() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let one = tm.int(1);
        let xp1 = tm.add(x, one);
        let le = tm.le(xp1, x);
        let lits = vec![(le, true)];
        match check_literals(&mut tm, &lits) {
            TheoryCheck::Conflict(c) => assert_eq!(c, vec![0]),
            other => panic!("expected conflict, got {:?}", other),
        }
    }

    #[test]
    fn combined_euf_to_arith() {
        // a = b (locs), key(a) <= 5, key(b) >= 7 : conflict needs congruence
        // key(a) = key(b) propagated into arithmetic.
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::Loc);
        let b = tm.var("b", Sort::Loc);
        let ka = tm.app("key", vec![a], Sort::Int);
        let kb = tm.app("key", vec![b], Sort::Int);
        let five = tm.int(5);
        let seven = tm.int(7);
        let eq = tm.eq(a, b);
        let le5 = tm.le(ka, five);
        let ge7 = tm.ge(kb, seven);
        let lits = vec![(eq, true), (le5, true), (ge7, true)];
        match check_literals(&mut tm, &lits) {
            TheoryCheck::Conflict(c) => {
                assert!(c.contains(&0) && c.contains(&1) && c.contains(&2));
            }
            other => panic!("expected conflict, got {:?}", other),
        }
    }

    #[test]
    fn bool_predicate_conflict() {
        // p(x) asserted both true and false (via equal arguments).
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let px = tm.app("p", vec![x], Sort::Bool);
        let py = tm.app("p", vec![y], Sort::Bool);
        let eq = tm.eq(x, y);
        let lits = vec![(eq, true), (px, true), (py, false)];
        match check_literals(&mut tm, &lits) {
            TheoryCheck::Conflict(c) => assert_eq!(c, vec![0, 1, 2]),
            other => panic!("expected conflict, got {:?}", other),
        }
    }

    #[test]
    fn consistent_mixed() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let kx = tm.app("key", vec![x], Sort::Int);
        let ky = tm.app("key", vec![y], Sort::Int);
        let le = tm.le(kx, ky);
        let neq = tm.eq(x, y);
        let lits = vec![(le, true), (neq, false)];
        assert_eq!(check_literals(&mut tm, &lits), TheoryCheck::Consistent);
    }

    #[test]
    fn rational_average_consistent() {
        // rank(z) = (rank(x) + rank(y)) / 2, rank(x) < rank(y)
        // implies rank(x) < rank(z) is consistent; its negation plus the
        // hypotheses is a conflict.
        let mut tm = TermManager::new();
        let rx = tm.var("rank_x", Sort::Real);
        let ry = tm.var("rank_y", Sort::Real);
        let rz = tm.var("rank_z", Sort::Real);
        let sum = tm.add(rx, ry);
        let avg = tm.mul_const(Rat::new(1, 2), sum);
        let def = tm.eq(rz, avg);
        let lt = tm.lt(rx, ry);
        let concl = tm.lt(rx, rz);
        let lits = vec![(def, true), (lt, true), (concl, false)];
        assert!(matches!(
            check_literals(&mut tm, &lits),
            TheoryCheck::Conflict(_)
        ));
    }

    #[test]
    fn checker_is_reusable_across_rounds() {
        // The same precomputed checker must answer different literal subsets
        // independently.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let fx = tm.app("f", vec![x], Sort::Int);
        let fy = tm.app("f", vec![y], Sort::Int);
        let one = tm.int(1);
        let eq_xy = tm.eq(x, y);
        let eq_f = tm.eq(fx, fy);
        let le = tm.le(fx, one);
        let checker = TheoryChecker::new(&mut tm, &[eq_xy, eq_f, le]);
        // Round 1: x = y but f(x) != f(y) — conflict.
        let r1 = checker.check(&tm, &[(eq_xy, true), (eq_f, false)]);
        assert!(matches!(r1, TheoryCheck::Conflict(_)));
        // Round 2: consistent subset.
        let r2 = checker.check(&tm, &[(eq_xy, false), (le, true)]);
        assert_eq!(r2, TheoryCheck::Consistent);
    }
}
