//! Linear arithmetic over rationals and integers: a general simplex solver in
//! the style of Dutertre–de Moura, using delta-rationals for strict
//! inequalities, plus branch-and-bound for integer variables.
//!
//! The solver is used in batch mode by the theory layer: all bounds derived
//! from the asserted arithmetic literals are loaded (each carrying a literal
//! *tag*), then [`Simplex::check`] either produces a satisfying assignment or
//! a conflict — a set of tags of jointly inconsistent bounds.

use std::collections::HashMap;

use crate::rational::{DeltaRat, Rat};

/// A linear expression: a constant plus a sum of `coeff * variable` terms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinExpr {
    /// The constant offset.
    pub constant: Rat,
    /// Coefficients per arithmetic variable index (no zero entries).
    pub terms: HashMap<usize, Rat>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// The constant expression `c`.
    pub fn constant(c: Rat) -> LinExpr {
        LinExpr {
            constant: c,
            terms: HashMap::new(),
        }
    }

    /// The expression consisting of a single variable.
    pub fn variable(v: usize) -> LinExpr {
        let mut terms = HashMap::new();
        terms.insert(v, Rat::ONE);
        LinExpr {
            constant: Rat::ZERO,
            terms,
        }
    }

    /// Adds `k * v` to the expression.
    pub fn add_term(&mut self, k: Rat, v: usize) {
        let entry = self.terms.entry(v).or_insert(Rat::ZERO);
        *entry += k;
        if entry.is_zero() {
            self.terms.remove(&v);
        }
    }

    /// Adds another expression scaled by `k`.
    pub fn add_scaled(&mut self, k: Rat, other: &LinExpr) {
        self.constant += other.constant * k;
        for (&v, &c) in &other.terms {
            self.add_term(c * k, v);
        }
    }

    /// True if the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

/// The relation of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// `expr <= 0`
    Le,
    /// `expr < 0`
    Lt,
    /// `expr = 0`
    Eq,
    /// `expr != 0` — handled by the caller via case splitting; the simplex
    /// core rejects it.
    Neq,
}

/// Result of an arithmetic consistency check.
#[derive(Clone, Debug)]
pub enum ArithOutcome {
    /// Satisfiable; maps every arithmetic variable to its value.
    Sat(Vec<DeltaRat>),
    /// Unsatisfiable; tags of a jointly inconsistent subset of constraints.
    Conflict(Vec<usize>),
    /// Resource limit reached (only possible with integer branching).
    Unknown,
}

const NO_TAG: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Bound {
    value: DeltaRat,
    tag: usize,
}

/// The simplex solver.
///
/// Variables are dense indices `0..num_vars`; the caller declares which are
/// integer-sorted. Constraints are added with [`Simplex::add_constraint`] and
/// the final consistency check is [`Simplex::check`].
#[derive(Clone, Debug, Default)]
pub struct Simplex {
    num_vars: usize,
    is_int: Vec<bool>,
    // Tableau: basic variable index -> row (coeffs over nonbasic variables).
    rows: HashMap<usize, HashMap<usize, Rat>>,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    assignment: Vec<DeltaRat>,
    /// Pivot-count statistic.
    pub pivots: u64,
}

impl Simplex {
    /// Creates a solver with no variables.
    pub fn new() -> Simplex {
        Simplex::default()
    }

    /// Adds a variable; `is_int` marks it integer-sorted. Returns its index.
    pub fn new_var(&mut self, is_int: bool) -> usize {
        let v = self.num_vars;
        self.num_vars += 1;
        self.is_int.push(is_int);
        self.lower.push(None);
        self.upper.push(None);
        self.assignment.push(DeltaRat::ZERO);
        v
    }

    /// Number of variables (including internal slack variables).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds the constraint `expr rel 0` tagged with `tag`.
    /// Returns `Err(conflict)` on an immediately detected conflict.
    ///
    /// # Panics
    /// Panics if `rel` is [`Rel::Neq`] (the caller must case-split).
    pub fn add_constraint(
        &mut self,
        expr: &LinExpr,
        rel: Rel,
        tag: usize,
    ) -> Result<(), Vec<usize>> {
        if rel == Rel::Neq {
            panic!("Neq must be split by the caller")
        }
        if expr.is_constant() {
            let c = expr.constant;
            let ok = match rel {
                Rel::Le => c <= Rat::ZERO,
                Rel::Lt => c < Rat::ZERO,
                Rel::Eq => c.is_zero(),
                Rel::Neq => unreachable!(),
            };
            return if ok { Ok(()) } else { Err(vec![tag]) };
        }
        // Normalize to a bound on a single (possibly slack) variable:
        //   expr = constant + linear_part ;  linear_part rel -constant
        let var = if expr.terms.len() == 1 {
            let (&v, &c) = expr.terms.iter().next().unwrap();
            if c == Rat::ONE {
                Some((v, Rat::ONE))
            } else {
                Some((v, c))
            }
        } else {
            None
        };
        let (x, scale) = match var {
            Some((v, c)) => (v, c),
            None => {
                // Introduce a slack variable s = linear part.
                let s = self.new_var(false);
                let mut row = HashMap::new();
                for (&v, &c) in &expr.terms {
                    row.insert(v, c);
                }
                // Substitute any basic variables appearing in the new row.
                let row = self.substitute_basics(row);
                self.assignment[s] = self.row_value(&row);
                self.rows.insert(s, row);
                (s, Rat::ONE)
            }
        };
        // linear part = scale * x ; constraint: scale*x rel -constant
        let rhs = -expr.constant;
        let bound = rhs / scale;
        let flipped = scale.is_negative();
        match (rel, flipped) {
            (Rel::Eq, _) => {
                self.assert_upper(x, DeltaRat::from_rat(bound), tag)?;
                self.assert_lower(x, DeltaRat::from_rat(bound), tag)?;
            }
            (Rel::Le, false) => self.assert_upper(x, DeltaRat::from_rat(bound), tag)?,
            (Rel::Le, true) => self.assert_lower(x, DeltaRat::from_rat(bound), tag)?,
            (Rel::Lt, false) => self.assert_upper(x, DeltaRat::new(bound, -Rat::ONE), tag)?,
            (Rel::Lt, true) => self.assert_lower(x, DeltaRat::new(bound, Rat::ONE), tag)?,
            (Rel::Neq, _) => unreachable!(),
        }
        Ok(())
    }

    fn substitute_basics(&self, row: HashMap<usize, Rat>) -> HashMap<usize, Rat> {
        let mut out: HashMap<usize, Rat> = HashMap::new();
        for (v, c) in row {
            if let Some(basic_row) = self.rows.get(&v) {
                for (&w, &cw) in basic_row {
                    let e = out.entry(w).or_insert(Rat::ZERO);
                    *e += c * cw;
                }
            } else {
                let e = out.entry(v).or_insert(Rat::ZERO);
                *e += c;
            }
        }
        out.retain(|_, c| !c.is_zero());
        out
    }

    fn row_value(&self, row: &HashMap<usize, Rat>) -> DeltaRat {
        let mut val = DeltaRat::ZERO;
        for (&v, &c) in row {
            val = val + self.assignment[v].scale(c);
        }
        val
    }

    fn assert_upper(&mut self, x: usize, c: DeltaRat, tag: usize) -> Result<(), Vec<usize>> {
        if let Some(l) = &self.lower[x] {
            if c < l.value {
                return Err(vec![tag, l.tag]);
            }
        }
        let tighter = match &self.upper[x] {
            Some(u) => c < u.value,
            None => true,
        };
        if tighter {
            self.upper[x] = Some(Bound { value: c, tag });
            if !self.rows.contains_key(&x) && self.assignment[x] > c {
                self.update_nonbasic(x, c);
            }
        }
        Ok(())
    }

    fn assert_lower(&mut self, x: usize, c: DeltaRat, tag: usize) -> Result<(), Vec<usize>> {
        if let Some(u) = &self.upper[x] {
            if c > u.value {
                return Err(vec![tag, u.tag]);
            }
        }
        let tighter = match &self.lower[x] {
            Some(l) => c > l.value,
            None => true,
        };
        if tighter {
            self.lower[x] = Some(Bound { value: c, tag });
            if !self.rows.contains_key(&x) && self.assignment[x] < c {
                self.update_nonbasic(x, c);
            }
        }
        Ok(())
    }

    fn update_nonbasic(&mut self, x: usize, v: DeltaRat) {
        let delta = v - self.assignment[x];
        self.assignment[x] = v;
        let basics: Vec<usize> = self.rows.keys().copied().collect();
        for b in basics {
            if let Some(&c) = self.rows[&b].get(&x) {
                self.assignment[b] = self.assignment[b] + delta.scale(c);
            }
        }
    }

    fn violated_basic(&self) -> Option<(usize, bool)> {
        // Bland's rule: smallest index first. Returns (var, is_below_lower).
        let mut basics: Vec<usize> = self.rows.keys().copied().collect();
        basics.sort_unstable();
        for b in basics {
            if let Some(l) = &self.lower[b] {
                if self.assignment[b] < l.value {
                    return Some((b, true));
                }
            }
            if let Some(u) = &self.upper[b] {
                if self.assignment[b] > u.value {
                    return Some((b, false));
                }
            }
        }
        None
    }

    fn pivot_and_update(&mut self, xi: usize, xj: usize, v: DeltaRat) {
        self.pivots += 1;
        let aij = self.rows[&xi][&xj];
        let theta = (v - self.assignment[xi]).scale(aij.recip());
        self.assignment[xi] = v;
        self.assignment[xj] = self.assignment[xj] + theta;
        let basics: Vec<usize> = self.rows.keys().copied().collect();
        for b in basics {
            if b != xi {
                if let Some(&c) = self.rows[&b].get(&xj) {
                    self.assignment[b] = self.assignment[b] + theta.scale(c);
                }
            }
        }
        self.pivot(xi, xj);
    }

    fn pivot(&mut self, xi: usize, xj: usize) {
        // xi is basic with row R: xi = sum_k a_k x_k  (xj among them).
        let row = self.rows.remove(&xi).expect("pivot on basic var");
        let aij = row[&xj];
        // Solve for xj: xj = (1/aij) xi - sum_{k != j} (a_k/aij) x_k
        let mut new_row: HashMap<usize, Rat> = HashMap::new();
        new_row.insert(xi, aij.recip());
        for (&k, &a) in &row {
            if k != xj {
                new_row.insert(k, -(a / aij));
            }
        }
        // Substitute into all other rows.
        let keys: Vec<usize> = self.rows.keys().copied().collect();
        for b in keys {
            let coeff = self.rows[&b].get(&xj).copied();
            if let Some(c) = coeff {
                let mut r = self.rows[&b].clone();
                r.remove(&xj);
                for (&k, &a) in &new_row {
                    let e = r.entry(k).or_insert(Rat::ZERO);
                    *e += c * a;
                }
                r.retain(|_, v| !v.is_zero());
                self.rows.insert(b, r);
            }
        }
        self.rows.insert(xj, new_row);
    }

    /// Runs the simplex algorithm, then branch-and-bound if integer variables
    /// have fractional values.
    pub fn check(&mut self) -> ArithOutcome {
        match self.check_rational() {
            ArithOutcome::Sat(_) => self.branch_and_bound(0),
            other => other,
        }
    }

    fn check_rational(&mut self) -> ArithOutcome {
        loop {
            let (xi, below) = match self.violated_basic() {
                None => return ArithOutcome::Sat(self.assignment.clone()),
                Some(v) => v,
            };
            let row: Vec<(usize, Rat)> = {
                let mut r: Vec<(usize, Rat)> =
                    self.rows[&xi].iter().map(|(&k, &v)| (k, v)).collect();
                r.sort_unstable_by_key(|&(k, _)| k);
                r
            };
            if below {
                let target = self.lower[xi].as_ref().unwrap().value;
                // Need to increase xi.
                let mut pivot_var = None;
                for &(xj, a) in &row {
                    let can = if a.is_positive() {
                        self.upper[xj]
                            .as_ref()
                            .is_none_or(|u| self.assignment[xj] < u.value)
                    } else {
                        self.lower[xj]
                            .as_ref()
                            .is_none_or(|l| self.assignment[xj] > l.value)
                    };
                    if can {
                        pivot_var = Some(xj);
                        break;
                    }
                }
                match pivot_var {
                    Some(xj) => self.pivot_and_update(xi, xj, target),
                    None => {
                        // Conflict: lower bound of xi plus the blocking bounds.
                        let mut tags = vec![self.lower[xi].as_ref().unwrap().tag];
                        for &(xj, a) in &row {
                            if a.is_positive() {
                                tags.push(self.upper[xj].as_ref().unwrap().tag);
                            } else {
                                tags.push(self.lower[xj].as_ref().unwrap().tag);
                            }
                        }
                        tags.retain(|&t| t != NO_TAG);
                        tags.sort_unstable();
                        tags.dedup();
                        return ArithOutcome::Conflict(tags);
                    }
                }
            } else {
                let target = self.upper[xi].as_ref().unwrap().value;
                // Need to decrease xi.
                let mut pivot_var = None;
                for &(xj, a) in &row {
                    let can = if a.is_positive() {
                        self.lower[xj]
                            .as_ref()
                            .is_none_or(|l| self.assignment[xj] > l.value)
                    } else {
                        self.upper[xj]
                            .as_ref()
                            .is_none_or(|u| self.assignment[xj] < u.value)
                    };
                    if can {
                        pivot_var = Some(xj);
                        break;
                    }
                }
                match pivot_var {
                    Some(xj) => self.pivot_and_update(xi, xj, target),
                    None => {
                        let mut tags = vec![self.upper[xi].as_ref().unwrap().tag];
                        for &(xj, a) in &row {
                            if a.is_positive() {
                                tags.push(self.lower[xj].as_ref().unwrap().tag);
                            } else {
                                tags.push(self.upper[xj].as_ref().unwrap().tag);
                            }
                        }
                        tags.retain(|&t| t != NO_TAG);
                        tags.sort_unstable();
                        tags.dedup();
                        return ArithOutcome::Conflict(tags);
                    }
                }
            }
        }
    }

    fn branch_and_bound(&mut self, depth: usize) -> ArithOutcome {
        const MAX_DEPTH: usize = 60;
        let assignment = match self.check_rational() {
            ArithOutcome::Sat(a) => a,
            other => return other,
        };
        // Find an integer variable with a fractional (or infinitesimal) value.
        let frac = (0..self.num_vars).find(|&v| {
            self.is_int[v] && (!assignment[v].delta.is_zero() || !assignment[v].real.is_integer())
        });
        let v = match frac {
            None => return ArithOutcome::Sat(assignment),
            Some(v) => v,
        };
        if std::env::var("IDS_SMT_DEBUG").is_ok() {
            eprintln!("BB depth={} var={} val={}", depth, v, assignment[v]);
        }
        if depth >= MAX_DEPTH {
            return ArithOutcome::Unknown;
        }
        let val = assignment[v];
        // The two branches x <= floor(val) and x >= floor(val) + 1. For values
        // with a negative delta at an integer point, floor of the real part
        // still gives the right split.
        let fl = if val.delta.is_negative() && val.real.is_integer() {
            val.real.floor() - 1
        } else {
            val.real.floor()
        };
        // Branch order heuristic: if the infinitesimal pushes the value
        // upwards (a strict lower bound is active), explore the "round up"
        // branch first — this avoids chasing unbounded descents when the
        // fractional value keeps shifting between variables.
        let up_first = val.delta.is_positive();
        let run_up = |this: &Simplex| -> ArithOutcome {
            let mut s = this.clone();
            match s.assert_lower(v, DeltaRat::from_rat(Rat::from_int(fl + 1)), NO_TAG) {
                Err(mut tags) => {
                    tags.retain(|&t| t != NO_TAG);
                    ArithOutcome::Conflict(tags)
                }
                Ok(()) => s.branch_and_bound(depth + 1),
            }
        };
        let run_down = |this: &Simplex| -> ArithOutcome {
            let mut s = this.clone();
            match s.assert_upper(v, DeltaRat::from_rat(Rat::from_int(fl)), NO_TAG) {
                Err(mut tags) => {
                    tags.retain(|&t| t != NO_TAG);
                    ArithOutcome::Conflict(tags)
                }
                Ok(()) => s.branch_and_bound(depth + 1),
            }
        };
        let first_out = if up_first {
            run_up(self)
        } else {
            run_down(self)
        };
        if let ArithOutcome::Sat(a) = first_out {
            return ArithOutcome::Sat(a);
        }
        let second_out = if up_first {
            run_down(self)
        } else {
            run_up(self)
        };
        let (left_out, right_out) = (first_out, second_out);
        match (left_out, right_out) {
            (ArithOutcome::Unknown, _) | (_, ArithOutcome::Unknown) => ArithOutcome::Unknown,
            (ArithOutcome::Sat(a), _) | (_, ArithOutcome::Sat(a)) => ArithOutcome::Sat(a),
            (ArithOutcome::Conflict(mut t1), ArithOutcome::Conflict(t2)) => {
                t1.extend(t2);
                t1.retain(|&t| t != NO_TAG);
                t1.sort_unstable();
                t1.dedup();
                ArithOutcome::Conflict(t1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(s: &mut Simplex, terms: &[(i128, usize)], rhs: i128, tag: usize) {
        // sum terms <= rhs  ==>  sum terms - rhs <= 0
        let mut e = LinExpr::constant(Rat::from_int(-rhs));
        for &(c, v) in terms {
            e.add_term(Rat::from_int(c), v);
        }
        s.add_constraint(&e, Rel::Le, tag).unwrap();
    }

    #[test]
    fn simple_feasible() {
        let mut s = Simplex::new();
        let x = s.new_var(false);
        let y = s.new_var(false);
        le(&mut s, &[(1, x), (1, y)], 10, 0);
        le(&mut s, &[(-1, x)], -2, 1); // x >= 2
        le(&mut s, &[(-1, y)], -3, 2); // y >= 3
        assert!(matches!(s.check(), ArithOutcome::Sat(_)));
    }

    #[test]
    fn simple_infeasible_with_core() {
        // The conflict between two direct bounds is detected either eagerly at
        // assertion time or by the check; either way the core is {0, 1}.
        let mut s = Simplex::new();
        let x = s.new_var(false);
        let mut e1 = LinExpr::constant(Rat::from_int(-1));
        e1.add_term(Rat::ONE, x);
        s.add_constraint(&e1, Rel::Le, 0).unwrap(); // x <= 1
        let mut e2 = LinExpr::constant(Rat::from_int(5));
        e2.add_term(-Rat::ONE, x);
        let tags = match s.add_constraint(&e2, Rel::Le, 1) {
            Err(tags) => tags,
            Ok(()) => match s.check() {
                ArithOutcome::Conflict(tags) => tags,
                other => panic!("expected conflict, got {:?}", other),
            },
        };
        let mut tags = tags;
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1]);
    }

    #[test]
    fn chain_infeasible() {
        // x <= y, y <= z, z <= x - 1 : infeasible.
        let mut s = Simplex::new();
        let x = s.new_var(false);
        let y = s.new_var(false);
        let z = s.new_var(false);
        le(&mut s, &[(1, x), (-1, y)], 0, 0);
        le(&mut s, &[(1, y), (-1, z)], 0, 1);
        le(&mut s, &[(1, z), (-1, x)], -1, 2);
        match s.check() {
            ArithOutcome::Conflict(tags) => {
                assert_eq!(tags, vec![0, 1, 2]);
            }
            other => panic!("expected conflict, got {:?}", other),
        }
    }

    #[test]
    fn strict_inequality() {
        // x < 1 and x > 0 is satisfiable over rationals.
        let mut s = Simplex::new();
        let x = s.new_var(false);
        let mut e1 = LinExpr::constant(Rat::from_int(-1));
        e1.add_term(Rat::ONE, x);
        s.add_constraint(&e1, Rel::Lt, 0).unwrap(); // x - 1 < 0
        let mut e2 = LinExpr::zero();
        e2.add_term(-Rat::ONE, x);
        s.add_constraint(&e2, Rel::Lt, 1).unwrap(); // -x < 0
        assert!(matches!(s.check(), ArithOutcome::Sat(_)));
    }

    #[test]
    fn strict_cycle_infeasible() {
        // x < y and y < x.
        let mut s = Simplex::new();
        let x = s.new_var(false);
        let y = s.new_var(false);
        let mut e1 = LinExpr::zero();
        e1.add_term(Rat::ONE, x);
        e1.add_term(-Rat::ONE, y);
        s.add_constraint(&e1, Rel::Lt, 0).unwrap();
        let mut e2 = LinExpr::zero();
        e2.add_term(Rat::ONE, y);
        e2.add_term(-Rat::ONE, x);
        s.add_constraint(&e2, Rel::Lt, 1).unwrap();
        assert!(matches!(s.check(), ArithOutcome::Conflict(_)));
    }

    #[test]
    fn integer_branching() {
        // 0 < x < 1 with x integer: infeasible; over rationals feasible.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let mut e1 = LinExpr::constant(Rat::from_int(-1));
        e1.add_term(Rat::ONE, x);
        s.add_constraint(&e1, Rel::Lt, 0).unwrap();
        let mut e2 = LinExpr::zero();
        e2.add_term(-Rat::ONE, x);
        s.add_constraint(&e2, Rel::Lt, 1).unwrap();
        assert!(matches!(s.check(), ArithOutcome::Conflict(_)));
    }

    #[test]
    fn integer_feasible() {
        // 2x + 3y = 12, x >= 1, y >= 1 has integer solution x=3,y=2.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let mut e = LinExpr::constant(Rat::from_int(-12));
        e.add_term(Rat::from_int(2), x);
        e.add_term(Rat::from_int(3), y);
        s.add_constraint(&e, Rel::Eq, 0).unwrap();
        le(&mut s, &[(-1, x)], -1, 1);
        le(&mut s, &[(-1, y)], -1, 2);
        match s.check() {
            ArithOutcome::Sat(a) => {
                assert!(a[x].real.is_integer() && a[x].delta.is_zero());
                assert!(a[y].real.is_integer() && a[y].delta.is_zero());
            }
            other => panic!("expected sat, got {:?}", other),
        }
    }

    #[test]
    fn equality_propagation_style() {
        // x = y + 1, y = z + 1, x = z : infeasible.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let z = s.new_var(true);
        let mut e1 = LinExpr::constant(Rat::from_int(-1));
        e1.add_term(Rat::ONE, x);
        e1.add_term(-Rat::ONE, y);
        s.add_constraint(&e1, Rel::Eq, 0).unwrap();
        let mut e2 = LinExpr::constant(Rat::from_int(-1));
        e2.add_term(Rat::ONE, y);
        e2.add_term(-Rat::ONE, z);
        s.add_constraint(&e2, Rel::Eq, 1).unwrap();
        let mut e3 = LinExpr::zero();
        e3.add_term(Rat::ONE, x);
        e3.add_term(-Rat::ONE, z);
        s.add_constraint(&e3, Rel::Eq, 2).unwrap();
        assert!(matches!(s.check(), ArithOutcome::Conflict(_)));
    }
}
