//! Linear arithmetic over rationals and integers: a general simplex solver in
//! the style of Dutertre–de Moura, using delta-rationals for strict
//! inequalities, plus branch-and-bound for integer variables.
//!
//! The solver is used in batch mode by the theory layer: all bounds derived
//! from the asserted arithmetic literals are loaded (each carrying a literal
//! *tag*), then [`Simplex::check`] either produces a satisfying assignment or
//! a conflict — a set of tags of jointly inconsistent bounds.

use std::collections::HashMap;

use crate::fxmap::FxHashMap;
use crate::rational::{DeltaRat, Rat};

/// A linear expression: a constant plus a sum of `coeff * variable` terms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinExpr {
    /// The constant offset.
    pub constant: Rat,
    /// Coefficients per arithmetic variable index (no zero entries).
    pub terms: HashMap<usize, Rat>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// The constant expression `c`.
    pub fn constant(c: Rat) -> LinExpr {
        LinExpr {
            constant: c,
            terms: HashMap::new(),
        }
    }

    /// The expression consisting of a single variable.
    pub fn variable(v: usize) -> LinExpr {
        let mut terms = HashMap::new();
        terms.insert(v, Rat::ONE);
        LinExpr {
            constant: Rat::ZERO,
            terms,
        }
    }

    /// Adds `k * v` to the expression.
    pub fn add_term(&mut self, k: Rat, v: usize) {
        let entry = self.terms.entry(v).or_insert(Rat::ZERO);
        *entry += k;
        if entry.is_zero() {
            self.terms.remove(&v);
        }
    }

    /// Adds another expression scaled by `k`.
    pub fn add_scaled(&mut self, k: Rat, other: &LinExpr) {
        self.constant += other.constant * k;
        for (&v, &c) in &other.terms {
            self.add_term(c * k, v);
        }
    }

    /// True if the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

/// The relation of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// `expr <= 0`
    Le,
    /// `expr < 0`
    Lt,
    /// `expr = 0`
    Eq,
    /// `expr != 0` — handled by the caller via case splitting; the simplex
    /// core rejects it.
    Neq,
}

/// Result of an arithmetic consistency check.
#[derive(Clone, Debug)]
pub enum ArithOutcome {
    /// Satisfiable; maps every arithmetic variable to its value.
    Sat(Vec<DeltaRat>),
    /// Unsatisfiable; tags of a jointly inconsistent subset of constraints.
    Conflict(Vec<usize>),
    /// Resource limit reached (only possible with integer branching).
    Unknown,
}

const NO_TAG: usize = usize::MAX;

/// How the simplex picks its pivots.
///
/// Verdicts (and the *existence* of a conflict) are identical under every
/// rule; only the pivot count — and which of several valid conflict
/// explanations is returned — may differ.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PivotRule {
    /// Bland's rule: smallest-index violated basic variable, first eligible
    /// entering variable. Never cycles, but blind to progress — the legacy
    /// behaviour and the default for a bare [`Simplex`].
    #[default]
    Bland,
    /// Largest-violation leaving variable + largest-coefficient (Dantzig
    /// style) entering variable for the first `bland_after` pivots of the
    /// instance, then permanent fallback to Bland's rule. The fallback bounds
    /// the heuristic phase, so termination is inherited from Bland.
    Hybrid {
        /// Pivot count after which the instance switches to Bland's rule.
        bland_after: u64,
    },
}

impl PivotRule {
    /// The default heuristic phase length of the tuned profile.
    pub const DEFAULT_BLAND_AFTER: u64 = 512;

    /// The tuned hybrid rule with the default fallback threshold.
    pub fn hybrid() -> PivotRule {
        PivotRule::Hybrid {
            bland_after: PivotRule::DEFAULT_BLAND_AFTER,
        }
    }
}

#[derive(Clone, Debug)]
struct Bound {
    value: DeltaRat,
    tag: usize,
}

/// The simplex solver.
///
/// Variables are dense indices `0..num_vars`; the caller declares which are
/// integer-sorted. Constraints are added with [`Simplex::add_constraint`] and
/// the final consistency check is [`Simplex::check`].
#[derive(Clone, Debug, Default)]
pub struct Simplex {
    num_vars: usize,
    is_int: Vec<bool>,
    // Tableau: basic variable index -> row (coeffs over nonbasic variables).
    rows: FxHashMap<usize, FxHashMap<usize, Rat>>,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    assignment: Vec<DeltaRat>,
    rule: PivotRule,
    /// Undo trail of bound tightenings: `(var, is_upper, previous bound)` per
    /// accepted tightening, in assertion order. [`Simplex::undo_to`] restores
    /// the recorded bounds in reverse, which is sound because assertions only
    /// ever *tighten*: restoring relaxes, so the current assignment (nonbasic
    /// variables at or within their bounds) stays valid and the tableau —
    /// equivalent under pivoting to the original defining equations — is
    /// untouched. This is what makes basis-preserving warm restarts possible:
    /// retracted rounds only roll back bound changes, never the basis.
    bound_trail: Vec<(usize, bool, Option<Bound>)>,
    /// Slack-variable reuse across warm-restart rounds, keyed by the sorted
    /// linear part of the defining expression (invariant under pivoting: the
    /// tableau always implies `s = linear part`, however the rows are
    /// currently arranged). `None` = disabled (the batch path, which drops
    /// the solver after one check, keeps its historical one-slack-per-call
    /// behaviour byte for byte).
    slack_of: Option<FxHashMap<Vec<(usize, Rat)>, usize>>,
    /// Pivot-count statistic.
    pub pivots: u64,
}

impl Simplex {
    /// Creates a solver with no variables, using Bland's pivot rule.
    pub fn new() -> Simplex {
        Simplex::default()
    }

    /// Creates a solver with an explicit pivot rule.
    pub fn with_rule(rule: PivotRule) -> Simplex {
        Simplex {
            rule,
            ..Simplex::default()
        }
    }

    /// True if a [`PivotRule::Hybrid`] instance has exhausted its heuristic
    /// phase and switched to Bland's rule.
    pub fn in_bland_fallback(&self) -> bool {
        match self.rule {
            PivotRule::Bland => false,
            PivotRule::Hybrid { bland_after } => self.pivots >= bland_after,
        }
    }

    /// Adds a variable; `is_int` marks it integer-sorted. Returns its index.
    pub fn new_var(&mut self, is_int: bool) -> usize {
        let v = self.num_vars;
        self.num_vars += 1;
        self.is_int.push(is_int);
        self.lower.push(None);
        self.upper.push(None);
        self.assignment.push(DeltaRat::ZERO);
        v
    }

    /// Number of variables (including internal slack variables).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Turns on slack-variable reuse: later constraints whose linear part
    /// matches an earlier one share its slack variable (and therefore combine
    /// their bounds on it) instead of allocating a fresh variable and row.
    /// Used by persistent theory sessions, where the same literal is asserted
    /// again after a retraction and must not grow the tableau each round.
    pub(crate) fn enable_slack_reuse(&mut self) {
        if self.slack_of.is_none() {
            self.slack_of = Some(FxHashMap::default());
        }
    }

    /// A restore point for [`Simplex::undo_to`]: the current length of the
    /// bound-undo trail.
    pub(crate) fn mark(&self) -> usize {
        self.bound_trail.len()
    }

    /// Restores every bound recorded after `mark`, in reverse order. The
    /// tableau, the assignment and any slack variables introduced since the
    /// mark are kept: a slack with no bounds can never participate in a
    /// conflict, and the assignment only becomes *more* feasible as bounds
    /// relax.
    pub(crate) fn undo_to(&mut self, mark: usize) {
        while self.bound_trail.len() > mark {
            let (x, is_upper, old) = self.bound_trail.pop().expect("trail above mark");
            if is_upper {
                self.upper[x] = old;
            } else {
                self.lower[x] = old;
            }
        }
    }

    /// Adds the constraint `expr rel 0` tagged with `tag`.
    /// Returns `Err(conflict)` on an immediately detected conflict.
    ///
    /// # Panics
    /// Panics if `rel` is [`Rel::Neq`] (the caller must case-split).
    pub fn add_constraint(
        &mut self,
        expr: &LinExpr,
        rel: Rel,
        tag: usize,
    ) -> Result<(), Vec<usize>> {
        if rel == Rel::Neq {
            panic!("Neq must be split by the caller")
        }
        if expr.is_constant() {
            let c = expr.constant;
            let ok = match rel {
                Rel::Le => c <= Rat::ZERO,
                Rel::Lt => c < Rat::ZERO,
                Rel::Eq => c.is_zero(),
                Rel::Neq => unreachable!(),
            };
            return if ok { Ok(()) } else { Err(vec![tag]) };
        }
        // Normalize to a bound on a single (possibly slack) variable:
        //   expr = constant + linear_part ;  linear_part rel -constant
        let var = if expr.terms.len() == 1 {
            let (&v, &c) = expr.terms.iter().next().unwrap();
            if c == Rat::ONE {
                Some((v, Rat::ONE))
            } else {
                Some((v, c))
            }
        } else {
            None
        };
        let (x, scale) = match var {
            Some((v, c)) => (v, c),
            None => {
                let key: Option<Vec<(usize, Rat)>> = self.slack_of.is_some().then(|| {
                    let mut k: Vec<(usize, Rat)> =
                        expr.terms.iter().map(|(&v, &c)| (v, c)).collect();
                    k.sort_unstable_by_key(|&(v, _)| v);
                    k
                });
                let reused = key
                    .as_ref()
                    .and_then(|k| self.slack_of.as_ref().and_then(|m| m.get(k)).copied());
                match reused {
                    Some(s) => (s, Rat::ONE),
                    None => {
                        // Introduce a slack variable s = linear part.
                        let s = self.new_var(false);
                        let mut row = FxHashMap::default();
                        for (&v, &c) in &expr.terms {
                            row.insert(v, c);
                        }
                        // Substitute any basic variables appearing in the new row.
                        let row = self.substitute_basics(row);
                        self.assignment[s] = self.row_value(&row);
                        self.rows.insert(s, row);
                        if let (Some(k), Some(m)) = (key, self.slack_of.as_mut()) {
                            m.insert(k, s);
                        }
                        (s, Rat::ONE)
                    }
                }
            }
        };
        // linear part = scale * x ; constraint: scale*x rel -constant
        let rhs = -expr.constant;
        let bound = rhs / scale;
        let flipped = scale.is_negative();
        match (rel, flipped) {
            (Rel::Eq, _) => {
                self.assert_upper(x, DeltaRat::from_rat(bound), tag)?;
                self.assert_lower(x, DeltaRat::from_rat(bound), tag)?;
            }
            (Rel::Le, false) => self.assert_upper(x, DeltaRat::from_rat(bound), tag)?,
            (Rel::Le, true) => self.assert_lower(x, DeltaRat::from_rat(bound), tag)?,
            (Rel::Lt, false) => self.assert_upper(x, DeltaRat::new(bound, -Rat::ONE), tag)?,
            (Rel::Lt, true) => self.assert_lower(x, DeltaRat::new(bound, Rat::ONE), tag)?,
            (Rel::Neq, _) => unreachable!(),
        }
        Ok(())
    }

    fn substitute_basics(&self, row: FxHashMap<usize, Rat>) -> FxHashMap<usize, Rat> {
        let mut out: FxHashMap<usize, Rat> = FxHashMap::default();
        for (v, c) in row {
            if let Some(basic_row) = self.rows.get(&v) {
                for (&w, &cw) in basic_row {
                    let e = out.entry(w).or_insert(Rat::ZERO);
                    *e += c * cw;
                }
            } else {
                let e = out.entry(v).or_insert(Rat::ZERO);
                *e += c;
            }
        }
        out.retain(|_, c| !c.is_zero());
        out
    }

    fn row_value(&self, row: &FxHashMap<usize, Rat>) -> DeltaRat {
        let mut val = DeltaRat::ZERO;
        for (&v, &c) in row {
            val = val + self.assignment[v].scale(c);
        }
        val
    }

    fn assert_upper(&mut self, x: usize, c: DeltaRat, tag: usize) -> Result<(), Vec<usize>> {
        if let Some(l) = &self.lower[x] {
            if c < l.value {
                return Err(vec![tag, l.tag]);
            }
        }
        let tighter = match &self.upper[x] {
            Some(u) => c < u.value,
            None => true,
        };
        if tighter {
            self.bound_trail.push((x, true, self.upper[x].take()));
            self.upper[x] = Some(Bound { value: c, tag });
            if !self.rows.contains_key(&x) && self.assignment[x] > c {
                self.update_nonbasic(x, c);
            }
        }
        Ok(())
    }

    fn assert_lower(&mut self, x: usize, c: DeltaRat, tag: usize) -> Result<(), Vec<usize>> {
        if let Some(u) = &self.upper[x] {
            if c > u.value {
                return Err(vec![tag, u.tag]);
            }
        }
        let tighter = match &self.lower[x] {
            Some(l) => c > l.value,
            None => true,
        };
        if tighter {
            self.bound_trail.push((x, false, self.lower[x].take()));
            self.lower[x] = Some(Bound { value: c, tag });
            if !self.rows.contains_key(&x) && self.assignment[x] < c {
                self.update_nonbasic(x, c);
            }
        }
        Ok(())
    }

    fn update_nonbasic(&mut self, x: usize, v: DeltaRat) {
        let delta = v - self.assignment[x];
        self.assignment[x] = v;
        let basics: Vec<usize> = self.rows.keys().copied().collect();
        for b in basics {
            if let Some(&c) = self.rows[&b].get(&x) {
                self.assignment[b] = self.assignment[b] + delta.scale(c);
            }
        }
    }

    /// Picks the violated basic variable to fix next: smallest index under
    /// Bland's rule, largest violation (ties to the smallest index) in the
    /// hybrid heuristic phase. Returns `(var, is_below_lower)`.
    /// The heuristic scan needs a *ranking*, not exact arithmetic: violation
    /// magnitudes are compared as lossy `f64` approximations (exact
    /// delta-rational subtraction would gcd-normalize on every candidate),
    /// with the smallest index breaking ties so the choice stays
    /// deterministic regardless of hash-map iteration order. A wrong ranking
    /// can only cost extra pivots, never correctness.
    fn violated_basic(&self, heuristic: bool) -> Option<(usize, bool)> {
        if !heuristic {
            // Bland: smallest violated index (the index order is what
            // guarantees cycle-freedom, so keep the sort).
            let mut basics: Vec<usize> = self.rows.keys().copied().collect();
            basics.sort_unstable();
            for b in basics {
                if let Some(l) = &self.lower[b] {
                    if self.assignment[b] < l.value {
                        return Some((b, true));
                    }
                }
                if let Some(u) = &self.upper[b] {
                    if self.assignment[b] > u.value {
                        return Some((b, false));
                    }
                }
            }
            return None;
        }
        let approx = |v: DeltaRat| -> f64 { v.real.to_f64() + 1e-9 * v.delta.to_f64() };
        let mut best: Option<(usize, bool, f64)> = None;
        for &b in self.rows.keys() {
            let violation = if let Some(l) = self.lower[b]
                .as_ref()
                .filter(|l| self.assignment[b] < l.value)
            {
                Some((true, approx(l.value) - approx(self.assignment[b])))
            } else {
                self.upper[b]
                    .as_ref()
                    .filter(|u| self.assignment[b] > u.value)
                    .map(|u| (false, approx(self.assignment[b]) - approx(u.value)))
            };
            let Some((below, amount)) = violation else {
                continue;
            };
            let better = match best {
                None => true,
                Some((bb, _, ba)) => amount > ba || (amount == ba && b < bb),
            };
            if better {
                best = Some((b, below, amount));
            }
        }
        best.map(|(b, below, _)| (b, below))
    }

    fn pivot_and_update(&mut self, xi: usize, xj: usize, v: DeltaRat) {
        self.pivots += 1;
        let aij = self.rows[&xi][&xj];
        let theta = (v - self.assignment[xi]).scale(aij.recip());
        self.assignment[xi] = v;
        self.assignment[xj] = self.assignment[xj] + theta;
        let basics: Vec<usize> = self.rows.keys().copied().collect();
        for b in basics {
            if b != xi {
                if let Some(&c) = self.rows[&b].get(&xj) {
                    self.assignment[b] = self.assignment[b] + theta.scale(c);
                }
            }
        }
        self.pivot(xi, xj);
    }

    fn pivot(&mut self, xi: usize, xj: usize) {
        // xi is basic with row R: xi = sum_k a_k x_k  (xj among them).
        let row = self.rows.remove(&xi).expect("pivot on basic var");
        let aij = row[&xj];
        // Solve for xj: xj = (1/aij) xi - sum_{k != j} (a_k/aij) x_k
        let mut new_row: FxHashMap<usize, Rat> = FxHashMap::default();
        new_row.insert(xi, aij.recip());
        for (&k, &a) in &row {
            if k != xj {
                new_row.insert(k, -(a / aij));
            }
        }
        // Substitute into all other rows.
        let keys: Vec<usize> = self.rows.keys().copied().collect();
        for b in keys {
            let coeff = self.rows[&b].get(&xj).copied();
            if let Some(c) = coeff {
                let mut r = self.rows[&b].clone();
                r.remove(&xj);
                for (&k, &a) in &new_row {
                    let e = r.entry(k).or_insert(Rat::ZERO);
                    *e += c * a;
                }
                r.retain(|_, v| !v.is_zero());
                self.rows.insert(b, r);
            }
        }
        self.rows.insert(xj, new_row);
    }

    /// Runs the simplex algorithm, then branch-and-bound if integer variables
    /// have fractional values.
    pub fn check(&mut self) -> ArithOutcome {
        match self.check_rational() {
            ArithOutcome::Sat(_) => self.branch_and_bound(0),
            other => other,
        }
    }

    fn check_rational(&mut self) -> ArithOutcome {
        let heartbeat_every = ids_obs::heartbeat_interval();
        loop {
            // Liveness for pivot blow-ups: the conflict-based cadence is
            // scaled up — pivots are much cheaper than SAT conflicts.
            if heartbeat_every != 0
                && self.pivots != 0
                && self.pivots.is_multiple_of(heartbeat_every * 4)
            {
                ids_obs::emit_heartbeat(ids_obs::Heartbeat {
                    pivots: self.pivots,
                    ..ids_obs::Heartbeat::default()
                });
            }
            // Heuristic pivoting runs only while the hybrid rule's budget
            // lasts; afterwards every choice follows Bland's rule, which
            // cannot cycle, so the loop terminates under either rule.
            let heuristic = match self.rule {
                PivotRule::Bland => false,
                PivotRule::Hybrid { bland_after } => self.pivots < bland_after,
            };
            let (xi, below) = match self.violated_basic(heuristic) {
                None => return ArithOutcome::Sat(self.assignment.clone()),
                Some(v) => v,
            };
            let row: Vec<(usize, Rat)> = {
                let mut r: Vec<(usize, Rat)> =
                    self.rows[&xi].iter().map(|(&k, &v)| (k, v)).collect();
                r.sort_unstable_by_key(|&(k, _)| k);
                r
            };
            let target = if below {
                self.lower[xi].as_ref().unwrap().value
            } else {
                self.upper[xi].as_ref().unwrap().value
            };
            // `xi` must move towards `target`; a nonbasic `xj` with
            // coefficient `a` can absorb that move iff it has slack in the
            // required direction.
            let needs_increase = |a: Rat| -> bool {
                if below {
                    a.is_positive()
                } else {
                    a.is_negative()
                }
            };
            let mut pivot_var: Option<(usize, Rat)> = None;
            for &(xj, a) in &row {
                let can = if needs_increase(a) {
                    self.upper[xj]
                        .as_ref()
                        .is_none_or(|u| self.assignment[xj] < u.value)
                } else {
                    self.lower[xj]
                        .as_ref()
                        .is_none_or(|l| self.assignment[xj] > l.value)
                };
                if !can {
                    continue;
                }
                if !heuristic {
                    // Bland: first eligible index (the row is index-sorted).
                    pivot_var = Some((xj, a));
                    break;
                }
                // Dantzig style: largest |coefficient| moves the violated
                // variable furthest per unit of xj (ties to smallest index).
                if pivot_var.is_none_or(|(_, best)| a.abs() > best.abs()) {
                    pivot_var = Some((xj, a));
                }
            }
            match pivot_var {
                Some((xj, _)) => self.pivot_and_update(xi, xj, target),
                None => {
                    // Conflict: the violated bound of xi plus, per column,
                    // the bound that blocks the required movement.
                    let own = if below {
                        self.lower[xi].as_ref().unwrap().tag
                    } else {
                        self.upper[xi].as_ref().unwrap().tag
                    };
                    let mut tags = vec![own];
                    for &(xj, a) in &row {
                        if needs_increase(a) {
                            tags.push(self.upper[xj].as_ref().unwrap().tag);
                        } else {
                            tags.push(self.lower[xj].as_ref().unwrap().tag);
                        }
                    }
                    tags.retain(|&t| t != NO_TAG);
                    tags.sort_unstable();
                    tags.dedup();
                    return ArithOutcome::Conflict(tags);
                }
            }
        }
    }

    fn branch_and_bound(&mut self, depth: usize) -> ArithOutcome {
        const MAX_DEPTH: usize = 60;
        let assignment = match self.check_rational() {
            ArithOutcome::Sat(a) => a,
            other => return other,
        };
        // Find an integer variable with a fractional (or infinitesimal) value.
        let frac = (0..self.num_vars).find(|&v| {
            self.is_int[v] && (!assignment[v].delta.is_zero() || !assignment[v].real.is_integer())
        });
        let v = match frac {
            None => return ArithOutcome::Sat(assignment),
            Some(v) => v,
        };
        if std::env::var("IDS_SMT_DEBUG").is_ok() {
            eprintln!("BB depth={} var={} val={}", depth, v, assignment[v]);
        }
        if depth >= MAX_DEPTH {
            return ArithOutcome::Unknown;
        }
        let val = assignment[v];
        // The two branches x <= floor(val) and x >= floor(val) + 1. For values
        // with a negative delta at an integer point, floor of the real part
        // still gives the right split.
        let fl = if val.delta.is_negative() && val.real.is_integer() {
            val.real.floor() - 1
        } else {
            val.real.floor()
        };
        // Branch order heuristic: if the infinitesimal pushes the value
        // upwards (a strict lower bound is active), explore the "round up"
        // branch first — this avoids chasing unbounded descents when the
        // fractional value keeps shifting between variables.
        let up_first = val.delta.is_positive();
        // Branches run on a clone; the clone's pivot count (which started at
        // the parent's) is folded back so `pivots` reports the whole tree.
        let run_branch = |this: &mut Simplex, up: bool| -> ArithOutcome {
            let mut s = this.clone();
            let asserted = if up {
                s.assert_lower(v, DeltaRat::from_rat(Rat::from_int(fl + 1)), NO_TAG)
            } else {
                s.assert_upper(v, DeltaRat::from_rat(Rat::from_int(fl)), NO_TAG)
            };
            let out = match asserted {
                Err(mut tags) => {
                    tags.retain(|&t| t != NO_TAG);
                    ArithOutcome::Conflict(tags)
                }
                Ok(()) => s.branch_and_bound(depth + 1),
            };
            this.pivots = s.pivots;
            out
        };
        let first_out = run_branch(self, up_first);
        if let ArithOutcome::Sat(a) = first_out {
            return ArithOutcome::Sat(a);
        }
        let second_out = run_branch(self, !up_first);
        let (left_out, right_out) = (first_out, second_out);
        match (left_out, right_out) {
            (ArithOutcome::Unknown, _) | (_, ArithOutcome::Unknown) => ArithOutcome::Unknown,
            (ArithOutcome::Sat(a), _) | (_, ArithOutcome::Sat(a)) => ArithOutcome::Sat(a),
            (ArithOutcome::Conflict(mut t1), ArithOutcome::Conflict(t2)) => {
                t1.extend(t2);
                t1.retain(|&t| t != NO_TAG);
                t1.sort_unstable();
                t1.dedup();
                ArithOutcome::Conflict(t1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(s: &mut Simplex, terms: &[(i128, usize)], rhs: i128, tag: usize) {
        // sum terms <= rhs  ==>  sum terms - rhs <= 0
        let mut e = LinExpr::constant(Rat::from_int(-rhs));
        for &(c, v) in terms {
            e.add_term(Rat::from_int(c), v);
        }
        s.add_constraint(&e, Rel::Le, tag).unwrap();
    }

    #[test]
    fn simple_feasible() {
        let mut s = Simplex::new();
        let x = s.new_var(false);
        let y = s.new_var(false);
        le(&mut s, &[(1, x), (1, y)], 10, 0);
        le(&mut s, &[(-1, x)], -2, 1); // x >= 2
        le(&mut s, &[(-1, y)], -3, 2); // y >= 3
        assert!(matches!(s.check(), ArithOutcome::Sat(_)));
    }

    #[test]
    fn simple_infeasible_with_core() {
        // The conflict between two direct bounds is detected either eagerly at
        // assertion time or by the check; either way the core is {0, 1}.
        let mut s = Simplex::new();
        let x = s.new_var(false);
        let mut e1 = LinExpr::constant(Rat::from_int(-1));
        e1.add_term(Rat::ONE, x);
        s.add_constraint(&e1, Rel::Le, 0).unwrap(); // x <= 1
        let mut e2 = LinExpr::constant(Rat::from_int(5));
        e2.add_term(-Rat::ONE, x);
        let tags = match s.add_constraint(&e2, Rel::Le, 1) {
            Err(tags) => tags,
            Ok(()) => match s.check() {
                ArithOutcome::Conflict(tags) => tags,
                other => panic!("expected conflict, got {:?}", other),
            },
        };
        let mut tags = tags;
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1]);
    }

    #[test]
    fn chain_infeasible() {
        // x <= y, y <= z, z <= x - 1 : infeasible.
        let mut s = Simplex::new();
        let x = s.new_var(false);
        let y = s.new_var(false);
        let z = s.new_var(false);
        le(&mut s, &[(1, x), (-1, y)], 0, 0);
        le(&mut s, &[(1, y), (-1, z)], 0, 1);
        le(&mut s, &[(1, z), (-1, x)], -1, 2);
        match s.check() {
            ArithOutcome::Conflict(tags) => {
                assert_eq!(tags, vec![0, 1, 2]);
            }
            other => panic!("expected conflict, got {:?}", other),
        }
    }

    #[test]
    fn strict_inequality() {
        // x < 1 and x > 0 is satisfiable over rationals.
        let mut s = Simplex::new();
        let x = s.new_var(false);
        let mut e1 = LinExpr::constant(Rat::from_int(-1));
        e1.add_term(Rat::ONE, x);
        s.add_constraint(&e1, Rel::Lt, 0).unwrap(); // x - 1 < 0
        let mut e2 = LinExpr::zero();
        e2.add_term(-Rat::ONE, x);
        s.add_constraint(&e2, Rel::Lt, 1).unwrap(); // -x < 0
        assert!(matches!(s.check(), ArithOutcome::Sat(_)));
    }

    #[test]
    fn strict_cycle_infeasible() {
        // x < y and y < x.
        let mut s = Simplex::new();
        let x = s.new_var(false);
        let y = s.new_var(false);
        let mut e1 = LinExpr::zero();
        e1.add_term(Rat::ONE, x);
        e1.add_term(-Rat::ONE, y);
        s.add_constraint(&e1, Rel::Lt, 0).unwrap();
        let mut e2 = LinExpr::zero();
        e2.add_term(Rat::ONE, y);
        e2.add_term(-Rat::ONE, x);
        s.add_constraint(&e2, Rel::Lt, 1).unwrap();
        assert!(matches!(s.check(), ArithOutcome::Conflict(_)));
    }

    #[test]
    fn integer_branching() {
        // 0 < x < 1 with x integer: infeasible; over rationals feasible.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let mut e1 = LinExpr::constant(Rat::from_int(-1));
        e1.add_term(Rat::ONE, x);
        s.add_constraint(&e1, Rel::Lt, 0).unwrap();
        let mut e2 = LinExpr::zero();
        e2.add_term(-Rat::ONE, x);
        s.add_constraint(&e2, Rel::Lt, 1).unwrap();
        assert!(matches!(s.check(), ArithOutcome::Conflict(_)));
    }

    #[test]
    fn integer_feasible() {
        // 2x + 3y = 12, x >= 1, y >= 1 has integer solution x=3,y=2.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let mut e = LinExpr::constant(Rat::from_int(-12));
        e.add_term(Rat::from_int(2), x);
        e.add_term(Rat::from_int(3), y);
        s.add_constraint(&e, Rel::Eq, 0).unwrap();
        le(&mut s, &[(-1, x)], -1, 1);
        le(&mut s, &[(-1, y)], -1, 2);
        match s.check() {
            ArithOutcome::Sat(a) => {
                assert!(a[x].real.is_integer() && a[x].delta.is_zero());
                assert!(a[y].real.is_integer() && a[y].delta.is_zero());
            }
            other => panic!("expected sat, got {:?}", other),
        }
    }

    #[test]
    fn equality_propagation_style() {
        // x = y + 1, y = z + 1, x = z : infeasible.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let z = s.new_var(true);
        let mut e1 = LinExpr::constant(Rat::from_int(-1));
        e1.add_term(Rat::ONE, x);
        e1.add_term(-Rat::ONE, y);
        s.add_constraint(&e1, Rel::Eq, 0).unwrap();
        let mut e2 = LinExpr::constant(Rat::from_int(-1));
        e2.add_term(Rat::ONE, y);
        e2.add_term(-Rat::ONE, z);
        s.add_constraint(&e2, Rel::Eq, 1).unwrap();
        let mut e3 = LinExpr::zero();
        e3.add_term(Rat::ONE, x);
        e3.add_term(-Rat::ONE, z);
        s.add_constraint(&e3, Rel::Eq, 2).unwrap();
        assert!(matches!(s.check(), ArithOutcome::Conflict(_)));
    }
}
