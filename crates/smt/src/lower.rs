//! Lowering of set/array structure to EUF + arithmetic by finite
//! instantiation.
//!
//! The FWYB verification conditions use sets and maps only in ways that admit
//! a *local* finite instantiation: every universal fact hidden inside a set or
//! array operation (the meaning of `union`, read-over-write for `store`,
//! pointwise frame updates, extensionality, subset) only ever needs to be
//! known at the ground index/element terms occurring in the query, plus one
//! fresh Skolem witness per (dis)equality or subset atom between containers.
//! After this pass the formula mentions only Boolean structure, equalities,
//! linear arithmetic and uninterpreted applications (`Select`, `Member`, user
//! functions), which is exactly what [`crate::theory`] decides.
//!
//! The pass also:
//! * eliminates non-Boolean `ite` terms by introducing defined constants,
//! * expands `distinct` into pairwise disequalities, and
//! * adds trichotomy lemmas `a = b ∨ a < b ∨ b < a` for numeric equality
//!   atoms so that negated numeric equalities are visible to the simplex.

use std::collections::{HashMap, HashSet};

use crate::term::{Op, Sort, TermId, TermManager};

/// Lowers the conjunction of `roots`; returns the new conjunction of roots
/// (original assertions rewritten, plus instantiated axioms).
pub fn lower(tm: &mut TermManager, roots: &[TermId]) -> Vec<TermId> {
    let mut side: Vec<TermId> = Vec::new();
    let mut cache: HashMap<TermId, TermId> = HashMap::new();
    let mut rewritten: Vec<TermId> = roots
        .iter()
        .map(|&r| rewrite(tm, r, &mut cache, &mut side))
        .collect();
    rewritten.append(&mut side);

    let axioms = instantiate(tm, &rewritten);
    rewritten.extend(axioms);

    let lemmas = trichotomy(tm, &rewritten);
    rewritten.extend(lemmas);
    rewritten
}

/// Rewrites away non-Boolean `ite` and `distinct`.
fn rewrite(
    tm: &mut TermManager,
    t: TermId,
    cache: &mut HashMap<TermId, TermId>,
    side: &mut Vec<TermId>,
) -> TermId {
    if let Some(&r) = cache.get(&t) {
        return r;
    }
    let term = tm.term(t).clone();
    let args: Vec<TermId> = term
        .args
        .iter()
        .map(|&a| rewrite(tm, a, cache, side))
        .collect();
    let result = match &term.op {
        Op::Ite if term.sort != Sort::Bool => {
            let v = tm.fresh_var("ite", term.sort.clone());
            let (c, th, el) = (args[0], args[1], args[2]);
            let eq_t = tm.eq(v, th);
            let eq_e = tm.eq(v, el);
            let pos = tm.implies(c, eq_t);
            let nc = tm.not(c);
            let neg = tm.implies(nc, eq_e);
            side.push(pos);
            side.push(neg);
            v
        }
        Op::Distinct => {
            let mut conj = Vec::new();
            for i in 0..args.len() {
                for j in (i + 1)..args.len() {
                    let ne = tm.neq(args[i], args[j]);
                    conj.push(ne);
                }
            }
            tm.and(conj)
        }
        _ => {
            if args == term.args {
                t
            } else {
                rebuild(tm, &term.op, args)
            }
        }
    };
    cache.insert(t, result);
    result
}

/// Rebuilds a term with new arguments, going through the smart constructors so
/// that folding/normalization stays consistent.
fn rebuild(tm: &mut TermManager, op: &Op, args: Vec<TermId>) -> TermId {
    match op {
        Op::Not => tm.not(args[0]),
        Op::And => tm.and(args),
        Op::Or => tm.or(args),
        Op::Implies => tm.implies(args[0], args[1]),
        Op::Iff => tm.iff(args[0], args[1]),
        Op::Ite => tm.ite(args[0], args[1], args[2]),
        Op::Eq => tm.eq(args[0], args[1]),
        Op::Add => tm.add_many(args),
        Op::Sub => tm.sub(args[0], args[1]),
        Op::Neg => tm.neg(args[0]),
        Op::MulConst(k) => tm.mul_const(*k, args[0]),
        Op::Le => tm.le(args[0], args[1]),
        Op::Lt => tm.lt(args[0], args[1]),
        Op::Select => tm.select(args[0], args[1]),
        Op::Store => tm.store(args[0], args[1], args[2]),
        Op::MapIte => tm.map_ite(args[0], args[1], args[2]),
        Op::Singleton => tm.singleton(args[0]),
        Op::Union => tm.union(args[0], args[1]),
        Op::Inter => tm.inter(args[0], args[1]),
        Op::Diff => tm.diff(args[0], args[1]),
        Op::Member => tm.member(args[0], args[1]),
        Op::Subset => tm.subset(args[0], args[1]),
        Op::Forall(bound) => tm.forall(bound.clone(), args[0]),
        _ => {
            let sort = infer_sort(tm, op, &args);
            tm.mk(op.clone(), args, sort)
        }
    }
}

fn infer_sort(tm: &TermManager, op: &Op, args: &[TermId]) -> Sort {
    match op {
        Op::App(_) => {
            // Application result sorts cannot be inferred from arguments; look
            // the original term up — rebuild is only called when an identical
            // op already exists, so find any term with this op.
            tm.iter()
                .find(|(_, t)| &t.op == op)
                .map(|(_, t)| t.sort.clone())
                .unwrap_or(Sort::Bool)
        }
        Op::Var(_) | Op::IntLit(_) | Op::RealLit(_) | Op::EmptySet(_) => tm
            .iter()
            .find(|(_, t)| &t.op == op)
            .map(|(_, t)| t.sort.clone())
            .unwrap_or(Sort::Bool),
        _ => args
            .first()
            .map(|&a| tm.sort(a).clone())
            .unwrap_or(Sort::Bool),
    }
}

/// Per-sort pools of relevant index/element terms.
#[derive(Default)]
struct Pools {
    by_sort: HashMap<Sort, Vec<TermId>>,
}

impl Pools {
    fn add(&mut self, sort: &Sort, t: TermId) {
        let v = self.by_sort.entry(sort.clone()).or_default();
        if !v.contains(&t) {
            v.push(t);
        }
    }

    fn get(&self, sort: &Sort) -> &[TermId] {
        self.by_sort.get(sort).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

fn elem_sort_of_container(sort: &Sort) -> Option<Sort> {
    match sort {
        Sort::Set(e) => Some((**e).clone()),
        Sort::Array(i, _) => Some((**i).clone()),
        _ => None,
    }
}

/// Instantiates the ground axioms of the set/array theory over the relevant
/// index/element terms.
fn instantiate(tm: &mut TermManager, roots: &[TermId]) -> Vec<TermId> {
    let subterms = tm.subterms(roots);

    // 1. Gather the relevant index/element pool per element sort, and the
    //    terms we need to axiomatise.
    let mut pools = Pools::default();
    let mut stores: Vec<TermId> = Vec::new();
    let mut map_ites: Vec<TermId> = Vec::new();
    let mut compound_sets: Vec<TermId> = Vec::new();
    let mut subset_atoms: Vec<TermId> = Vec::new();
    let mut container_eq_atoms: Vec<TermId> = Vec::new();

    for &t in &subterms {
        let term = tm.term(t).clone();
        match &term.op {
            Op::Member => {
                let elem = term.args[0];
                let sort = tm.sort(elem).clone();
                pools.add(&sort, elem);
            }
            Op::Singleton => {
                let elem = term.args[0];
                let sort = tm.sort(elem).clone();
                pools.add(&sort, elem);
                compound_sets.push(t);
            }
            Op::Union | Op::Inter | Op::Diff | Op::EmptySet(_) => {
                compound_sets.push(t);
            }
            Op::Select => {
                let idx = term.args[1];
                let sort = tm.sort(idx).clone();
                pools.add(&sort, idx);
            }
            Op::Store => {
                let idx = term.args[1];
                let sort = tm.sort(idx).clone();
                pools.add(&sort, idx);
                stores.push(t);
            }
            Op::MapIte => {
                map_ites.push(t);
            }
            Op::Subset => {
                subset_atoms.push(t);
            }
            Op::Eq if tm.sort(term.args[0]).is_container() => {
                container_eq_atoms.push(t);
            }
            _ => {}
        }
    }

    // 2. Create Skolem witnesses for subset atoms and container equality
    //    atoms, adding them to the pools *before* instantiation.
    let mut subset_witness: HashMap<TermId, TermId> = HashMap::new();
    for &a in &subset_atoms {
        let s = tm.term(a).args[0];
        if let Some(elem_sort) = elem_sort_of_container(&tm.sort(s).clone()) {
            let w = tm.fresh_var("sub_w", elem_sort.clone());
            pools.add(&elem_sort, w);
            subset_witness.insert(a, w);
        }
    }
    let mut eq_witness: HashMap<TermId, TermId> = HashMap::new();
    for &a in &container_eq_atoms {
        let s = tm.term(a).args[0];
        if let Some(elem_sort) = elem_sort_of_container(&tm.sort(s).clone()) {
            let w = tm.fresh_var("ext_w", elem_sort.clone());
            pools.add(&elem_sort, w);
            eq_witness.insert(a, w);
        }
    }

    let mut axioms: Vec<TermId> = Vec::new();
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut push = |tm: &mut TermManager, ax: TermId, axioms: &mut Vec<TermId>| {
        if tm.term(ax).op != Op::True && seen.insert(ax) {
            axioms.push(ax);
        }
    };

    // 3. Membership axioms for compound set terms, at every pooled element.
    for &s in &compound_sets {
        let term = tm.term(s).clone();
        let elem_sort = match elem_sort_of_container(&term.sort) {
            Some(e) => e,
            None => continue,
        };
        for &e in pools.get(&elem_sort).to_vec().iter() {
            let mem = tm.member(e, s);
            let def = match &term.op {
                Op::EmptySet(_) => {
                    let f = tm.fls();
                    tm.iff(mem, f)
                }
                Op::Singleton => {
                    let eq = tm.eq(e, term.args[0]);
                    tm.iff(mem, eq)
                }
                Op::Union => {
                    let m1 = tm.member(e, term.args[0]);
                    let m2 = tm.member(e, term.args[1]);
                    let d = tm.or2(m1, m2);
                    tm.iff(mem, d)
                }
                Op::Inter => {
                    let m1 = tm.member(e, term.args[0]);
                    let m2 = tm.member(e, term.args[1]);
                    let c = tm.and2(m1, m2);
                    tm.iff(mem, c)
                }
                Op::Diff => {
                    let m1 = tm.member(e, term.args[0]);
                    let m2 = tm.member(e, term.args[1]);
                    let nm2 = tm.not(m2);
                    let c = tm.and2(m1, nm2);
                    tm.iff(mem, c)
                }
                _ => unreachable!(),
            };
            push(tm, def, &mut axioms);
        }
    }

    // 4. Read-over-write axioms for stores, at every pooled index.
    for &st in &stores {
        let term = tm.term(st).clone();
        let (base, idx, val) = (term.args[0], term.args[1], term.args[2]);
        let idx_sort = tm.sort(idx).clone();
        for &j in pools.get(&idx_sort).to_vec().iter() {
            let sel = tm.select(st, j);
            let eq_idx = tm.eq(j, idx);
            let sel_val = tm.eq(sel, val);
            let hit = tm.implies(eq_idx, sel_val);
            let sel_base = tm.select(base, j);
            let sel_pass = tm.eq(sel, sel_base);
            let ne = tm.not(eq_idx);
            let miss = tm.implies(ne, sel_pass);
            push(tm, hit, &mut axioms);
            push(tm, miss, &mut axioms);
        }
    }

    // 5. Pointwise frame-update axioms for MapIte, at every pooled index.
    for &mi in &map_ites {
        let term = tm.term(mi).clone();
        let (modset, m_new, m_old) = (term.args[0], term.args[1], term.args[2]);
        let idx_sort = match elem_sort_of_container(&term.sort) {
            Some(s) => s,
            None => continue,
        };
        for &j in pools.get(&idx_sort).to_vec().iter() {
            let sel = tm.select(mi, j);
            let in_mod = tm.member(j, modset);
            let sel_new = tm.select(m_new, j);
            let sel_old = tm.select(m_old, j);
            let eq_new = tm.eq(sel, sel_new);
            let eq_old = tm.eq(sel, sel_old);
            let hit = tm.implies(in_mod, eq_new);
            let nm = tm.not(in_mod);
            let miss = tm.implies(nm, eq_old);
            push(tm, hit, &mut axioms);
            push(tm, miss, &mut axioms);
        }
    }

    // 6. Subset atoms: positive side (pointwise, guarded), negative side
    //    (Skolem witness).
    for &a in &subset_atoms {
        let term = tm.term(a).clone();
        let (s, t) = (term.args[0], term.args[1]);
        let elem_sort = match elem_sort_of_container(&tm.sort(s).clone()) {
            Some(e) => e,
            None => continue,
        };
        for &e in pools.get(&elem_sort).to_vec().iter() {
            let ms = tm.member(e, s);
            let mt = tm.member(e, t);
            let imp = tm.implies(ms, mt);
            let ax = tm.implies(a, imp);
            push(tm, ax, &mut axioms);
        }
        if let Some(&w) = subset_witness.get(&a) {
            let ms = tm.member(w, s);
            let mt = tm.member(w, t);
            let nmt = tm.not(mt);
            let both = tm.and2(ms, nmt);
            let na = tm.not(a);
            let ax = tm.implies(na, both);
            push(tm, ax, &mut axioms);
        }
    }

    // 7. Container equality atoms: guarded pointwise congruence plus
    //    extensionality witness for the negative side.
    for &a in &container_eq_atoms {
        let term = tm.term(a).clone();
        let (s, t) = (term.args[0], term.args[1]);
        let sort = tm.sort(s).clone();
        let elem_sort = match elem_sort_of_container(&sort) {
            Some(e) => e,
            None => continue,
        };
        let is_set = matches!(sort, Sort::Set(_));
        for &e in pools.get(&elem_sort).to_vec().iter() {
            let (vs, vt) = if is_set {
                (tm.member(e, s), tm.member(e, t))
            } else {
                (tm.select(s, e), tm.select(t, e))
            };
            let eq = tm.eq(vs, vt);
            let ax = tm.implies(a, eq);
            push(tm, ax, &mut axioms);
        }
        if let Some(&w) = eq_witness.get(&a) {
            let (vs, vt) = if is_set {
                (tm.member(w, s), tm.member(w, t))
            } else {
                (tm.select(s, w), tm.select(t, w))
            };
            let ne = tm.neq(vs, vt);
            let na = tm.not(a);
            let ax = tm.implies(na, ne);
            push(tm, ax, &mut axioms);
        }
    }

    // The axioms may themselves contain new compound structure only in the
    // shape of `member`/`select` over existing terms, so one round suffices.
    axioms
}

/// Adds `a = b ∨ a < b ∨ b < a` for every numeric equality atom.
fn trichotomy(tm: &mut TermManager, roots: &[TermId]) -> Vec<TermId> {
    let subterms = tm.subterms(roots);
    let mut lemmas = Vec::new();
    for t in subterms {
        let term = tm.term(t).clone();
        if term.op == Op::Eq && tm.sort(term.args[0]).is_numeric() {
            let (a, b) = (term.args[0], term.args[1]);
            let lt_ab = tm.lt(a, b);
            let lt_ba = tm.lt(b, a);
            let lemma = tm.or(vec![t, lt_ab, lt_ba]);
            lemmas.push(lemma);
        }
    }
    lemmas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;
    use crate::solver::Solver;

    fn solve(tm: &mut TermManager, roots: &[TermId]) -> SatResult {
        let mut s = Solver::new();
        s.check(tm, roots)
    }

    #[test]
    fn store_select_same_index() {
        // select(store(m, i, v), i) != v  is unsat.
        let mut tm = TermManager::new();
        let m = tm.var("m", Sort::array_of(Sort::Loc, Sort::Int));
        let i = tm.var("i", Sort::Loc);
        let v = tm.var("v", Sort::Int);
        let st = tm.store(m, i, v);
        let sel = tm.select(st, i);
        let ne = tm.neq(sel, v);
        assert_eq!(solve(&mut tm, &[ne]), SatResult::Unsat);
    }

    #[test]
    fn store_select_other_index() {
        // i != j -> select(store(m, i, v), j) = select(m, j); negation unsat.
        let mut tm = TermManager::new();
        let m = tm.var("m", Sort::array_of(Sort::Loc, Sort::Int));
        let i = tm.var("i", Sort::Loc);
        let j = tm.var("j", Sort::Loc);
        let v = tm.var("v", Sort::Int);
        let st = tm.store(m, i, v);
        let sel_st = tm.select(st, j);
        let sel_m = tm.select(m, j);
        let ne_ij = tm.neq(i, j);
        let ne_sel = tm.neq(sel_st, sel_m);
        assert_eq!(solve(&mut tm, &[ne_ij, ne_sel]), SatResult::Unsat);
        // Without i != j it is satisfiable.
        let mut tm2 = TermManager::new();
        let m = tm2.var("m", Sort::array_of(Sort::Loc, Sort::Int));
        let i = tm2.var("i", Sort::Loc);
        let j = tm2.var("j", Sort::Loc);
        let v = tm2.var("v", Sort::Int);
        let st = tm2.store(m, i, v);
        let sel_st = tm2.select(st, j);
        let sel_m = tm2.select(m, j);
        let ne_sel = tm2.neq(sel_st, sel_m);
        assert_eq!(solve(&mut tm2, &[ne_sel]), SatResult::Sat);
    }

    #[test]
    fn union_membership() {
        // x in A, not (x in (A ∪ B)) : unsat.
        let mut tm = TermManager::new();
        let set = Sort::set_of(Sort::Loc);
        let a = tm.var("A", set.clone());
        let b = tm.var("B", set);
        let x = tm.var("x", Sort::Loc);
        let u = tm.union(a, b);
        let in_a = tm.member(x, a);
        let in_u = tm.member(x, u);
        let not_in_u = tm.not(in_u);
        assert_eq!(solve(&mut tm, &[in_a, not_in_u]), SatResult::Unsat);
    }

    #[test]
    fn diff_membership() {
        // x in (A \ B) and x in B : unsat.
        let mut tm = TermManager::new();
        let set = Sort::set_of(Sort::Loc);
        let a = tm.var("A", set.clone());
        let b = tm.var("B", set);
        let x = tm.var("x", Sort::Loc);
        let d = tm.diff(a, b);
        let in_d = tm.member(x, d);
        let in_b = tm.member(x, b);
        assert_eq!(solve(&mut tm, &[in_d, in_b]), SatResult::Unsat);
    }

    #[test]
    fn subset_transitive() {
        // A ⊆ B, B ⊆ C, x ∈ A, x ∉ C : unsat.
        let mut tm = TermManager::new();
        let set = Sort::set_of(Sort::Loc);
        let a = tm.var("A", set.clone());
        let b = tm.var("B", set.clone());
        let c = tm.var("C", set);
        let x = tm.var("x", Sort::Loc);
        let s1 = tm.subset(a, b);
        let s2 = tm.subset(b, c);
        let in_a = tm.member(x, a);
        let in_c = tm.member(x, c);
        let not_in_c = tm.not(in_c);
        assert_eq!(solve(&mut tm, &[s1, s2, in_a, not_in_c]), SatResult::Unsat);
    }

    #[test]
    fn set_extensionality() {
        // A ∪ B = B ∪ A is valid: its negation is unsat.
        let mut tm = TermManager::new();
        let set = Sort::set_of(Sort::Loc);
        let a = tm.var("A", set.clone());
        let b = tm.var("B", set);
        let u1 = tm.union(a, b);
        let u2 = tm.union(b, a);
        let ne = tm.neq(u1, u2);
        assert_eq!(solve(&mut tm, &[ne]), SatResult::Unsat);
    }

    #[test]
    fn singleton_and_empty() {
        // y ∈ {x} → y = x ; and nothing is in ∅.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let sing = tm.singleton(x);
        let in_s = tm.member(y, sing);
        let ne = tm.neq(x, y);
        assert_eq!(solve(&mut tm, &[in_s, ne]), SatResult::Unsat);

        let mut tm2 = TermManager::new();
        let z = tm2.var("z", Sort::Loc);
        let empty = tm2.empty_set(Sort::Loc);
        let in_e = tm2.member(z, empty);
        assert_eq!(solve(&mut tm2, &[in_e]), SatResult::Unsat);
    }

    #[test]
    fn map_ite_frame() {
        // m' = frame update of m with mod-set S and havoc map h:
        //   x ∉ S  ⇒  select(MapIte(S,h,m), x) = select(m, x); negation unsat.
        let mut tm = TermManager::new();
        let arr = Sort::array_of(Sort::Loc, Sort::Int);
        let m = tm.var("m", arr.clone());
        let h = tm.var("h", arr);
        let s = tm.var("S", Sort::set_of(Sort::Loc));
        let x = tm.var("x", Sort::Loc);
        let upd = tm.map_ite(s, h, m);
        let in_s = tm.member(x, s);
        let not_in = tm.not(in_s);
        let sel_u = tm.select(upd, x);
        let sel_m = tm.select(m, x);
        let ne = tm.neq(sel_u, sel_m);
        assert_eq!(solve(&mut tm, &[not_in, ne]), SatResult::Unsat);
    }

    #[test]
    fn ite_elimination() {
        // y = ite(c, 1, 2) and y = 3 : unsat ; y = ite(c,1,2) and y = 2 : sat.
        let mut tm = TermManager::new();
        let c = tm.var("c", Sort::Bool);
        let one = tm.int(1);
        let two = tm.int(2);
        let three = tm.int(3);
        let y = tm.var("y", Sort::Int);
        let ite = tm.ite(c, one, two);
        let def = tm.eq(y, ite);
        let bad = tm.eq(y, three);
        assert_eq!(solve(&mut tm, &[def, bad]), SatResult::Unsat);

        let mut tm2 = TermManager::new();
        let c = tm2.var("c", Sort::Bool);
        let one = tm2.int(1);
        let two = tm2.int(2);
        let y = tm2.var("y", Sort::Int);
        let ite = tm2.ite(c, one, two);
        let def = tm2.eq(y, ite);
        let ok = tm2.eq(y, two);
        assert_eq!(solve(&mut tm2, &[def, ok]), SatResult::Sat);
    }

    #[test]
    fn distinct_expansion() {
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::Loc);
        let b = tm.var("b", Sort::Loc);
        let c = tm.var("c", Sort::Loc);
        let d = tm.distinct(vec![a, b, c]);
        let eq = tm.eq(a, c);
        assert_eq!(solve(&mut tm, &[d, eq]), SatResult::Unsat);
    }

    #[test]
    fn numeric_disequality_uses_trichotomy() {
        // x <= y, y <= x, x != y : unsat (needs arithmetic to see x != y).
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let y = tm.var("y", Sort::Int);
        let le1 = tm.le(x, y);
        let le2 = tm.le(y, x);
        let ne = tm.neq(x, y);
        assert_eq!(solve(&mut tm, &[le1, le2, ne]), SatResult::Unsat);
    }
}
