//! Lowering of set/array structure to EUF + arithmetic by finite
//! instantiation.
//!
//! The FWYB verification conditions use sets and maps only in ways that admit
//! a *local* finite instantiation: every universal fact hidden inside a set or
//! array operation (the meaning of `union`, read-over-write for `store`,
//! pointwise frame updates, extensionality, subset) only ever needs to be
//! known at the ground index/element terms occurring in the query, plus one
//! fresh Skolem witness per (dis)equality or subset atom between containers.
//! After this pass the formula mentions only Boolean structure, equalities,
//! linear arithmetic and uninterpreted applications (`Select`, `Member`, user
//! functions), which is exactly what [`crate::theory`] decides.
//!
//! The pass also:
//! * eliminates non-Boolean `ite` terms by introducing defined constants,
//! * expands `distinct` into pairwise disequalities, and
//! * adds trichotomy lemmas `a = b ∨ a < b ∨ b < a` for numeric equality
//!   atoms so that negated numeric equalities are visible to the simplex.

use std::collections::{HashMap, HashSet};

use crate::term::{Op, Sort, TermId, TermManager};

/// Lowers the conjunction of `roots`; returns the new conjunction of roots
/// (original assertions rewritten, plus instantiated axioms).
pub fn lower(tm: &mut TermManager, roots: &[TermId]) -> Vec<TermId> {
    let mut ctx = LowerCtx::new();
    let batch = ctx.add(tm, roots);
    let mut out = batch.roots;
    out.extend(batch.facts);
    out
}

/// Rewrites away non-Boolean `ite` and `distinct`.
fn rewrite(
    tm: &mut TermManager,
    t: TermId,
    cache: &mut HashMap<TermId, TermId>,
    side: &mut Vec<TermId>,
) -> TermId {
    if let Some(&r) = cache.get(&t) {
        return r;
    }
    let term = tm.term(t).clone();
    let args: Vec<TermId> = term
        .args
        .iter()
        .map(|&a| rewrite(tm, a, cache, side))
        .collect();
    let result = match &term.op {
        Op::Ite if term.sort != Sort::Bool => {
            let v = tm.fresh_var("ite", term.sort.clone());
            let (c, th, el) = (args[0], args[1], args[2]);
            let eq_t = tm.eq(v, th);
            let eq_e = tm.eq(v, el);
            let pos = tm.implies(c, eq_t);
            let nc = tm.not(c);
            let neg = tm.implies(nc, eq_e);
            side.push(pos);
            side.push(neg);
            v
        }
        Op::Distinct => {
            let mut conj = Vec::new();
            for i in 0..args.len() {
                for j in (i + 1)..args.len() {
                    let ne = tm.neq(args[i], args[j]);
                    conj.push(ne);
                }
            }
            tm.and(conj)
        }
        _ => {
            if args == term.args {
                t
            } else {
                rebuild(tm, &term.op, args)
            }
        }
    };
    cache.insert(t, result);
    result
}

/// Rebuilds a term with new arguments, going through the smart constructors so
/// that folding/normalization stays consistent.
fn rebuild(tm: &mut TermManager, op: &Op, args: Vec<TermId>) -> TermId {
    match op {
        Op::Not => tm.not(args[0]),
        Op::And => tm.and(args),
        Op::Or => tm.or(args),
        Op::Implies => tm.implies(args[0], args[1]),
        Op::Iff => tm.iff(args[0], args[1]),
        Op::Ite => tm.ite(args[0], args[1], args[2]),
        Op::Eq => tm.eq(args[0], args[1]),
        Op::Add => tm.add_many(args),
        Op::Sub => tm.sub(args[0], args[1]),
        Op::Neg => tm.neg(args[0]),
        Op::MulConst(k) => tm.mul_const(*k, args[0]),
        Op::Le => tm.le(args[0], args[1]),
        Op::Lt => tm.lt(args[0], args[1]),
        Op::Select => tm.select(args[0], args[1]),
        Op::Store => tm.store(args[0], args[1], args[2]),
        Op::MapIte => tm.map_ite(args[0], args[1], args[2]),
        Op::Singleton => tm.singleton(args[0]),
        Op::Union => tm.union(args[0], args[1]),
        Op::Inter => tm.inter(args[0], args[1]),
        Op::Diff => tm.diff(args[0], args[1]),
        Op::Member => tm.member(args[0], args[1]),
        Op::Subset => tm.subset(args[0], args[1]),
        Op::Forall(bound) => tm.forall(bound.clone(), args[0]),
        _ => {
            let sort = infer_sort(tm, op, &args);
            tm.mk(op.clone(), args, sort)
        }
    }
}

fn infer_sort(tm: &TermManager, op: &Op, args: &[TermId]) -> Sort {
    match op {
        Op::App(_) => {
            // Application result sorts cannot be inferred from arguments; look
            // the original term up — rebuild is only called when an identical
            // op already exists, so find any term with this op.
            tm.iter()
                .find(|(_, t)| &t.op == op)
                .map(|(_, t)| t.sort.clone())
                .unwrap_or(Sort::Bool)
        }
        Op::Var(_) | Op::IntLit(_) | Op::RealLit(_) | Op::EmptySet(_) => tm
            .iter()
            .find(|(_, t)| &t.op == op)
            .map(|(_, t)| t.sort.clone())
            .unwrap_or(Sort::Bool),
        _ => args
            .first()
            .map(|&a| tm.sort(a).clone())
            .unwrap_or(Sort::Bool),
    }
}

/// Per-sort pools of relevant index/element terms. Pools are append-only —
/// the incremental lowering context's watermarks index into them — with an
/// O(1) membership set on the side (a term's sort is unique, so one global
/// set covers every pool).
#[derive(Clone, Debug, Default)]
struct Pools {
    by_sort: HashMap<Sort, Vec<TermId>>,
    pooled: HashSet<TermId>,
}

impl Pools {
    fn add(&mut self, sort: &Sort, t: TermId) {
        if self.pooled.insert(t) {
            self.by_sort.entry(sort.clone()).or_default().push(t);
        }
    }

    fn get(&self, sort: &Sort) -> &[TermId] {
        self.by_sort.get(sort).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

fn elem_sort_of_container(sort: &Sort) -> Option<Sort> {
    match sort {
        Sort::Set(e) => Some((**e).clone()),
        Sort::Array(i, _) => Some((**i).clone()),
        _ => None,
    }
}

/// The output of one [`LowerCtx::add`] call.
///
/// `roots` are the rewritten input assertions — they carry the *assertion*
/// semantics and must be asserted in whatever scope the caller is in.
/// `facts` are definitional side conditions, instantiated theory axioms and
/// trichotomy lemmas: all of them are valid (or definitional over globally
/// fresh symbols), so a push/pop solver may assert them permanently even when
/// the triggering assertion later gets retracted.
pub struct LoweredBatch {
    /// Rewritten input assertions, in input order.
    pub roots: Vec<TermId>,
    /// Permanent facts: `ite` elimination definitions, instantiated axioms,
    /// trichotomy lemmas — in emission order.
    pub facts: Vec<TermId>,
}

/// A persistent, incremental lowering context.
///
/// The batch [`lower`] pass instantiates the set/array axioms over the ground
/// index/element terms of *one* query. An incremental session instead feeds
/// assertions in piecemeal (a method's shared hypotheses once, then each
/// goal); this context keeps every pool, trigger and Skolem witness across
/// calls so that each [`LowerCtx::add`] emits exactly the *new* axioms —
/// the cross products `new trigger × known elements` and
/// `known triggers × new elements` — and never re-lowers what came before.
///
/// All emitted facts are sound to keep asserted forever: instantiated axioms
/// are valid theory facts, and each Skolem witness is a globally fresh
/// variable constrained only by the Skolemization of a valid existential, so
/// retracting the assertion that introduced them never makes retained facts
/// spurious.
#[derive(Clone, Debug, Default)]
pub struct LowerCtx {
    rewrite_cache: HashMap<TermId, TermId>,
    /// Sub-terms already categorized into pools/triggers.
    scanned: HashSet<TermId>,
    pools: Pools,
    // Every trigger carries a *watermark*: how many elements of its pool it
    // has already been instantiated against. Pools are append-only, so each
    // (trigger, element) pair is constructed exactly once across all `add`
    // calls — new triggers start at 0 and consume the whole pool, old
    // triggers only consume the pool's new tail.
    stores: Vec<(TermId, usize)>,
    map_ites: Vec<(TermId, usize)>,
    compound_sets: Vec<(TermId, usize)>,
    subset_atoms: Vec<(TermId, usize)>,
    container_eq_atoms: Vec<(TermId, usize)>,
    subset_witness: HashMap<TermId, TermId>,
    eq_witness: HashMap<TermId, TermId>,
    /// Witness axioms already emitted (their trigger atoms may be revisited).
    emitted: HashSet<TermId>,
    /// Sub-terms already scanned for trichotomy lemmas.
    trich_scanned: HashSet<TermId>,
}

impl LowerCtx {
    /// Creates an empty context.
    pub fn new() -> LowerCtx {
        LowerCtx::default()
    }

    /// Lowers additional assertions against everything added before.
    pub fn add(&mut self, tm: &mut TermManager, roots: &[TermId]) -> LoweredBatch {
        let mut side: Vec<TermId> = Vec::new();
        let rewritten: Vec<TermId> = roots
            .iter()
            .map(|&r| rewrite(tm, r, &mut self.rewrite_cache, &mut side))
            .collect();

        let mut scan_roots: Vec<TermId> = rewritten.clone();
        scan_roots.extend(side.iter().copied());
        self.scan(tm, &scan_roots);

        let mut axioms: Vec<TermId> = Vec::new();
        self.emit_axioms(tm, &mut axioms);

        let mut trich_roots = scan_roots;
        trich_roots.extend(axioms.iter().copied());
        let mut lemmas: Vec<TermId> = Vec::new();
        self.trichotomy(tm, &trich_roots, &mut lemmas);

        let mut facts = side;
        facts.extend(axioms);
        facts.extend(lemmas);
        LoweredBatch {
            roots: rewritten,
            facts,
        }
    }

    /// Categorizes the not-yet-seen sub-terms of `roots` into element pools
    /// and axiom triggers, creating Skolem witnesses for new subset/equality
    /// atoms (witnesses join the pools like any other element).
    fn scan(&mut self, tm: &mut TermManager, roots: &[TermId]) {
        let mut new_subsets: Vec<TermId> = Vec::new();
        let mut new_eqs: Vec<TermId> = Vec::new();
        // Same stack DFS as `TermManager::subterms`, but with the persistent
        // visited set so repeated calls only walk new structure.
        let mut stack: Vec<TermId> = roots.to_vec();
        while let Some(t) = stack.pop() {
            if !self.scanned.insert(t) {
                continue;
            }
            let term = tm.term(t).clone();
            stack.extend(term.args.iter().copied());
            match &term.op {
                Op::Member => {
                    let elem = term.args[0];
                    let sort = tm.sort(elem).clone();
                    self.pools.add(&sort, elem);
                }
                Op::Singleton => {
                    let elem = term.args[0];
                    let sort = tm.sort(elem).clone();
                    self.pools.add(&sort, elem);
                    self.compound_sets.push((t, 0));
                }
                Op::Union | Op::Inter | Op::Diff | Op::EmptySet(_) => {
                    self.compound_sets.push((t, 0));
                }
                Op::Select => {
                    let idx = term.args[1];
                    let sort = tm.sort(idx).clone();
                    self.pools.add(&sort, idx);
                }
                Op::Store => {
                    let idx = term.args[1];
                    let sort = tm.sort(idx).clone();
                    self.pools.add(&sort, idx);
                    self.stores.push((t, 0));
                }
                Op::MapIte => {
                    self.map_ites.push((t, 0));
                }
                Op::Subset => {
                    self.subset_atoms.push((t, 0));
                    new_subsets.push(t);
                }
                Op::Eq if tm.sort(term.args[0]).is_container() => {
                    self.container_eq_atoms.push((t, 0));
                    new_eqs.push(t);
                }
                _ => {}
            }
        }
        // Skolem witnesses for the new subset/equality atoms, added to the
        // pools *before* instantiation.
        for a in new_subsets {
            let s = tm.term(a).args[0];
            if let Some(elem_sort) = elem_sort_of_container(&tm.sort(s).clone()) {
                let w = tm.fresh_var("sub_w", elem_sort.clone());
                self.pools.add(&elem_sort, w);
                self.subset_witness.insert(a, w);
            }
        }
        for a in new_eqs {
            let s = tm.term(a).args[0];
            if let Some(elem_sort) = elem_sort_of_container(&tm.sort(s).clone()) {
                let w = tm.fresh_var("ext_w", elem_sort.clone());
                self.pools.add(&elem_sort, w);
                self.eq_witness.insert(a, w);
            }
        }
    }

    /// Emits the axioms of every not-yet-covered (trigger, element) pair:
    /// each trigger consumes its pool from its watermark to the current end,
    /// so repeated `add` calls never re-construct candidate axiom terms for
    /// pairs handled before. The per-atom Skolem witness axioms go through
    /// the `emitted` set (one cheap candidate per atom per call).
    fn emit_axioms(&mut self, tm: &mut TermManager, axioms: &mut Vec<TermId>) {
        let emitted = &mut self.emitted;
        let mut push = |tm: &mut TermManager, ax: TermId, axioms: &mut Vec<TermId>| {
            if tm.term(ax).op != Op::True && emitted.insert(ax) {
                axioms.push(ax);
            }
        };
        // Snapshot of a trigger's uncovered pool tail (cloned so `tm` can be
        // mutated while iterating), advancing the watermark to the end.
        let pools = &self.pools;
        let tail = |mark: &mut usize, elem_sort: &Sort| -> Vec<TermId> {
            let pool = pools.get(elem_sort);
            let new = pool[*mark..].to_vec();
            *mark = pool.len();
            new
        };

        // 1. Membership axioms for compound set terms, at every pooled element.
        for (s, mark) in self.compound_sets.iter_mut() {
            let s = *s;
            let term = tm.term(s).clone();
            let elem_sort = match elem_sort_of_container(&term.sort) {
                Some(e) => e,
                None => continue,
            };
            for e in tail(mark, &elem_sort) {
                let mem = tm.member(e, s);
                let def = match &term.op {
                    Op::EmptySet(_) => {
                        let f = tm.fls();
                        tm.iff(mem, f)
                    }
                    Op::Singleton => {
                        let eq = tm.eq(e, term.args[0]);
                        tm.iff(mem, eq)
                    }
                    Op::Union => {
                        let m1 = tm.member(e, term.args[0]);
                        let m2 = tm.member(e, term.args[1]);
                        let d = tm.or2(m1, m2);
                        tm.iff(mem, d)
                    }
                    Op::Inter => {
                        let m1 = tm.member(e, term.args[0]);
                        let m2 = tm.member(e, term.args[1]);
                        let c = tm.and2(m1, m2);
                        tm.iff(mem, c)
                    }
                    Op::Diff => {
                        let m1 = tm.member(e, term.args[0]);
                        let m2 = tm.member(e, term.args[1]);
                        let nm2 = tm.not(m2);
                        let c = tm.and2(m1, nm2);
                        tm.iff(mem, c)
                    }
                    _ => unreachable!(),
                };
                push(tm, def, axioms);
            }
        }

        // 2. Read-over-write axioms for stores, at every pooled index.
        for (st, mark) in self.stores.iter_mut() {
            let st = *st;
            let term = tm.term(st).clone();
            let (base, idx, val) = (term.args[0], term.args[1], term.args[2]);
            let idx_sort = tm.sort(idx).clone();
            for j in tail(mark, &idx_sort) {
                let sel = tm.select(st, j);
                let eq_idx = tm.eq(j, idx);
                let sel_val = tm.eq(sel, val);
                let hit = tm.implies(eq_idx, sel_val);
                let sel_base = tm.select(base, j);
                let sel_pass = tm.eq(sel, sel_base);
                let ne = tm.not(eq_idx);
                let miss = tm.implies(ne, sel_pass);
                push(tm, hit, axioms);
                push(tm, miss, axioms);
            }
        }

        // 3. Pointwise frame-update axioms for MapIte, at every pooled index.
        for (mi, mark) in self.map_ites.iter_mut() {
            let mi = *mi;
            let term = tm.term(mi).clone();
            let (modset, m_new, m_old) = (term.args[0], term.args[1], term.args[2]);
            let idx_sort = match elem_sort_of_container(&term.sort) {
                Some(s) => s,
                None => continue,
            };
            for j in tail(mark, &idx_sort) {
                let sel = tm.select(mi, j);
                let in_mod = tm.member(j, modset);
                let sel_new = tm.select(m_new, j);
                let sel_old = tm.select(m_old, j);
                let eq_new = tm.eq(sel, sel_new);
                let eq_old = tm.eq(sel, sel_old);
                let hit = tm.implies(in_mod, eq_new);
                let nm = tm.not(in_mod);
                let miss = tm.implies(nm, eq_old);
                push(tm, hit, axioms);
                push(tm, miss, axioms);
            }
        }

        // 4. Subset atoms: positive side (pointwise, guarded), negative side
        //    (Skolem witness).
        for (a, mark) in self.subset_atoms.iter_mut() {
            let a = *a;
            let term = tm.term(a).clone();
            let (s, t) = (term.args[0], term.args[1]);
            let elem_sort = match elem_sort_of_container(&tm.sort(s).clone()) {
                Some(e) => e,
                None => continue,
            };
            for e in tail(mark, &elem_sort) {
                let ms = tm.member(e, s);
                let mt = tm.member(e, t);
                let imp = tm.implies(ms, mt);
                let ax = tm.implies(a, imp);
                push(tm, ax, axioms);
            }
            if let Some(&w) = self.subset_witness.get(&a) {
                let ms = tm.member(w, s);
                let mt = tm.member(w, t);
                let nmt = tm.not(mt);
                let both = tm.and2(ms, nmt);
                let na = tm.not(a);
                let ax = tm.implies(na, both);
                push(tm, ax, axioms);
            }
        }

        // 5. Container equality atoms: guarded pointwise congruence plus
        //    extensionality witness for the negative side.
        for (a, mark) in self.container_eq_atoms.iter_mut() {
            let a = *a;
            let term = tm.term(a).clone();
            let (s, t) = (term.args[0], term.args[1]);
            let sort = tm.sort(s).clone();
            let elem_sort = match elem_sort_of_container(&sort) {
                Some(e) => e,
                None => continue,
            };
            let is_set = matches!(sort, Sort::Set(_));
            for e in tail(mark, &elem_sort) {
                let (vs, vt) = if is_set {
                    (tm.member(e, s), tm.member(e, t))
                } else {
                    (tm.select(s, e), tm.select(t, e))
                };
                let eq = tm.eq(vs, vt);
                let ax = tm.implies(a, eq);
                push(tm, ax, axioms);
            }
            if let Some(&w) = self.eq_witness.get(&a) {
                let (vs, vt) = if is_set {
                    (tm.member(w, s), tm.member(w, t))
                } else {
                    (tm.select(s, w), tm.select(t, w))
                };
                let ne = tm.neq(vs, vt);
                let na = tm.not(a);
                let ax = tm.implies(na, ne);
                push(tm, ax, axioms);
            }
        }

        // The axioms may themselves contain new compound structure only in
        // the shape of `member`/`select` over existing terms, so one round
        // suffices (same argument as the batch pass).
    }

    /// Adds `a = b ∨ a < b ∨ b < a` for every not-yet-seen numeric equality
    /// atom among the sub-terms of `roots`.
    fn trichotomy(&mut self, tm: &mut TermManager, roots: &[TermId], lemmas: &mut Vec<TermId>) {
        let mut stack: Vec<TermId> = roots.to_vec();
        while let Some(t) = stack.pop() {
            if !self.trich_scanned.insert(t) {
                continue;
            }
            let term = tm.term(t).clone();
            stack.extend(term.args.iter().copied());
            if term.op == Op::Eq && tm.sort(term.args[0]).is_numeric() {
                let (a, b) = (term.args[0], term.args[1]);
                let lt_ab = tm.lt(a, b);
                let lt_ba = tm.lt(b, a);
                let lemma = tm.or(vec![t, lt_ab, lt_ba]);
                lemmas.push(lemma);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;
    use crate::solver::Solver;

    fn solve(tm: &mut TermManager, roots: &[TermId]) -> SatResult {
        let mut s = Solver::new();
        s.check(tm, roots)
    }

    #[test]
    fn store_select_same_index() {
        // select(store(m, i, v), i) != v  is unsat.
        let mut tm = TermManager::new();
        let m = tm.var("m", Sort::array_of(Sort::Loc, Sort::Int));
        let i = tm.var("i", Sort::Loc);
        let v = tm.var("v", Sort::Int);
        let st = tm.store(m, i, v);
        let sel = tm.select(st, i);
        let ne = tm.neq(sel, v);
        assert_eq!(solve(&mut tm, &[ne]), SatResult::Unsat);
    }

    #[test]
    fn store_select_other_index() {
        // i != j -> select(store(m, i, v), j) = select(m, j); negation unsat.
        let mut tm = TermManager::new();
        let m = tm.var("m", Sort::array_of(Sort::Loc, Sort::Int));
        let i = tm.var("i", Sort::Loc);
        let j = tm.var("j", Sort::Loc);
        let v = tm.var("v", Sort::Int);
        let st = tm.store(m, i, v);
        let sel_st = tm.select(st, j);
        let sel_m = tm.select(m, j);
        let ne_ij = tm.neq(i, j);
        let ne_sel = tm.neq(sel_st, sel_m);
        assert_eq!(solve(&mut tm, &[ne_ij, ne_sel]), SatResult::Unsat);
        // Without i != j it is satisfiable.
        let mut tm2 = TermManager::new();
        let m = tm2.var("m", Sort::array_of(Sort::Loc, Sort::Int));
        let i = tm2.var("i", Sort::Loc);
        let j = tm2.var("j", Sort::Loc);
        let v = tm2.var("v", Sort::Int);
        let st = tm2.store(m, i, v);
        let sel_st = tm2.select(st, j);
        let sel_m = tm2.select(m, j);
        let ne_sel = tm2.neq(sel_st, sel_m);
        assert_eq!(solve(&mut tm2, &[ne_sel]), SatResult::Sat);
    }

    #[test]
    fn union_membership() {
        // x in A, not (x in (A ∪ B)) : unsat.
        let mut tm = TermManager::new();
        let set = Sort::set_of(Sort::Loc);
        let a = tm.var("A", set.clone());
        let b = tm.var("B", set);
        let x = tm.var("x", Sort::Loc);
        let u = tm.union(a, b);
        let in_a = tm.member(x, a);
        let in_u = tm.member(x, u);
        let not_in_u = tm.not(in_u);
        assert_eq!(solve(&mut tm, &[in_a, not_in_u]), SatResult::Unsat);
    }

    #[test]
    fn diff_membership() {
        // x in (A \ B) and x in B : unsat.
        let mut tm = TermManager::new();
        let set = Sort::set_of(Sort::Loc);
        let a = tm.var("A", set.clone());
        let b = tm.var("B", set);
        let x = tm.var("x", Sort::Loc);
        let d = tm.diff(a, b);
        let in_d = tm.member(x, d);
        let in_b = tm.member(x, b);
        assert_eq!(solve(&mut tm, &[in_d, in_b]), SatResult::Unsat);
    }

    #[test]
    fn subset_transitive() {
        // A ⊆ B, B ⊆ C, x ∈ A, x ∉ C : unsat.
        let mut tm = TermManager::new();
        let set = Sort::set_of(Sort::Loc);
        let a = tm.var("A", set.clone());
        let b = tm.var("B", set.clone());
        let c = tm.var("C", set);
        let x = tm.var("x", Sort::Loc);
        let s1 = tm.subset(a, b);
        let s2 = tm.subset(b, c);
        let in_a = tm.member(x, a);
        let in_c = tm.member(x, c);
        let not_in_c = tm.not(in_c);
        assert_eq!(solve(&mut tm, &[s1, s2, in_a, not_in_c]), SatResult::Unsat);
    }

    #[test]
    fn set_extensionality() {
        // A ∪ B = B ∪ A is valid: its negation is unsat.
        let mut tm = TermManager::new();
        let set = Sort::set_of(Sort::Loc);
        let a = tm.var("A", set.clone());
        let b = tm.var("B", set);
        let u1 = tm.union(a, b);
        let u2 = tm.union(b, a);
        let ne = tm.neq(u1, u2);
        assert_eq!(solve(&mut tm, &[ne]), SatResult::Unsat);
    }

    #[test]
    fn singleton_and_empty() {
        // y ∈ {x} → y = x ; and nothing is in ∅.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let sing = tm.singleton(x);
        let in_s = tm.member(y, sing);
        let ne = tm.neq(x, y);
        assert_eq!(solve(&mut tm, &[in_s, ne]), SatResult::Unsat);

        let mut tm2 = TermManager::new();
        let z = tm2.var("z", Sort::Loc);
        let empty = tm2.empty_set(Sort::Loc);
        let in_e = tm2.member(z, empty);
        assert_eq!(solve(&mut tm2, &[in_e]), SatResult::Unsat);
    }

    #[test]
    fn map_ite_frame() {
        // m' = frame update of m with mod-set S and havoc map h:
        //   x ∉ S  ⇒  select(MapIte(S,h,m), x) = select(m, x); negation unsat.
        let mut tm = TermManager::new();
        let arr = Sort::array_of(Sort::Loc, Sort::Int);
        let m = tm.var("m", arr.clone());
        let h = tm.var("h", arr);
        let s = tm.var("S", Sort::set_of(Sort::Loc));
        let x = tm.var("x", Sort::Loc);
        let upd = tm.map_ite(s, h, m);
        let in_s = tm.member(x, s);
        let not_in = tm.not(in_s);
        let sel_u = tm.select(upd, x);
        let sel_m = tm.select(m, x);
        let ne = tm.neq(sel_u, sel_m);
        assert_eq!(solve(&mut tm, &[not_in, ne]), SatResult::Unsat);
    }

    #[test]
    fn ite_elimination() {
        // y = ite(c, 1, 2) and y = 3 : unsat ; y = ite(c,1,2) and y = 2 : sat.
        let mut tm = TermManager::new();
        let c = tm.var("c", Sort::Bool);
        let one = tm.int(1);
        let two = tm.int(2);
        let three = tm.int(3);
        let y = tm.var("y", Sort::Int);
        let ite = tm.ite(c, one, two);
        let def = tm.eq(y, ite);
        let bad = tm.eq(y, three);
        assert_eq!(solve(&mut tm, &[def, bad]), SatResult::Unsat);

        let mut tm2 = TermManager::new();
        let c = tm2.var("c", Sort::Bool);
        let one = tm2.int(1);
        let two = tm2.int(2);
        let y = tm2.var("y", Sort::Int);
        let ite = tm2.ite(c, one, two);
        let def = tm2.eq(y, ite);
        let ok = tm2.eq(y, two);
        assert_eq!(solve(&mut tm2, &[def, ok]), SatResult::Sat);
    }

    #[test]
    fn distinct_expansion() {
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::Loc);
        let b = tm.var("b", Sort::Loc);
        let c = tm.var("c", Sort::Loc);
        let d = tm.distinct(vec![a, b, c]);
        let eq = tm.eq(a, c);
        assert_eq!(solve(&mut tm, &[d, eq]), SatResult::Unsat);
    }

    #[test]
    fn numeric_disequality_uses_trichotomy() {
        // x <= y, y <= x, x != y : unsat (needs arithmetic to see x != y).
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let y = tm.var("y", Sort::Int);
        let le1 = tm.le(x, y);
        let le2 = tm.le(y, x);
        let ne = tm.neq(x, y);
        assert_eq!(solve(&mut tm, &[le1, le2, ne]), SatResult::Unsat);
    }
}
