//! Tseitin conversion of ground Boolean term DAGs into CNF for the SAT core.
//!
//! Every non-Boolean-connective sub-term of sort `Bool` (an equality, an
//! arithmetic predicate, a membership literal, a Boolean field read, …)
//! becomes a propositional *atom* with its own SAT variable; the mapping in
//! both directions is recorded in [`AtomMap`] so the theory layer can read the
//! propositional model back as a set of theory literals.

use std::collections::HashMap;

use crate::sat::{Lit, SatSolver, Var};
use crate::term::{Op, TermId, TermManager};

/// Mapping between theory atoms (term ids) and SAT variables.
#[derive(Clone, Debug, Default)]
pub struct AtomMap {
    /// Atom term of each SAT variable that represents an atom (not a Tseitin
    /// definition variable).
    pub atom_of_var: HashMap<Var, TermId>,
    /// SAT variable of each encoded term (atoms and internal nodes).
    pub var_of_term: HashMap<TermId, Var>,
}

impl AtomMap {
    /// The asserted theory literals in the current SAT model: pairs of an atom
    /// term and its assigned polarity.
    pub fn model_literals(&self, sat: &SatSolver) -> Vec<(TermId, bool)> {
        let mut out: Vec<(TermId, bool)> = self
            .atom_of_var
            .iter()
            .filter_map(|(&v, &t)| sat.value(v).map(|b| (t, b)))
            .collect();
        out.sort();
        out
    }

    /// The SAT literal for asserting the given atom with the given polarity.
    ///
    /// # Panics
    /// Panics if the term was never encoded.
    pub fn lit_of(&self, t: TermId, positive: bool) -> Lit {
        Lit::new(self.var_of_term[&t], positive)
    }
}

/// Converts the conjunction of `roots` to CNF inside `sat`, allocating
/// variables as needed, and returns the atom mapping.
///
/// The input must be ground and free of `Forall`, `Store`, `Union`, … — i.e.
/// already processed by [`crate::lower`]. Non-Boolean `Ite` nodes must also
/// have been eliminated.
pub fn tseitin(tm: &TermManager, roots: &[TermId], sat: &mut SatSolver) -> AtomMap {
    let mut map = AtomMap::default();
    for &r in roots {
        let l = encode(tm, r, sat, &mut map);
        sat.add_clause(vec![l]);
    }
    map
}

/// Incrementally encodes one root into an existing solver + atom map and
/// returns the literal equivalent to the root *without asserting it*. The
/// caller decides how to assert it — as a permanent unit clause, or guarded
/// by an activation literal for push/pop retraction. Sub-terms already encoded
/// by earlier calls are shared.
pub fn encode_root(tm: &TermManager, root: TermId, sat: &mut SatSolver, map: &mut AtomMap) -> Lit {
    encode(tm, root, sat, map)
}

fn is_connective(op: &Op) -> bool {
    matches!(
        op,
        Op::Not | Op::And | Op::Or | Op::Implies | Op::Iff | Op::Ite | Op::True | Op::False
    )
}

fn encode(tm: &TermManager, t: TermId, sat: &mut SatSolver, map: &mut AtomMap) -> Lit {
    if let Some(&v) = map.var_of_term.get(&t) {
        return Lit::new(v, true);
    }
    let term = tm.term(t);
    let op = term.op.clone();
    if !is_connective(&op) {
        // A theory atom.
        let v = sat.new_var();
        map.var_of_term.insert(t, v);
        map.atom_of_var.insert(v, t);
        return Lit::new(v, true);
    }
    match op {
        Op::True => {
            let v = sat.new_var();
            map.var_of_term.insert(t, v);
            sat.add_clause(vec![Lit::new(v, true)]);
            Lit::new(v, true)
        }
        Op::False => {
            let v = sat.new_var();
            map.var_of_term.insert(t, v);
            sat.add_clause(vec![Lit::new(v, false)]);
            Lit::new(v, true)
        }
        Op::Not => {
            let inner = encode(tm, term.args[0], sat, map);
            // No new variable needed: reuse the negated literal, but we must
            // still be able to find a var for `t` if asked. Allocate lazily by
            // recording the inner variable is enough only for positive terms,
            // so we simply return the negated literal without recording.
            inner.negate()
        }
        Op::And | Op::Or | Op::Implies | Op::Iff | Op::Ite => {
            let args: Vec<Lit> = term.args.iter().map(|a| encode(tm, *a, sat, map)).collect();
            let v = sat.new_var();
            map.var_of_term.insert(t, v);
            let lv = Lit::new(v, true);
            match op {
                Op::And => {
                    // v <-> a1 & ... & an
                    for &a in &args {
                        sat.add_clause(vec![lv.negate(), a]);
                    }
                    let mut cl: Vec<Lit> = args.iter().map(|a| a.negate()).collect();
                    cl.push(lv);
                    sat.add_clause(cl);
                }
                Op::Or => {
                    for &a in &args {
                        sat.add_clause(vec![a.negate(), lv]);
                    }
                    let mut cl: Vec<Lit> = args.clone();
                    cl.push(lv.negate());
                    sat.add_clause(cl);
                }
                Op::Implies => {
                    let (a, b) = (args[0], args[1]);
                    // v <-> (a -> b)
                    sat.add_clause(vec![lv.negate(), a.negate(), b]);
                    sat.add_clause(vec![lv, a]);
                    sat.add_clause(vec![lv, b.negate()]);
                }
                Op::Iff => {
                    let (a, b) = (args[0], args[1]);
                    sat.add_clause(vec![lv.negate(), a.negate(), b]);
                    sat.add_clause(vec![lv.negate(), a, b.negate()]);
                    sat.add_clause(vec![lv, a, b]);
                    sat.add_clause(vec![lv, a.negate(), b.negate()]);
                }
                Op::Ite => {
                    let (c, th, el) = (args[0], args[1], args[2]);
                    // v <-> ite(c, th, el)
                    sat.add_clause(vec![lv.negate(), c.negate(), th]);
                    sat.add_clause(vec![lv.negate(), c, el]);
                    sat.add_clause(vec![lv, c.negate(), th.negate()]);
                    sat.add_clause(vec![lv, c, el.negate()]);
                }
                _ => unreachable!(),
            }
            lv
        }
        _ => unreachable!("non-connective handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;
    use crate::term::Sort;

    #[test]
    fn simple_propositional() {
        let mut tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let q = tm.var("q", Sort::Bool);
        let np = tm.not(p);
        let f = tm.and2(np, q);
        let mut sat = SatSolver::new();
        let map = tseitin(&tm, &[f], &mut sat);
        assert_eq!(sat.solve(), SatResult::Sat);
        let lits = map.model_literals(&sat);
        assert!(lits.contains(&(p, false)));
        assert!(lits.contains(&(q, true)));
    }

    #[test]
    fn contradiction_unsat() {
        let mut tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let np = tm.not(p);
        let f = tm.and2(p, np);
        let mut sat = SatSolver::new();
        tseitin(&tm, &[f], &mut sat);
        assert_eq!(sat.solve(), SatResult::Unsat);
    }

    #[test]
    fn iff_and_implies() {
        let mut tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let q = tm.var("q", Sort::Bool);
        let imp = tm.implies(p, q);
        let niff = {
            let i = tm.iff(p, q);
            tm.not(i)
        };
        // p -> q, not (p <-> q), p  is unsat; without p it is sat (p=F, q=T).
        let mut sat = SatSolver::new();
        tseitin(&tm, &[imp, niff, p], &mut sat);
        assert_eq!(sat.solve(), SatResult::Unsat);

        let mut tm2 = TermManager::new();
        let p2 = tm2.var("p", Sort::Bool);
        let q2 = tm2.var("q", Sort::Bool);
        let imp2 = tm2.implies(p2, q2);
        let niff2 = {
            let i = tm2.iff(p2, q2);
            tm2.not(i)
        };
        let mut sat2 = SatSolver::new();
        let map2 = tseitin(&tm2, &[imp2, niff2], &mut sat2);
        assert_eq!(sat2.solve(), SatResult::Sat);
        let lits = map2.model_literals(&sat2);
        assert!(lits.contains(&(p2, false)));
        assert!(lits.contains(&(q2, true)));
    }

    #[test]
    fn atoms_are_registered() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let y = tm.var("y", Sort::Int);
        let le = tm.le(x, y);
        let eq = tm.eq(x, y);
        let f = tm.or2(le, eq);
        let mut sat = SatSolver::new();
        let map = tseitin(&tm, &[f], &mut sat);
        assert_eq!(map.atom_of_var.len(), 2);
        assert!(map.var_of_term.contains_key(&le));
        assert!(map.var_of_term.contains_key(&eq));
    }
}
