//! `ids-smt` — a quantifier-free SMT solver used as the decidable backend of the
//! intrinsic-definitions verification pipeline.
//!
//! The verification conditions produced by the fix-what-you-break (FWYB)
//! methodology fall into quantifier-free combinations of:
//!
//! * equality and uninterpreted functions (EUF),
//! * linear arithmetic over integers and rationals,
//! * extensional arrays (maps from locations to values, with `store` and
//!   pointwise `ite` updates used for frame reasoning), and
//! * finite sets of locations/integers (membership, union, intersection,
//!   difference, subset).
//!
//! This crate implements a from-scratch decision procedure for that fragment:
//!
//! 1. [`lower`] reduces array/set structure to EUF + arithmetic by *finite
//!    instantiation* over the ground index/element terms of the query (plus one
//!    Skolem witness per set/array equality atom, for extensionality),
//! 2. [`cnf`] converts the result to CNF via the Tseitin transformation,
//! 3. [`sat`] is a CDCL SAT solver (watched literals, first-UIP learning,
//!    VSIDS-style activities, restarts),
//! 4. [`euf`] (congruence closure with explanations) and [`simplex`] (general
//!    simplex over delta-rationals with branch-and-bound for integers) check
//!    the theory consistency of propositional models and learn conflict
//!    clauses — an *offline lazy* DPLL(T) loop driven by [`solver`].
//!
//! A bounded quantifier-instantiation engine ([`quant`]) supports the
//! *quantified* (Dafny-style) encoding used only for the paper's RQ3
//! comparison; the decidable pipeline never produces quantifiers.
//!
//! # Example
//!
//! ```
//! use ids_smt::{TermManager, Sort, Solver, SatResult};
//!
//! let mut tm = TermManager::new();
//! let x = tm.var("x", Sort::Int);
//! let one = tm.int(1);
//! let x_plus_1 = tm.add(x, one);
//! let lt = tm.lt(x_plus_1, x); // x + 1 < x : unsatisfiable
//! let mut solver = Solver::new();
//! assert_eq!(solver.check(&mut tm, &[lt]), SatResult::Unsat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod euf;
mod fxmap;
pub mod hash;
pub mod incremental;
pub mod lower;
pub mod model;
pub mod quant;
pub mod rational;
pub mod sat;
pub mod simplex;
pub mod smtlib;
pub mod solver;
pub mod term;
pub mod theory;
mod trail;

pub use hash::structural_hash;
pub use incremental::IncrementalSolver;
pub use model::Model;
pub use rational::Rat;
pub use sat::{ClauseDbOptions, RestartPolicy, SatOptions, SatResult};
pub use simplex::PivotRule;
pub use smtlib::to_smtlib;
pub use solver::{Solver, SolverConfig, SolverProfile, SolverStats};
pub use term::{Op, Sort, Term, TermId, TermManager};
pub use theory::TheoryTelemetry;

/// Parses the zero-padded lowercase-hex `u64` emitted by the build script.
/// (`u64::from_str_radix` is not yet usable in const items; this is the
/// minimal const-evaluable equivalent.)
const fn parse_hex_u64(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut out: u64 = 0;
    let mut i = 0;
    while i < bytes.len() {
        let digit = match bytes[i] {
            b @ b'0'..=b'9' => b - b'0',
            b @ b'a'..=b'f' => b - b'a' + 10,
            _ => panic!("invalid hex digit in solver fingerprint"),
        };
        out = (out << 4) | digit as u64;
        i += 1;
    }
    out
}

/// Fingerprint of the solver/lowering logic, embedded in the on-disk VC cache
/// header so that cached verdicts produced by a different solver generation
/// are invalidated instead of silently replayed.
///
/// Computed by this crate's build script as a hash of every `src/*.rs` file:
/// a verdict-affecting solver change cannot ship without editing a source
/// file, so it cannot ship without invalidating existing caches. (History:
/// 1 = PR-2 solver, manual; 2 = incremental sessions, manual; source-hashed
/// since the structure-scoped warm pools.)
pub const SOLVER_LOGIC_FINGERPRINT: u64 = parse_hex_u64(env!("IDS_SOLVER_LOGIC_FINGERPRINT"));
