//! Propositional-plus-theory models returned by the solver for satisfiable
//! queries.
//!
//! When verification fails, the model over the theory atoms of the lowered
//! verification condition is the raw material for the counterexample report
//! shown to the verification engineer (which program-level facts were true on
//! the failing path).

use crate::term::{TermId, TermManager};

/// A model: the truth value the solver assigned to every theory atom.
#[derive(Clone, Debug, Default)]
pub struct Model {
    assignments: Vec<(TermId, bool)>,
}

impl Model {
    /// Creates a model from atom assignments.
    pub fn new(mut assignments: Vec<(TermId, bool)>) -> Model {
        assignments.sort();
        assignments.dedup();
        Model { assignments }
    }

    /// The truth value assigned to the given atom, if it was assigned.
    pub fn value_of(&self, atom: TermId) -> Option<bool> {
        self.assignments
            .iter()
            .find(|(t, _)| *t == atom)
            .map(|&(_, b)| b)
    }

    /// Iterates over `(atom, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(TermId, bool)> {
        self.assignments.iter()
    }

    /// Number of assigned atoms.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True if the model assigns no atoms.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Renders the model with the atoms pretty-printed in SMT-LIB syntax.
    pub fn render(&self, tm: &TermManager) -> String {
        let mut out = String::new();
        for &(t, b) in &self.assignments {
            out.push_str(&format!(
                "  {} {}\n",
                if b { "✓" } else { "✗" },
                crate::smtlib::term_to_smtlib(tm, t)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn model_lookup() {
        let mut tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let q = tm.var("q", Sort::Bool);
        let m = Model::new(vec![(p, true), (q, false)]);
        assert_eq!(m.value_of(p), Some(true));
        assert_eq!(m.value_of(q), Some(false));
        assert_eq!(m.len(), 2);
        let r = tm.var("r", Sort::Bool);
        assert_eq!(m.value_of(r), None);
    }
}
