//! Bounded quantifier handling for the *quantified* (Dafny-style) encoding
//! used in the paper's RQ3 comparison.
//!
//! The decidable FWYB pipeline never produces quantifiers; this module exists
//! only so the repository can reproduce the experiment that contrasts
//! decidable verification conditions with the quantifier-laden conditions a
//! Dafny-like frontend generates for allocation and frame reasoning.
//!
//! Strategy: polarity-directed ground instantiation.
//! * a `forall` in *negative* polarity is Skolemized (bound variables replaced
//!   by fresh constants) — sound and complete;
//! * a `forall` in *positive* polarity is replaced by the finite conjunction of
//!   its instances over all ground terms of the bound sorts occurring in the
//!   problem (several rounds, with a cap) — sound for `Unsat` answers but
//!   incomplete, which is exactly the predictability gap the paper criticises.

use std::collections::HashMap;

use crate::term::{Op, Sort, TermId, TermManager};

/// Configuration of the instantiation engine.
#[derive(Clone, Copy, Debug)]
pub struct QuantConfig {
    /// Number of instantiation rounds.
    pub rounds: usize,
    /// Maximum number of instances generated per `forall` occurrence per round.
    pub max_instances_per_forall: usize,
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig {
            rounds: 2,
            max_instances_per_forall: 2000,
        }
    }
}

/// Eliminates quantifiers from the assertions by Skolemization and bounded
/// ground instantiation.
///
/// Returns the new assertion list plus a flag that is true when the
/// elimination was *approximate* (some positive `forall` was replaced by a
/// finite instantiation, or a quantifier could not be handled): in that case a
/// `Sat` answer on the result does not transfer back to the original formula,
/// while `Unsat` does.
pub fn eliminate_quantifiers(
    tm: &mut TermManager,
    assertions: &[TermId],
    config: QuantConfig,
) -> (Vec<TermId>, bool) {
    let mut current: Vec<TermId> = assertions.to_vec();
    let mut approximate = false;
    for _ in 0..config.rounds.max(1) {
        if current.iter().all(|&a| !contains_forall(tm, a)) {
            break;
        }
        let pool = ground_pool(tm, &current);
        current = current
            .iter()
            .map(|&a| transform(tm, a, true, &pool, &config, &mut approximate))
            .collect();
    }
    if current.iter().any(|&a| contains_forall(tm, a)) {
        approximate = true;
    }
    (current, approximate)
}

/// Returns true if the term contains a `forall`.
pub fn contains_forall(tm: &TermManager, t: TermId) -> bool {
    tm.subterms(&[t])
        .iter()
        .any(|&s| matches!(tm.term(s).op, Op::Forall(_)))
}

fn ground_pool(tm: &TermManager, roots: &[TermId]) -> HashMap<Sort, Vec<TermId>> {
    let mut pool: HashMap<Sort, Vec<TermId>> = HashMap::new();
    // Names of variables bound anywhere — excluded from the pool, since they
    // are not ground.
    let mut bound_names: Vec<String> = Vec::new();
    for t in tm.subterms(roots) {
        if let Op::Forall(bound) = &tm.term(t).op {
            bound_names.extend(bound.iter().map(|(n, _)| n.clone()));
        }
    }
    for t in tm.subterms(roots) {
        let term = tm.term(t);
        // A pooled term must not mention any bound variable anywhere inside.
        let mentions_bound = tm.subterms(&[t]).iter().any(|&s| match &tm.term(s).op {
            Op::Var(n) => bound_names.contains(n),
            _ => false,
        });
        let is_groundish = term.args.is_empty() || matches!(term.op, Op::Select | Op::App(_));
        if !mentions_bound
            && is_groundish
            && matches!(term.sort, Sort::Loc | Sort::Int | Sort::Real)
        {
            let v = pool.entry(term.sort.clone()).or_default();
            if !v.contains(&t) {
                v.push(t);
            }
        }
    }
    pool
}

fn transform(
    tm: &mut TermManager,
    t: TermId,
    positive: bool,
    pool: &HashMap<Sort, Vec<TermId>>,
    config: &QuantConfig,
    approximate: &mut bool,
) -> TermId {
    let term = tm.term(t).clone();
    match &term.op {
        Op::Forall(bound) => {
            let body = term.args[0];
            if positive {
                // Instantiate over all tuples from the pool (bounded).
                *approximate = true;
                let mut instances = Vec::new();
                let tuples = cartesian(tm, bound, pool);
                for subst in tuples.into_iter().take(config.max_instances_per_forall) {
                    let inst = tm.substitute(body, &subst);
                    let inst = transform(tm, inst, positive, pool, config, approximate);
                    instances.push(inst);
                }
                if instances.is_empty() {
                    tm.tru()
                } else {
                    tm.and(instances)
                }
            } else {
                // Skolemize: replace bound variables by fresh constants.
                let mut subst = HashMap::new();
                for (name, sort) in bound {
                    let sk = tm.fresh_var(&format!("sk_{}", name), sort.clone());
                    subst.insert(name.clone(), sk);
                }
                let inst = tm.substitute(body, &subst);
                transform(tm, inst, positive, pool, config, approximate)
            }
        }
        Op::Not => {
            let inner = transform(tm, term.args[0], !positive, pool, config, approximate);
            tm.not(inner)
        }
        Op::Implies => {
            let lhs = transform(tm, term.args[0], !positive, pool, config, approximate);
            let rhs = transform(tm, term.args[1], positive, pool, config, approximate);
            tm.implies(lhs, rhs)
        }
        Op::And | Op::Or => {
            let args: Vec<TermId> = term
                .args
                .iter()
                .map(|&a| transform(tm, a, positive, pool, config, approximate))
                .collect();
            if term.op == Op::And {
                tm.and(args)
            } else {
                tm.or(args)
            }
        }
        Op::Iff | Op::Ite => {
            // Mixed polarity below — only safe if quantifier-free below; the
            // caller marks the run approximate if a quantifier survives.
            t
        }
        _ => t,
    }
}

fn cartesian(
    tm: &TermManager,
    bound: &[(String, Sort)],
    pool: &HashMap<Sort, Vec<TermId>>,
) -> Vec<HashMap<String, TermId>> {
    let _ = tm;
    let mut result: Vec<HashMap<String, TermId>> = vec![HashMap::new()];
    for (name, sort) in bound {
        let candidates = pool.get(sort).cloned().unwrap_or_default();
        let mut next = Vec::new();
        for partial in &result {
            for &c in &candidates {
                let mut m = partial.clone();
                m.insert(name.clone(), c);
                next.push(m);
            }
        }
        result = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;
    use crate::solver::{Solver, SolverConfig};

    #[test]
    fn positive_forall_instantiation_proves() {
        // forall x. p(x)   together with   not p(a)   is unsat.
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::Loc);
        let bx = tm.var("x", Sort::Loc);
        let px = tm.app("p", vec![bx], Sort::Bool);
        let all = tm.forall(vec![("x".into(), Sort::Loc)], px);
        let pa = tm.app("p", vec![a], Sort::Bool);
        let npa = tm.not(pa);
        let mut solver = Solver::with_config(SolverConfig::quantified());
        assert_eq!(solver.check(&mut tm, &[all, npa]), SatResult::Unsat);
    }

    #[test]
    fn negative_forall_skolemizes() {
        // not (forall x. p(x))  alone is satisfiable.
        let mut tm = TermManager::new();
        let bx = tm.var("x", Sort::Loc);
        let px = tm.app("p", vec![bx], Sort::Bool);
        let all = tm.forall(vec![("x".into(), Sort::Loc)], px);
        let nall = tm.not(all);
        let mut solver = Solver::with_config(SolverConfig::quantified());
        assert_eq!(solver.check(&mut tm, &[nall]), SatResult::Sat);
    }

    #[test]
    fn frame_style_quantifier() {
        // forall i. i != x -> f'(i) = f(i),  together with  y != x and
        // f'(y) != f(y)  is unsat.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let i = tm.var("i", Sort::Loc);
        let fi = tm.app("f", vec![i], Sort::Int);
        let fpi = tm.app("fp", vec![i], Sort::Int);
        let ne = tm.neq(i, x);
        let eq = tm.eq(fpi, fi);
        let body = tm.implies(ne, eq);
        let frame = tm.forall(vec![("i".into(), Sort::Loc)], body);
        let fy = tm.app("f", vec![y], Sort::Int);
        let fpy = tm.app("fp", vec![y], Sort::Int);
        let ne_xy = tm.neq(y, x);
        let ne_f = tm.neq(fpy, fy);
        let mut solver = Solver::with_config(SolverConfig::quantified());
        assert_eq!(
            solver.check(&mut tm, &[frame, ne_xy, ne_f]),
            SatResult::Unsat
        );
    }
}
