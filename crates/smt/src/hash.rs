//! Stable structural hashing of terms.
//!
//! The batch-verification driver (`ids-driver`) memoizes solved verification
//! conditions in a content-addressed cache that is persisted to disk between
//! runs. The cache key must therefore be a *stable* hash of the term's
//! structure: independent of [`TermId`] numbering (ids depend on creation
//! order), of the process (no randomized hasher state), and of the platform
//! (explicit little-endian byte serialization).
//!
//! [`structural_hash`] folds the term DAG bottom-up with memoization. Each
//! node's digest covers its operator (including payloads such as variable
//! names, literals and sorts) and the digests of its arguments, mixed with two
//! independently seeded FNV-1a streams that are concatenated into a 128-bit
//! key — wide enough that accidental collisions across a realistic cache are
//! not a concern.

use crate::term::{Op, TermId, TermManager};

/// A single FNV-1a 64-bit stream.
#[derive(Clone, Copy)]
struct Fnv(u64);

const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Fnv {
    fn new(seed: u64) -> Fnv {
        Fnv(seed)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        // Terminate strings so ("ab", "c") and ("a", "bc") differ.
        self.write(&[0xff]);
    }
}

/// Writes the operator tag and its payload (but not the arguments).
fn write_op(h: &mut Fnv, op: &Op) {
    match op {
        Op::True => h.write(&[0]),
        Op::False => h.write(&[1]),
        Op::Not => h.write(&[2]),
        Op::And => h.write(&[3]),
        Op::Or => h.write(&[4]),
        Op::Implies => h.write(&[5]),
        Op::Iff => h.write(&[6]),
        Op::Ite => h.write(&[7]),
        Op::Eq => h.write(&[8]),
        Op::Distinct => h.write(&[9]),
        Op::Var(name) => {
            h.write(&[10]);
            h.write_str(name);
        }
        Op::IntLit(n) => {
            h.write(&[11]);
            h.write(&n.to_le_bytes());
        }
        Op::RealLit(r) => {
            h.write(&[12]);
            h.write(&r.numer().to_le_bytes());
            h.write(&r.denom().to_le_bytes());
        }
        Op::Add => h.write(&[13]),
        Op::Sub => h.write(&[14]),
        Op::Neg => h.write(&[15]),
        Op::MulConst(k) => {
            h.write(&[16]);
            h.write(&k.numer().to_le_bytes());
            h.write(&k.denom().to_le_bytes());
        }
        Op::Le => h.write(&[17]),
        Op::Lt => h.write(&[18]),
        Op::Select => h.write(&[19]),
        Op::Store => h.write(&[20]),
        Op::EmptySet(sort) => {
            h.write(&[21]);
            h.write_str(&sort.to_string());
        }
        Op::Singleton => h.write(&[22]),
        Op::Union => h.write(&[23]),
        Op::Inter => h.write(&[24]),
        Op::Diff => h.write(&[25]),
        Op::Member => h.write(&[26]),
        Op::Subset => h.write(&[27]),
        Op::MapIte => h.write(&[28]),
        Op::App(name) => {
            h.write(&[29]);
            h.write_str(name);
        }
        Op::Forall(bound) => {
            h.write(&[30]);
            h.write_u64(bound.len() as u64);
            for (name, sort) in bound {
                h.write_str(name);
                h.write_str(&sort.to_string());
            }
        }
    }
}

/// Computes the 128-bit stable structural hash of a term.
///
/// Two terms receive the same hash exactly when they have the same structure
/// (operators, payloads, sorts and argument order), regardless of the
/// [`TermManager`] they live in or the order in which sub-terms were created.
///
/// # Example
/// ```
/// use ids_smt::{structural_hash, Sort, TermManager};
///
/// let mut tm1 = TermManager::new();
/// let x = tm1.var("x", Sort::Int);
/// let y = tm1.var("y", Sort::Int);
/// let s1 = tm1.add(x, y);
///
/// let mut tm2 = TermManager::new();
/// let _noise = tm2.var("zzz", Sort::Bool); // different id numbering
/// let y = tm2.var("y", Sort::Int);
/// let x = tm2.var("x", Sort::Int);
/// let s2 = tm2.add(x, y);
///
/// assert_eq!(structural_hash(&tm1, s1), structural_hash(&tm2, s2));
/// ```
pub fn structural_hash(tm: &TermManager, root: TermId) -> u128 {
    let mut memo: Vec<Option<u128>> = vec![None; tm.len()];
    let mut stack: Vec<TermId> = vec![root];
    while let Some(&t) = stack.last() {
        if memo[t.0 as usize].is_some() {
            stack.pop();
            continue;
        }
        let term = tm.term(t);
        let mut ready = true;
        for &a in &term.args {
            if memo[a.0 as usize].is_none() {
                ready = false;
                stack.push(a);
            }
        }
        if !ready {
            continue;
        }
        // For commutative operators the child hashes are sorted before
        // mixing: `eq` and friends normalize their argument order by TermId
        // (a creation-order artifact), so an order-sensitive hash would leak
        // id numbering back into the key. Sorting is sound exactly because
        // the operator is commutative — equal keys still imply equivalent
        // formulas.
        let commutative = matches!(
            term.op,
            Op::And | Op::Or | Op::Eq | Op::Iff | Op::Distinct | Op::Add | Op::Union | Op::Inter
        );
        let mut children: Vec<u128> = term
            .args
            .iter()
            .map(|a| memo[a.0 as usize].expect("child hashed"))
            .collect();
        if commutative {
            children.sort_unstable();
        }
        // Two independently seeded streams; their concatenation is the key.
        let mut lo = Fnv::new(0xcbf2_9ce4_8422_2325);
        let mut hi = Fnv::new(0x8422_2325_cbf2_9ce4);
        for h in [&mut lo, &mut hi] {
            write_op(h, &term.op);
            h.write_str(&term.sort.to_string());
            h.write_u64(children.len() as u64);
            for &child in &children {
                h.write_u64(child as u64);
                h.write_u64((child >> 64) as u64);
            }
        }
        memo[t.0 as usize] = Some((u128::from(hi.0) << 64) | u128::from(lo.0));
        stack.pop();
    }
    memo[root.0 as usize].expect("root hashed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn independent_of_creation_order_and_manager() {
        let mut tm1 = TermManager::new();
        let x = tm1.var("x", Sort::Loc);
        let f = tm1.app("f", vec![x], Sort::Int);
        let one = tm1.int(1);
        let e1 = tm1.eq(f, one);

        let mut tm2 = TermManager::new();
        let _pad = tm2.var("pad", Sort::Bool);
        let _pad2 = tm2.int(42);
        let one = tm2.int(1);
        let x = tm2.var("x", Sort::Loc);
        let f = tm2.app("f", vec![x], Sort::Int);
        let e2 = tm2.eq(f, one);

        assert_ne!(e1.0, e2.0, "ids should differ, that is the point");
        assert_eq!(structural_hash(&tm1, e1), structural_hash(&tm2, e2));
    }

    #[test]
    fn distinguishes_names_and_literals() {
        let mut tm = TermManager::new();
        let x_int = tm.var("x", Sort::Int);
        let y_int = tm.var("y", Sort::Int);
        assert_ne!(structural_hash(&tm, x_int), structural_hash(&tm, y_int));
        let one = tm.int(1);
        let two = tm.int(2);
        assert_ne!(structural_hash(&tm, one), structural_hash(&tm, two));
        let a1 = tm.add(x_int, one);
        let a2 = tm.add(x_int, two);
        let a1b = tm.add(x_int, one);
        assert_ne!(structural_hash(&tm, a1), structural_hash(&tm, a2));
        assert_eq!(structural_hash(&tm, a1), structural_hash(&tm, a1b));
    }

    #[test]
    fn argument_order_matters_for_noncommutative_ops() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let y = tm.var("y", Sort::Int);
        let xy = tm.sub(x, y);
        let yx = tm.sub(y, x);
        assert_ne!(structural_hash(&tm, xy), structural_hash(&tm, yx));
        let lt = tm.lt(x, y);
        let gt = tm.lt(y, x);
        assert_ne!(structural_hash(&tm, lt), structural_hash(&tm, gt));
    }

    #[test]
    fn commutative_ops_hash_order_insensitively() {
        // `eq` normalizes its arguments by TermId, so the same formula built
        // in managers with different creation orders yields syntactically
        // swapped Eq nodes; the hash must not see the difference.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let e1 = tm.mk(Op::Eq, vec![x, y], Sort::Bool);
        let e2 = tm.mk(Op::Eq, vec![y, x], Sort::Bool);
        assert_eq!(structural_hash(&tm, e1), structural_hash(&tm, e2));
        let member = x_in(&mut tm, x);
        let a = tm.and2(e1, member);
        let b_inner = x_in(&mut tm, x);
        let b = tm.mk(Op::And, vec![b_inner, e1], Sort::Bool);
        assert_eq!(structural_hash(&tm, a), structural_hash(&tm, b));
    }

    fn x_in(tm: &mut TermManager, x: TermId) -> TermId {
        let s = tm.var("S", Sort::set_of(Sort::Loc));
        tm.member(x, s)
    }

    #[test]
    fn deep_shared_dag_hashes_without_stack_overflow() {
        let mut tm = TermManager::new();
        let mut t = tm.var("x", Sort::Int);
        let one = tm.int(1);
        for _ in 0..50_000 {
            t = tm.add(t, one);
        }
        // Also exercises memoized sharing: every prefix is a sub-term.
        let h1 = structural_hash(&tm, t);
        let h2 = structural_hash(&tm, t);
        assert_eq!(h1, h2);
    }

    #[test]
    fn forall_binder_is_hashed() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let p = tm.app("p", vec![x], Sort::Bool);
        let all_x = tm.forall(vec![("x".into(), Sort::Loc)], p);
        let all_y = tm.forall(vec![("y".into(), Sort::Loc)], p);
        assert_ne!(structural_hash(&tm, all_x), structural_hash(&tm, all_y));
    }
}
