//! Hash-consed terms and sorts.
//!
//! All formulas handled by the solver are ground terms of sort [`Sort::Bool`]
//! built through a [`TermManager`]. Terms are immutable, deduplicated
//! (hash-consed) and referenced by the copyable index [`TermId`], which makes
//! structural equality and sub-term sharing cheap — both matter because FWYB
//! verification conditions share large sub-formulas across asserts.

use std::collections::HashMap;
use std::fmt;

use crate::rational::Rat;

/// The sort (type) of a term.
///
/// `Loc` is the foreground sort of heap objects (`C?` in the paper — the
/// distinguished constant `nil` also has this sort). `Set` and `Array` are the
/// container sorts used to model ghost monadic maps and heap fields.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Sort {
    /// Booleans.
    Bool,
    /// Mathematical integers.
    Int,
    /// Rationals/reals (used for `rank` maps).
    Real,
    /// Heap locations (including `nil`).
    Loc,
    /// Finite sets of elements of the given sort.
    Set(Box<Sort>),
    /// Total maps (arrays) from the first sort to the second.
    Array(Box<Sort>, Box<Sort>),
}

impl Sort {
    /// Convenience constructor for `Set(elem)`.
    pub fn set_of(elem: Sort) -> Sort {
        Sort::Set(Box::new(elem))
    }

    /// Convenience constructor for `Array(from, to)`.
    pub fn array_of(from: Sort, to: Sort) -> Sort {
        Sort::Array(Box::new(from), Box::new(to))
    }

    /// True if this is a numeric sort (Int or Real).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Sort::Int | Sort::Real)
    }

    /// True if this is a set or array sort.
    pub fn is_container(&self) -> bool {
        matches!(self, Sort::Set(_) | Sort::Array(_, _))
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::Int => write!(f, "Int"),
            Sort::Real => write!(f, "Real"),
            Sort::Loc => write!(f, "Loc"),
            Sort::Set(e) => write!(f, "(Set {})", e),
            Sort::Array(a, b) => write!(f, "(Array {} {})", a, b),
        }
    }
}

/// The head operator of a term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Boolean constant `true`.
    True,
    /// Boolean constant `false`.
    False,
    /// Negation (1 argument).
    Not,
    /// N-ary conjunction.
    And,
    /// N-ary disjunction.
    Or,
    /// Implication (2 arguments).
    Implies,
    /// Bi-implication (2 arguments).
    Iff,
    /// If-then-else (3 arguments); result sort is the branch sort.
    Ite,
    /// Equality (2 arguments of equal sort).
    Eq,
    /// Pairwise distinctness (n arguments).
    Distinct,
    /// A free constant / variable with the given name.
    Var(String),
    /// An integer literal.
    IntLit(i128),
    /// A rational literal.
    RealLit(Rat),
    /// N-ary addition.
    Add,
    /// Binary subtraction.
    Sub,
    /// Unary negation of a numeric term.
    Neg,
    /// Multiplication by a rational constant (1 argument) — keeps arithmetic linear.
    MulConst(Rat),
    /// Less-or-equal (2 numeric arguments).
    Le,
    /// Strict less-than (2 numeric arguments).
    Lt,
    /// Array read: `Select(a, i)`.
    Select,
    /// Array write: `Store(a, i, v)`.
    Store,
    /// The empty set of the given element sort (0 arguments).
    EmptySet(Sort),
    /// Singleton set `{x}` (1 argument).
    Singleton,
    /// Set union (2 arguments).
    Union,
    /// Set intersection (2 arguments).
    Inter,
    /// Set difference (2 arguments).
    Diff,
    /// Set membership `Member(x, s)` (2 arguments).
    Member,
    /// Subset `Subset(s, t)` (2 arguments).
    Subset,
    /// Pointwise frame update `MapIte(modset, m_new, m_old)`: the map that
    /// equals `m_new` on elements of `modset` and `m_old` elsewhere. This is
    /// the "parameterized map update" of the generalized array theory.
    MapIte,
    /// Application of the named uninterpreted function to the arguments.
    App(String),
    /// Universal quantification over the named, sorted bound variables; the
    /// single argument is the body. Bound variables occur in the body as
    /// [`Op::Var`] terms with the same names. Only produced by the quantified
    /// (Dafny-style) encoding used for RQ3.
    Forall(Vec<(String, Sort)>),
}

/// A term: an operator applied to argument terms, with a result sort.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Term {
    /// The head operator.
    pub op: Op,
    /// The argument terms.
    pub args: Vec<TermId>,
    /// The sort of the term.
    pub sort: Sort,
}

/// An index identifying a hash-consed term inside its [`TermManager`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Owns and deduplicates all terms of a solving session.
///
/// # Example
/// ```
/// use ids_smt::{TermManager, Sort};
/// let mut tm = TermManager::new();
/// let x = tm.var("x", Sort::Int);
/// let y = tm.var("y", Sort::Int);
/// let e1 = tm.add(x, y);
/// let e2 = tm.add(x, y);
/// assert_eq!(e1, e2); // hash-consed
/// ```
#[derive(Clone, Debug, Default)]
pub struct TermManager {
    terms: Vec<Term>,
    // The sort is part of the interning key so that terms that agree on
    // operator and arguments but differ in sort stay distinct — most
    // importantly `Op::Var` constants, where the sort is the only thing
    // distinguishing `x: Loc` from `x: Int`.
    table: HashMap<(Op, Vec<TermId>, Sort), TermId>,
    fresh_counter: u64,
}

impl TermManager {
    /// Creates an empty term manager.
    pub fn new() -> TermManager {
        TermManager::default()
    }

    /// Number of distinct terms created so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms have been created.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the term structure behind an id.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// Returns the sort of a term.
    pub fn sort(&self, id: TermId) -> &Sort {
        &self.terms[id.0 as usize].sort
    }

    /// Iterates over all `(id, term)` pairs created so far.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }

    /// Interns a term, reusing an existing identical term when possible.
    pub fn mk(&mut self, op: Op, args: Vec<TermId>, sort: Sort) -> TermId {
        let key = (op.clone(), args.clone(), sort.clone());
        if let Some(&id) = self.table.get(&key) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(Term { op, args, sort });
        self.table.insert(key, id);
        id
    }

    /// Returns a variable name guaranteed not to have been produced before by
    /// this method (used for Skolem witnesses and Tseitin-style fresh symbols).
    pub fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh_counter += 1;
        format!("{}!{}", prefix, self.fresh_counter)
    }

    /// Creates a fresh variable with the given prefix and sort.
    pub fn fresh_var(&mut self, prefix: &str, sort: Sort) -> TermId {
        let name = self.fresh_name(prefix);
        self.var(&name, sort)
    }

    // ---------------------------------------------------------------- core

    /// The constant `true`.
    pub fn tru(&mut self) -> TermId {
        self.mk(Op::True, vec![], Sort::Bool)
    }

    /// The constant `false`.
    pub fn fls(&mut self) -> TermId {
        self.mk(Op::False, vec![], Sort::Bool)
    }

    /// A named free constant of the given sort.
    pub fn var(&mut self, name: &str, sort: Sort) -> TermId {
        self.mk(Op::Var(name.to_string()), vec![], sort)
    }

    /// Boolean negation, with double-negation and constant folding.
    pub fn not(&mut self, t: TermId) -> TermId {
        match self.term(t).op.clone() {
            Op::True => self.fls(),
            Op::False => self.tru(),
            Op::Not => self.term(t).args[0],
            _ => self.mk(Op::Not, vec![t], Sort::Bool),
        }
    }

    /// N-ary conjunction with flattening and unit/zero folding.
    pub fn and(&mut self, ts: Vec<TermId>) -> TermId {
        let mut flat = Vec::new();
        for t in ts {
            match self.term(t).op {
                Op::True => {}
                Op::False => return self.fls(),
                Op::And => flat.extend(self.term(t).args.clone()),
                _ => flat.push(t),
            }
        }
        flat.dedup();
        match flat.len() {
            0 => self.tru(),
            1 => flat[0],
            _ => self.mk(Op::And, flat, Sort::Bool),
        }
    }

    /// N-ary disjunction with flattening and unit/zero folding.
    pub fn or(&mut self, ts: Vec<TermId>) -> TermId {
        let mut flat = Vec::new();
        for t in ts {
            match self.term(t).op {
                Op::False => {}
                Op::True => return self.tru(),
                Op::Or => flat.extend(self.term(t).args.clone()),
                _ => flat.push(t),
            }
        }
        flat.dedup();
        match flat.len() {
            0 => self.fls(),
            1 => flat[0],
            _ => self.mk(Op::Or, flat, Sort::Bool),
        }
    }

    /// Binary conjunction.
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.and(vec![a, b])
    }

    /// Binary disjunction.
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.or(vec![a, b])
    }

    /// Implication `a => b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        if self.term(a).op == Op::True {
            return b;
        }
        if self.term(a).op == Op::False {
            return self.tru();
        }
        if self.term(b).op == Op::True {
            return self.tru();
        }
        self.mk(Op::Implies, vec![a, b], Sort::Bool)
    }

    /// Bi-implication `a <=> b`.
    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.tru();
        }
        self.mk(Op::Iff, vec![a, b], Sort::Bool)
    }

    /// If-then-else. For Boolean branches this is kept as `Ite` and handled by
    /// the CNF conversion; for other sorts it is eliminated by the lowering
    /// pass.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        match self.term(c).op {
            Op::True => return t,
            Op::False => return e,
            _ => {}
        }
        if t == e {
            return t;
        }
        let sort = self.sort(t).clone();
        debug_assert_eq!(&sort, self.sort(e), "ite branch sorts differ");
        self.mk(Op::Ite, vec![c, t, e], sort)
    }

    /// Equality. Boolean equalities are turned into `Iff`.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.tru();
        }
        if self.sort(a) == &Sort::Bool {
            return self.iff(a, b);
        }
        // Order arguments for better sharing.
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        // Constant folding on numeric literals.
        if let (Op::IntLit(x), Op::IntLit(y)) = (&self.term(a).op, &self.term(b).op) {
            return if x == y { self.tru() } else { self.fls() };
        }
        self.mk(Op::Eq, vec![a, b], Sort::Bool)
    }

    /// Disequality `a != b`.
    pub fn neq(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Pairwise distinctness of all arguments.
    pub fn distinct(&mut self, ts: Vec<TermId>) -> TermId {
        if ts.len() <= 1 {
            return self.tru();
        }
        self.mk(Op::Distinct, ts, Sort::Bool)
    }

    // ---------------------------------------------------------- arithmetic

    /// Integer literal.
    pub fn int(&mut self, n: i128) -> TermId {
        self.mk(Op::IntLit(n), vec![], Sort::Int)
    }

    /// Rational literal.
    pub fn real(&mut self, r: Rat) -> TermId {
        self.mk(Op::RealLit(r), vec![], Sort::Real)
    }

    fn numeric_sort(&self, ts: &[TermId]) -> Sort {
        if ts.iter().any(|t| self.sort(*t) == &Sort::Real) {
            Sort::Real
        } else {
            Sort::Int
        }
    }

    /// Binary addition.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.add_many(vec![a, b])
    }

    /// N-ary addition.
    pub fn add_many(&mut self, ts: Vec<TermId>) -> TermId {
        let sort = self.numeric_sort(&ts);
        if ts.len() == 1 {
            return ts[0];
        }
        self.mk(Op::Add, ts, sort)
    }

    /// Binary subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let sort = self.numeric_sort(&[a, b]);
        self.mk(Op::Sub, vec![a, b], sort)
    }

    /// Numeric negation.
    pub fn neg(&mut self, a: TermId) -> TermId {
        let sort = self.sort(a).clone();
        self.mk(Op::Neg, vec![a], sort)
    }

    /// Multiplication of a term by a rational constant.
    pub fn mul_const(&mut self, k: Rat, a: TermId) -> TermId {
        if k == Rat::ONE {
            return a;
        }
        let sort = if k.is_integer() && self.sort(a) == &Sort::Int {
            Sort::Int
        } else {
            Sort::Real
        };
        self.mk(Op::MulConst(k), vec![a], sort)
    }

    /// `a <= b`.
    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk(Op::Le, vec![a, b], Sort::Bool)
    }

    /// `a < b`.
    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk(Op::Lt, vec![a, b], Sort::Bool)
    }

    /// `a >= b` (normalized to `b <= a`).
    pub fn ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.le(b, a)
    }

    /// `a > b` (normalized to `b < a`).
    pub fn gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.lt(b, a)
    }

    // ------------------------------------------------------------- arrays

    /// Array read `a[i]`.
    pub fn select(&mut self, a: TermId, i: TermId) -> TermId {
        let sort = match self.sort(a) {
            Sort::Array(_, to) => (**to).clone(),
            s => panic!("select on non-array sort {}", s),
        };
        self.mk(Op::Select, vec![a, i], sort)
    }

    /// Array write `a[i := v]`.
    pub fn store(&mut self, a: TermId, i: TermId, v: TermId) -> TermId {
        let sort = self.sort(a).clone();
        self.mk(Op::Store, vec![a, i, v], sort)
    }

    /// Pointwise frame update `ite(modset, m_new, m_old)` over whole maps.
    pub fn map_ite(&mut self, modset: TermId, m_new: TermId, m_old: TermId) -> TermId {
        let sort = self.sort(m_old).clone();
        self.mk(Op::MapIte, vec![modset, m_new, m_old], sort)
    }

    // --------------------------------------------------------------- sets

    /// The empty set of the given element sort.
    pub fn empty_set(&mut self, elem: Sort) -> TermId {
        let sort = Sort::set_of(elem.clone());
        self.mk(Op::EmptySet(elem), vec![], sort)
    }

    /// The singleton set `{x}`.
    pub fn singleton(&mut self, x: TermId) -> TermId {
        let sort = Sort::set_of(self.sort(x).clone());
        self.mk(Op::Singleton, vec![x], sort)
    }

    /// Set union.
    pub fn union(&mut self, a: TermId, b: TermId) -> TermId {
        let sort = self.sort(a).clone();
        self.mk(Op::Union, vec![a, b], sort)
    }

    /// Set intersection.
    pub fn inter(&mut self, a: TermId, b: TermId) -> TermId {
        let sort = self.sort(a).clone();
        self.mk(Op::Inter, vec![a, b], sort)
    }

    /// Set difference `a \ b`.
    pub fn diff(&mut self, a: TermId, b: TermId) -> TermId {
        let sort = self.sort(a).clone();
        self.mk(Op::Diff, vec![a, b], sort)
    }

    /// Set membership `x ∈ s`.
    pub fn member(&mut self, x: TermId, s: TermId) -> TermId {
        self.mk(Op::Member, vec![x, s], Sort::Bool)
    }

    /// Subset `s ⊆ t`.
    pub fn subset(&mut self, s: TermId, t: TermId) -> TermId {
        self.mk(Op::Subset, vec![s, t], Sort::Bool)
    }

    // ---------------------------------------------------- applications etc.

    /// Application of the named uninterpreted function.
    pub fn app(&mut self, name: &str, args: Vec<TermId>, sort: Sort) -> TermId {
        self.mk(Op::App(name.to_string()), args, sort)
    }

    /// Universal quantification (quantified encoding mode only).
    pub fn forall(&mut self, bound: Vec<(String, Sort)>, body: TermId) -> TermId {
        if bound.is_empty() {
            return body;
        }
        self.mk(Op::Forall(bound), vec![body], Sort::Bool)
    }

    /// Substitutes, in `t`, every occurrence of variables named in `map` by
    /// the associated term. Used for quantifier instantiation.
    pub fn substitute(&mut self, t: TermId, map: &HashMap<String, TermId>) -> TermId {
        let mut cache: HashMap<TermId, TermId> = HashMap::new();
        self.subst_rec(t, map, &mut cache)
    }

    fn subst_rec(
        &mut self,
        t: TermId,
        map: &HashMap<String, TermId>,
        cache: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        if let Some(&r) = cache.get(&t) {
            return r;
        }
        let term = self.term(t).clone();
        let result = match &term.op {
            Op::Var(name) => {
                if let Some(&r) = map.get(name) {
                    r
                } else {
                    t
                }
            }
            Op::Forall(bound) => {
                // Do not substitute shadowed variables.
                let mut inner = map.clone();
                for (name, _) in bound {
                    inner.remove(name);
                }
                let body = self.subst_rec(term.args[0], &inner, &mut HashMap::new());
                self.mk(term.op.clone(), vec![body], term.sort.clone())
            }
            _ => {
                let args: Vec<TermId> = term
                    .args
                    .iter()
                    .map(|a| self.subst_rec(*a, map, cache))
                    .collect();
                if args == term.args {
                    t
                } else {
                    self.mk(term.op.clone(), args, term.sort.clone())
                }
            }
        };
        cache.insert(t, result);
        result
    }

    /// Imports terms from another manager into this one, returning the ids of
    /// `roots` in `self`. Structurally identical terms — whether imported
    /// earlier, from a different source manager, or built directly — map to
    /// the same id (interning is the cross-manager hash-consing the
    /// structure-scoped solver pools rely on: the hypothesis prelude shared
    /// by all methods of a structure collapses to one set of term ids).
    ///
    /// `memo` caches source→destination id mappings and may be reused across
    /// calls importing from the *same* source manager.
    ///
    /// The destination's fresh-name counter is raised to at least the
    /// source's, so names minted here after the import cannot collide with
    /// imported fresh names.
    pub fn import(
        &mut self,
        src: &TermManager,
        roots: &[TermId],
        memo: &mut HashMap<TermId, TermId>,
    ) -> Vec<TermId> {
        self.fresh_counter = self.fresh_counter.max(src.fresh_counter);
        // Iterative post-order over the source DAG (formulas can be deep).
        for &root in roots {
            let mut stack = vec![root];
            while let Some(&t) = stack.last() {
                if memo.contains_key(&t) {
                    stack.pop();
                    continue;
                }
                let term = src.term(t);
                let mut ready = true;
                for &a in &term.args {
                    if !memo.contains_key(&a) {
                        ready = false;
                        stack.push(a);
                    }
                }
                if !ready {
                    continue;
                }
                let args: Vec<TermId> = term.args.iter().map(|a| memo[a]).collect();
                let id = self.mk(term.op.clone(), args, term.sort.clone());
                memo.insert(t, id);
                stack.pop();
            }
        }
        roots.iter().map(|r| memo[r]).collect()
    }

    /// Collects the set of all sub-terms of `roots` (including the roots), in
    /// no particular order.
    pub fn subterms(&self, roots: &[TermId]) -> Vec<TermId> {
        let mut seen = vec![false; self.terms.len()];
        let mut stack: Vec<TermId> = roots.to_vec();
        let mut out = Vec::new();
        while let Some(t) = stack.pop() {
            let idx = t.0 as usize;
            if seen[idx] {
                continue;
            }
            seen[idx] = true;
            out.push(t);
            stack.extend(self.term(t).args.iter().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let y = tm.var("y", Sort::Int);
        assert_eq!(tm.add(x, y), tm.add(x, y));
        assert_ne!(tm.add(x, y), tm.add(y, x));
    }

    #[test]
    fn var_dedup_is_per_name_and_sort() {
        // Two variables sharing a name but not a sort must stay distinct
        // terms; dedup by name alone would alias them (and hand back the
        // first sort for both).
        let mut tm = TermManager::new();
        let x_loc = tm.var("x", Sort::Loc);
        let x_int = tm.var("x", Sort::Int);
        assert_ne!(x_loc, x_int);
        assert_eq!(tm.sort(x_loc), &Sort::Loc);
        assert_eq!(tm.sort(x_int), &Sort::Int);
        // Same name and sort still dedups.
        assert_eq!(x_loc, tm.var("x", Sort::Loc));
    }

    #[test]
    fn boolean_folding() {
        let mut tm = TermManager::new();
        let t = tm.tru();
        let f = tm.fls();
        let p = tm.var("p", Sort::Bool);
        assert_eq!(tm.and(vec![t, p]), p);
        assert_eq!(tm.and(vec![f, p]), f);
        assert_eq!(tm.or(vec![f, p]), p);
        assert_eq!(tm.or(vec![t, p]), t);
        let np = tm.not(p);
        assert_eq!(tm.not(np), p);
    }

    #[test]
    fn eq_folding() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        assert_eq!(tm.eq(x, x), tm.tru());
        let a = tm.int(1);
        let b = tm.int(2);
        assert_eq!(tm.eq(a, b), tm.fls());
        let p = tm.var("p", Sort::Bool);
        let q = tm.var("q", Sort::Bool);
        let e = tm.eq(p, q);
        assert_eq!(tm.term(e).op, Op::Iff);
    }

    #[test]
    fn ite_folding() {
        let mut tm = TermManager::new();
        let c = tm.var("c", Sort::Bool);
        let x = tm.var("x", Sort::Int);
        let y = tm.var("y", Sort::Int);
        let t = tm.tru();
        assert_eq!(tm.ite(t, x, y), x);
        assert_eq!(tm.ite(c, x, x), x);
    }

    #[test]
    fn container_sorts() {
        let mut tm = TermManager::new();
        let loc_set = Sort::set_of(Sort::Loc);
        let s = tm.var("s", loc_set.clone());
        let x = tm.var("x", Sort::Loc);
        let m = tm.member(x, s);
        assert_eq!(tm.sort(m), &Sort::Bool);
        let arr = tm.var("next", Sort::array_of(Sort::Loc, Sort::Loc));
        let sel = tm.select(arr, x);
        assert_eq!(tm.sort(sel), &Sort::Loc);
        let st = tm.store(arr, x, x);
        assert_eq!(tm.sort(st), tm.sort(arr));
    }

    #[test]
    fn substitution() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let y = tm.var("y", Sort::Int);
        let e = tm.add(x, y);
        let mut map = HashMap::new();
        let z = tm.var("z", Sort::Int);
        map.insert("x".to_string(), z);
        let e2 = tm.substitute(e, &map);
        assert_eq!(e2, tm.add(z, y));
    }

    #[test]
    fn import_hash_conses_across_managers() {
        // Two source managers built in different orders: importing the "same"
        // formula from both must yield one shared term id.
        let mut a = TermManager::new();
        let xa = a.var("x", Sort::Int);
        let ya = a.var("y", Sort::Int);
        let fa = {
            let s = a.add(xa, ya);
            a.le(s, xa)
        };

        let mut b = TermManager::new();
        let _noise = b.var("noise", Sort::Bool);
        let yb = b.var("y", Sort::Int);
        let xb = b.var("x", Sort::Int);
        let fb = {
            let s = b.add(xb, yb);
            b.le(s, xb)
        };

        let mut shared = TermManager::new();
        let ia = shared.import(&a, &[fa], &mut HashMap::new())[0];
        let ib = shared.import(&b, &[fb], &mut HashMap::new())[0];
        assert_eq!(ia, ib);
        // The imported term is structurally intact.
        assert_eq!(
            crate::hash::structural_hash(&a, fa),
            crate::hash::structural_hash(&shared, ia)
        );
    }

    #[test]
    fn import_syncs_fresh_counter() {
        let mut src = TermManager::new();
        let v = src.fresh_var("w", Sort::Loc);
        let mut dst = TermManager::new();
        let iv = dst.import(&src, &[v], &mut HashMap::new())[0];
        // A fresh name minted after the import must not collide with the
        // imported fresh name.
        let fresh = dst.fresh_var("w", Sort::Loc);
        assert_ne!(iv, fresh);
        assert_ne!(dst.term(iv).op, dst.term(fresh).op);
    }

    #[test]
    fn subterms_collects_all() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let y = tm.var("y", Sort::Int);
        let s = tm.add(x, y);
        let l = tm.le(s, x);
        let subs = tm.subterms(&[l]);
        assert!(subs.contains(&x) && subs.contains(&y) && subs.contains(&s) && subs.contains(&l));
    }
}
