//! The push/pop incremental solver: shared solver state across a sequence of
//! related queries.
//!
//! The batch [`crate::Solver`] re-lowers, re-converts and re-analyzes the
//! whole assertion set on every `check` — the right shape for one-shot VC
//! discharge, but wasteful when dozens of queries share a large prelude (a
//! method's typing hypotheses, heap axioms and local-condition definitions).
//! [`IncrementalSolver`] keeps every layer of that work alive across checks:
//!
//! * **Lowering** — a persistent [`crate::lower::LowerCtx`] instantiates the
//!   set/array axioms once per (trigger, element) pair, no matter how many
//!   checks mention them. Axioms and Skolem definitions are *permanent facts*
//!   (valid, or definitional over globally fresh symbols), so they survive
//!   `pop` soundly.
//! * **CNF/SAT** — one growing [`crate::sat::SatSolver`]. Assertions made
//!   inside a [`IncrementalSolver::push`] scope carry a negated *activation
//!   literal*; a check assumes the activation literals of the live scopes
//!   ([`crate::sat::SatSolver::solve_under`]), and [`IncrementalSolver::pop`]
//!   retracts the scope by permanently asserting the negated activation
//!   literal. Learned clauses — including theory conflict clauses — are
//!   globally valid and are kept forever.
//! * **Theory setup** — one [`crate::theory::TheoryChecker`] whose congruence
//!   template and linear forms are *extended* as new atoms appear instead of
//!   being rebuilt per query.
//!
//! Model soundness with retraction: atoms that only occur in popped scopes
//! are *dead* — their propositional values are unconstrained don't-cares. The
//! theory check therefore runs on the live atoms only; a consistent live
//! assignment is a genuine model of the active assertions because every
//! remaining clause mentioning dead atoms is either deactivated (by the
//! popped activation literal) or a valid lemma, satisfied by the dead atoms'
//! semantic truth values.
//!
//! Quantified formulas are not supported: asserting one puts the solver into
//! a degraded mode where every check answers [`SatResult::Unknown`] (the
//! quantified RQ3 encoding keeps using the batch solver).
//!
//! # Example
//!
//! ```
//! use ids_smt::{IncrementalSolver, SatResult, Sort, TermManager};
//! let mut tm = TermManager::new();
//! let x = tm.var("x", Sort::Int);
//! let zero = tm.int(0);
//! let ge = tm.ge(x, zero);
//! let lt = tm.lt(x, zero);
//! let mut s = IncrementalSolver::new();
//! s.assert(&mut tm, ge); // permanent
//! s.push();
//! s.assert(&mut tm, lt); // scoped: contradicts the permanent assertion
//! assert_eq!(s.check(&mut tm), SatResult::Unsat);
//! s.pop();
//! assert_eq!(s.check(&mut tm), SatResult::Sat); // the contradiction is gone
//! ```

use std::collections::HashMap;

use crate::cnf::{encode_root, AtomMap};
use crate::lower::LowerCtx;
use crate::model::Model;
use crate::quant::contains_forall;
use crate::sat::{Lit, SatResult, SatSolver, Var};
use crate::solver::{SolverConfig, SolverStats};
use crate::term::{Op, Sort, TermId, TermManager};
use crate::theory::{TheoryCheck, TheoryChecker};

/// Where an atom has been used so far: in a permanent assertion (or a derived
/// fact), or only inside the listed push scopes.
#[derive(Clone, Debug)]
enum AtomScope {
    /// Mentioned by at least one permanent assertion — always live.
    Base,
    /// Mentioned only by assertions of these scopes (by scope id); live while
    /// any of them is still on the scope stack.
    Scopes(Vec<u64>),
}

/// One entry of the push/pop stack.
#[derive(Clone, Copy, Debug)]
struct Scope {
    /// Unique id (never reused, so popped ids stay distinguishable).
    id: u64,
    /// Activation variable guarding the scope's assertion clauses.
    act: Var,
}

/// An SMT solver with persistent state and a push/pop assertion stack.
///
/// See the [module documentation](self) for the architecture.
#[derive(Debug)]
pub struct IncrementalSolver {
    config: SolverConfig,
    sat: SatSolver,
    atom_map: AtomMap,
    lower: LowerCtx,
    checker: Option<TheoryChecker>,
    /// Atoms encoded since the checker was last grown.
    pending_atoms: Vec<TermId>,
    atom_scope: HashMap<TermId, AtomScope>,
    scopes: Vec<Scope>,
    next_scope_id: u64,
    saw_quantifier: bool,
    stats: SolverStats,
    model: Option<Model>,
}

impl Default for IncrementalSolver {
    fn default() -> IncrementalSolver {
        IncrementalSolver::new()
    }
}

impl IncrementalSolver {
    /// Creates a solver with the default (decidable-mode) configuration.
    pub fn new() -> IncrementalSolver {
        IncrementalSolver::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration. Quantifier support is
    /// ignored — see the module documentation.
    pub fn with_config(config: SolverConfig) -> IncrementalSolver {
        IncrementalSolver {
            config,
            // NB: `SatSolver::new()`, not `default()` — only `new` produces a
            // usable (consistent) solver.
            sat: SatSolver::new(),
            atom_map: AtomMap::default(),
            lower: LowerCtx::new(),
            checker: None,
            pending_atoms: Vec::new(),
            atom_scope: HashMap::new(),
            scopes: Vec::new(),
            next_scope_id: 0,
            saw_quantifier: false,
            stats: SolverStats::default(),
            model: None,
        }
    }

    /// Statistics of the last [`IncrementalSolver::check`] call. SAT counters
    /// are per-check deltas; `initial_clauses` and `atoms` report the
    /// cumulative session size at the time of the check.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The model of the last `check`, if it returned [`SatResult::Sat`]. The
    /// model covers the live atoms of the session.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Current scope depth (number of unmatched pushes).
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }

    /// Opens a new assertion scope: assertions made until the matching
    /// [`IncrementalSolver::pop`] are retracted by it.
    pub fn push(&mut self) {
        let act = self.sat.new_var();
        let id = self.next_scope_id;
        self.next_scope_id += 1;
        self.scopes.push(Scope { id, act });
    }

    /// Closes the innermost scope, retracting its assertions (their clauses
    /// are permanently deactivated via the scope's activation literal; facts
    /// learned from them — instantiated axioms, theory lemmas — are valid and
    /// stay).
    ///
    /// # Panics
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let scope = self.scopes.pop().expect("pop without matching push");
        self.sat.add_clause(vec![Lit::new(scope.act, false)]);
    }

    /// Asserts a formula in the current scope (permanently when no scope is
    /// open). Lowering, CNF conversion and axiom instantiation happen now,
    /// incrementally against everything asserted before.
    pub fn assert(&mut self, tm: &mut TermManager, t: TermId) {
        if contains_forall(tm, t) {
            // Not supported incrementally; degrade the whole session rather
            // than silently dropping an assertion (soundness first).
            self.saw_quantifier = true;
            return;
        }
        let batch = self.lower.add(tm, &[t]);
        for f in batch.facts {
            self.assert_lowered(tm, f, true);
        }
        for r in batch.roots {
            self.assert_lowered(tm, r, false);
        }
    }

    /// Asserts several formulas in order.
    pub fn assert_all(&mut self, tm: &mut TermManager, ts: &[TermId]) {
        for &t in ts {
            self.assert(tm, t);
        }
    }

    /// Encodes one lowered root and asserts it — permanently for derived
    /// facts, guarded by the current scope's activation literal otherwise.
    fn assert_lowered(&mut self, tm: &TermManager, root: TermId, permanent: bool) {
        let lit = encode_root(tm, root, &mut self.sat, &mut self.atom_map);
        self.mark_atoms(tm, root, permanent);
        let clause = match (permanent, self.scopes.last()) {
            (false, Some(scope)) => vec![Lit::new(scope.act, false), lit],
            _ => vec![lit],
        };
        self.sat.add_clause(clause);
    }

    /// Records the scope of every theory atom of `root` (same traversal shape
    /// as the CNF encoder: descend through Boolean connectives, stop at
    /// atoms) and queues new atoms for the theory checker.
    fn mark_atoms(&mut self, tm: &TermManager, root: TermId, permanent: bool) {
        let scope_id = if permanent {
            None
        } else {
            self.scopes.last().map(|s| s.id)
        };
        let mut visited: std::collections::HashSet<TermId> = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            if !visited.insert(t) {
                continue;
            }
            let term = tm.term(t);
            match term.op {
                Op::True | Op::False => {}
                Op::Not | Op::And | Op::Or | Op::Implies | Op::Iff => {
                    stack.extend(term.args.iter().copied());
                }
                Op::Ite if term.sort == Sort::Bool => {
                    stack.extend(term.args.iter().copied());
                }
                _ => {
                    // A theory atom.
                    match self.atom_scope.get_mut(&t) {
                        None => {
                            self.pending_atoms.push(t);
                            let scope = match scope_id {
                                None => AtomScope::Base,
                                Some(id) => AtomScope::Scopes(vec![id]),
                            };
                            self.atom_scope.insert(t, scope);
                        }
                        Some(AtomScope::Base) => {}
                        Some(AtomScope::Scopes(ids)) => match scope_id {
                            None => {
                                self.atom_scope.insert(t, AtomScope::Base);
                            }
                            Some(id) => {
                                // Popped ids can never become live again:
                                // prune them here so a reused atom's list
                                // stays bounded by the stack depth.
                                ids.retain(|i| self.scopes.iter().any(|s| s.id == *i));
                                if !ids.contains(&id) {
                                    ids.push(id);
                                }
                            }
                        },
                    }
                }
            }
        }
    }

    /// Checks satisfiability of the conjunction of all live assertions
    /// (permanent ones plus those of open scopes).
    pub fn check(&mut self, tm: &mut TermManager) -> SatResult {
        self.stats = SolverStats::default();
        self.model = None;
        if self.saw_quantifier {
            return SatResult::Unknown;
        }

        // Grow the theory checker to cover every encoded atom.
        let pending = std::mem::take(&mut self.pending_atoms);
        match &mut self.checker {
            Some(c) => c.extend(tm, &pending),
            None => self.checker = Some(TheoryChecker::new(tm, &pending)),
        }

        self.stats.initial_clauses = self.sat.num_clauses() as u64;
        self.stats.atoms = self.atom_map.atom_of_var.len() as u64;
        let base = (
            self.sat.conflicts,
            self.sat.decisions,
            self.sat.propagations,
        );
        let assumptions: Vec<Lit> = self.scopes.iter().map(|s| Lit::new(s.act, true)).collect();

        // Split borrows: the loop reads the checker while mutating the SAT
        // core and the stats.
        let checker = self.checker.as_ref().expect("checker built above");
        let sat = &mut self.sat;
        let stats = &mut self.stats;
        let snapshot = |stats: &mut SolverStats, sat: &SatSolver| {
            stats.sat_conflicts = sat.conflicts - base.0;
            stats.sat_decisions = sat.decisions - base.1;
            stats.sat_propagations = sat.propagations - base.2;
        };

        for round in 0..self.config.max_theory_rounds {
            stats.theory_rounds = round as u64 + 1;
            let sat_start = std::time::Instant::now();
            let sat_result = if round == 0 || !self.config.incremental_sat {
                sat.solve_under(&assumptions)
            } else {
                sat.solve_continue_under(&assumptions)
            };
            stats.sat_time += sat_start.elapsed();
            match sat_result {
                SatResult::Unsat | SatResult::Unknown => {
                    snapshot(stats, sat);
                    return sat_result;
                }
                SatResult::Sat => {}
            }
            let literals = live_literals(&self.atom_map, sat, &self.atom_scope, &self.scopes);
            let theory_start = std::time::Instant::now();
            let theory_result = checker.check(tm, &literals);
            stats.theory_time += theory_start.elapsed();
            match theory_result {
                TheoryCheck::Consistent => {
                    snapshot(stats, sat);
                    self.model = Some(Model::new(literals));
                    return SatResult::Sat;
                }
                TheoryCheck::Unknown => {
                    snapshot(stats, sat);
                    return SatResult::Unknown;
                }
                TheoryCheck::Conflict(indices) => {
                    let clause: Vec<Lit> = indices
                        .iter()
                        .map(|&i| {
                            let (atom, positive) = literals[i];
                            self.atom_map.lit_of(atom, !positive)
                        })
                        .collect();
                    if clause.is_empty() {
                        // The theories rejected the empty literal set — the
                        // axioms alone are inconsistent. Impossible, but be
                        // safe.
                        snapshot(stats, sat);
                        return SatResult::Unsat;
                    }
                    let clause_ok = if self.config.incremental_sat {
                        sat.add_theory_conflict(clause)
                    } else {
                        sat.add_clause(clause)
                    };
                    if !clause_ok {
                        snapshot(stats, sat);
                        return SatResult::Unsat;
                    }
                }
            }
        }
        snapshot(stats, sat);
        SatResult::Unknown
    }

    /// Convenience wrapper for one goal check under the current assertions:
    /// opens a scope, asserts the negated formula, checks, pops — and
    /// translates the result into validity terms ([`SatResult::Sat`] = the
    /// formula is valid given the asserted hypotheses), mirroring
    /// [`crate::Solver::check_valid`].
    pub fn check_valid_scoped(&mut self, tm: &mut TermManager, formula: TermId) -> SatResult {
        self.push();
        let neg = tm.not(formula);
        self.assert(tm, neg);
        let result = self.check(tm);
        self.pop();
        match result {
            SatResult::Unsat => SatResult::Sat, // valid
            SatResult::Sat => SatResult::Unsat, // counterexample exists
            SatResult::Unknown => SatResult::Unknown,
        }
    }
}

/// The asserted theory literals of the current SAT model, restricted to live
/// atoms (see the module documentation for why dead atoms must be excluded
/// from theory checking).
fn live_literals(
    atom_map: &AtomMap,
    sat: &SatSolver,
    atom_scope: &HashMap<TermId, AtomScope>,
    scopes: &[Scope],
) -> Vec<(TermId, bool)> {
    let live_ids: std::collections::HashSet<u64> = scopes.iter().map(|s| s.id).collect();
    let is_live = |t: &TermId| match atom_scope.get(t) {
        None | Some(AtomScope::Base) => true,
        Some(AtomScope::Scopes(ids)) => ids.iter().any(|id| live_ids.contains(id)),
    };
    let mut out = atom_map.model_literals(sat);
    out.retain(|(t, _)| is_live(t));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;
    use crate::solver::Solver;

    #[test]
    fn push_pop_retracts_assertions() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let zero = tm.int(0);
        let ge = tm.ge(x, zero);
        let lt = tm.lt(x, zero);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, ge);
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        s.push();
        s.assert(&mut tm, lt);
        assert_eq!(s.check(&mut tm), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        // A second scope with a satisfiable refinement.
        s.push();
        let one = tm.int(1);
        let ge1 = tm.ge(x, one);
        s.assert(&mut tm, ge1);
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        s.pop();
    }

    #[test]
    fn euf_across_scopes() {
        // Permanent: f(x) != f(y). Scoped: x = y — unsat only inside the
        // scope, and again in a later scope (axiom state is reused).
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let fx = tm.app("f", vec![x], Sort::Int);
        let fy = tm.app("f", vec![y], Sort::Int);
        let ne = tm.neq(fx, fy);
        let eq = tm.eq(x, y);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, ne);
        for _ in 0..3 {
            s.push();
            s.assert(&mut tm, eq);
            assert_eq!(s.check(&mut tm), SatResult::Unsat);
            s.pop();
            assert_eq!(s.check(&mut tm), SatResult::Sat);
        }
    }

    #[test]
    fn set_axioms_instantiate_across_scopes() {
        // The union axiom must be instantiated at an element that only
        // appears in a *later* scoped assertion.
        let mut tm = TermManager::new();
        let set = Sort::set_of(Sort::Loc);
        let a = tm.var("A", set.clone());
        let b = tm.var("B", set);
        let u = tm.union(a, b);
        let x = tm.var("x", Sort::Loc);
        let mut s = IncrementalSolver::new();
        // Permanent: x in A (also seeds the element pool with x).
        let in_a = tm.member(x, a);
        s.assert(&mut tm, in_a);
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        // Scope 1: y not in the union, y = x — new element y arrives after
        // the union trigger was first scanned.
        let y = tm.var("y", Sort::Loc);
        let in_u = tm.member(y, u);
        let not_in_u = tm.not(in_u);
        let eq_xy = tm.eq(x, y);
        s.push();
        s.assert(&mut tm, not_in_u);
        s.assert(&mut tm, eq_xy);
        assert_eq!(s.check(&mut tm), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(&mut tm), SatResult::Sat);
    }

    #[test]
    fn check_valid_scoped_matches_fresh_solver() {
        // key(x) <= k, k <= key(y) |= key(x) <= key(y); but not key(x) < key(y).
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let k = tm.var("k", Sort::Int);
        let kx = tm.app("key", vec![x], Sort::Int);
        let ky = tm.app("key", vec![y], Sort::Int);
        let h1 = tm.le(kx, k);
        let h2 = tm.le(k, ky);
        let goal1 = tm.le(kx, ky);
        let goal2 = tm.lt(kx, ky);

        let mut inc = IncrementalSolver::new();
        inc.assert(&mut tm, h1);
        inc.assert(&mut tm, h2);
        for (goal, _name) in [(goal1, "le"), (goal2, "lt")] {
            let got = inc.check_valid_scoped(&mut tm, goal);
            let mut fresh = Solver::new();
            let mut tm2 = tm.clone();
            let imp = {
                let ante = tm2.and2(h1, h2);
                tm2.implies(ante, goal)
            };
            let want = fresh.check_valid(&mut tm2, imp);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn quantified_input_degrades_to_unknown() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let p = tm.app("p", vec![x], Sort::Bool);
        let all = tm.forall(vec![("x".into(), Sort::Loc)], p);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, all);
        assert_eq!(s.check(&mut tm), SatResult::Unknown);
    }

    #[test]
    fn stats_track_per_check_deltas() {
        let mut tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let x = tm.var("x", Sort::Int);
        let zero = tm.int(0);
        let one = tm.int(1);
        let five = tm.int(5);
        let le0 = tm.le(x, zero);
        let le1 = tm.le(x, one);
        let np = tm.not(p);
        let c1 = tm.implies(p, le0);
        let c2 = tm.implies(np, le1);
        let c3 = tm.ge(x, five);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, c1);
        s.assert(&mut tm, c2);
        s.push();
        s.assert(&mut tm, c3);
        assert_eq!(s.check(&mut tm), SatResult::Unsat);
        let first = s.stats();
        assert!(first.theory_rounds > 0);
        s.pop();
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        let second = s.stats();
        // Counters are per-check deltas, not cumulative: the second check
        // starts its round count from scratch.
        assert!(second.theory_rounds >= 1);
    }
}
