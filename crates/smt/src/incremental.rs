//! The push/pop incremental solver: shared solver state across a sequence of
//! related queries.
//!
//! The batch [`crate::Solver`] re-lowers, re-converts and re-analyzes the
//! whole assertion set on every `check` — the right shape for one-shot VC
//! discharge, but wasteful when dozens of queries share a large prelude (a
//! method's typing hypotheses, heap axioms and local-condition definitions).
//! [`IncrementalSolver`] keeps every layer of that work alive across checks:
//!
//! * **Lowering** — a persistent [`crate::lower::LowerCtx`] instantiates the
//!   set/array axioms once per (trigger, element) pair, no matter how many
//!   checks mention them. Axioms and Skolem definitions are *permanent facts*
//!   (valid, or definitional over globally fresh symbols), so they survive
//!   `pop` soundly.
//! * **CNF/SAT** — one growing [`crate::sat::SatSolver`]. Assertions made
//!   inside a [`IncrementalSolver::push`] scope carry a negated *activation
//!   literal*; a check assumes the activation literals of the live scopes
//!   ([`crate::sat::SatSolver::solve_under`]), and [`IncrementalSolver::pop`]
//!   retracts the scope by permanently asserting the negated activation
//!   literal. Learned clauses — including theory conflict clauses — are
//!   globally valid and are kept forever.
//! * **Theory setup** — one [`crate::theory::TheoryChecker`] whose congruence
//!   template and linear forms are *extended* as new atoms appear instead of
//!   being rebuilt per query.
//! * **Theory state** — a persistent trail-based theory session
//!   (`crate::trail::TheorySession`): congruence closure and the simplex
//!   tableau survive across DPLL(T) rounds, and each round asserts/retracts
//!   only the literals that changed since the previous propositional model
//!   instead of reconstructing both solvers from scratch.
//!
//! Model soundness with retraction: atoms that only occur in popped scopes
//! are *dead* — their propositional values are unconstrained don't-cares. The
//! theory check therefore runs on the live atoms only; a consistent live
//! assignment is a genuine model of the active assertions because every
//! remaining clause mentioning dead atoms is either deactivated (by the
//! popped activation literal) or a valid lemma, satisfied by the dead atoms'
//! semantic truth values.
//!
//! # Two-level scope discipline (structure-scoped warm pools)
//!
//! A warm solver pool shares one solver across *all methods of one data
//! structure*: the structure-common hypothesis prelude sits at the base
//! ("structure") scope, each method opens a **method scope**
//! ([`IncrementalSolver::push_method_scope`]) for its method-local residue,
//! and each VC opens an ordinary push/pop scope inside it. The three levels
//! behave differently on retraction:
//!
//! * **Structure scope** (base): assertions, their lowering state, their
//!   instantiated axioms and learned clauses are permanent — they survive
//!   every method and VC pop, which is the whole point of the pool.
//! * **Method scope**: [`IncrementalSolver::push_method_scope`] snapshots
//!   *every* layer of solver state — the SAT core, the CNF atom map, the
//!   lowering context, the theory checker and the atom bookkeeping — and
//!   [`IncrementalSolver::pop_method_scope`] restores the snapshots
//!   wholesale. Inside the scope the solver behaves exactly like a plain
//!   per-method session warm-started from the structure scope: residue
//!   assertions are permanent *within the scope*, derived facts are
//!   permanent within the scope, VC scopes nest as usual. Restoring (rather
//!   than deactivating) is what keeps a pool honest: dead methods leave no
//!   SAT variables to decide over, no deactivated clauses in the watch
//!   lists, no stale atoms in the theory template — each successive method
//!   pays for the prelude-free part of itself, not for the whole structure
//!   so far. The snapshot clones are structure-scope-sized (the prelude),
//!   not method-sized.
//! * **VC scope** (plain [`IncrementalSolver::push`]): assertion clauses
//!   carry activation literals and are retracted on pop; derived facts are
//!   permanent (sound — and gone with the method snapshot, if one is open).
//!
//! Quantified formulas are not supported: asserting one puts the solver into
//! a degraded mode where every check answers [`SatResult::Unknown`] (the
//! quantified RQ3 encoding keeps using the batch solver).
//!
//! # Example
//!
//! ```
//! use ids_smt::{IncrementalSolver, SatResult, Sort, TermManager};
//! let mut tm = TermManager::new();
//! let x = tm.var("x", Sort::Int);
//! let zero = tm.int(0);
//! let ge = tm.ge(x, zero);
//! let lt = tm.lt(x, zero);
//! let mut s = IncrementalSolver::new();
//! s.assert(&mut tm, ge); // permanent
//! s.push();
//! s.assert(&mut tm, lt); // scoped: contradicts the permanent assertion
//! assert_eq!(s.check(&mut tm), SatResult::Unsat);
//! s.pop();
//! assert_eq!(s.check(&mut tm), SatResult::Sat); // the contradiction is gone
//! ```

use std::collections::{HashMap, HashSet};

use crate::cnf::{encode_root, AtomMap};
use crate::lower::LowerCtx;
use crate::model::Model;
use crate::quant::contains_forall;
use crate::sat::{Lit, SatResult, SatSolver, Var};
use crate::solver::{SolverConfig, SolverStats};
use crate::term::{Op, Sort, TermId, TermManager};
use crate::theory::TheoryChecker;
use crate::trail::{SessionCheck, TheorySession};

/// Where an atom has been used so far: in a permanent assertion (or a derived
/// fact), or only inside the listed push scopes.
#[derive(Clone, Debug)]
enum AtomScope {
    /// Mentioned by at least one permanent assertion — always live.
    Base,
    /// Mentioned only by assertions of these scopes (by scope id); live while
    /// any of them is still on the scope stack.
    Scopes(Vec<u64>),
}

/// One entry of the push/pop stack.
#[derive(Clone, Copy, Debug)]
struct Scope {
    /// Unique id (never reused, so popped ids stay distinguishable).
    id: u64,
    /// Activation variable guarding the scope's assertion clauses.
    act: Var,
}

/// Snapshot taken at [`IncrementalSolver::push_method_scope`] and restored
/// wholesale at the matching pop: the complete structure-scope solver state.
/// Cloned at structure-scope size (the shared prelude), so a pool pays a
/// small fixed copy per method instead of accumulating every method's SAT
/// variables, clauses, pools and templates forever.
#[derive(Debug)]
struct MethodRollback {
    sat: SatSolver,
    atom_map: AtomMap,
    lower: LowerCtx,
    checker: Option<TheoryChecker>,
    session: TheorySession,
    pending_atoms: Vec<TermId>,
    atom_scope: HashMap<TermId, AtomScope>,
    asserted_roots: HashSet<TermId>,
    tracked: Vec<(u32, Var)>,
    saw_quantifier: bool,
    /// Reuse counters not yet folded into a check's stats: restored on pop
    /// so credit accrued inside a method that never checks (e.g. every VC
    /// cancelled) cannot leak into the next method's statistics.
    pending_reused: u64,
    pending_lowered: u64,
    pending_lower_time: std::time::Duration,
}

/// An SMT solver with persistent state and a push/pop assertion stack.
///
/// See the [module documentation](self) for the architecture.
#[derive(Debug)]
pub struct IncrementalSolver {
    config: SolverConfig,
    sat: SatSolver,
    atom_map: AtomMap,
    lower: LowerCtx,
    checker: Option<TheoryChecker>,
    /// Persistent trail-based theory state (EUF + simplex), kept across
    /// DPLL(T) rounds and checks; snapshotted/restored with the checker at
    /// method-scope boundaries so the two stay consistent.
    session: TheorySession,
    /// Atoms encoded since the checker was last grown.
    pending_atoms: Vec<TermId>,
    atom_scope: HashMap<TermId, AtomScope>,
    scopes: Vec<Scope>,
    next_scope_id: u64,
    saw_quantifier: bool,
    stats: SolverStats,
    model: Option<Model>,
    /// The open method scope of a warm pool, if any (always `scopes[0]`).
    method: Option<MethodRollback>,
    /// Roots asserted so far, for the prelude-reuse counters.
    asserted_roots: HashSet<TermId>,
    /// *Tracked* assertions ([`IncrementalSolver::assert_tracked`]), in
    /// assertion order: caller-chosen tag and the activation variable guarding
    /// the assertion's clauses. A check assumes a selection of these (all of
    /// them by default), and an Unsat core maps back to tags through this
    /// list.
    tracked: Vec<(u32, Var)>,
    /// Tags of the tracked assertions in the last check's unsat core (empty
    /// unless the last check returned [`SatResult::Unsat`]).
    last_core: Vec<u32>,
    /// Reuse counters accumulated since the last `check` (assertions happen
    /// between checks; `check` folds them into its stats delta).
    pending_reused: u64,
    pending_lowered: u64,
    /// Wall-clock time spent lowering assertions since the last `check`
    /// (assertions happen between checks; `check` claims the accumulated
    /// time as its `lower_time`).
    pending_lower_time: std::time::Duration,
}

impl Default for IncrementalSolver {
    fn default() -> IncrementalSolver {
        IncrementalSolver::new()
    }
}

impl IncrementalSolver {
    /// Creates a solver with the default (decidable-mode) configuration.
    pub fn new() -> IncrementalSolver {
        IncrementalSolver::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration. Quantifier support is
    /// ignored — see the module documentation.
    pub fn with_config(config: SolverConfig) -> IncrementalSolver {
        IncrementalSolver {
            config,
            // NB: `SatSolver::with_options`, not `default()` — only the
            // constructors produce a usable (consistent) solver.
            sat: SatSolver::with_options(config.sat),
            atom_map: AtomMap::default(),
            lower: LowerCtx::new(),
            checker: None,
            session: TheorySession::new(config.pivot),
            pending_atoms: Vec::new(),
            atom_scope: HashMap::new(),
            scopes: Vec::new(),
            next_scope_id: 0,
            saw_quantifier: false,
            stats: SolverStats::default(),
            model: None,
            method: None,
            asserted_roots: HashSet::new(),
            tracked: Vec::new(),
            last_core: Vec::new(),
            pending_reused: 0,
            pending_lowered: 0,
            pending_lower_time: std::time::Duration::ZERO,
        }
    }

    /// Statistics of the last [`IncrementalSolver::check`] call. SAT counters
    /// (conflicts, decisions, propagations, restarts, `learned_deleted`) are
    /// per-check deltas; `initial_clauses`, `atoms`, `learned_kept` and
    /// `max_lbd` report the cumulative session state at the time of the
    /// check.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The model of the last `check`, if it returned [`SatResult::Sat`]. The
    /// model covers the live atoms of the session.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Current scope depth (number of unmatched pushes).
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }

    /// Opens a new assertion scope: assertions made until the matching
    /// [`IncrementalSolver::pop`] are retracted by it.
    pub fn push(&mut self) {
        let act = self.sat.new_var();
        let id = self.next_scope_id;
        self.next_scope_id += 1;
        self.scopes.push(Scope { id, act });
    }

    /// Closes the innermost scope, retracting its assertions (their clauses
    /// are permanently deactivated via the scope's activation literal; facts
    /// learned from them — instantiated axioms, theory lemmas — are valid and
    /// stay, unless a method scope is open, in which case derived facts live
    /// at the method scope and fall with it).
    ///
    /// # Panics
    /// Panics if no scope is open, or if the innermost scope is a method
    /// scope (close those with [`IncrementalSolver::pop_method_scope`]).
    pub fn pop(&mut self) {
        let scope = self.scopes.pop().expect("pop without matching push");
        self.sat.add_clause(vec![Lit::new(scope.act, false)]);
    }

    /// Opens a *method scope*: the second level of a warm pool's scope
    /// discipline (see the module documentation). Snapshots the complete
    /// structure-scope solver state; until the matching
    /// [`IncrementalSolver::pop_method_scope`] the solver behaves exactly
    /// like a per-method session warm-started from that state (assertions
    /// permanent, facts permanent, VC scopes nested inside as usual).
    ///
    /// # Panics
    /// Panics if any scope is already open — a method scope must sit
    /// directly on the structure (base) scope, and only one can be open.
    pub fn push_method_scope(&mut self) {
        assert!(
            self.scopes.is_empty() && self.method.is_none(),
            "a method scope must be the outermost open scope"
        );
        self.method = Some(MethodRollback {
            sat: self.sat.clone(),
            atom_map: self.atom_map.clone(),
            lower: self.lower.clone(),
            checker: self.checker.clone(),
            session: self.session.clone(),
            pending_atoms: self.pending_atoms.clone(),
            atom_scope: self.atom_scope.clone(),
            asserted_roots: self.asserted_roots.clone(),
            tracked: self.tracked.clone(),
            saw_quantifier: self.saw_quantifier,
            pending_reused: self.pending_reused,
            pending_lowered: self.pending_lowered,
            pending_lower_time: self.pending_lower_time,
        });
    }

    /// Closes the open method scope by restoring the structure-scope
    /// snapshot wholesale: the method's assertions, derived facts, SAT
    /// variables, learned clauses, axiom instantiations and theory-template
    /// growth all vanish, and the next method starts from a pool that holds
    /// exactly the structure-scope prelude again.
    ///
    /// # Panics
    /// Panics if no method scope is open or if VC scopes are still open
    /// inside it.
    pub fn pop_method_scope(&mut self) {
        assert!(
            self.scopes.is_empty(),
            "pop_method_scope with VC scopes still open"
        );
        let m = self.method.take().expect("no method scope open");
        self.sat = m.sat;
        self.atom_map = m.atom_map;
        self.lower = m.lower;
        self.checker = m.checker;
        self.session = m.session;
        self.pending_atoms = m.pending_atoms;
        self.atom_scope = m.atom_scope;
        self.asserted_roots = m.asserted_roots;
        self.tracked = m.tracked;
        self.saw_quantifier = m.saw_quantifier;
        self.pending_reused = m.pending_reused;
        self.pending_lowered = m.pending_lowered;
        self.pending_lower_time = m.pending_lower_time;
        self.model = None;
        self.last_core.clear();
    }

    /// True if a method scope is currently open.
    pub fn in_method_scope(&self) -> bool {
        self.method.is_some()
    }

    /// Credits `n` assertions as answered from warm structure-scope state
    /// without any re-assertion (used by session layers that skip an
    /// already-asserted shared prelude outright); surfaces in the next
    /// check's [`SolverStats::prelude_reused`].
    pub fn note_prelude_reuse(&mut self, n: u64) {
        self.pending_reused += n;
    }

    /// Asserts a formula in the current scope (permanently when no scope is
    /// open). Lowering, CNF conversion and axiom instantiation happen now,
    /// incrementally against everything asserted before.
    pub fn assert(&mut self, tm: &mut TermManager, t: TermId) {
        if contains_forall(tm, t) {
            // Not supported incrementally; degrade the whole session rather
            // than silently dropping an assertion (soundness first).
            self.saw_quantifier = true;
            return;
        }
        // Reuse accounting: a root asserted before (e.g. a structure-common
        // hypothesis re-asserted by the next method of a warm pool) hits
        // every lowering/CNF cache below and only costs a guarded clause.
        if self.asserted_roots.insert(t) {
            self.pending_lowered += 1;
        } else {
            self.pending_reused += 1;
        }
        let lower_start = std::time::Instant::now();
        let batch = {
            let _obs = ids_obs::span("lower");
            self.lower.add(tm, &[t])
        };
        self.pending_lower_time += lower_start.elapsed();
        let _obs = ids_obs::span("cnf");
        for f in batch.facts {
            self.assert_lowered(tm, f, true);
        }
        for r in batch.roots {
            self.assert_lowered(tm, r, false);
        }
    }

    /// Asserts several formulas in order.
    pub fn assert_all(&mut self, tm: &mut TermManager, ts: &[TermId]) {
        for &t in ts {
            self.assert(tm, t);
        }
    }

    /// Asserts a formula as a *tracked* assertion: its clauses are guarded by
    /// a dedicated activation variable associated with `tag`, and a check
    /// assumes a *selection* of the tracked assertions instead of taking them
    /// as unconditional facts ([`IncrementalSolver::check_selected`]; the
    /// plain [`IncrementalSolver::check`] selects all of them, which is
    /// equivalent to having asserted the formula permanently). When a check
    /// refutes, the tags of the tracked assertions its unsat core used are
    /// reported by [`IncrementalSolver::last_core_tags`].
    ///
    /// Derived facts (axiom instantiations, Skolem definitions) stay
    /// permanent — they are valid or definitional regardless of which tracked
    /// assertions a check selects, so leaving them unguarded is sound.
    ///
    /// Tracked assertions live at the method/base level of the scope
    /// discipline: a method-scope rollback retracts those made inside it.
    ///
    /// # Panics
    /// Panics if a plain push scope is open (tracked assertions are
    /// hypotheses of the session, not of one goal check).
    pub fn assert_tracked(&mut self, tm: &mut TermManager, t: TermId, tag: u32) {
        assert!(
            self.scopes.is_empty(),
            "tracked assertions must be made outside push/pop scopes"
        );
        if contains_forall(tm, t) {
            self.saw_quantifier = true;
            return;
        }
        if self.asserted_roots.insert(t) {
            self.pending_lowered += 1;
        } else {
            self.pending_reused += 1;
        }
        let lower_start = std::time::Instant::now();
        let batch = {
            let _obs = ids_obs::span("lower");
            self.lower.add(tm, &[t])
        };
        self.pending_lower_time += lower_start.elapsed();
        let _obs = ids_obs::span("cnf");
        for f in batch.facts {
            self.assert_lowered(tm, f, true);
        }
        let act = self.sat.new_var();
        self.tracked.push((tag, act));
        for r in batch.roots {
            let lit = encode_root(tm, r, &mut self.sat, &mut self.atom_map);
            // Base-scope atoms: the assertion outlives every VC scope. An
            // unselected tracked assertion leaves its atoms live but
            // unconstrained — the theory then checks whatever values the SAT
            // core picked for them, which costs nothing in soundness (its
            // lemmas are valid) and a sliced check never reports Sat as
            // final.
            self.mark_atoms(tm, r, None);
            self.sat.add_clause(vec![Lit::new(act, false), lit]);
        }
    }

    /// Tags of the tracked assertions the last check's unsat core used
    /// (sorted, deduplicated). Empty unless the last check returned
    /// [`SatResult::Unsat`] — and possibly empty even then, when the
    /// refutation needed no tracked assertion at all.
    pub fn last_core_tags(&self) -> &[u32] {
        &self.last_core
    }

    /// Encodes one lowered root and asserts it — permanently for derived
    /// facts, guarded by the current scope's activation literal otherwise.
    /// ("Permanent" is relative to the open method scope, if any: a method
    /// snapshot restore discards everything asserted inside it.)
    fn assert_lowered(&mut self, tm: &TermManager, root: TermId, fact: bool) {
        let lit = encode_root(tm, root, &mut self.sat, &mut self.atom_map);
        let guard: Option<Scope> = if fact {
            None
        } else {
            self.scopes.last().copied()
        };
        self.mark_atoms(tm, root, guard.map(|s| s.id));
        let clause = match guard {
            Some(scope) => vec![Lit::new(scope.act, false), lit],
            None => vec![lit],
        };
        self.sat.add_clause(clause);
    }

    /// Records the scope of every theory atom of `root` (same traversal shape
    /// as the CNF encoder: descend through Boolean connectives, stop at
    /// atoms) and queues new atoms for the theory checker. `scope_id` is the
    /// scope the enclosing assertion clause is guarded by (`None` = base).
    fn mark_atoms(&mut self, tm: &TermManager, root: TermId, scope_id: Option<u64>) {
        let mut visited: std::collections::HashSet<TermId> = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            if !visited.insert(t) {
                continue;
            }
            let term = tm.term(t);
            match term.op {
                Op::True | Op::False => {}
                Op::Not | Op::And | Op::Or | Op::Implies | Op::Iff => {
                    stack.extend(term.args.iter().copied());
                }
                Op::Ite if term.sort == Sort::Bool => {
                    stack.extend(term.args.iter().copied());
                }
                _ => {
                    // A theory atom.
                    match self.atom_scope.get_mut(&t) {
                        None => {
                            self.pending_atoms.push(t);
                            let scope = match scope_id {
                                None => AtomScope::Base,
                                Some(id) => AtomScope::Scopes(vec![id]),
                            };
                            self.atom_scope.insert(t, scope);
                        }
                        Some(AtomScope::Base) => {}
                        Some(AtomScope::Scopes(ids)) => match scope_id {
                            None => {
                                self.atom_scope.insert(t, AtomScope::Base);
                            }
                            Some(id) => {
                                // Popped ids can never become live again:
                                // prune them here so a reused atom's list
                                // stays bounded by the stack depth.
                                ids.retain(|i| self.scopes.iter().any(|s| s.id == *i));
                                if !ids.contains(&id) {
                                    ids.push(id);
                                }
                            }
                        },
                    }
                }
            }
        }
    }

    /// Checks satisfiability of the conjunction of all live assertions
    /// (permanent ones, all tracked assertions, plus those of open scopes).
    pub fn check(&mut self, tm: &mut TermManager) -> SatResult {
        self.check_selected(tm, None)
    }

    /// Like [`IncrementalSolver::check`], but under an explicit *selection*
    /// of the tracked assertions: `None` selects all of them; `Some(tags)`
    /// selects only those whose tag is listed and *deactivates* the rest —
    /// their activation variables are assumed false, so unit propagation
    /// satisfies every guard clause of a deselected hypothesis up front
    /// instead of leaving its activation variable as a free decision.
    ///
    /// Deactivation is sound because activation variables occur only
    /// negatively in the clause set (guards `¬act ∨ lit` and learned
    /// consequences): flipping a deselected `act` to false maps any model to
    /// a model, so Unsat under the selection implies Unsat with the
    /// deselected hypotheses re-enabled — selecting a subset only ever
    /// *weakens* the assertion set, and an Unsat answer under a subset
    /// implies Unsat under the full set. A Sat/Unknown answer under a subset
    /// implies nothing about the full set.
    pub fn check_selected(&mut self, tm: &mut TermManager, selection: Option<&[u32]>) -> SatResult {
        self.stats = SolverStats::default();
        self.stats.prelude_reused = std::mem::take(&mut self.pending_reused);
        self.stats.prelude_lowered = std::mem::take(&mut self.pending_lowered);
        self.stats.lower_time = std::mem::take(&mut self.pending_lower_time);
        self.model = None;
        self.last_core.clear();
        if self.saw_quantifier {
            return SatResult::Unknown;
        }

        // Grow the theory checker to cover every encoded atom.
        let pending = std::mem::take(&mut self.pending_atoms);
        match &mut self.checker {
            Some(c) => c.extend(tm, &pending),
            None => self.checker = Some(TheoryChecker::new(tm, &pending)),
        }

        self.stats.initial_clauses = self.sat.num_clauses() as u64;
        self.stats.atoms = self.atom_map.atom_of_var.len() as u64;
        let base = (
            self.sat.conflicts,
            self.sat.decisions,
            self.sat.propagations,
            self.sat.restarts,
            self.sat.learned_deleted,
        );
        // Assumption order: tracked assertions first (selection-filtered),
        // then the open scopes' activation literals.
        let mut assumptions: Vec<Lit> = Vec::with_capacity(self.tracked.len() + self.scopes.len());
        // Maps a *selected* activation variable back to its tracked tag, for
        // unsat-core extraction. Deselected acts are assumed false — their
        // guard clauses are satisfied outright, so they can never reach the
        // final conflict and must never be mapped into a core.
        let mut tag_of_act: HashMap<Var, u32> = HashMap::with_capacity(self.tracked.len());
        for &(tag, act) in &self.tracked {
            let selected = selection.is_none_or(|tags| tags.contains(&tag));
            assumptions.push(Lit::new(act, selected));
            if selected {
                tag_of_act.insert(act, tag);
            }
        }
        assumptions.extend(self.scopes.iter().map(|s| Lit::new(s.act, true)));

        // Split borrows: the loop reads the checker while mutating the SAT
        // core, the theory session and the stats.
        let checker = self.checker.as_ref().expect("checker built above");
        let sat = &mut self.sat;
        let stats = &mut self.stats;
        let session = &mut self.session;
        let last_core = &mut self.last_core;
        let snapshot = |stats: &mut SolverStats, sat: &SatSolver| {
            stats.sat_conflicts = sat.conflicts - base.0;
            stats.sat_decisions = sat.decisions - base.1;
            stats.sat_propagations = sat.propagations - base.2;
            stats.restarts = sat.restarts - base.3;
            stats.learned_deleted = sat.learned_deleted - base.4;
            stats.learned_kept = sat.num_learned() as u64;
            stats.max_lbd = sat.max_lbd as u64;
        };

        // Differential oracle for debugging the trail session: when
        // IDS_TRAIL_ORACLE is set, every Consistent verdict is re-checked
        // against the stateless batch checker, which must agree.
        let oracle = std::env::var_os("IDS_TRAIL_ORACLE").is_some();

        for round in 0..self.config.max_theory_rounds {
            stats.theory_rounds = round as u64 + 1;
            let sat_start = std::time::Instant::now();
            let sat_result = if round == 0 || !self.config.incremental_sat {
                sat.solve_under(&assumptions)
            } else {
                sat.solve_continue_under(&assumptions)
            };
            stats.sat_time += sat_start.elapsed();
            match sat_result {
                SatResult::Unsat | SatResult::Unknown => {
                    snapshot(stats, sat);
                    if sat_result == SatResult::Unsat {
                        // The refutation's assumption core was extracted by
                        // the SAT core's final-conflict analysis.
                        stats.unsat_cores = 1;
                        stats.unsat_core_size = sat.unsat_core.len() as u64;
                        let mut core: Vec<u32> = sat
                            .unsat_core
                            .iter()
                            .filter_map(|l| tag_of_act.get(&l.var()).copied())
                            .collect();
                        core.sort_unstable();
                        core.dedup();
                        *last_core = core;
                    }
                    return sat_result;
                }
                SatResult::Sat => {}
            }
            // Literals in SAT-trail (assignment) order: CDCL backjumps keep a
            // long trail prefix, so consecutive rounds share a long literal
            // prefix and the theory session only processes the delta.
            let literals = live_literals(&self.atom_map, sat, &self.atom_scope, &self.scopes);
            let theory_start = std::time::Instant::now();
            let (theory_result, theory_tel, delta_lits) =
                session.check_round(tm, checker, &literals);
            let theory_elapsed = theory_start.elapsed();
            stats.theory_time += theory_elapsed;
            stats.pivots += theory_tel.pivots;
            stats.euf_time += theory_tel.euf_time;
            stats.simplex_time += theory_tel.simplex_time;
            if ids_obs::metrics_active() {
                ids_obs::record_metric(
                    ids_obs::Metric::TheoryRoundUs,
                    theory_elapsed.as_micros() as u64,
                );
                ids_obs::record_metric(ids_obs::Metric::PivotsPerRound, theory_tel.pivots);
                ids_obs::record_metric(ids_obs::Metric::TheoryDeltaLits, delta_lits);
            }
            if ids_obs::heartbeat_interval() != 0 {
                ids_obs::emit_heartbeat(ids_obs::Heartbeat {
                    conflicts: sat.conflicts,
                    decisions: sat.decisions,
                    propagations: sat.propagations,
                    restarts: sat.restarts,
                    learned: sat.num_learned() as u64,
                    theory_rounds: stats.theory_rounds,
                    pivots: stats.pivots,
                    ..ids_obs::Heartbeat::default()
                });
            }
            match theory_result {
                SessionCheck::Consistent => {
                    if oracle {
                        let (batch, _) = checker.check_with(tm, &literals, self.config.pivot);
                        assert!(
                            matches!(batch, crate::theory::TheoryCheck::Consistent),
                            "trail session said Consistent; batch checker says {:?}\n\
                             literals: {:?}",
                            batch,
                            literals
                        );
                    }
                    snapshot(stats, sat);
                    self.model = Some(Model::new(literals));
                    return SatResult::Sat;
                }
                SessionCheck::Unknown => {
                    snapshot(stats, sat);
                    return SatResult::Unknown;
                }
                SessionCheck::Conflict(lits) => {
                    let clause: Vec<Lit> = lits
                        .iter()
                        .map(|&(atom, positive)| self.atom_map.lit_of(atom, !positive))
                        .collect();
                    if clause.is_empty() {
                        // The theories rejected the empty literal set — the
                        // axioms alone are inconsistent. Impossible, but be
                        // safe.
                        snapshot(stats, sat);
                        return SatResult::Unsat;
                    }
                    let clause_ok = if self.config.incremental_sat {
                        sat.add_theory_conflict(clause)
                    } else {
                        sat.add_clause(clause)
                    };
                    if !clause_ok {
                        snapshot(stats, sat);
                        return SatResult::Unsat;
                    }
                }
            }
        }
        snapshot(stats, sat);
        SatResult::Unknown
    }

    /// Number of literals currently held by the persistent theory session's
    /// trail. Exposed for the scope-leak property tests: rolling back a
    /// method scope must restore the trail to its pre-scope length.
    #[doc(hidden)]
    pub fn theory_trail_len(&self) -> usize {
        self.session.trail_len()
    }

    /// Convenience wrapper for one goal check under the current assertions:
    /// opens a scope, asserts the negated formula, checks, pops — and
    /// translates the result into validity terms ([`SatResult::Sat`] = the
    /// formula is valid given the asserted hypotheses), mirroring
    /// [`crate::Solver::check_valid`].
    pub fn check_valid_scoped(&mut self, tm: &mut TermManager, formula: TermId) -> SatResult {
        self.push();
        let neg = tm.not(formula);
        self.assert(tm, neg);
        let result = self.check(tm);
        self.pop();
        match result {
            SatResult::Unsat => SatResult::Sat, // valid
            SatResult::Sat => SatResult::Unsat, // counterexample exists
            SatResult::Unknown => SatResult::Unknown,
        }
    }
}

/// The asserted theory literals of the current SAT model, restricted to live
/// atoms (see the module documentation for why dead atoms must be excluded
/// from theory checking).
///
/// Literals come back in SAT-trail (assignment) order, not term order: CDCL
/// backjumps retract only a trail suffix, so consecutive models agree on a
/// long prefix under this ordering, which is what lets the persistent theory
/// session assert/retract only the per-round delta. Callers needing a
/// canonical order (the model) sort separately.
fn live_literals(
    atom_map: &AtomMap,
    sat: &SatSolver,
    atom_scope: &HashMap<TermId, AtomScope>,
    scopes: &[Scope],
) -> Vec<(TermId, bool)> {
    let live_ids: std::collections::HashSet<u64> = scopes.iter().map(|s| s.id).collect();
    let is_live = |t: &TermId| match atom_scope.get(t) {
        Some(AtomScope::Base) => true,
        Some(AtomScope::Scopes(ids)) => ids.iter().any(|id| live_ids.contains(id)),
        // Unmarked atoms have a SAT encoding but no live registration: they
        // were only ever used inside a method scope that has since been
        // popped and rolled back. The restored theory checker does not know
        // them, and every live clause mentioning them is deactivated.
        None => false,
    };
    let mut out = Vec::new();
    for &lit in sat.trail() {
        if let Some(&atom) = atom_map.atom_of_var.get(&lit.var()) {
            if is_live(&atom) {
                out.push((atom, lit.is_positive()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;
    use crate::solver::Solver;

    #[test]
    fn push_pop_retracts_assertions() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let zero = tm.int(0);
        let ge = tm.ge(x, zero);
        let lt = tm.lt(x, zero);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, ge);
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        s.push();
        s.assert(&mut tm, lt);
        assert_eq!(s.check(&mut tm), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        // A second scope with a satisfiable refinement.
        s.push();
        let one = tm.int(1);
        let ge1 = tm.ge(x, one);
        s.assert(&mut tm, ge1);
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        s.pop();
    }

    #[test]
    fn euf_across_scopes() {
        // Permanent: f(x) != f(y). Scoped: x = y — unsat only inside the
        // scope, and again in a later scope (axiom state is reused).
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let fx = tm.app("f", vec![x], Sort::Int);
        let fy = tm.app("f", vec![y], Sort::Int);
        let ne = tm.neq(fx, fy);
        let eq = tm.eq(x, y);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, ne);
        for _ in 0..3 {
            s.push();
            s.assert(&mut tm, eq);
            assert_eq!(s.check(&mut tm), SatResult::Unsat);
            s.pop();
            assert_eq!(s.check(&mut tm), SatResult::Sat);
        }
    }

    #[test]
    fn set_axioms_instantiate_across_scopes() {
        // The union axiom must be instantiated at an element that only
        // appears in a *later* scoped assertion.
        let mut tm = TermManager::new();
        let set = Sort::set_of(Sort::Loc);
        let a = tm.var("A", set.clone());
        let b = tm.var("B", set);
        let u = tm.union(a, b);
        let x = tm.var("x", Sort::Loc);
        let mut s = IncrementalSolver::new();
        // Permanent: x in A (also seeds the element pool with x).
        let in_a = tm.member(x, a);
        s.assert(&mut tm, in_a);
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        // Scope 1: y not in the union, y = x — new element y arrives after
        // the union trigger was first scanned.
        let y = tm.var("y", Sort::Loc);
        let in_u = tm.member(y, u);
        let not_in_u = tm.not(in_u);
        let eq_xy = tm.eq(x, y);
        s.push();
        s.assert(&mut tm, not_in_u);
        s.assert(&mut tm, eq_xy);
        assert_eq!(s.check(&mut tm), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(&mut tm), SatResult::Sat);
    }

    #[test]
    fn check_valid_scoped_matches_fresh_solver() {
        // key(x) <= k, k <= key(y) |= key(x) <= key(y); but not key(x) < key(y).
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let k = tm.var("k", Sort::Int);
        let kx = tm.app("key", vec![x], Sort::Int);
        let ky = tm.app("key", vec![y], Sort::Int);
        let h1 = tm.le(kx, k);
        let h2 = tm.le(k, ky);
        let goal1 = tm.le(kx, ky);
        let goal2 = tm.lt(kx, ky);

        let mut inc = IncrementalSolver::new();
        inc.assert(&mut tm, h1);
        inc.assert(&mut tm, h2);
        for (goal, _name) in [(goal1, "le"), (goal2, "lt")] {
            let got = inc.check_valid_scoped(&mut tm, goal);
            let mut fresh = Solver::new();
            let mut tm2 = tm.clone();
            let imp = {
                let ante = tm2.and2(h1, h2);
                tm2.implies(ante, goal)
            };
            let want = fresh.check_valid(&mut tm2, imp);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn quantified_input_degrades_to_unknown() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let p = tm.app("p", vec![x], Sort::Bool);
        let all = tm.forall(vec![("x".into(), Sort::Loc)], p);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, all);
        assert_eq!(s.check(&mut tm), SatResult::Unknown);
    }

    #[test]
    fn method_scope_retracts_assertions_and_nests_vc_scopes() {
        // structure scope: x >= 0. Method A: x <= 5 with VCs x < 0 (unsat)
        // and x = 3 (sat). After popping A, method B contradicts A's residue
        // — which must be gone.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let zero = tm.int(0);
        let five = tm.int(5);
        let ge0 = tm.ge(x, zero);
        let le5 = tm.le(x, five);
        let lt0 = tm.lt(x, zero);
        let gt5 = tm.gt(x, five);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, ge0); // structure scope
        s.push_method_scope();
        s.assert(&mut tm, le5); // method residue
        s.push();
        s.assert(&mut tm, lt0);
        assert_eq!(s.check(&mut tm), SatResult::Unsat);
        s.pop();
        s.push();
        let eq3 = {
            let three = tm.int(3);
            tm.eq(x, three)
        };
        s.assert(&mut tm, eq3);
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        s.pop();
        s.pop_method_scope();
        // Method B: x > 5 is consistent with the structure scope alone.
        s.push_method_scope();
        s.assert(&mut tm, gt5);
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        // ... but still constrained by the structure scope.
        s.push();
        s.assert(&mut tm, lt0);
        assert_eq!(s.check(&mut tm), SatResult::Unsat);
        s.pop();
        s.pop_method_scope();
    }

    #[test]
    fn method_scope_rollback_reinstantiates_axioms() {
        // The union axiom instantiated at a method-local element must be
        // retracted with the method and re-derived when the next method
        // needs it again — three times over, exercising repeated rollback.
        let mut tm = TermManager::new();
        let set = Sort::set_of(Sort::Loc);
        let a = tm.var("A", set.clone());
        let b = tm.var("B", set);
        let u = tm.union(a, b);
        let x = tm.var("x", Sort::Loc);
        let in_a = tm.member(x, a);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, in_a); // structure scope
        for round in 0..3 {
            s.push_method_scope();
            let y = tm.var(&format!("y{}", round), Sort::Loc);
            let in_u = tm.member(y, u);
            let not_in_u = tm.not(in_u);
            let eq_xy = tm.eq(x, y);
            s.assert(&mut tm, not_in_u);
            s.assert(&mut tm, eq_xy);
            assert_eq!(s.check(&mut tm), SatResult::Unsat);
            s.pop_method_scope();
        }
        // The structure scope alone is still satisfiable.
        assert_eq!(s.check(&mut tm), SatResult::Sat);
    }

    #[test]
    fn method_scope_rollback_forgets_residue_reuse() {
        // A residue hypothesis re-asserted by the next method counts as
        // *lowered* again (its lowering state was rolled back); a
        // structure-scope hypothesis re-asserted counts as *reused*.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let zero = tm.int(0);
        let one = tm.int(1);
        let ge0 = tm.ge(x, zero);
        let ge1 = tm.ge(x, one);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, ge0);
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        assert_eq!(s.stats().prelude_lowered, 1);

        s.push_method_scope();
        s.assert(&mut tm, ge1); // fresh residue
        s.assert(&mut tm, ge0); // structure-scope formula, reused
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        assert_eq!(s.stats().prelude_lowered, 1);
        assert_eq!(s.stats().prelude_reused, 1);
        s.pop_method_scope();

        s.push_method_scope();
        s.assert(&mut tm, ge1); // rolled back: lowered again
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        assert_eq!(s.stats().prelude_lowered, 1);
        assert_eq!(s.stats().prelude_reused, 0);
        s.pop_method_scope();
    }

    #[test]
    fn unconsumed_reuse_credit_does_not_leak_across_method_scopes() {
        // A method that never checks (e.g. all its VCs were cancelled) must
        // not leak its prelude-reuse credit into the next method's stats.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let zero = tm.int(0);
        let ge0 = tm.ge(x, zero);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, ge0);
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        s.push_method_scope();
        s.note_prelude_reuse(5); // credited, never consumed by a check
        s.pop_method_scope();
        s.push_method_scope();
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        assert_eq!(s.stats().prelude_reused, 0, "credit must not leak");
        s.pop_method_scope();
    }

    #[test]
    fn method_scope_quantifier_degradation_is_rolled_back() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let p = tm.app("p", vec![x], Sort::Bool);
        let all = tm.forall(vec![("x".into(), Sort::Loc)], p);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, p);
        s.push_method_scope();
        s.assert(&mut tm, all);
        assert_eq!(s.check(&mut tm), SatResult::Unknown);
        s.pop_method_scope();
        // The quantified assertion fell with its method scope.
        assert_eq!(s.check(&mut tm), SatResult::Sat);
    }

    #[test]
    fn tracked_assertions_select_and_report_cores() {
        // Tracked hypotheses: x >= 0 (tag 0), x <= 5 (tag 1), y >= 0 (tag 2).
        // Goal scope asserts x >= 10: refuting needs exactly tag 1.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let y = tm.var("y", Sort::Int);
        let zero = tm.int(0);
        let five = tm.int(5);
        let ten = tm.int(10);
        let h0 = tm.ge(x, zero);
        let h1 = tm.le(x, five);
        let h2 = tm.ge(y, zero);
        let goal_neg = tm.ge(x, ten);
        let mut s = IncrementalSolver::new();
        s.assert_tracked(&mut tm, h0, 0);
        s.assert_tracked(&mut tm, h1, 1);
        s.assert_tracked(&mut tm, h2, 2);
        s.push();
        s.assert(&mut tm, goal_neg);
        // Full selection refutes; the core names only the used hypothesis.
        assert_eq!(s.check(&mut tm), SatResult::Unsat);
        assert_eq!(s.last_core_tags(), &[1]);
        assert_eq!(s.stats().unsat_cores, 1);
        assert!(s.stats().unsat_core_size >= 1);
        // The cored subset alone still refutes.
        assert_eq!(s.check_selected(&mut tm, Some(&[1])), SatResult::Unsat);
        assert_eq!(s.last_core_tags(), &[1]);
        // Deselecting the load-bearing hypothesis weakens the set into Sat,
        // and the stale core is cleared.
        assert_eq!(s.check_selected(&mut tm, Some(&[0, 2])), SatResult::Sat);
        assert!(s.last_core_tags().is_empty());
        s.pop();
        assert_eq!(s.check(&mut tm), SatResult::Sat);
    }

    #[test]
    fn tracked_assertions_roll_back_with_the_method_scope() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Int);
        let zero = tm.int(0);
        let five = tm.int(5);
        let ten = tm.int(10);
        let ge0 = tm.ge(x, zero);
        let le5 = tm.le(x, five);
        let ge10 = tm.ge(x, ten);
        let mut s = IncrementalSolver::new();
        s.assert_tracked(&mut tm, ge0, 0); // structure scope
        s.push_method_scope();
        s.assert_tracked(&mut tm, le5, 1); // method residue
        s.push();
        s.assert(&mut tm, ge10);
        assert_eq!(s.check(&mut tm), SatResult::Unsat);
        assert_eq!(s.last_core_tags(), &[1]);
        s.pop();
        s.pop_method_scope();
        // Tag 1 fell with the method scope: the same goal scope is now Sat,
        // and a selection naming the dead tag selects nothing extra.
        s.push();
        s.assert(&mut tm, ge10);
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        assert_eq!(s.check_selected(&mut tm, Some(&[1])), SatResult::Sat);
        s.pop();
    }

    #[test]
    fn stats_track_per_check_deltas() {
        let mut tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let x = tm.var("x", Sort::Int);
        let zero = tm.int(0);
        let one = tm.int(1);
        let five = tm.int(5);
        let le0 = tm.le(x, zero);
        let le1 = tm.le(x, one);
        let np = tm.not(p);
        let c1 = tm.implies(p, le0);
        let c2 = tm.implies(np, le1);
        let c3 = tm.ge(x, five);
        let mut s = IncrementalSolver::new();
        s.assert(&mut tm, c1);
        s.assert(&mut tm, c2);
        s.push();
        s.assert(&mut tm, c3);
        assert_eq!(s.check(&mut tm), SatResult::Unsat);
        let first = s.stats();
        assert!(first.theory_rounds > 0);
        s.pop();
        assert_eq!(s.check(&mut tm), SatResult::Sat);
        let second = s.stats();
        // Counters are per-check deltas, not cumulative: the second check
        // starts its round count from scratch.
        assert!(second.theory_rounds >= 1);
    }
}
