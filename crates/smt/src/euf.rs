//! Congruence closure for equality and uninterpreted functions (EUF), with
//! conflict explanations.
//!
//! The solver works in "batch" mode: given the universe of ground terms, a set
//! of asserted equalities and a set of asserted disequalities (each carrying
//! an opaque *tag* identifying the asserted literal it came from), it either
//! produces the equivalence classes of the congruence closure or a conflict
//! explanation — a subset of tags whose literals are jointly inconsistent.
//! Explanations are what make the learned theory clauses of the lazy DPLL(T)
//! loop short enough to be useful.
//!
//! The lazy DPLL(T) loop re-runs congruence closure once per propositional
//! model, so the parts of the setup that only depend on the universe of terms
//! (sub-term collection, node numbering, operator interning, the list of
//! congruence-eligible application nodes) are factored into an immutable
//! [`EufTemplate`] that is built once per solver call and shared by every
//! round via [`Euf::with_template`].

use std::collections::HashMap;

use crate::fxmap::FxHashMap;
use crate::term::{Op, TermId, TermManager};

/// Why two nodes were merged. Shared with the trail-based incremental engine
/// in [`crate::trail`], which maintains the same proof-forest shape.
#[derive(Clone, Debug)]
pub(crate) enum Reason {
    /// An input equation with the given tag.
    Asserted(usize),
    /// Congruence of the two application terms (same operator, equal args).
    Congruence(usize, usize),
}

/// The result of congruence closure: either consistency (query the classes
/// with [`Euf::same`] / [`Euf::class_index`]) or a conflict.
#[derive(Clone, Debug)]
pub enum EufOutcome {
    /// Consistent; query equalities with [`Euf::same`] and
    /// [`Euf::class_index`].
    Consistent,
    /// Inconsistent; the tags of a jointly inconsistent subset of the asserted
    /// literals.
    Conflict(Vec<usize>),
}

/// A congruence-eligible application node of the universe.
#[derive(Clone, Debug)]
pub(crate) struct AppNode {
    /// Node index of the application term itself.
    pub(crate) node: usize,
    /// Interned operator id (equal ids ⇔ equal operators).
    pub(crate) op: u32,
    /// Node indices of the arguments.
    pub(crate) args: Vec<usize>,
}

/// The immutable, shareable part of a congruence-closure run: the term
/// universe with dense node numbering and the pre-extracted application nodes.
#[derive(Clone, Debug, Default)]
pub struct EufTemplate {
    pub(crate) terms: Vec<TermId>,
    pub(crate) node_of_term: FxHashMap<TermId, usize>,
    pub(crate) app_nodes: Vec<AppNode>,
    /// Interned operators, kept so the template can be extended with new
    /// terms later (incremental sessions) without renumbering.
    op_ids: HashMap<Op, u32>,
}

impl EufTemplate {
    /// Builds the template for the given universe of terms (sub-terms of the
    /// universe members are added automatically).
    pub fn new(tm: &TermManager, universe: &[TermId]) -> EufTemplate {
        let mut template = EufTemplate::default();
        template.extend(tm, universe);
        template
    }

    /// Extends the template with new universe members (and their sub-terms).
    /// Existing node numbering is preserved; new terms are appended, so an
    /// [`Euf`] built from the extended template subsumes one built before.
    pub fn extend(&mut self, tm: &TermManager, universe: &[TermId]) {
        // Number every new term first (sub-term traversal yields parents
        // before children, so application nodes can only be built once all
        // their arguments have indices).
        let mut new_terms = Vec::new();
        for t in tm.subterms(universe) {
            if self.node_of_term.contains_key(&t) {
                continue;
            }
            self.terms.push(t);
            self.node_of_term.insert(t, self.terms.len() - 1);
            new_terms.push(t);
        }
        for t in new_terms {
            let term = tm.term(t);
            if term.args.is_empty()
                || matches!(
                    term.op,
                    Op::And | Op::Or | Op::Not | Op::Implies | Op::Iff | Op::Ite | Op::Forall(_)
                )
            {
                continue;
            }
            // Intern operators so signature comparison is integer comparison.
            let next = self.op_ids.len() as u32;
            let op = *self.op_ids.entry(term.op.clone()).or_insert(next);
            let node = self.node_of_term[&t];
            let args = term.args.iter().map(|a| self.node_of_term[a]).collect();
            self.app_nodes.push(AppNode { node, op, args });
        }
    }

    /// Number of nodes (distinct sub-terms) in the universe.
    pub fn num_nodes(&self) -> usize {
        self.terms.len()
    }
}

/// A batch congruence-closure solver.
pub struct Euf<'a> {
    tm: &'a TermManager,
    template: std::borrow::Cow<'a, EufTemplate>,
    parent: Vec<usize>,
    // Proof forest for explanations.
    pf_parent: Vec<Option<(usize, Reason)>>,
    diseqs: Vec<(usize, usize, usize)>,
    eq_tags: Vec<usize>,
    explain_incomplete: bool,
}

/// Union-find lookup with path compression, as a free function so that it can
/// be used while other fields of [`Euf`] are borrowed.
fn find_in(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

impl<'a> Euf<'a> {
    /// Creates a solver over the given universe of terms, building a fresh
    /// template internally. Sub-terms of universe members are added
    /// automatically.
    pub fn new(tm: &'a TermManager, universe: &[TermId]) -> Euf<'a> {
        let template = EufTemplate::new(tm, universe);
        Euf::from_cow(tm, std::borrow::Cow::Owned(template))
    }

    /// Creates a solver that shares a pre-built template. This is the cheap
    /// constructor used once per theory-check round by the lazy DPLL(T) loop.
    pub fn with_template(tm: &'a TermManager, template: &'a EufTemplate) -> Euf<'a> {
        Euf::from_cow(tm, std::borrow::Cow::Borrowed(template))
    }

    fn from_cow(tm: &'a TermManager, template: std::borrow::Cow<'a, EufTemplate>) -> Euf<'a> {
        let n = template.terms.len();
        Euf {
            tm,
            template,
            parent: (0..n).collect(),
            pf_parent: vec![None; n],
            diseqs: Vec::new(),
            eq_tags: Vec::new(),
            explain_incomplete: false,
        }
    }

    fn node(&self, t: TermId) -> usize {
        *self
            .template
            .node_of_term
            .get(&t)
            .unwrap_or_else(|| panic!("term {:?} not in EUF universe", t))
    }

    fn find(&mut self, x: usize) -> usize {
        find_in(&mut self.parent, x)
    }

    /// Asserts `a = b`, justified by the literal with the given tag.
    pub fn assert_eq(&mut self, a: TermId, b: TermId, tag: usize) {
        let (na, nb) = (self.node(a), self.node(b));
        self.eq_tags.push(tag);
        self.merge(na, nb, Reason::Asserted(tag));
    }

    /// Asserts `a != b`, justified by the literal with the given tag.
    pub fn assert_neq(&mut self, a: TermId, b: TermId, tag: usize) {
        let (na, nb) = (self.node(a), self.node(b));
        self.diseqs.push((na, nb, tag));
    }

    fn merge(&mut self, a: usize, b: usize, reason: Reason) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Add proof forest edge a -> b: first reverse the path from a to its
        // proof-tree root so that a becomes a root.
        self.reroot(a);
        self.pf_parent[a] = Some((b, reason));
        self.parent[ra] = rb;
    }

    fn reroot(&mut self, a: usize) {
        // Reverse proof-forest edges along the path from a to its root.
        let mut path = vec![a];
        let mut cur = a;
        while let Some((p, _)) = &self.pf_parent[cur] {
            cur = *p;
            path.push(cur);
        }
        // path = a .. root ; reverse edge directions.
        for i in (1..path.len()).rev() {
            let child = path[i - 1];
            let parent = path[i];
            let (_, reason) = self.pf_parent[child].clone().unwrap();
            self.pf_parent[parent] = Some((child, reason));
        }
        self.pf_parent[a] = None;
    }

    /// Runs congruence closure to fixpoint and checks the disequalities.
    pub fn check(&mut self) -> EufOutcome {
        // Repeatedly hash every application node by (operator, canonical
        // argument representatives); nodes that collide on the full signature
        // are congruent and get merged. Iterate until no merge happens.
        //
        // Equal signatures are grouped by SORTING the (hash, node) pairs
        // rather than by a hash table: this inner loop dominates EUF-heavy
        // VCs (tens of thousands of DPLL(T) rounds over thousands of
        // application nodes), and sort-based grouping does no re-hashing and
        // no per-bucket allocation. Signatures are computed for the whole
        // pass before any merge (the old table-based pass re-hashed against
        // the union-find as it mutated), so intra-pass merge cascades can
        // land in a later pass and individual merge partners — hence which
        // of several valid explanations a conflict reports — may differ;
        // the closure reached at fixpoint is the same either way.
        let n_apps = self.template.app_nodes.len();
        let mut sigs: Vec<(u64, u32)> = Vec::with_capacity(n_apps);
        let mut reps: Vec<u32> = Vec::new();
        loop {
            let mut changed = false;
            sigs.clear();
            {
                // Disjoint field borrows: the template is read-only while the
                // union-find array is path-compressed.
                let template: &EufTemplate = &self.template;
                let parent = &mut self.parent;
                for (ai, app) in template.app_nodes.iter().enumerate() {
                    // FNV-style signature hash over (op, canonical args).
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    h = (h ^ u64::from(app.op)).wrapping_mul(0x0000_0100_0000_01b3);
                    for &arg in &app.args {
                        let rep = find_in(parent, arg) as u64;
                        h = (h ^ rep).wrapping_mul(0x0000_0100_0000_01b3);
                    }
                    sigs.push((h, ai as u32));
                }
            }
            sigs.sort_unstable();
            let mut i = 0;
            while i < sigs.len() {
                let h = sigs[i].0;
                reps.clear();
                while i < sigs.len() && sigs[i].0 == h {
                    let ai = sigs[i].1 as usize;
                    i += 1;
                    let node_i = self.template.app_nodes[ai].node;
                    let mut merged_with: Option<usize> = None;
                    for &rep in &reps {
                        let aj = rep as usize;
                        if self.congruent_apps(ai, aj) {
                            let node_j = self.template.app_nodes[aj].node;
                            let (fi, fj) = (
                                find_in(&mut self.parent, node_i),
                                find_in(&mut self.parent, node_j),
                            );
                            if fi != fj {
                                merged_with = Some(node_j);
                            }
                            break;
                        }
                    }
                    if let Some(node_j) = merged_with {
                        self.merge(node_i, node_j, Reason::Congruence(node_i, node_j));
                        changed = true;
                    } else {
                        // Not congruent to any representative, or congruent
                        // but already in the same class — either way this
                        // node joins the representatives, exactly as the old
                        // table-based pass pushed into its bucket.
                        reps.push(ai as u32);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Check disequalities.
        for k in 0..self.diseqs.len() {
            let (a, b, tag) = self.diseqs[k];
            let (fa, fb) = (self.find(a), self.find(b));
            if fa == fb {
                let mut tags = self.explain(a, b);
                if self.explain_incomplete {
                    // Sound fallback: blame every asserted equation.
                    tags = self.eq_tags.clone();
                }
                tags.push(tag);
                tags.sort_unstable();
                tags.dedup();
                return EufOutcome::Conflict(tags);
            }
        }
        EufOutcome::Consistent
    }

    /// True if the two application nodes (indices into the template's app-node
    /// list) have the same operator and pairwise congruent arguments.
    fn congruent_apps(&mut self, ai: usize, aj: usize) -> bool {
        let (op_i, op_j) = (
            self.template.app_nodes[ai].op,
            self.template.app_nodes[aj].op,
        );
        if op_i != op_j
            || self.template.app_nodes[ai].args.len() != self.template.app_nodes[aj].args.len()
        {
            return false;
        }
        for k in 0..self.template.app_nodes[ai].args.len() {
            let (x, y) = (
                self.template.app_nodes[ai].args[k],
                self.template.app_nodes[aj].args[k],
            );
            if find_in(&mut self.parent, x) != find_in(&mut self.parent, y) {
                return false;
            }
        }
        true
    }

    /// True if the two terms are currently in the same class. Intended for use
    /// after [`Euf::check`] returned [`EufOutcome::Consistent`].
    pub fn same(&mut self, a: TermId, b: TermId) -> bool {
        let (na, nb) = (self.node(a), self.node(b));
        self.find(na) == self.find(nb)
    }

    /// A canonical class index for `t` (only meaningful for comparison against
    /// other indices from the same run), or `None` if `t` is not in the
    /// universe. Intended for use after a consistent [`Euf::check`].
    pub fn class_index(&mut self, t: TermId) -> Option<usize> {
        let n = *self.template.node_of_term.get(&t)?;
        Some(self.find(n))
    }

    /// Explains why two equal terms are equal: the tags of the asserted
    /// equations used. If the internal explanation is incomplete, all asserted
    /// equation tags are returned (sound but weaker).
    pub fn explain_terms(&mut self, a: TermId, b: TermId) -> Vec<usize> {
        let (na, nb) = (self.node(a), self.node(b));
        let tags = self.explain(na, nb);
        if self.explain_incomplete {
            self.eq_tags.clone()
        } else {
            tags
        }
    }

    /// Explains why nodes `a` and `b` are equal: returns the tags of asserted
    /// equations used.
    fn explain(&mut self, a: usize, b: usize) -> Vec<usize> {
        let mut tags = Vec::new();
        self.explain_rec(a, b, &mut tags, 0);
        tags
    }

    fn explain_rec(&mut self, a: usize, b: usize, tags: &mut Vec<usize>, depth: usize) {
        if a == b {
            return;
        }
        if depth > 10_000 {
            // Defensive: should not happen. Mark the explanation incomplete so
            // that the caller blames all asserted equations (sound, weaker).
            self.explain_incomplete = true;
            return;
        }
        // Find common ancestor in the proof forest.
        let mut ancestors_a = HashMap::new();
        let mut cur = a;
        let mut idx = 0usize;
        ancestors_a.insert(cur, idx);
        while let Some((p, _)) = &self.pf_parent[cur] {
            cur = *p;
            idx += 1;
            ancestors_a.insert(cur, idx);
        }
        let mut lca = b;
        while !ancestors_a.contains_key(&lca) {
            match &self.pf_parent[lca] {
                Some((p, _)) => lca = *p,
                None => {
                    // Not in the same proof tree — unexpected; be conservative
                    // and blame all asserted equations.
                    self.explain_incomplete = true;
                    return;
                }
            }
        }
        // Walk a -> lca and b -> lca collecting edge reasons.
        let walk =
            |mut x: usize, stop: usize, this: &mut Self, tags: &mut Vec<usize>, depth: usize| {
                while x != stop {
                    let (p, reason) = this.pf_parent[x].clone().expect("path to lca");
                    match reason {
                        Reason::Asserted(t) => tags.push(t),
                        Reason::Congruence(u, v) => {
                            let (tu, tv) = (this.template.terms[u], this.template.terms[v]);
                            let args_u = this.tm.term(tu).args.clone();
                            let args_v = this.tm.term(tv).args.clone();
                            for (x_arg, y_arg) in args_u.iter().zip(args_v.iter()) {
                                let (nu, nv) = (this.node(*x_arg), this.node(*y_arg));
                                this.explain_rec(nu, nv, tags, depth + 1);
                            }
                        }
                    }
                    x = p;
                }
            };
        walk(a, lca, self, tags, depth);
        walk(b, lca, self, tags, depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    fn setup() -> (TermManager, Vec<TermId>) {
        let tm = TermManager::new();
        (tm, vec![])
    }

    #[test]
    fn transitivity_conflict() {
        let (mut tm, _) = setup();
        let a = tm.var("a", Sort::Loc);
        let b = tm.var("b", Sort::Loc);
        let c = tm.var("c", Sort::Loc);
        let mut euf = Euf::new(&tm, &[a, b, c]);
        euf.assert_eq(a, b, 0);
        euf.assert_eq(b, c, 1);
        euf.assert_neq(a, c, 2);
        match euf.check() {
            EufOutcome::Conflict(tags) => {
                assert_eq!(tags, vec![0, 1, 2]);
            }
            _ => panic!("expected conflict"),
        }
    }

    #[test]
    fn congruence_basic() {
        let (mut tm, _) = setup();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let fx = tm.app("f", vec![x], Sort::Loc);
        let fy = tm.app("f", vec![y], Sort::Loc);
        let mut euf = Euf::new(&tm, &[fx, fy]);
        euf.assert_eq(x, y, 0);
        euf.assert_neq(fx, fy, 1);
        match euf.check() {
            EufOutcome::Conflict(tags) => assert_eq!(tags, vec![0, 1]),
            _ => panic!("expected conflict"),
        }
    }

    #[test]
    fn congruence_two_levels() {
        let (mut tm, _) = setup();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let fx = tm.app("f", vec![x], Sort::Loc);
        let fy = tm.app("f", vec![y], Sort::Loc);
        let gfx = tm.app("g", vec![fx], Sort::Loc);
        let gfy = tm.app("g", vec![fy], Sort::Loc);
        let mut euf = Euf::new(&tm, &[gfx, gfy]);
        euf.assert_eq(x, y, 7);
        euf.assert_neq(gfx, gfy, 9);
        match euf.check() {
            EufOutcome::Conflict(tags) => assert_eq!(tags, vec![7, 9]),
            _ => panic!("expected conflict"),
        }
    }

    #[test]
    fn consistent_classes() {
        let (mut tm, _) = setup();
        let a = tm.var("a", Sort::Loc);
        let b = tm.var("b", Sort::Loc);
        let c = tm.var("c", Sort::Loc);
        let mut euf = Euf::new(&tm, &[a, b, c]);
        euf.assert_eq(a, b, 0);
        euf.assert_neq(a, c, 1);
        match euf.check() {
            EufOutcome::Consistent => {
                assert!(euf.same(a, b));
                assert!(!euf.same(a, c));
            }
            _ => panic!("expected consistent"),
        }
    }

    #[test]
    fn explanation_is_minimal() {
        // Irrelevant equalities must not show up in the conflict.
        let (mut tm, _) = setup();
        let a = tm.var("a", Sort::Loc);
        let b = tm.var("b", Sort::Loc);
        let p = tm.var("p", Sort::Loc);
        let q = tm.var("q", Sort::Loc);
        let mut euf = Euf::new(&tm, &[a, b, p, q]);
        euf.assert_eq(p, q, 0); // irrelevant
        euf.assert_eq(a, b, 1);
        euf.assert_neq(a, b, 2);
        match euf.check() {
            EufOutcome::Conflict(tags) => assert_eq!(tags, vec![1, 2]),
            _ => panic!("expected conflict"),
        }
    }

    #[test]
    fn function_with_two_args() {
        let (mut tm, _) = setup();
        let x = tm.var("x", Sort::Int);
        let y = tm.var("y", Sort::Int);
        let z = tm.var("z", Sort::Int);
        let fxy = tm.app("f", vec![x, y], Sort::Int);
        let fxz = tm.app("f", vec![x, z], Sort::Int);
        let mut euf = Euf::new(&tm, &[fxy, fxz]);
        euf.assert_eq(y, z, 0);
        euf.assert_neq(fxy, fxz, 1);
        assert!(matches!(euf.check(), EufOutcome::Conflict(_)));
    }

    #[test]
    fn shared_template_runs_are_independent() {
        // Two rounds over the same template must not see each other's
        // assertions.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::Loc);
        let y = tm.var("y", Sort::Loc);
        let fx = tm.app("f", vec![x], Sort::Loc);
        let fy = tm.app("f", vec![y], Sort::Loc);
        let template = EufTemplate::new(&tm, &[fx, fy]);

        let mut round1 = Euf::with_template(&tm, &template);
        round1.assert_eq(x, y, 0);
        round1.assert_neq(fx, fy, 1);
        assert!(matches!(round1.check(), EufOutcome::Conflict(_)));

        let mut round2 = Euf::with_template(&tm, &template);
        round2.assert_neq(fx, fy, 1);
        assert!(matches!(round2.check(), EufOutcome::Consistent));
    }
}
