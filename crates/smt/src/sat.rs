//! A CDCL SAT solver: two-watched-literal propagation, first-UIP clause
//! learning, VSIDS-style variable activities, phase saving, configurable
//! (Luby or geometric) restarts and LBD-based learned-clause database
//! management.
//!
//! The solver is used incrementally by the lazy DPLL(T) loop in
//! [`crate::solver`]: after each propositionally satisfying assignment, theory
//! conflict clauses are added and `solve` is called again.
//!
//! # Learned-clause deletion and soundness
//!
//! Clauses learned by first-UIP analysis are resolvents of input and learned
//! clauses only, so they are logically implied and *deleting* them can never
//! change a verdict — it only costs re-derivation. Three clause categories
//! are therefore never deleted by `reduce_db`:
//!
//! * **input clauses** (including the activation-literal-guarded scope
//!   clauses of [`crate::incremental`]) — they define the problem;
//! * **theory conflict clauses** ([`SatSolver::add_theory_conflict`]) — they
//!   carry theory facts the SAT core cannot re-derive, and the termination
//!   argument of the lazy DPLL(T) loop (every propositional model is refuted
//!   at most once) depends on them persisting;
//! * **locked clauses** — the current reason of an assigned literal — and
//!   **glue clauses** (LBD ≤ [`ClauseDbOptions::glue_lbd`]), following the
//!   Glucose heuristic that low-LBD clauses are worth keeping forever.
//!
//! Deletion is tombstone-based: a deleted clause keeps its index (indices are
//! used as `reason` handles and in watch lists) but drops its literals; watch
//! lists shed dead indices lazily during propagation.

use std::fmt;

/// The restart schedule of the CDCL search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Restart after `unit * luby(i)` conflicts, where `luby` is the Luby
    /// sequence 1,1,2,1,1,2,4,… — the de-facto standard schedule: frequent
    /// cheap restarts interleaved with exponentially growing deep dives.
    Luby {
        /// Base number of conflicts multiplied by the Luby sequence.
        unit: u64,
    },
    /// The legacy schedule: first restart after `start` conflicts, each
    /// subsequent limit 1.5× the previous.
    Geometric {
        /// Conflicts before the first restart.
        start: u64,
    },
}

/// Learned-clause database management knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClauseDbOptions {
    /// Whether periodic deletion runs at all (off reproduces the legacy
    /// keep-everything behaviour).
    pub enabled: bool,
    /// Conflicts before the first `reduce_db` run.
    pub first_reduce: u64,
    /// How much the reduction interval grows after every reduction.
    pub reduce_inc: u64,
    /// Clauses with an LBD at or below this are *glue* and never deleted.
    pub glue_lbd: u32,
}

/// Tuning options of the SAT core (restart schedule + clause database).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SatOptions {
    /// Restart schedule.
    pub restart: RestartPolicy,
    /// Learned-clause database management.
    pub clause_db: ClauseDbOptions,
}

impl Default for SatOptions {
    /// The tuned profile: Luby restarts and LBD-based clause deletion.
    fn default() -> SatOptions {
        SatOptions {
            restart: RestartPolicy::Luby { unit: 100 },
            clause_db: ClauseDbOptions {
                enabled: true,
                first_reduce: 2000,
                reduce_inc: 300,
                glue_lbd: 2,
            },
        }
    }
}

impl SatOptions {
    /// The pre-tuning behaviour: geometric restarts, no clause deletion.
    pub fn legacy() -> SatOptions {
        SatOptions {
            restart: RestartPolicy::Geometric { start: 100 },
            clause_db: ClauseDbOptions {
                enabled: false,
                first_reduce: u64::MAX,
                reduce_inc: 0,
                glue_lbd: 2,
            },
        }
    }
}

/// The Luby sequence 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,… (1-indexed).
fn luby(i: u64) -> u64 {
    // Find the smallest k with 2^k - 1 >= i; i at the end of such a block is
    // 2^(k-1), anywhere else recurse into the repeated prefix.
    let mut x = i;
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < x {
            k += 1;
        }
        if (1u64 << k) - 1 == x {
            return 1u64 << (k - 1);
        }
        x -= (1u64 << (k - 1)) - 1;
    }
}

/// A propositional variable index.
pub type Var = u32;

/// A literal: a variable together with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal for `var`, positive if `positive` is true.
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var << 1 | (if positive { 0 } else { 1 }))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// True if this is the positive literal of its variable.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var())
        } else {
            write!(f, "~v{}", self.var())
        }
    }
}

/// Result of a (propositional or full SMT) satisfiability check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment / model was found.
    Sat,
    /// The problem is unsatisfiable.
    Unsat,
    /// The solver gave up (resource limit, incomplete fragment).
    Unknown,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Value {
    True,
    False,
    Unassigned,
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
    /// Learned clauses that [`SatSolver::reduce_db`] may delete: first-UIP
    /// resolvents only. Input and theory conflict clauses are protected (see
    /// the module documentation).
    deletable: bool,
    /// Tombstone: the clause is logically gone but keeps its index so that
    /// `reason` handles and watch lists stay valid; `lits` is emptied.
    deleted: bool,
    /// Literal-block distance at learning time (0 for non-deletable clauses).
    lbd: u32,
    /// Bump-and-decay activity, the deletion tie-breaker within an LBD band.
    activity: f64,
}

/// The CDCL SAT solver.
///
/// # Example
/// ```
/// use ids_smt::sat::{SatSolver, Lit, SatResult};
/// let mut s = SatSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(vec![Lit::new(a, true), Lit::new(b, true)]);
/// s.add_clause(vec![Lit::new(a, false)]);
/// assert_eq!(s.solve(), SatResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<usize>>, // indexed by literal
    assign: Vec<Value>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    /// Max-heap of (activity bits, var) used to pick decision variables
    /// without scanning every variable. Entries may be stale (the activity
    /// may have changed since insertion); staleness only degrades the
    /// heuristic, never correctness, because every unassigned variable is
    /// guaranteed to have at least one entry.
    order: std::collections::BinaryHeap<(u64, Var)>,
    phase: Vec<bool>,
    /// Literals assumed true for the duration of one `solve_under` call.
    /// Assumptions are decided before any free decision; conflict analysis
    /// never resolves on them, so learned clauses stay globally valid.
    assumptions: Vec<Lit>,
    ok: bool,
    options: SatOptions,
    /// Clause-activity increment (decayed geometrically per conflict).
    cla_inc: f64,
    /// Conflicts seen since the last `reduce_db` run.
    conflicts_since_reduce: u64,
    /// Conflict count that triggers the next `reduce_db` run.
    reduce_limit: u64,
    /// Restarts performed since the current `solve` began. Persisted across
    /// `solve_continue`/`solve_continue_under` rounds of one solve so the
    /// Luby sequence keeps advancing on theory-bound problems (each theory
    /// round used to rewind the schedule to its beginning, so restarts — and
    /// with them the `reduce_db` cadence — barely ever fired).
    restarts_this_solve: u64,
    /// Conflict count that triggers the next restart (advances along the
    /// schedule with `restarts_this_solve`; `0` means "not yet initialised").
    restart_limit: u64,
    /// Conflicts since the last restart, persisted across continuation
    /// rounds like `restarts_this_solve`.
    conflicts_since_restart: u64,
    /// The unsat core of the most recent [`SatResult::Unsat`] answer from
    /// [`SatSolver::solve_under`] / [`SatSolver::solve_continue_under`]: a
    /// subset of the assumption literals sufficient for unsatisfiability.
    /// Empty when the clause set is unsatisfiable on its own.
    pub unsat_core: Vec<Lit>,
    /// Number of conflicts encountered (for statistics).
    pub conflicts: u64,
    /// Number of decisions made (for statistics).
    pub decisions: u64,
    /// Number of unit propagations performed (for statistics).
    pub propagations: u64,
    /// Number of restarts performed (for statistics).
    pub restarts: u64,
    /// Learned clauses deleted by database reductions (for statistics).
    pub learned_deleted: u64,
    /// Largest literal-block distance of any learned clause (for statistics).
    pub max_lbd: u32,
}

impl SatSolver {
    /// Creates an empty solver with the tuned default options.
    pub fn new() -> SatSolver {
        SatSolver::with_options(SatOptions::default())
    }

    /// Creates an empty solver with explicit restart/clause-db options.
    pub fn with_options(options: SatOptions) -> SatSolver {
        SatSolver {
            act_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            reduce_limit: options.clause_db.first_reduce,
            options,
            ..Default::default()
        }
    }

    /// Allocates a fresh propositional variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len() as Var;
        self.assign.push(Value::Unassigned);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push((0, v));
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    fn lit_value(&self, l: Lit) -> Value {
        match self.assign[l.var() as usize] {
            Value::Unassigned => Value::Unassigned,
            Value::True => {
                if l.is_positive() {
                    Value::True
                } else {
                    Value::False
                }
            }
            Value::False => {
                if l.is_positive() {
                    Value::False
                } else {
                    Value::True
                }
            }
        }
    }

    /// The assignment trail: every currently assigned literal in assignment
    /// order. Consecutive solver rounds share a long trail prefix (CDCL
    /// backjumps only undo a suffix), which the incremental theory session
    /// exploits to retract/assert only the delta between models.
    pub fn trail(&self) -> &[Lit] {
        &self.trail
    }

    /// The current value of a variable, if assigned.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assign[v as usize] {
            Value::True => Some(true),
            Value::False => Some(false),
            Value::Unassigned => None,
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the clause system became trivially
    /// unsatisfiable (empty clause at level 0).
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        if !self.ok {
            return false;
        }
        // We may be called mid-search (theory conflict clauses). Backtrack to
        // the root level so that clause insertion stays simple and correct.
        self.backtrack(0);
        lits.sort();
        lits.dedup();
        // Remove clauses satisfied at level 0 and false literals.
        let mut i = 0;
        while i < lits.len() {
            if i + 1 < lits.len() && lits[i].var() == lits[i + 1].var() {
                return true; // contains l and ~l: tautology
            }
            match self.lit_value(lits[i]) {
                Value::True => return true,
                Value::False => {
                    lits.remove(i);
                }
                Value::Unassigned => i += 1,
            }
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(lits[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(lits, false, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learned: bool, deletable: bool, lbd: u32) -> usize {
        let idx = self.clauses.len();
        self.watches[lits[0].negate().index()].push(idx);
        self.watches[lits[1].negate().index()].push(idx);
        self.clauses.push(Clause {
            lits,
            learned,
            deletable,
            deleted: false,
            lbd,
            activity: 0.0,
        });
        idx
    }

    /// The number of distinct decision levels among a clause's literals — the
    /// Glucose "literal block distance" quality measure (lower is better).
    fn lbd_of(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var() as usize]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn bump_clause(&mut self, ci: usize) {
        if !self.clauses[ci].deletable {
            return;
        }
        self.clauses[ci].activity += self.cla_inc;
        if self.clauses[ci].activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) {
        debug_assert_eq!(self.lit_value(l), Value::Unassigned);
        let v = l.var() as usize;
        self.assign[v] = if l.is_positive() {
            Value::True
        } else {
            Value::False
        };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.phase[v] = l.is_positive();
        self.trail.push(l);
    }

    /// Unit propagation; returns the index of a conflicting clause if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.prop_head < self.trail.len() {
            let l = self.trail[self.prop_head];
            self.prop_head += 1;
            self.propagations += 1;
            // Clauses watching ~l need attention (we store watches under the
            // literal that, when made true, might falsify the watched lit).
            let watch_list = std::mem::take(&mut self.watches[l.index()]);
            let mut keep = Vec::with_capacity(watch_list.len());
            let mut conflict = None;
            let mut wi = 0;
            while wi < watch_list.len() {
                let ci = watch_list[wi];
                wi += 1;
                if self.clauses[ci].deleted {
                    // Lazy watch-list cleanup: dead indices are dropped the
                    // first time propagation visits them.
                    continue;
                }
                let watched_false = l.negate();
                // Ensure the false literal is at position 1.
                if self.clauses[ci].lits[0] == watched_false {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.lit_value(first) == Value::True {
                    keep.push(ci);
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.lit_value(cand) != Value::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[cand.negate().index()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                keep.push(ci);
                if self.lit_value(first) == Value::False {
                    // Conflict.
                    keep.extend_from_slice(&watch_list[wi..]);
                    conflict = Some(ci);
                    break;
                } else {
                    self.enqueue(first, Some(ci));
                }
            }
            self.watches[l.index()] = {
                let mut w = keep;
                w.extend(std::mem::take(&mut self.watches[l.index()]));
                w
            };
            if conflict.is_some() {
                self.prop_head = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v as usize] += self.act_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
        self.order.push((self.activity[v as usize].to_bits(), v));
    }

    /// First-UIP conflict analysis. Returns the learned clause and the level
    /// to backjump to.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![];
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause_idx = conflict;
        let mut trail_pos = self.trail.len();
        let cur_level = self.decision_level();

        loop {
            self.bump_clause(clause_idx);
            let lits: Vec<Lit> = self.clauses[clause_idx].lits.clone();
            for &q in &lits {
                // Skip the literal we are currently resolving on (it occurs in
                // its own reason clause with the opposite polarity).
                if p.is_some_and(|pl| pl.var() == q.var()) {
                    continue;
                }
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] == cur_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next literal on the trail (at current level) to resolve.
            loop {
                trail_pos -= 1;
                let l = self.trail[trail_pos];
                if seen[l.var() as usize] {
                    p = Some(l.negate());
                    seen[l.var() as usize] = false;
                    counter -= 1;
                    if counter == 0 {
                        break;
                    }
                    clause_idx = self.reason[l.var() as usize].expect("reason for implied lit");
                    break;
                }
            }
            if counter == 0 {
                break;
            }
        }
        let uip = p.expect("first UIP literal");
        learned.insert(0, uip);
        // Backjump level = max level among the other literals.
        let bj = learned[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        (learned, bj)
    }

    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        while self.trail.len() > target {
            let l = self.trail.pop().unwrap();
            let v = l.var() as usize;
            self.assign[v] = Value::Unassigned;
            self.reason[v] = None;
            self.order.push((self.activity[v].to_bits(), l.var()));
        }
        self.trail_lim.truncate(level as usize);
        self.prop_head = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some((_, v)) = self.order.pop() {
            if self.assign[v as usize] == Value::Unassigned {
                return Some(v);
            }
        }
        None
    }

    /// Searches for a satisfying assignment of the current clause set.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_budget(u64::MAX)
    }

    /// Searches with a conflict budget; returns [`SatResult::Unknown`] when
    /// the budget is exhausted.
    pub fn solve_with_budget(&mut self, max_conflicts: u64) -> SatResult {
        self.assumptions.clear();
        self.unsat_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.reset_search_schedule();
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        self.search(max_conflicts)
    }

    /// Rewinds the restart schedule (and with it the `reduce_db` cadence's
    /// trigger points) to its beginning. Called by the fresh-solve entry
    /// points only; continuation rounds keep advancing the same schedule.
    fn reset_search_schedule(&mut self) {
        self.restarts_this_solve = 0;
        self.conflicts_since_restart = 0;
        self.restart_limit = match self.options.restart {
            RestartPolicy::Luby { unit } => unit.max(1) * luby(1),
            RestartPolicy::Geometric { start } => start.max(1),
        };
    }

    /// Continues the search from the current trail without resetting it. Used
    /// by the lazy DPLL(T) driver after [`SatSolver::add_theory_conflict`] so
    /// that each theory round only repairs the part of the assignment the new
    /// clause invalidates instead of re-enumerating the whole model.
    pub fn solve_continue(&mut self) -> SatResult {
        self.assumptions.clear();
        self.unsat_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.search(u64::MAX)
    }

    /// Solves under temporary assumptions: the given literals are decided
    /// before any free decision, and [`SatResult::Unsat`] means *unsatisfiable
    /// together with the assumptions* (the solver itself stays consistent and
    /// usable — clauses learned along the way are globally valid, because
    /// conflict analysis resolves input/learned clauses only).
    ///
    /// This is the building block of the push/pop incremental solver: a scope's
    /// clauses carry a negated activation literal, and the scope is enabled by
    /// assuming the activation literal here.
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> SatResult {
        self.unsat_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.reset_search_schedule();
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        self.assumptions = assumptions.to_vec();
        let r = self.search(u64::MAX);
        self.assumptions.clear();
        r
    }

    /// The assumption-aware analogue of [`SatSolver::solve_continue`]: keeps
    /// the current trail (used between theory rounds) while re-establishing
    /// any assumption a backjump may have undone.
    pub fn solve_continue_under(&mut self, assumptions: &[Lit]) -> SatResult {
        self.unsat_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.assumptions = assumptions.to_vec();
        let r = self.search(u64::MAX);
        self.assumptions.clear();
        r
    }

    /// Adds a clause learned from a theory conflict while a (complete)
    /// assignment is in place. Backtracks just far enough for the clause to
    /// stop being falsified, attaches it, and enqueues its asserting literal
    /// when it is unit. Returns `false` if the clause system became
    /// unsatisfiable.
    pub fn add_theory_conflict(&mut self, mut lits: Vec<Lit>) -> bool {
        if !self.ok {
            return false;
        }
        lits.sort();
        lits.dedup();
        if lits.is_empty() {
            self.ok = false;
            return false;
        }
        // If some literal is already true the clause is satisfied; attach it
        // for completeness (it may matter after backtracking) and move on.
        if lits.iter().any(|&l| self.lit_value(l) == Value::True) {
            if lits.len() >= 2 {
                self.attach_clause(lits, true, false, 0);
            }
            return true;
        }
        // Level of each (false) literal; unassigned literals count as the
        // current level so that we do not backtrack past them.
        let level_of = |s: &Self, l: Lit| -> u32 {
            match s.lit_value(l) {
                Value::Unassigned => s.decision_level(),
                _ => s.level[l.var() as usize],
            }
        };
        let highest = lits.iter().map(|&l| level_of(self, l)).max().unwrap_or(0);
        if highest == 0 {
            // Falsified at the root level: unsatisfiable.
            self.ok = false;
            return false;
        }
        self.backtrack(highest - 1);
        // Order the literals so that unassigned ones come first, then false
        // literals by decreasing level — the two watched positions must be the
        // last literals of the clause to become false.
        lits.sort_by_key(|&l| match self.lit_value(l) {
            Value::Unassigned => (0u8, 0i64),
            _ => (1u8, -(self.level[l.var() as usize] as i64)),
        });
        let unassigned = lits
            .iter()
            .filter(|&&l| self.lit_value(l) == Value::Unassigned)
            .count();
        if lits.len() == 1 {
            // Unit at the root of its level; assert it at level 0.
            self.backtrack(0);
            match self.lit_value(lits[0]) {
                Value::True => {}
                Value::False => {
                    self.ok = false;
                    return false;
                }
                Value::Unassigned => {
                    self.enqueue(lits[0], None);
                    if self.propagate().is_some() {
                        self.ok = false;
                        return false;
                    }
                }
            }
            return true;
        }
        let ci = self.attach_clause(lits.clone(), true, false, 0);
        if unassigned == 1 {
            // The clause is asserting: propagate its only unassigned literal.
            self.enqueue(lits[0], Some(ci));
        }
        true
    }

    /// The CDCL search loop over the current trail.
    fn search(&mut self, max_conflicts: u64) -> SatResult {
        // The restart schedule lives on the solver, not in this call: a fresh
        // `solve` rewinds it via `reset_search_schedule`, while theory-round
        // continuations keep advancing the same Luby/geometric sequence (and
        // with it the clause-deletion cadence, which only fires at restarts).
        if self.restart_limit == 0 {
            // Direct `solve_continue` without a preceding fresh solve.
            self.reset_search_schedule();
        }
        let mut conflicts_here = 0u64;
        // One trace span per search call, segmented at restarts; the guard's
        // drop keeps Begin/End matched on every return path below.
        let mut obs_span = ids_obs::SegmentedSpan::new("sat");
        let heartbeat_every = ids_obs::heartbeat_interval();
        // Histogram sampling (restart-segment duration, conflict
        // inter-arrival) is snapshotted once per search call: disarmed runs
        // pay one relaxed load here and zero clock reads in the loop.
        let metrics = ids_obs::metrics_active();
        let mut seg_start = metrics.then(std::time::Instant::now);
        let mut last_conflict: Option<std::time::Instant> = None;
        loop {
            if let Some(conf) = self.propagate() {
                self.conflicts += 1;
                self.conflicts_since_reduce += 1;
                conflicts_here += 1;
                self.conflicts_since_restart += 1;
                if metrics {
                    let now = std::time::Instant::now();
                    if let Some(prev) = last_conflict.replace(now) {
                        ids_obs::record_metric(
                            ids_obs::Metric::ConflictGapUs,
                            now.duration_since(prev).as_micros() as u64,
                        );
                    }
                }
                if heartbeat_every != 0 && self.conflicts.is_multiple_of(heartbeat_every) {
                    self.emit_heartbeat();
                }
                if conflicts_here > max_conflicts {
                    return SatResult::Unknown;
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learned, bj) = self.analyze(conf);
                self.backtrack(bj);
                self.act_inc *= 1.05;
                self.cla_inc *= 1.001;
                if learned.len() == 1 {
                    self.enqueue(learned[0], None);
                } else {
                    // LBD is computed after the backjump, when every literal
                    // of the learned clause is assigned (the asserting
                    // literal is about to be, at the backjump level).
                    let lbd = self.lbd_of(&learned[1..]).saturating_add(1);
                    self.max_lbd = self.max_lbd.max(lbd);
                    let ci = self.attach_clause(learned.clone(), true, true, lbd);
                    self.bump_clause(ci);
                    self.enqueue(learned[0], Some(ci));
                }
                if self.conflicts_since_restart > self.restart_limit {
                    self.conflicts_since_restart = 0;
                    self.restarts_this_solve += 1;
                    self.restarts += 1;
                    let restarts_here = self.restarts_this_solve;
                    obs_span.restart(|| format!("restart {restarts_here}"));
                    if let Some(start) = seg_start.replace(std::time::Instant::now()) {
                        ids_obs::record_metric(
                            ids_obs::Metric::RestartSegmentUs,
                            start.elapsed().as_micros() as u64,
                        );
                    }
                    if heartbeat_every != 0 {
                        self.emit_heartbeat();
                    }
                    self.restart_limit = match self.options.restart {
                        RestartPolicy::Luby { unit } => {
                            unit.max(1) * luby(self.restarts_this_solve + 1)
                        }
                        RestartPolicy::Geometric { .. } => {
                            self.restart_limit + self.restart_limit / 2
                        }
                    };
                    self.backtrack(0);
                    if self.options.clause_db.enabled
                        && self.conflicts_since_reduce >= self.reduce_limit
                    {
                        self.reduce_db();
                    }
                }
            } else {
                // Assumptions are (re-)decided before any free decision; a
                // backjump or restart may have undone some of them.
                let mut assumed = None;
                for i in 0..self.assumptions.len() {
                    let a = self.assumptions[i];
                    match self.lit_value(a) {
                        Value::True => continue,
                        // Implied false by clauses and earlier assumptions
                        // alone: unsatisfiable under the assumptions. The
                        // clause set itself stays consistent (`ok` untouched).
                        Value::False => {
                            self.unsat_core = self.analyze_final(a);
                            return SatResult::Unsat;
                        }
                        Value::Unassigned => {
                            assumed = Some(a);
                            break;
                        }
                    }
                }
                if let Some(a) = assumed {
                    self.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(a, None);
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SatResult::Sat,
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v as usize];
                        self.enqueue(Lit::new(v, phase), None);
                    }
                }
            }
        }
    }

    /// MiniSat-style `analyzeFinal`: given an assumption literal found false
    /// under the current trail, walks the implication graph backwards and
    /// collects the subset of assumptions responsible — the unsat core.
    ///
    /// Soundness rests on the decision discipline of `search`: assumptions
    /// are (re-)decided before any free decision, and a free decision can
    /// only be on the trail while *every* assumption is assigned true — so
    /// when an assumption evaluates false, every `reason == None` ancestor
    /// above level 0 is itself an assumption. Level-0 implications hold
    /// unconditionally and contribute nothing.
    fn analyze_final(&self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        let mut seen = vec![false; self.num_vars()];
        seen[failed.var() as usize] = true;
        for &l in self.trail.iter().rev() {
            let v = l.var() as usize;
            if !seen[v] {
                continue;
            }
            seen[v] = false;
            if self.level[v] == 0 {
                continue;
            }
            match self.reason[v] {
                None => core.push(l),
                Some(ci) => {
                    for &q in &self.clauses[ci].lits {
                        if q.var() as usize != v && self.level[q.var() as usize] > 0 {
                            seen[q.var() as usize] = true;
                        }
                    }
                }
            }
        }
        core.sort();
        core.dedup();
        core
    }

    /// Deletes the worst half of the deletable learned clauses: highest LBD
    /// first, lowest activity as the tie-breaker. Glue clauses
    /// (LBD ≤ [`ClauseDbOptions::glue_lbd`]), locked clauses (the reason of
    /// an assigned literal), input clauses and theory conflict clauses are
    /// kept — see the module documentation for why each class is safe or
    /// necessary to keep.
    fn reduce_db(&mut self) {
        self.conflicts_since_reduce = 0;
        self.reduce_limit = self
            .reduce_limit
            .saturating_add(self.options.clause_db.reduce_inc);
        let locked: std::collections::HashSet<usize> = self
            .trail
            .iter()
            .filter_map(|l| self.reason[l.var() as usize])
            .collect();
        let glue = self.options.clause_db.glue_lbd;
        let mut cands: Vec<usize> = (0..self.clauses.len())
            .filter(|&ci| {
                let c = &self.clauses[ci];
                c.deletable && !c.deleted && c.lbd > glue && !locked.contains(&ci)
            })
            .collect();
        // Worst first: high LBD, then low activity (ties by index for
        // determinism — f64 activities of distinct clauses rarely tie, but
        // the sort must be total either way).
        cands.sort_unstable_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a], &self.clauses[b]);
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.total_cmp(&cb.activity))
                .then(a.cmp(&b))
        });
        for &ci in &cands[..cands.len() / 2] {
            let c = &mut self.clauses[ci];
            c.deleted = true;
            c.lits = Vec::new();
            self.learned_deleted += 1;
        }
    }

    /// Number of live clauses currently stored (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Number of live learned clauses currently stored.
    pub fn num_learned(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.learned && !c.deleted)
            .count()
    }

    /// Delivers a liveness heartbeat with the core's cumulative counters to
    /// the observer registered with [`ids_obs`] (called from the search loop
    /// every [`ids_obs::heartbeat_interval`] conflicts and at each restart).
    fn emit_heartbeat(&self) {
        ids_obs::emit_heartbeat(ids_obs::Heartbeat {
            conflicts: self.conflicts,
            decisions: self.decisions,
            propagations: self.propagations,
            restarts: self.restarts,
            learned: self.num_learned() as u64,
            ..ids_obs::Heartbeat::default()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: Var, b: bool) -> Lit {
        Lit::new(v, b)
    }

    #[test]
    fn lit_encoding() {
        let l = Lit::new(3, true);
        assert_eq!(l.var(), 3);
        assert!(l.is_positive());
        assert!(!l.negate().is_positive());
        assert_eq!(l.negate().negate(), l);
    }

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(vec![lit(a, true)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(vec![lit(a, true)]);
        assert!(!s.add_clause(vec![lit(a, false)]) || s.solve() == SatResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = SatSolver::new();
        let vars: Vec<Var> = (0..10).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(vec![lit(w[0], false), lit(w[1], true)]);
        }
        s.add_clause(vec![lit(vars[0], true)]);
        assert_eq!(s.solve(), SatResult::Sat);
        for &v in &vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: unsat. Variables p[i][j] = pigeon i in hole j.
        let mut s = SatSolver::new();
        let mut p = vec![];
        for _ in 0..3 {
            p.push(vec![s.new_var(), s.new_var()]);
        }
        for row in &p {
            s.add_clause(vec![lit(row[0], true), lit(row[1], true)]);
        }
        for i in 0..3 {
            for k in (i + 1)..3 {
                let (pi, pk) = (p[i].clone(), p[k].clone());
                for (&a, &b) in pi.iter().zip(pk.iter()) {
                    s.add_clause(vec![lit(a, false), lit(b, false)]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![lit(a, true), lit(b, true)]);
        assert_eq!(s.solve(), SatResult::Sat);
        s.add_clause(vec![lit(a, false)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        s.add_clause(vec![lit(b, false)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_are_retractable() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        // (~a | b) & (~a | ~b): unsat exactly when a is assumed.
        s.add_clause(vec![lit(a, false), lit(b, true)]);
        s.add_clause(vec![lit(a, false), lit(b, false)]);
        assert_eq!(s.solve_under(&[lit(a, true)]), SatResult::Unsat);
        // The solver stays usable: globally the clauses are satisfiable.
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(false));
        assert_eq!(s.solve_under(&[lit(a, false)]), SatResult::Sat);
        // Unsat under assumptions again, twice in a row.
        assert_eq!(s.solve_under(&[lit(a, true)]), SatResult::Unsat);
        assert_eq!(s.solve_under(&[lit(a, true)]), SatResult::Unsat);
    }

    #[test]
    fn conflicting_assumptions_detected() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![lit(a, true), lit(b, true)]);
        assert_eq!(
            s.solve_under(&[lit(a, false), lit(b, false)]),
            SatResult::Unsat
        );
        assert_eq!(
            s.solve_under(&[lit(a, true), lit(b, false)]),
            SatResult::Sat
        );
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn random_3sat_consistency() {
        // Small random instances: whatever the result, if SAT then the model
        // must satisfy every clause. Deterministic xorshift so the test is
        // reproducible without an external rand crate.
        let mut state = 42u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..30 {
            let mut s = SatSolver::new();
            let n = 12;
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            let mut clauses = vec![];
            for _ in 0..40 {
                let c: Vec<Lit> = (0..3)
                    .map(|_| lit(vars[next() as usize % n], next() % 2 == 0))
                    .collect();
                clauses.push(c.clone());
                s.add_clause(c);
            }
            if s.solve() == SatResult::Sat {
                for c in &clauses {
                    assert!(c.iter().any(|l| {
                        let v = s.value(l.var());
                        v == Some(l.is_positive())
                    }));
                }
            }
        }
    }

    #[test]
    fn unsat_core_is_a_sufficient_assumption_subset() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let x = s.new_var();
        // a -> x, b -> ~x: assuming {a, b} is unsat; c is irrelevant.
        s.add_clause(vec![lit(a, false), lit(x, true)]);
        s.add_clause(vec![lit(b, false), lit(x, false)]);
        assert_eq!(
            s.solve_under(&[lit(a, true), lit(b, true), lit(c, true)]),
            SatResult::Unsat
        );
        let core = s.unsat_core.clone();
        assert!(core.contains(&lit(a, true)), "core {:?} must blame a", core);
        assert!(core.contains(&lit(b, true)), "core {:?} must blame b", core);
        assert!(
            !core.contains(&lit(c, true)),
            "core {:?} must not blame the irrelevant assumption c",
            core
        );
        // Re-solving under the core alone must still be unsat (sufficiency).
        assert_eq!(s.solve_under(&core), SatResult::Unsat);
        // A satisfiable call leaves no stale core behind.
        assert_eq!(s.solve_under(&[lit(a, true)]), SatResult::Sat);
        assert!(s.unsat_core.is_empty());
        // Directly conflicting assumptions blame both polarities.
        assert_eq!(
            s.solve_under(&[lit(a, true), lit(a, false)]),
            SatResult::Unsat
        );
        assert_eq!(s.unsat_core, vec![lit(a, true), lit(a, false)]);
        // A clause-set-level unsat (no assumptions involved) has an empty
        // core: nothing to retract would help.
        s.add_clause(vec![lit(x, true)]);
        s.add_clause(vec![lit(x, false)]);
        assert_eq!(s.solve_under(&[lit(c, true)]), SatResult::Unsat);
        assert!(s.unsat_core.is_empty());
    }

    /// The satellite pin of the cross-round schedule fix: continuation
    /// rounds (as the DPLL(T) loop issues between theory checks) must keep
    /// advancing the restart schedule instead of rewinding it, so the
    /// clause-deletion cadence actually fires on multi-round problems. Each
    /// round here contributes only a few conflicts — under the old per-call
    /// schedule no single round ever reached a restart, so `reduce_db`
    /// (which only runs at restarts) never fired.
    #[test]
    fn schedule_persists_across_continuation_rounds() {
        let options = SatOptions {
            restart: RestartPolicy::Luby { unit: 2 },
            clause_db: ClauseDbOptions {
                enabled: true,
                first_reduce: 8,
                reduce_inc: 0,
                glue_lbd: 1,
            },
        };
        let mut s = SatSolver::with_options(options);
        // A conflict-rich but solution-rich random 3-SAT instance
        // (deterministic xorshift, as in `random_3sat_consistency`).
        let n = 24;
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        let mut state = 7u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..72 {
            let c: Vec<Lit> = (0..3)
                .map(|_| lit(vars[next() as usize % n], next() % 2 == 0))
                .collect();
            s.add_clause(c);
        }
        let act = s.new_var();
        assert_eq!(s.solve_under(&[lit(act, true)]), SatResult::Sat);
        let mut continued = 0u64;
        for _ in 0..60 {
            // Refute the current model the way a theory conflict would, then
            // continue the same solve.
            let blocking: Vec<Lit> = vars
                .iter()
                .take(8)
                .map(|&v| lit(v, s.value(v) != Some(true)))
                .collect();
            s.add_theory_conflict(blocking);
            if s.solve_continue_under(&[lit(act, true)]) != SatResult::Sat {
                break;
            }
            continued += 1;
        }
        assert!(continued > 5, "need a genuinely multi-round run");
        assert!(
            s.restarts > 0,
            "continuation rounds must reach the restart schedule (conflicts {})",
            s.conflicts
        );
        assert!(
            s.learned_deleted > 0,
            "clause deletion must fire across continuation rounds \
             (restarts {}, conflicts {})",
            s.restarts,
            s.conflicts
        );
    }

    /// The flip side of cross-round persistence: a *fresh* solve rewinds the
    /// restart schedule to its beginning.
    #[test]
    fn fresh_solve_rewinds_restart_schedule() {
        let options = SatOptions {
            restart: RestartPolicy::Luby { unit: 1 },
            ..SatOptions::default()
        };
        let mut s = SatSolver::with_options(options);
        let n = 24;
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        let mut state = 7u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..72 {
            let c: Vec<Lit> = (0..3)
                .map(|_| lit(vars[next() as usize % n], next() % 2 == 0))
                .collect();
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.restarts_this_solve > 0, "conflicts {}", s.conflicts);
        // A zero-budget fresh solve resets the schedule before any restart
        // could advance it again.
        let _ = s.solve_with_budget(0);
        assert_eq!(s.restarts_this_solve, 0);
    }
}
