//! Computes the solver-logic fingerprint at build time.
//!
//! The on-disk VC cache replays verdicts produced by earlier runs, so any
//! change to the solver or lowering logic must invalidate it. Instead of a
//! manually-bumped constant (easy to forget in exactly the PRs where it
//! matters), the fingerprint is an FNV-1a hash of every `src/*.rs` file of
//! this crate: a verdict-affecting solver change cannot ship without changing
//! a source file, and therefore cannot ship without invalidating the cache.
//!
//! The hash covers file names and contents in sorted order, so it is stable
//! across filesystems and build hosts for identical sources.

use std::fs;
use std::path::PathBuf;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn main() {
    let src_dir = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap()).join("src");
    let mut files: Vec<PathBuf> = fs::read_dir(&src_dir)
        .expect("read crates/smt/src")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .collect();
    files.sort();

    let mut hash = FNV_OFFSET;
    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy();
        fnv1a(&mut hash, name.as_bytes());
        fnv1a(&mut hash, &[0xff]);
        let contents = fs::read(path).expect("read solver source file");
        fnv1a(&mut hash, &contents);
        fnv1a(&mut hash, &[0xfe]);
        println!("cargo:rerun-if-changed={}", path.display());
    }
    // New files must re-trigger the scan, not just edits to known ones.
    println!("cargo:rerun-if-changed={}", src_dir.display());
    println!("cargo:rustc-env=IDS_SOLVER_LOGIC_FINGERPRINT={:016x}", hash);
}
