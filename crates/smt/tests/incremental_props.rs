//! Property tests for the incremental solver: on randomly generated
//! assertion/goal sequences over the decidable fragment (EUF + arithmetic +
//! sets), a push/pop session must return exactly the verdicts of a fresh
//! batch solver run on the equivalent one-shot query — after any number of
//! earlier checks and retractions have warmed the session's state.

use ids_smt::sat::{ClauseDbOptions, RestartPolicy, SatOptions};
use ids_smt::{
    IncrementalSolver, PivotRule, Solver, SolverConfig, SolverProfile, Sort, TermId, TermManager,
};
use proptest::prelude::*;

/// The solver configurations the session properties cycle through: both
/// shipped profiles, plus the tuned profile with the deletion/restart knobs
/// turned aggressive so that clause-database reductions fire on test-sized
/// instances (deletion inside scopes and method scopes must never change a
/// verdict or survive a rollback).
fn session_config(seed: u64) -> SolverConfig {
    match seed % 3 {
        0 => SolverConfig::with_profile(SolverProfile::Default),
        1 => SolverConfig::with_profile(SolverProfile::Legacy),
        _ => SolverConfig {
            sat: SatOptions {
                restart: RestartPolicy::Luby { unit: 1 },
                clause_db: ClauseDbOptions {
                    enabled: true,
                    first_reduce: 1,
                    reduce_inc: 0,
                    glue_lbd: 1,
                },
            },
            pivot: PivotRule::Hybrid { bland_after: 2 },
            ..SolverConfig::default()
        },
    }
}

/// Deterministic xorshift so the tests are reproducible without an external
/// rand crate (same idiom as the SAT core's random tests).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.wrapping_mul(2654435761).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A little universe of shared terms the random formulas draw from.
struct Universe {
    ints: Vec<TermId>,
    locs: Vec<TermId>,
    sets: Vec<TermId>,
}

impl Universe {
    fn new(tm: &mut TermManager) -> Universe {
        let mut ints: Vec<TermId> = (0..3)
            .map(|i| tm.var(&format!("i{}", i), Sort::Int))
            .collect();
        for k in -1i128..=2 {
            ints.push(tm.int(k));
        }
        let locs: Vec<TermId> = (0..3)
            .map(|i| tm.var(&format!("l{}", i), Sort::Loc))
            .collect();
        // Uninterpreted maps over locations give the EUF theory work to do.
        for &l in locs.clone().iter() {
            ints.push(tm.app("len", vec![l], Sort::Int));
        }
        let set = Sort::set_of(Sort::Loc);
        let mut sets: Vec<TermId> = (0..2)
            .map(|i| tm.var(&format!("S{}", i), set.clone()))
            .collect();
        let u = tm.union(sets[0], sets[1]);
        let d = tm.diff(sets[0], sets[1]);
        let s0 = tm.singleton(locs[0]);
        sets.push(u);
        sets.push(d);
        sets.push(s0);
        Universe { ints, locs, sets }
    }
}

/// One random ground formula of the decidable fragment.
fn random_formula(rng: &mut XorShift, tm: &mut TermManager, u: &Universe, depth: u32) -> TermId {
    if depth > 0 && rng.below(2) == 0 {
        let a = random_formula(rng, tm, u, depth - 1);
        let b = random_formula(rng, tm, u, depth - 1);
        return match rng.below(4) {
            0 => tm.and2(a, b),
            1 => tm.or2(a, b),
            2 => tm.implies(a, b),
            _ => {
                let na = tm.not(a);
                tm.or2(na, b)
            }
        };
    }
    let atom = match rng.below(4) {
        0 => {
            let a = u.ints[rng.below(u.ints.len() as u64) as usize];
            let b = u.ints[rng.below(u.ints.len() as u64) as usize];
            tm.le(a, b)
        }
        1 => {
            let a = u.ints[rng.below(u.ints.len() as u64) as usize];
            let b = u.ints[rng.below(u.ints.len() as u64) as usize];
            tm.eq(a, b)
        }
        2 => {
            let a = u.locs[rng.below(u.locs.len() as u64) as usize];
            let b = u.locs[rng.below(u.locs.len() as u64) as usize];
            tm.eq(a, b)
        }
        _ => {
            let x = u.locs[rng.below(u.locs.len() as u64) as usize];
            let s = u.sets[rng.below(u.sets.len() as u64) as usize];
            tm.member(x, s)
        }
    };
    if rng.below(3) == 0 {
        tm.not(atom)
    } else {
        atom
    }
}

proptest! {
    /// A session interleaving permanent assertions with scoped goal checks
    /// answers every check exactly like a fresh solver on the one-shot
    /// conjunction of the live assertions.
    #[test]
    fn session_checks_match_fresh_solver(seed in 0u64..48) {
        let mut rng = XorShift::new(seed);
        let mut tm = TermManager::new();
        let universe = Universe::new(&mut tm);
        let mut session = IncrementalSolver::with_config(session_config(seed));
        let mut permanent: Vec<TermId> = Vec::new();

        let steps = 2 + rng.below(4);
        for _ in 0..steps {
            // Occasionally grow the permanent assertion set (the "shared
            // hypothesis prefix" of a method session).
            if rng.below(2) == 0 {
                let h = random_formula(&mut rng, &mut tm, &universe, 2);
                permanent.push(h);
                session.assert(&mut tm, h);
            }
            // One scoped goal: push / assert / check / pop.
            let goal = random_formula(&mut rng, &mut tm, &universe, 2);
            session.push();
            session.assert(&mut tm, goal);
            let incremental = session.check(&mut tm);
            session.pop();

            let mut fresh_query = permanent.clone();
            fresh_query.push(goal);
            let fresh = Solver::new().check(&mut tm, &fresh_query);
            prop_assert_eq!(
                incremental,
                fresh,
                "seed {} diverged (permanent: {}, goal formula differs)",
                seed,
                permanent.len()
            );

            // The session must also agree on the permanent set alone after
            // the pop (retraction really retracts).
            let after_pop = session.check(&mut tm);
            let fresh_base = Solver::new().check(&mut tm, &permanent);
            prop_assert_eq!(after_pop, fresh_base, "seed {} diverged after pop", seed);
        }
    }

    /// The two-level scope discipline of a structure-scoped warm pool:
    /// random "methods" (a residue assertion set plus scoped goal checks)
    /// run inside method scopes over a shared random structure prelude. Every
    /// check must match a fresh solver on prelude ∪ residue ∪ goal, no
    /// matter how many earlier method scopes were opened, checked and rolled
    /// back — and the prelude alone must still answer like a fresh solver
    /// after each rollback.
    #[test]
    fn method_scopes_match_fresh_solver(seed in 0u64..48) {
        let mut rng = XorShift::new(seed);
        let mut tm = TermManager::new();
        let universe = Universe::new(&mut tm);
        let mut pool = IncrementalSolver::with_config(session_config(seed));
        let mut prelude: Vec<TermId> = Vec::new();
        for _ in 0..(1 + rng.below(3)) {
            let h = random_formula(&mut rng, &mut tm, &universe, 1);
            prelude.push(h);
            pool.assert(&mut tm, h);
        }
        let methods = 2 + rng.below(3);
        for _ in 0..methods {
            pool.push_method_scope();
            let mut residue: Vec<TermId> = Vec::new();
            for _ in 0..rng.below(3) {
                let h = random_formula(&mut rng, &mut tm, &universe, 2);
                residue.push(h);
                pool.assert(&mut tm, h);
            }
            for _ in 0..(1 + rng.below(3)) {
                let goal = random_formula(&mut rng, &mut tm, &universe, 2);
                pool.push();
                pool.assert(&mut tm, goal);
                let pooled = pool.check(&mut tm);
                pool.pop();
                let mut fresh_query = prelude.clone();
                fresh_query.extend(&residue);
                fresh_query.push(goal);
                let fresh = Solver::new().check(&mut tm, &fresh_query);
                prop_assert_eq!(
                    pooled,
                    fresh,
                    "seed {} diverged (prelude {}, residue {})",
                    seed,
                    prelude.len(),
                    residue.len()
                );
            }
            pool.pop_method_scope();
            let after = pool.check(&mut tm);
            let fresh_base = Solver::new().check(&mut tm, &prelude);
            prop_assert_eq!(after, fresh_base, "seed {} diverged after rollback", seed);
        }
    }

    /// The persistent theory trail never leaks across method-scope
    /// rollbacks: after every `pop_method_scope` the trail holds exactly the
    /// literals it held before the scope was opened, no matter how many
    /// checks (and theory conflicts) ran inside the scope — so a structure
    /// pool cycling thousands of methods cannot accrete theory state.
    #[test]
    fn method_scope_rollback_restores_theory_trail(seed in 0u64..48) {
        let mut rng = XorShift::new(seed.wrapping_add(101));
        let mut tm = TermManager::new();
        let universe = Universe::new(&mut tm);
        let mut pool = IncrementalSolver::with_config(session_config(seed));
        for _ in 0..(1 + rng.below(2)) {
            let h = random_formula(&mut rng, &mut tm, &universe, 1);
            pool.assert(&mut tm, h);
        }
        pool.check(&mut tm);
        for _ in 0..(3 + rng.below(3)) {
            let before = pool.theory_trail_len();
            pool.push_method_scope();
            for _ in 0..rng.below(3) {
                let h = random_formula(&mut rng, &mut tm, &universe, 2);
                pool.assert(&mut tm, h);
            }
            for _ in 0..(1 + rng.below(3)) {
                let goal = random_formula(&mut rng, &mut tm, &universe, 2);
                pool.check_valid_scoped(&mut tm, goal);
            }
            pool.pop_method_scope();
            prop_assert_eq!(
                pool.theory_trail_len(),
                before,
                "seed {}: trail leaked across pop_method_scope",
                seed
            );
        }
    }

    /// `check_valid_scoped` agrees with the batch solver's `check_valid` on
    /// hypothesis-entailment queries (the VC shape).
    #[test]
    fn scoped_validity_matches_check_valid(seed in 0u64..48) {
        let mut rng = XorShift::new(seed);
        let mut tm = TermManager::new();
        let universe = Universe::new(&mut tm);
        let mut session = IncrementalSolver::with_config(session_config(seed));
        let mut hyps: Vec<TermId> = Vec::new();
        for _ in 0..(1 + rng.below(3)) {
            let h = random_formula(&mut rng, &mut tm, &universe, 1);
            hyps.push(h);
            session.assert(&mut tm, h);
        }
        for _ in 0..(1 + rng.below(3)) {
            let goal = random_formula(&mut rng, &mut tm, &universe, 2);
            let scoped = session.check_valid_scoped(&mut tm, goal);
            let formula = {
                let ante = tm.and(hyps.clone());
                tm.implies(ante, goal)
            };
            let fresh = Solver::new().check_valid(&mut tm, formula);
            prop_assert_eq!(scoped, fresh, "seed {} diverged", seed);
        }
    }
}
