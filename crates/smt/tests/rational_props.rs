//! Property tests for the exact rational arithmetic (`rational.rs`) that the
//! simplex core is built on: field axioms, normalization, ordering, and the
//! floor/ceil used by integer branch-and-bound.

use ids_smt::rational::DeltaRat;
use ids_smt::Rat;
use proptest::prelude::*;

/// Numerator/denominator pairs kept small enough that products of three
/// rationals stay far away from `i128` overflow.
fn rat() -> impl Strategy<Value = Rat> {
    (-200i64..200, 1i64..40).prop_map(|(n, d)| Rat::new(n as i128, d as i128))
}

fn nonzero_rat() -> impl Strategy<Value = Rat> {
    (1i64..200, 1i64..40, 0u8..2).prop_map(|(n, d, sign)| {
        let n = if sign == 0 { n } else { -n };
        Rat::new(n as i128, d as i128)
    })
}

proptest! {
    #[test]
    fn addition_commutes(a in rat(), b in rat()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_associates(a in rat(), b in rat(), c in rat()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_commutes(a in rat(), b in rat()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn multiplication_distributes_over_addition(a in rat(), b in rat(), c in rat()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn negation_is_additive_inverse(a in rat()) {
        prop_assert_eq!(a + (-a), Rat::from_int(0));
        prop_assert!((a + (-a)).is_zero());
    }

    #[test]
    fn subtraction_is_addition_of_negation(a in rat(), b in rat()) {
        prop_assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn division_inverts_multiplication(a in rat(), b in nonzero_rat()) {
        prop_assert_eq!((a * b) / b, a);
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn reciprocal_is_involutive(a in nonzero_rat()) {
        prop_assert_eq!(a.recip().recip(), a);
        prop_assert_eq!(a * a.recip(), Rat::from_int(1));
    }

    /// `Rat::new` normalizes: scaling numerator and denominator by a common
    /// factor yields the identical (structurally equal) value.
    #[test]
    fn construction_normalizes(a in rat(), k in 1i64..20) {
        let scaled = Rat::new(a.numer() * k as i128, a.denom() * k as i128);
        prop_assert_eq!(scaled, a);
        prop_assert_eq!((scaled.numer(), scaled.denom()), (a.numer(), a.denom()));
    }

    /// The total order agrees with the sign of the difference.
    #[test]
    fn ordering_agrees_with_subtraction(a in rat(), b in rat()) {
        prop_assert_eq!(a < b, (a - b).is_negative());
        prop_assert_eq!(a == b, (a - b).is_zero());
    }

    /// `floor(x) <= x <= ceil(x)`, with equality exactly on integers — the
    /// contract branch-and-bound relies on when cutting on a fractional basic
    /// variable.
    #[test]
    fn floor_and_ceil_bracket(a in rat()) {
        let f = Rat::from_int(a.floor());
        let c = Rat::from_int(a.ceil());
        prop_assert!(f <= a && a <= c);
        if a.is_integer() {
            prop_assert_eq!(f, a);
            prop_assert_eq!(c, a);
        } else {
            prop_assert_eq!(c - f, Rat::from_int(1));
        }
    }

    #[test]
    fn absolute_value_is_non_negative(a in rat()) {
        prop_assert!(!a.abs().is_negative());
        prop_assert_eq!(a.abs(), (-a).abs());
    }

    /// Delta-rationals order lexicographically: the infinitesimal only breaks
    /// ties of the real part (this is what makes strict bounds `x < c`
    /// representable as `x <= c - delta`).
    #[test]
    fn delta_rationals_order_lexicographically(a in rat(), b in rat(), d1 in rat(), d2 in rat()) {
        let x = DeltaRat::new(a, d1);
        let y = DeltaRat::new(b, d2);
        if a != b {
            prop_assert_eq!(x < y, a < b);
        } else {
            prop_assert_eq!(x < y, d1 < d2);
        }
    }

    #[test]
    fn delta_rational_addition_is_componentwise(a in rat(), b in rat(), d1 in rat(), d2 in rat()) {
        let sum = DeltaRat::new(a, d1) + DeltaRat::new(b, d2);
        prop_assert_eq!(sum, DeltaRat::new(a + b, d1 + d2));
    }
}
