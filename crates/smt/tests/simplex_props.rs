//! Property tests for the simplex pivot rules.
//!
//! Random bounded LRA systems are checked for verdict parity between Bland's
//! rule (the termination-safe legacy rule) and the tuned hybrid rule
//! (largest-violation / Dantzig-style with a Bland fallback): satisfying
//! assignments are evaluated against every constraint, and infeasibility
//! explanations are validated by re-asserting exactly the tagged subset into
//! a fresh Bland instance, which must still be infeasible. A crafted
//! degenerate instance pins the fallback: with a tiny pivot budget the
//! hybrid rule must hand over to Bland and still terminate with the same
//! verdict.

use ids_smt::rational::{DeltaRat, Rat};
use ids_smt::simplex::{ArithOutcome, LinExpr, PivotRule, Rel, Simplex};
use proptest::prelude::*;

/// Deterministic xorshift, same idiom as the other smt property tests.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.wrapping_mul(2654435761).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn coeff(&mut self) -> i128 {
        // -3..=3, zero allowed (dropped by LinExpr::add_term).
        self.below(7) as i128 - 3
    }
}

/// One random constraint system over `nv` rational variables.
struct System {
    nv: usize,
    constraints: Vec<(LinExpr, Rel)>,
}

fn random_system(rng: &mut XorShift) -> System {
    let nv = 2 + rng.below(3) as usize; // 2..=4 variables
    let nc = 2 + rng.below(7) as usize; // 2..=8 constraints
    let mut constraints = Vec::with_capacity(nc);
    for _ in 0..nc {
        let mut e = LinExpr::constant(Rat::from_int(rng.below(21) as i128 - 10));
        for v in 0..nv {
            e.add_term(Rat::from_int(rng.coeff()), v);
        }
        let rel = match rng.below(4) {
            0 => Rel::Eq,
            1 => Rel::Lt,
            _ => Rel::Le,
        };
        constraints.push((e, rel));
    }
    System { nv, constraints }
}

/// Loads a subset of the system (by constraint index) into a fresh solver
/// with the given rule and checks it. Conflicts at assertion time and at
/// check time are both "infeasible".
fn run_subset(system: &System, subset: &[usize], rule: PivotRule) -> (ArithOutcome, u64, bool) {
    let mut s = Simplex::with_rule(rule);
    for _ in 0..system.nv {
        s.new_var(false);
    }
    for &i in subset {
        let (e, rel) = &system.constraints[i];
        if let Err(tags) = s.add_constraint(e, *rel, i) {
            return (
                ArithOutcome::Conflict(tags),
                s.pivots,
                s.in_bland_fallback(),
            );
        }
    }
    let out = s.check();
    (out, s.pivots, s.in_bland_fallback())
}

/// Evaluates a linear expression at a delta-rational assignment.
fn eval(e: &LinExpr, assignment: &[DeltaRat]) -> DeltaRat {
    let mut total = DeltaRat::from_rat(e.constant);
    for (&v, &c) in &e.terms {
        total = total + assignment[v].scale(c);
    }
    total
}

/// Checks a satisfying assignment against every loaded constraint.
fn assert_model_satisfies(system: &System, subset: &[usize], assignment: &[DeltaRat], label: &str) {
    for &i in subset {
        let (e, rel) = &system.constraints[i];
        let val = eval(e, assignment);
        let ok = match rel {
            Rel::Le => val <= DeltaRat::ZERO,
            Rel::Lt => val < DeltaRat::ZERO,
            Rel::Eq => val == DeltaRat::ZERO,
            Rel::Neq => unreachable!(),
        };
        assert!(ok, "[{label}] constraint #{i} violated: value {val}");
    }
}

proptest! {
    /// Bland, unlimited-budget hybrid and almost-no-budget hybrid must agree
    /// on feasibility; models must satisfy the constraints; conflict
    /// explanations must name a genuinely infeasible subset.
    #[test]
    fn pivot_rules_agree_on_random_systems(seed in 0u64..200) {
        let mut rng = XorShift::new(seed);
        let system = random_system(&mut rng);
        let all: Vec<usize> = (0..system.constraints.len()).collect();
        let rules = [
            ("bland", PivotRule::Bland),
            ("hybrid", PivotRule::Hybrid { bland_after: 1_000_000 }),
            ("hybrid-tiny-budget", PivotRule::Hybrid { bland_after: 1 }),
        ];
        let mut feasibility: Option<bool> = None;
        for (label, rule) in rules {
            let (out, _pivots, _fb) = run_subset(&system, &all, rule);
            let feasible = match out {
                ArithOutcome::Sat(assignment) => {
                    assert_model_satisfies(&system, &all, &assignment, label);
                    true
                }
                ArithOutcome::Conflict(tags) => {
                    // The explanation must itself be infeasible (validated
                    // with the independently terminating Bland rule), and
                    // must only name loaded constraints.
                    prop_assert!(!tags.is_empty(), "[{}] empty conflict", label);
                    prop_assert!(tags.iter().all(|t| all.contains(t)));
                    let (sub_out, _, _) = run_subset(&system, &tags, PivotRule::Bland);
                    prop_assert!(
                        matches!(sub_out, ArithOutcome::Conflict(_)),
                        "[{}] seed {}: conflict subset {:?} is feasible",
                        label, seed, tags
                    );
                    false
                }
                ArithOutcome::Unknown => {
                    prop_assert!(false, "[{}] Unknown on a rational system", label);
                    unreachable!()
                }
            };
            match feasibility {
                None => feasibility = Some(feasible),
                Some(expected) => prop_assert_eq!(
                    feasible, expected,
                    "seed {}: rule {} diverged on feasibility", seed, label
                ),
            }
        }
    }
}

/// A degenerate, cycling-prone shape: many tied violations and zero-slack
/// equalities, the classic fuel for heuristic-rule cycling. The hybrid rule
/// gets an almost-exhausted budget, so it must engage the Bland fallback,
/// terminate, and agree with pure Bland.
#[test]
fn bland_fallback_engages_and_terminates_on_degenerate_instance() {
    let build = |rule: PivotRule| -> Simplex {
        let mut s = Simplex::with_rule(rule);
        let n = 4;
        for _ in 0..n {
            s.new_var(false);
        }
        // x0 = x1, x1 = x2, x2 = x3 (all tied at zero slack), plus a cycle
        // of inequalities x0 <= x1 <= x2 <= x3 <= x0 and an infeasible twist
        // x3 <= x0 - 1.
        for v in 0..n - 1 {
            let mut e = LinExpr::zero();
            e.add_term(Rat::ONE, v);
            e.add_term(-Rat::ONE, v + 1);
            s.add_constraint(&e, Rel::Eq, v).unwrap();
        }
        let mut e = LinExpr::constant(Rat::ONE);
        e.add_term(Rat::ONE, n - 1);
        e.add_term(-Rat::ONE, 0);
        s.add_constraint(&e, Rel::Le, 100).unwrap(); // x3 - x0 + 1 <= 0
        s
    };
    let mut bland = build(PivotRule::Bland);
    let bland_out = bland.check();
    let mut hybrid = build(PivotRule::Hybrid { bland_after: 1 });
    let hybrid_out = hybrid.check();
    assert_eq!(
        matches!(bland_out, ArithOutcome::Conflict(_)),
        matches!(hybrid_out, ArithOutcome::Conflict(_)),
        "fallback changed the verdict: {bland_out:?} vs {hybrid_out:?}"
    );
    assert!(matches!(hybrid_out, ArithOutcome::Conflict(_)));
    assert!(
        hybrid.in_bland_fallback(),
        "budget 1 must be exhausted (pivots {})",
        hybrid.pivots
    );
}

/// The termination guard itself: a larger random batch with the tiny budget,
/// where any cycling would hang the test rather than fail an assertion —
/// the suite completing is the property.
#[test]
fn tiny_budget_hybrid_terminates_on_batch() {
    let mut rng = XorShift::new(99);
    for _ in 0..200 {
        let system = random_system(&mut rng);
        let all: Vec<usize> = (0..system.constraints.len()).collect();
        let (out, _, _) = run_subset(&system, &all, PivotRule::Hybrid { bland_after: 2 });
        assert!(!matches!(out, ArithOutcome::Unknown));
    }
}

/// Integer branch-and-bound under both rules: outcome kinds agree on small
/// integer systems (Unknown may in principle appear under either rule, but
/// must then appear as a pair — in practice these instances decide).
#[test]
fn integer_branching_agrees_across_rules() {
    let mut rng = XorShift::new(5);
    for _ in 0..60 {
        let nv = 2 + rng.below(2) as usize;
        let nc = 2 + rng.below(5) as usize;
        let build = |rule: PivotRule, rng_seed: &System| -> ArithOutcome {
            let mut s = Simplex::with_rule(rule);
            for _ in 0..rng_seed.nv {
                s.new_var(true);
            }
            for (i, (e, rel)) in rng_seed.constraints.iter().enumerate() {
                if let Err(tags) = s.add_constraint(e, *rel, i) {
                    return ArithOutcome::Conflict(tags);
                }
            }
            s.check()
        };
        let mut constraints = Vec::new();
        for _ in 0..nc {
            let mut e = LinExpr::constant(Rat::from_int(rng.below(11) as i128 - 5));
            for v in 0..nv {
                e.add_term(Rat::from_int(rng.coeff()), v);
            }
            // Keep variables bounded so branch-and-bound terminates fast.
            let rel = if rng.below(3) == 0 { Rel::Eq } else { Rel::Le };
            constraints.push((e, rel));
        }
        for v in 0..nv {
            let mut lo = LinExpr::constant(Rat::from_int(-6));
            lo.add_term(-Rat::ONE, v);
            constraints.push((lo, Rel::Le)); // -6 - v <= 0, i.e. v >= -6
            let mut hi = LinExpr::constant(Rat::from_int(-6));
            hi.add_term(Rat::ONE, v);
            constraints.push((hi, Rel::Le)); // v <= 6
        }
        let system = System { nv, constraints };
        let a = build(PivotRule::Bland, &system);
        let b = build(PivotRule::hybrid(), &system);
        assert_eq!(
            matches!(a, ArithOutcome::Sat(_)),
            matches!(b, ArithOutcome::Sat(_)),
            "integer system diverged: {a:?} vs {b:?}"
        );
    }
}
