//! Sat/unsat smoke tests for the linear-arithmetic core, both against the
//! `Simplex` tableau directly and end-to-end through `Solver` (DPLL(T) with
//! the simplex theory).

use ids_smt::simplex::{ArithOutcome, LinExpr, Rel, Simplex};
use ids_smt::{Rat, SatResult, Solver, Sort, TermManager};

/// Helper: builds `sum_i coeffs[i] * x_i + c`.
fn linear(coeffs: &[(i64, usize)], c: i64) -> LinExpr {
    let mut e = LinExpr::constant(Rat::from_int(c as i128));
    for &(k, v) in coeffs {
        e.add_term(Rat::from_int(k as i128), v);
    }
    e
}

#[test]
fn contradictory_bounds_conflict() {
    // x >= 5 (i.e. 5 - x <= 0) and x <= 3 (x - 3 <= 0) is unsat.
    let mut s = Simplex::new();
    let x = s.new_var(false);
    s.add_constraint(&linear(&[(-1, x)], 5), Rel::Le, 0)
        .unwrap();
    let r = s.add_constraint(&linear(&[(1, x)], -3), Rel::Le, 1);
    let conflict = match r {
        Err(tags) => tags,
        Ok(()) => match s.check() {
            ArithOutcome::Conflict(tags) => tags,
            other => panic!("expected conflict, got {:?}", other),
        },
    };
    assert!(conflict.contains(&0) && conflict.contains(&1));
}

#[test]
fn tight_bounds_pin_the_value() {
    // x >= 5 and x <= 5: sat with x = 5.
    let mut s = Simplex::new();
    let x = s.new_var(false);
    s.add_constraint(&linear(&[(-1, x)], 5), Rel::Le, 0)
        .unwrap();
    s.add_constraint(&linear(&[(1, x)], -5), Rel::Le, 1)
        .unwrap();
    match s.check() {
        ArithOutcome::Sat(model) => {
            assert_eq!(
                model[x],
                ids_smt::rational::DeltaRat::from_rat(Rat::from_int(5))
            );
        }
        other => panic!("expected sat, got {:?}", other),
    }
}

#[test]
fn strict_cycle_is_unsat() {
    // x < y and y < x.
    let mut s = Simplex::new();
    let x = s.new_var(false);
    let y = s.new_var(false);
    s.add_constraint(&linear(&[(1, x), (-1, y)], 0), Rel::Lt, 0)
        .unwrap();
    let second = s.add_constraint(&linear(&[(1, y), (-1, x)], 0), Rel::Lt, 1);
    let unsat = second.is_err() || matches!(s.check(), ArithOutcome::Conflict(_));
    assert!(unsat, "x < y < x must be unsatisfiable");
}

#[test]
fn strict_inequality_on_reals_is_satisfiable() {
    // 0 < x < 1 over the reals: sat (delta-rationals handle strictness).
    let mut s = Simplex::new();
    let x = s.new_var(false);
    s.add_constraint(&linear(&[(-1, x)], 0), Rel::Lt, 0)
        .unwrap();
    s.add_constraint(&linear(&[(1, x)], -1), Rel::Lt, 1)
        .unwrap();
    assert!(matches!(s.check(), ArithOutcome::Sat(_)));
}

#[test]
fn even_sum_constraint_has_no_odd_integer_solution() {
    // 2x = 1 with x integer: unsat by branch-and-bound.
    let mut s = Simplex::new();
    let x = s.new_var(true);
    s.add_constraint(&linear(&[(2, x)], -1), Rel::Eq, 0)
        .unwrap();
    assert!(matches!(s.check(), ArithOutcome::Conflict(_)));
}

#[test]
fn integer_gap_is_detected() {
    // 1/2 < x < 3/4 has real solutions but no integer ones.
    let mut s = Simplex::new();
    let x = s.new_var(true);
    // 1 - 2x < 0  and  4x - 3 < 0.
    s.add_constraint(&linear(&[(-2, x)], 1), Rel::Lt, 0)
        .unwrap();
    s.add_constraint(&linear(&[(4, x)], -3), Rel::Lt, 1)
        .unwrap();
    assert!(matches!(s.check(), ArithOutcome::Conflict(_)));
}

#[test]
fn equality_system_with_unique_solution() {
    // x + y = 10, x - y = 4  =>  x = 7, y = 3.
    let mut s = Simplex::new();
    let x = s.new_var(false);
    let y = s.new_var(false);
    s.add_constraint(&linear(&[(1, x), (1, y)], -10), Rel::Eq, 0)
        .unwrap();
    s.add_constraint(&linear(&[(1, x), (-1, y)], -4), Rel::Eq, 1)
        .unwrap();
    match s.check() {
        ArithOutcome::Sat(model) => {
            assert_eq!(model[x].real, Rat::from_int(7));
            assert_eq!(model[y].real, Rat::from_int(3));
        }
        other => panic!("expected sat, got {:?}", other),
    }
}

// ---------------------------------------------------------------------------
// The same fragment end-to-end through Solver (lowering + CNF + DPLL(T))
// ---------------------------------------------------------------------------

#[test]
fn solver_unsat_increment_cycle() {
    let mut tm = TermManager::new();
    let x = tm.var("x", Sort::Int);
    let one = tm.int(1);
    let xp1 = tm.add(x, one);
    let lt = tm.lt(xp1, x);
    let mut solver = Solver::new();
    assert_eq!(solver.check(&mut tm, &[lt]), SatResult::Unsat);
}

#[test]
fn solver_sat_on_consistent_bounds() {
    let mut tm = TermManager::new();
    let x = tm.var("x", Sort::Int);
    let lo = tm.int(0);
    let hi = tm.int(10);
    let ge = tm.ge(x, lo);
    let le = tm.le(x, hi);
    let mut solver = Solver::new();
    assert_eq!(solver.check(&mut tm, &[ge, le]), SatResult::Sat);
}

#[test]
fn solver_combines_arithmetic_with_boolean_structure() {
    // (x <= 0 or x >= 5) and x = 3 is unsat.
    let mut tm = TermManager::new();
    let x = tm.var("x", Sort::Int);
    let zero = tm.int(0);
    let five = tm.int(5);
    let three = tm.int(3);
    let le = tm.le(x, zero);
    let ge = tm.ge(x, five);
    let disj = tm.or2(le, ge);
    let eq = tm.eq(x, three);
    let mut solver = Solver::new();
    assert_eq!(solver.check(&mut tm, &[disj, eq]), SatResult::Unsat);

    // Relaxing to x = 5 flips it to sat.
    let eq5 = tm.eq(x, five);
    let mut solver2 = Solver::new();
    assert_eq!(solver2.check(&mut tm, &[disj, eq5]), SatResult::Sat);
}

#[test]
fn solver_theory_combination_euf_plus_arith() {
    // a = b implies f(a) = f(b); f(a) < f(b) is then unsat.
    let mut tm = TermManager::new();
    let a = tm.var("a", Sort::Int);
    let b = tm.var("b", Sort::Int);
    let fa = tm.app("f", vec![a], Sort::Int);
    let fb = tm.app("f", vec![b], Sort::Int);
    let eq = tm.eq(a, b);
    let lt = tm.lt(fa, fb);
    let mut solver = Solver::new();
    assert_eq!(solver.check(&mut tm, &[eq, lt]), SatResult::Unsat);
}
