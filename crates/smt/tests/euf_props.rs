//! Property tests for the congruence-closure engine (`euf.rs`): the reported
//! equivalence classes match a reference union-find closed under congruence,
//! and conflicts come with sound explanations.

use ids_smt::euf::{Euf, EufOutcome};
use ids_smt::{Sort, TermId, TermManager};
use proptest::prelude::*;

/// Reference union-find (no congruence, used where no function symbols exist).
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let r = self.find(self.0[x]);
            self.0[x] = r;
            r
        } else {
            x
        }
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.0[ra] = rb;
    }
}

fn fresh_vars(tm: &mut TermManager, n: usize) -> Vec<TermId> {
    (0..n)
        .map(|i| tm.var(&format!("x{}", i), Sort::Loc))
        .collect()
}

proptest! {
    /// Merging random pairs of plain variables produces exactly the classes
    /// of a reference union-find.
    #[test]
    fn classes_match_reference_union_find(
        n in 2usize..8,
        merges in proptest::collection::vec((0usize..8, 0usize..8), 0..12),
    ) {
        let mut tm = TermManager::new();
        let vars = fresh_vars(&mut tm, n);
        let mut euf = Euf::new(&tm, &vars);
        let mut dsu = Dsu::new(n);
        for (tag, &(a, b)) in merges.iter().enumerate() {
            let (a, b) = (a % n, b % n);
            euf.assert_eq(vars[a], vars[b], tag);
            dsu.union(a, b);
        }
        prop_assert!(matches!(euf.check(), EufOutcome::Consistent));
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(
                    euf.same(vars[i], vars[j]),
                    dsu.find(i) == dsu.find(j),
                    "vars {} and {} disagree with the reference",
                    i,
                    j
                );
            }
        }
    }

    /// An equality chain `x0 = x1 = ... = xn` forces `f(x0) = f(xn)` by
    /// congruence; asserting the disequality yields a conflict whose
    /// explanation only mentions asserted tags.
    #[test]
    fn congruence_propagates_along_chains(n in 2usize..9) {
        let mut tm = TermManager::new();
        let vars = fresh_vars(&mut tm, n);
        let f_first = tm.app("f", vec![vars[0]], Sort::Int);
        let f_last = tm.app("f", vec![vars[n - 1]], Sort::Int);
        let mut universe = vars.clone();
        universe.push(f_first);
        universe.push(f_last);
        let mut euf = Euf::new(&tm, &universe);
        for i in 1..n {
            euf.assert_eq(vars[i - 1], vars[i], i);
        }
        let neq_tag = 1000;
        euf.assert_neq(f_first, f_last, neq_tag);
        match euf.check() {
            EufOutcome::Conflict(tags) => {
                prop_assert!(
                    tags.iter().all(|&t| (1..n).contains(&t) || t == neq_tag),
                    "explanation {:?} mentions unasserted tags",
                    tags
                );
                prop_assert!(
                    tags.contains(&neq_tag),
                    "explanation {:?} must include the disequality",
                    tags
                );
            }
            other => prop_assert!(false, "expected conflict, got {:?}", other),
        }
    }

    /// Disequalities between distinct variables alone are always consistent.
    #[test]
    fn pure_disequalities_are_consistent(n in 2usize..8) {
        let mut tm = TermManager::new();
        let vars = fresh_vars(&mut tm, n);
        let mut euf = Euf::new(&tm, &vars);
        let mut tag = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                euf.assert_neq(vars[i], vars[j], tag);
                tag += 1;
            }
        }
        prop_assert!(matches!(euf.check(), EufOutcome::Consistent));
    }

    /// Equality is reflexive without any assertions, and never identifies
    /// distinct unmerged variables.
    #[test]
    fn same_is_reflexive_and_initially_discrete(n in 1usize..8) {
        let mut tm = TermManager::new();
        let vars = fresh_vars(&mut tm, n);
        let mut euf = Euf::new(&tm, &vars);
        prop_assert!(matches!(euf.check(), EufOutcome::Consistent));
        for i in 0..n {
            prop_assert!(euf.same(vars[i], vars[i]));
            for j in (i + 1)..n {
                prop_assert!(!euf.same(vars[i], vars[j]));
            }
        }
    }
}

/// `a = f(a)` collapses the whole tower `f(f(a))`, `f(f(f(a)))`, … into one
/// class (congruence applied transitively).
#[test]
fn function_tower_collapses_under_fixpoint_equation() {
    let mut tm = TermManager::new();
    let a = tm.var("a", Sort::Loc);
    let fa = tm.app("f", vec![a], Sort::Loc);
    let ffa = tm.app("f", vec![fa], Sort::Loc);
    let fffa = tm.app("f", vec![ffa], Sort::Loc);
    let universe = [a, fa, ffa, fffa];
    let mut euf = Euf::new(&tm, &universe);
    euf.assert_eq(a, fa, 0);
    assert!(matches!(euf.check(), EufOutcome::Consistent));
    assert!(euf.same(a, ffa));
    assert!(euf.same(a, fffa));
    assert!(euf.same(fa, fffa));
}

/// Congruence is per-symbol: `g(a)` stays separate from `f(a)` even when the
/// `f`-tower collapses.
#[test]
fn distinct_symbols_do_not_merge() {
    let mut tm = TermManager::new();
    let a = tm.var("a", Sort::Loc);
    let b = tm.var("b", Sort::Loc);
    let fa = tm.app("f", vec![a], Sort::Int);
    let fb = tm.app("f", vec![b], Sort::Int);
    let ga = tm.app("g", vec![a], Sort::Int);
    let universe = [a, b, fa, fb, ga];
    let mut euf = Euf::new(&tm, &universe);
    euf.assert_eq(a, b, 0);
    assert!(matches!(euf.check(), EufOutcome::Consistent));
    assert!(euf.same(fa, fb));
    assert!(!euf.same(fa, ga));
}
