//! Differential CNF fuzzing of the CDCL SAT core.
//!
//! Heuristic changes to a CDCL solver (restart schedules, clause deletion)
//! are the classic place to ship a silent soundness bug: every individual
//! verdict still *looks* plausible. This suite checks the production
//! [`SatSolver`] — under every heuristics configuration the solver ships with
//! — against an independent oracle: a deliberately naive reference DPLL with
//! none of the machinery under test (no watched literals, no learning, no
//! restarts, no deletion). On SAT answers the model is additionally checked
//! against every clause, so the two implementations cannot agree by luck on
//! a wrong model.
//!
//! All generation is driven by fixed seeds (deterministic xorshift), so a
//! failure reproduces exactly; any discrepancy ever found gets its instance
//! added to the regression corpus at the bottom.

use ids_smt::sat::{ClauseDbOptions, Lit, RestartPolicy, SatOptions, SatResult, SatSolver, Var};
use proptest::prelude::*;

/// Deterministic xorshift so the tests are reproducible without an external
/// rand crate (same idiom as the SAT core's own random tests).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.wrapping_mul(2654435761).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A reference DPLL: unit propagation + chronological two-way branching on a
/// plain clause list. Exponential and slow — and therefore simple enough to
/// trust as an oracle for small instances.
fn oracle_dpll(num_vars: usize, clauses: &[Vec<Lit>]) -> Option<Vec<bool>> {
    fn solve(clauses: &[Vec<Lit>], assign: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation to fixpoint.
        loop {
            let mut unit: Option<Lit> = None;
            for c in clauses {
                let mut satisfied = false;
                let mut unassigned = 0usize;
                let mut last = None;
                for &l in c {
                    match assign[l.var() as usize] {
                        Some(v) if v == l.is_positive() => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            unassigned += 1;
                            last = Some(l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned {
                    0 => return false, // falsified clause
                    1 => {
                        unit = last;
                        break;
                    }
                    _ => {}
                }
            }
            match unit {
                Some(l) => assign[l.var() as usize] = Some(l.is_positive()),
                None => break,
            }
        }
        // Branch on a variable of some not-yet-satisfied clause.
        let mut branch: Option<Var> = None;
        'clauses: for c in clauses {
            let satisfied = c
                .iter()
                .any(|l| assign[l.var() as usize] == Some(l.is_positive()));
            if satisfied {
                continue;
            }
            for &l in c {
                if assign[l.var() as usize].is_none() {
                    branch = Some(l.var());
                    break 'clauses;
                }
            }
        }
        let Some(v) = branch else {
            return true; // every clause satisfied
        };
        for value in [true, false] {
            let saved = assign.clone();
            assign[v as usize] = Some(value);
            if solve(clauses, assign) {
                return true;
            }
            *assign = saved;
        }
        false
    }
    let mut assign = vec![None; num_vars];
    if solve(clauses, &mut assign) {
        // Unconstrained variables default to false.
        Some(assign.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// The heuristics configurations under differential test: the two shipped
/// profiles plus the two off-diagonal combinations, with the deletion knobs
/// turned aggressive so that clause-database reductions actually fire on
/// test-sized instances.
fn configs() -> Vec<(&'static str, SatOptions)> {
    let aggressive_db = ClauseDbOptions {
        enabled: true,
        first_reduce: 2,
        reduce_inc: 1,
        glue_lbd: 1,
    };
    vec![
        ("default", SatOptions::default()),
        ("legacy", SatOptions::legacy()),
        (
            "luby1+aggressive-deletion",
            SatOptions {
                restart: RestartPolicy::Luby { unit: 1 },
                clause_db: aggressive_db,
            },
        ),
        (
            "geometric+aggressive-deletion",
            SatOptions {
                restart: RestartPolicy::Geometric { start: 2 },
                clause_db: aggressive_db,
            },
        ),
    ]
}

fn random_instance(rng: &mut XorShift) -> (usize, Vec<Vec<Lit>>) {
    let num_vars = 4 + rng.below(9) as usize; // 4..=12
    let num_clauses = 2 + rng.below(5 * num_vars as u64) as usize;
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let len = 1 + rng.below(3) as usize; // 1..=3
        let clause: Vec<Lit> = (0..len)
            .map(|_| Lit::new(rng.below(num_vars as u64) as Var, rng.below(2) == 0))
            .collect();
        clauses.push(clause);
    }
    (num_vars, clauses)
}

/// Runs one instance through the production solver under `options` and
/// checks it against the oracle verdict; on SAT, checks the model.
fn check_against_oracle(
    label: &str,
    options: SatOptions,
    num_vars: usize,
    clauses: &[Vec<Lit>],
    oracle_sat: bool,
    context: &str,
) {
    let mut s = SatSolver::with_options(options);
    for _ in 0..num_vars {
        s.new_var();
    }
    let mut alive = true;
    for c in clauses {
        alive = s.add_clause(c.clone());
        if !alive {
            break;
        }
    }
    let verdict = if alive { s.solve() } else { SatResult::Unsat };
    match verdict {
        SatResult::Sat => {
            assert!(oracle_sat, "[{label}] solver SAT, oracle UNSAT ({context})");
            for c in clauses {
                assert!(
                    c.iter().any(|l| s.value(l.var()) == Some(l.is_positive())),
                    "[{label}] model violates clause {c:?} ({context})"
                );
            }
        }
        SatResult::Unsat => {
            assert!(
                !oracle_sat,
                "[{label}] solver UNSAT, oracle SAT ({context})"
            );
        }
        SatResult::Unknown => panic!("[{label}] unexpected Unknown without budget ({context})"),
    }
}

proptest! {
    /// Random 3-SAT-ish instances: sat/unsat parity with the oracle and
    /// model validity, under every heuristics configuration.
    #[test]
    fn solver_matches_oracle_on_random_cnf(seed in 0u64..300) {
        let mut rng = XorShift::new(seed);
        let (num_vars, clauses) = random_instance(&mut rng);
        let oracle_sat = oracle_dpll(num_vars, &clauses).is_some();
        for (label, options) in configs() {
            check_against_oracle(
                label,
                options,
                num_vars,
                &clauses,
                oracle_sat,
                &format!("seed {seed}"),
            );
        }
    }

    /// Incremental clause addition: solving between chunks (which warms
    /// learned clauses, restarts and deletions) must not change the verdict
    /// of the accumulated clause set, and every intermediate verdict matches
    /// the oracle on the clauses added so far.
    #[test]
    fn incremental_addition_matches_oracle(seed in 0u64..120) {
        let mut rng = XorShift::new(seed);
        let (num_vars, clauses) = random_instance(&mut rng);
        for (label, options) in configs() {
            let mut s = SatSolver::with_options(options);
            for _ in 0..num_vars {
                s.new_var();
            }
            let mut added = 0usize;
            let mut alive = true;
            while added < clauses.len() {
                let chunk = (1 + rng.below(4) as usize).min(clauses.len() - added);
                for c in &clauses[added..added + chunk] {
                    if alive {
                        alive = s.add_clause(c.clone());
                    }
                }
                added += chunk;
                let verdict = if alive { s.solve() } else { SatResult::Unsat };
                let oracle_sat = oracle_dpll(num_vars, &clauses[..added]).is_some();
                match verdict {
                    SatResult::Sat => prop_assert!(
                        oracle_sat,
                        "[{}] seed {}: SAT after {} clauses, oracle disagrees",
                        label, seed, added
                    ),
                    SatResult::Unsat => prop_assert!(
                        !oracle_sat,
                        "[{}] seed {}: UNSAT after {} clauses, oracle disagrees",
                        label, seed, added
                    ),
                    SatResult::Unknown => prop_assert!(false, "unexpected Unknown"),
                }
            }
        }
    }
}

/// Pigeonhole formula: `pigeons` pigeons into `holes` holes, UNSAT whenever
/// `pigeons > holes`. Conflict-heavy, so restarts and clause-database
/// reductions really fire under the aggressive test configurations.
fn pigeonhole(s: &mut SatSolver, pigeons: usize, holes: usize) -> Vec<Vec<Lit>> {
    let p: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    let mut clauses = Vec::new();
    for row in &p {
        clauses.push(row.iter().map(|&v| Lit::new(v, true)).collect::<Vec<_>>());
    }
    for i in 0..pigeons {
        for k in (i + 1)..pigeons {
            for (&a, &b) in p[i].iter().zip(&p[k]) {
                clauses.push(vec![Lit::new(a, false), Lit::new(b, false)]);
            }
        }
    }
    for c in &clauses {
        s.add_clause(c.clone());
    }
    clauses
}

/// Fixed-seed regression corpus. Instances that ever exposed a discrepancy
/// between the production solver and the oracle belong here, pinned forever;
/// the corpus starts with known-hard shapes (pigeonhole, parity-ish chains)
/// that stress learning, restarts and deletion.
#[test]
fn regression_corpus_all_configs() {
    // Hand-picked seeds (dense/UNSAT-heavy shapes) plus the first few.
    let corpus: &[u64] = &[0, 1, 2, 3, 17, 42, 97, 1234, 65535, 987654321];
    for &seed in corpus {
        let mut rng = XorShift::new(seed);
        let (num_vars, clauses) = random_instance(&mut rng);
        let oracle_sat = oracle_dpll(num_vars, &clauses).is_some();
        for (label, options) in configs() {
            check_against_oracle(
                label,
                options,
                num_vars,
                &clauses,
                oracle_sat,
                &format!("corpus seed {seed}"),
            );
        }
    }
}

#[test]
fn pigeonhole_unsat_under_every_config_and_deletion_fires() {
    for (label, options) in configs() {
        let mut s = SatSolver::with_options(options);
        pigeonhole(&mut s, 6, 5);
        assert_eq!(s.solve(), SatResult::Unsat, "[{label}] pigeonhole 6→5");
        if label.contains("aggressive-deletion") {
            assert!(
                s.learned_deleted > 0,
                "[{label}] aggressive deletion config never deleted a clause \
                 (restarts {}, conflicts {})",
                s.restarts,
                s.conflicts
            );
        }
        if options.clause_db.enabled {
            // Deletions must never exceed what was learned.
            assert!(s.learned_deleted <= s.conflicts);
        }
    }
}

#[test]
fn sat_core_telemetry_is_populated() {
    // Tiny Luby unit + immediate reductions: restarts and deletions must
    // show up in the public counters on a conflict-heavy instance.
    let options = SatOptions {
        restart: RestartPolicy::Luby { unit: 1 },
        clause_db: ClauseDbOptions {
            enabled: true,
            first_reduce: 1,
            reduce_inc: 0,
            glue_lbd: 1,
        },
    };
    let mut s = SatSolver::with_options(options);
    pigeonhole(&mut s, 6, 5);
    assert_eq!(s.solve(), SatResult::Unsat);
    assert!(s.restarts > 0, "expected restarts, got {:?}", s.restarts);
    assert!(s.conflicts > 0);
    assert!(s.max_lbd > 0, "learned clauses must record an LBD");
    assert!(s.learned_deleted > 0, "reductions must delete something");
}

#[test]
fn deletion_keeps_solver_reusable_after_unsat_subset_retracts() {
    // Solve a SAT instance, then keep adding clauses until UNSAT, under the
    // most aggressive deletion config: verdict monotonicity (SAT may flip to
    // UNSAT, never back) and final parity with the oracle.
    let options = SatOptions {
        restart: RestartPolicy::Luby { unit: 1 },
        clause_db: ClauseDbOptions {
            enabled: true,
            first_reduce: 1,
            reduce_inc: 0,
            glue_lbd: 1,
        },
    };
    let mut rng = XorShift::new(7);
    for _ in 0..20 {
        let (num_vars, clauses) = random_instance(&mut rng);
        let mut s = SatSolver::with_options(options);
        for _ in 0..num_vars {
            s.new_var();
        }
        let mut alive = true;
        let mut was_unsat = false;
        for (i, c) in clauses.iter().enumerate() {
            if alive {
                alive = s.add_clause(c.clone());
            }
            let verdict = if alive { s.solve() } else { SatResult::Unsat };
            let oracle_sat = oracle_dpll(num_vars, &clauses[..=i]).is_some();
            assert_eq!(
                verdict == SatResult::Sat,
                oracle_sat,
                "prefix {} diverged from oracle",
                i + 1
            );
            if was_unsat {
                assert_eq!(verdict, SatResult::Unsat, "UNSAT must be sticky");
            }
            was_unsat = verdict == SatResult::Unsat;
        }
    }
}
