//! `ids-structures` — the benchmark suite of intrinsically defined data
//! structures and FWYB-annotated methods (the programs behind Table 2 of the
//! paper).
//!
//! Each module exposes an [`IntrinsicDefinition`] (ghost monadic maps, local
//! condition, correlation formula, impact table) together with a file of
//! annotated methods in IVL surface syntax. [`all_benchmarks`] returns the
//! registry that the benchmark harness (`ids-bench`) iterates over to
//! regenerate the paper's tables and figures, and [`buggy`] contains
//! deliberately broken variants used by the negative tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buggy;
pub mod lists;
pub mod overlaid;
pub mod trees;

use ids_core::IntrinsicDefinition;

/// One benchmark: a data structure definition plus its annotated methods.
pub struct Benchmark {
    /// Data structure name (Table 2 first column).
    pub name: &'static str,
    /// The intrinsic definition.
    pub definition: IntrinsicDefinition,
    /// The IVL source of the annotated methods.
    pub methods_src: &'static str,
    /// The method names, in Table-2 order.
    pub methods: Vec<String>,
}

fn benchmark(name: &'static str, definition: IntrinsicDefinition, src: &'static str) -> Benchmark {
    let program = ids_ivl::parse_program(src).expect("benchmark methods parse");
    let methods = program
        .procedures
        .iter()
        .filter(|p| p.body.is_some())
        .map(|p| p.name.clone())
        .collect();
    Benchmark {
        name,
        definition,
        methods_src: src,
        methods,
    }
}

/// The full registry of benchmark structures, in the order of Table 2.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        benchmark(
            "Singly-Linked List",
            lists::singly_linked_list(),
            lists::SINGLY_LINKED_LIST_METHODS,
        ),
        benchmark(
            "Sorted List",
            lists::sorted_list(),
            lists::SORTED_LIST_METHODS,
        ),
        benchmark(
            "Sorted List (w. min, max)",
            lists::sorted_list_minmax(),
            lists::SORTED_LIST_MINMAX_METHODS,
        ),
        benchmark(
            "Circular List",
            lists::circular_list(),
            lists::CIRCULAR_LIST_METHODS,
        ),
        benchmark("Binary Search Tree", trees::bst(), trees::BST_METHODS),
        benchmark("Treap", trees::treap(), trees::TREAP_METHODS),
        benchmark("AVL Tree", trees::avl(), trees::AVL_METHODS),
        benchmark(
            "Red-Black Tree",
            trees::red_black(),
            trees::RED_BLACK_METHODS,
        ),
        benchmark(
            "BST+Scaffolding",
            trees::bst_scaffolding(),
            trees::BST_SCAFFOLDING_METHODS,
        ),
        benchmark(
            "Scheduler Queue (overlaid SLL+BST)",
            overlaid::scheduler_queue(),
            overlaid::SCHEDULER_QUEUE_METHODS,
        ),
    ]
}

/// A fast subset of the registry (one small method per family) used by smoke
/// tests and the quickstart example.
pub fn quick_benchmarks() -> Vec<Benchmark> {
    vec![
        benchmark(
            "Singly-Linked List",
            lists::singly_linked_list(),
            lists::SINGLY_LINKED_LIST_METHODS,
        ),
        benchmark("Binary Search Tree", trees::bst(), trees::BST_METHODS),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_core::pipeline::{verify_method, PipelineConfig};

    #[test]
    fn registry_covers_all_ten_structures() {
        let benches = all_benchmarks();
        assert_eq!(benches.len(), 10);
        let total_methods: usize = benches.iter().map(|b| b.methods.len()).sum();
        assert!(total_methods >= 20, "expected a substantial suite");
        for b in &benches {
            assert!(!b.methods.is_empty(), "{} has no methods", b.name);
        }
    }

    #[test]
    fn all_method_files_are_well_behaved_and_ghost_legal() {
        for b in all_benchmarks() {
            let merged = ids_core::pipeline::load_methods(&b.definition, b.methods_src)
                .unwrap_or_else(|e| panic!("{}: {}", b.name, e));
            let wb = ids_core::wellbehaved::check_program(&merged);
            assert!(wb.is_empty(), "{}: {:?}", b.name, wb);
            let gh = ids_core::ghost::check_ghost_legality(&merged);
            assert!(gh.is_empty(), "{}: {:?}", b.name, gh);
        }
    }

    #[test]
    fn representative_methods_verify_through_the_batch_driver() {
        // One parallel batch instead of five sequential pipeline runs: the
        // driver memoizes identical VCs across methods and schedules the rest
        // on a worker pool, so this heavy test's wall-clock shrinks while the
        // coverage (SLL insert/delete/set_key, BST find-min, circular-list
        // rotate/set) stays the same. Verdict parity with the sequential
        // pipeline is asserted separately in the root `driver_suite` test.
        // (Selections are built from definitions rather than `Benchmark`s:
        // the dev-dependency cycle gives the test crate its own copy of the
        // `Benchmark` type, but `IntrinsicDefinition` lives in ids-core.)
        let sll = lists::singly_linked_list();
        let bst = trees::bst();
        let circular = lists::circular_list();
        let methods = |names: &[&str]| names.iter().map(|m| m.to_string()).collect::<Vec<_>>();
        let selections = vec![
            ids_driver::Selection {
                name: "Singly-Linked List",
                definition: &sll,
                methods_src: lists::SINGLY_LINKED_LIST_METHODS,
                methods: methods(&["insert_front", "delete_front", "set_key"]),
            },
            ids_driver::Selection {
                name: "Binary Search Tree",
                definition: &bst,
                methods_src: trees::BST_METHODS,
                methods: methods(&["bst_find_min"]),
            },
            ids_driver::Selection {
                name: "Circular List",
                definition: &circular,
                methods_src: lists::CIRCULAR_LIST_METHODS,
                methods: methods(&["rotate_entry", "set_node_key"]),
            },
        ];
        let config = ids_driver::DriverConfig {
            jobs: 2,
            ..ids_driver::DriverConfig::default()
        };
        let batch = ids_driver::verify_selections(&selections, &config);
        assert!(batch.errors.is_empty(), "{:?}", batch.errors);
        assert_eq!(batch.reports.len(), 6);
        for r in &batch.reports {
            assert!(
                r.outcome.is_verified(),
                "{}::{}: {:?}",
                r.structure,
                r.method,
                r.outcome
            );
        }
    }

    #[test]
    fn scheduler_queue_peek_verifies_with_two_broken_sets() {
        let report = verify_method(
            &overlaid::scheduler_queue(),
            overlaid::SCHEDULER_QUEUE_METHODS,
            "peek_request",
            PipelineConfig::default(),
        )
        .unwrap();
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }

    #[test]
    fn buggy_variants_are_rejected() {
        let report = verify_method(
            &lists::singly_linked_list(),
            buggy::BUGGY_LIST_METHODS,
            "insert_front_forgets_length",
            PipelineConfig::default(),
        )
        .unwrap();
        assert!(!report.outcome.is_verified());

        let report = verify_method(
            &lists::singly_linked_list(),
            buggy::BUGGY_LIST_METHODS,
            "leaves_broken_set_nonempty",
            PipelineConfig::default(),
        )
        .unwrap();
        assert!(!report.outcome.is_verified());
    }

    #[test]
    fn singly_linked_list_impact_table_is_correct() {
        let results =
            ids_core::impact::check_impact_sets(&lists::singly_linked_list(), ids_vcgen_encoding());
        for r in &results {
            assert!(r.is_correct(), "impact set for '{}' rejected", r.field);
        }
    }

    fn ids_vcgen_encoding() -> ids_vcgen::Encoding {
        ids_vcgen::Encoding::Decidable
    }
}
