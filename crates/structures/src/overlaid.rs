//! The overlaid data structure of §4.4: a FIFO list threaded through the same
//! nodes as a binary search tree (the core of the Linux deadline I/O
//! scheduler's request queue).
//!
//! The intrinsic definition is the *conjunction* of the list definition and
//! the BST definition plus linking conditions (`bst_root` / `list_head` agree
//! across the overlay). Verification uses **two broken sets**: `Br` for the
//! list local condition and `Br2` for the tree local condition, exactly as the
//! paper describes.

use ids_core::IntrinsicDefinition;

/// The scheduler queue: list fields (`next`, `prev`) overlaid with BST fields
/// (`left`, `right`, `p`) on the same nodes.
pub fn scheduler_queue() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "Scheduler Queue (overlaid SLL+BST)",
        r#"
        field next: Loc;
        field left: Loc;
        field right: Loc;
        field key: Int;
        field ghost prev: Loc;
        field ghost length: Int;
        field ghost p: Loc;
        field ghost rank: Real;
        field ghost minkey: Int;
        field ghost maxkey: Int;
        field ghost bst_root: Loc;
        field ghost list_head: Loc;
        "#,
        // Primary local condition: the FIFO list overlay.
        "(x.next != nil ==> x.next.prev == x \
            && x.length == x.next.length + 1 \
            && x.next.list_head == x.list_head \
            && x.next.bst_root == x.bst_root) \
         && (x.prev != nil ==> x.prev.next == x) \
         && (x.next == nil ==> x.length == 1) \
         && x.list_head != nil \
         && (x.prev == nil ==> x.list_head == x) \
         && (x.prev != nil ==> x.list_head == x.prev.list_head) \
         && x.length >= 1",
        "y",
        "y.prev == nil && y.p == nil && y.bst_root == y && y.list_head == y",
        &[
            ("next", &["x", "old(x.next)"]),
            ("key", &["x", "x.p", "x.prev"]),
            ("prev", &["x", "old(x.prev)", "old(x.next)"]),
            ("length", &["x", "x.prev"]),
            ("list_head", &["x", "x.next", "x.prev"]),
            ("bst_root", &["x", "x.next", "x.prev"]),
        ],
    )
    .expect("scheduler queue definition")
    .with_secondary(
        // Secondary local condition: the BST overlay (tracked with Br2).
        "x.minkey <= x.key && x.key <= x.maxkey \
         && (x.p != nil ==> x.p.left == x || x.p.right == x) \
         && (x.left == nil ==> x.minkey == x.key) \
         && (x.left != nil ==> x.left.p == x && x.left.rank < x.rank \
              && x.left.maxkey < x.key && x.minkey == x.left.minkey \
              && x.left.bst_root == x.bst_root) \
         && (x.right == nil ==> x.maxkey == x.key) \
         && (x.right != nil ==> x.right.p == x && x.right.rank < x.rank \
              && x.right.minkey > x.key && x.maxkey == x.right.maxkey \
              && x.right.bst_root == x.bst_root) \
         && x.bst_root != nil \
         && (x.p == nil ==> x.bst_root == x) \
         && (x.p != nil ==> x.bst_root == x.p.bst_root)",
        &[
            ("left", &["x", "old(x.left)"]),
            ("right", &["x", "old(x.right)"]),
            ("key", &["x", "x.p", "x.prev"]),
            ("p", &["x", "old(x.p)"]),
            ("rank", &["x", "x.p"]),
            ("minkey", &["x", "x.p"]),
            ("maxkey", &["x", "x.p"]),
            ("bst_root", &["x", "x.left", "x.right", "x.next", "x.prev"]),
        ],
    )
    .expect("scheduler queue secondary condition")
}

/// FWYB-annotated methods over the overlaid scheduler queue.
pub const SCHEDULER_QUEUE_METHODS: &str = r#"
// Read the next request to dispatch (the head of the FIFO overlay) without
// modifying anything: both broken sets stay empty.
procedure peek_request(h: Loc) returns (r: Loc)
  requires Br == {} && Br2 == {} && h != nil;
  ensures Br == {} && Br2 == {};
  ensures r == h;
  modifies {};
{
  InferLCOutsideBr(h);
  InferLCOutsideBr2(h);
  r := h;
}

// Change the key stored in a request that is simultaneously a list node and a
// BST leaf-root (single-node overlay): exercises both broken sets at once.
procedure update_single_request(x: Loc, k: Int) returns ()
  requires Br == {} && Br2 == {} && x != nil;
  requires x.prev == nil && x.next == nil && x.p == nil && x.left == nil && x.right == nil;
  ensures Br == {} && Br2 == {};
  modifies {x};
{
  InferLCOutsideBr(x);
  InferLCOutsideBr2(x);
  Mut(x, key, k);
  Mut(x, minkey, k);
  Mut(x, maxkey, k);
  AssertLCAndRemove(x);
  AssertLCAndRemove2(x);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definition_builds_with_secondary_condition() {
        let ids = scheduler_queue();
        assert!(ids.secondary.is_some());
        assert!(ids.lc_size() >= 20);
        assert_eq!(ids.ghost_maps().count(), 8);
    }

    #[test]
    fn methods_parse_and_typecheck() {
        let ids = scheduler_queue();
        ids_core::pipeline::load_methods(&ids, SCHEDULER_QUEUE_METHODS).expect("methods load");
    }
}
