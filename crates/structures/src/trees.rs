//! Tree-shaped benchmark structures: binary search trees, treaps, AVL trees,
//! red–black trees and the BST with a scaffolding node.
//!
//! All definitions follow §1 / Appendix D.2 of the paper: trees are captured
//! intrinsically with a parent map `p` (bounded indegree), a strictly
//! decreasing `rank` map (acyclicity) and `min`/`max` maps that make the
//! search-tree ordering local. Balanced variants add their balance ghost maps
//! (priority, height, colour/black-height).

use ids_core::IntrinsicDefinition;

const BST_FIELDS: &str = r#"
field left: Loc;
field right: Loc;
field key: Int;
field ghost p: Loc;
field ghost rank: Real;
field ghost minkey: Int;
field ghost maxkey: Int;
"#;

const BST_LC: &str = "x.minkey <= x.key && x.key <= x.maxkey \
 && (x.p != nil ==> x.p.left == x || x.p.right == x) \
 && (x.left == nil ==> x.minkey == x.key) \
 && (x.left != nil ==> x.left.p == x && x.left.rank < x.rank \
      && x.left.maxkey < x.key && x.minkey == x.left.minkey) \
 && (x.right == nil ==> x.maxkey == x.key) \
 && (x.right != nil ==> x.right.p == x && x.right.rank < x.rank \
      && x.right.minkey > x.key && x.maxkey == x.right.maxkey) \
 && (x.left != nil && x.right != nil ==> x.left != x.right)";

const BST_IMPACT: &[(&str, &[&str])] = &[
    ("left", &["x", "old(x.left)"]),
    ("right", &["x", "old(x.right)"]),
    ("key", &["x", "x.p"]),
    ("p", &["x", "old(x.p)"]),
    ("rank", &["x", "x.p"]),
    ("minkey", &["x", "x.p"]),
    ("maxkey", &["x", "x.p"]),
];

/// Binary search trees (Appendix D.2).
pub fn bst() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "Binary Search Tree",
        BST_FIELDS,
        BST_LC,
        "y",
        "y.p == nil",
        BST_IMPACT,
    )
    .expect("bst definition")
}

/// FWYB-annotated methods over binary search trees.
pub const BST_METHODS: &str = r#"
// Search for a key below node x, using the BST ordering to prune.
procedure bst_find(x: Loc, k: Int) returns (found: Bool)
  requires Br == {} && x != nil;
  ensures Br == {};
  ensures found ==> old(x.minkey) <= k && k <= old(x.maxkey);
  modifies {};
  decreases x.rank;
{
  InferLCOutsideBr(x);
  if (x.key == k) {
    found := true;
  } else if (k < x.key) {
    if (x.left == nil) {
      found := false;
    } else {
      call found := bst_find(x.left, k);
    }
  } else {
    if (x.right == nil) {
      found := false;
    } else {
      call found := bst_find(x.right, k);
    }
  }
}

// Minimum key of the subtree rooted at x: follow left children.
procedure bst_find_min(x: Loc) returns (m: Int)
  requires Br == {} && x != nil;
  ensures Br == {};
  ensures m == old(x.minkey);
  modifies {};
  decreases x.rank;
{
  InferLCOutsideBr(x);
  if (x.left == nil) {
    m := x.key;
  } else {
    call m := bst_find_min(x.left);
  }
}

// Right rotation at x (Appendix D.2): y = x.left becomes the new subtree
// root, x becomes y's right child. xp is x's parent (possibly nil).
procedure bst_right_rotate(x: Loc, xp: Loc) returns (ret: Loc)
  requires Br == {} && x != nil && x.left != nil && x.p == xp;
  requires xp != nil ==> xp.right == x;
  ensures Br == {} && ret == old(x.left) && ret.p == xp;
  ensures ret.right == x && x.p == ret;
  modifies ite(xp == nil, {x, x.left}, {x, x.left, xp});
{
  InferLCOutsideBr(x);
  if (xp != nil) {
    InferLCOutsideBr(xp);
  }
  InferLCOutsideBr(x.left);
  if (x.left.right != nil) {
    InferLCOutsideBr(x.left.right);
  }
  var y: Loc;
  y := x.left;
  var xl: Loc;
  Mut(x, left, y.right);
  xl := x.left;
  if (xp != nil) {
    Mut(xp, right, y);
  }
  Mut(y, right, x);
  // (1) repair the moved middle subtree
  if (xl != nil) {
    Mut(xl, p, x);
  }
  // (2) repair x
  Mut(x, p, y);
  Mut(x, minkey, ite(xl == nil, x.key, xl.minkey));
  // (3) repair y
  Mut(y, p, xp);
  Mut(y, maxkey, x.maxkey);
  Mut(y, rank, ite(xp == nil, x.rank + 1, (xp.rank + x.rank) / 2));
  AssertLCAndRemove(xl);
  AssertLCAndRemove(x);
  AssertLCAndRemove(y);
  AssertLCAndRemove(xp);
  ret := y;
}
"#;

/// Treaps: a BST ordered by `key` that is simultaneously a max-heap on a
/// `priority` data field.
pub fn treap() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "Treap",
        &format!("{}\nfield priority: Int;", BST_FIELDS),
        &format!(
            "{} && (x.left != nil ==> x.left.priority <= x.priority) \
             && (x.right != nil ==> x.right.priority <= x.priority)",
            BST_LC
        ),
        "y",
        "y.p == nil",
        &[
            ("left", &["x", "old(x.left)"]),
            ("right", &["x", "old(x.right)"]),
            ("key", &["x", "x.p"]),
            ("priority", &["x", "x.p"]),
            ("p", &["x", "old(x.p)"]),
            ("rank", &["x", "x.p"]),
            ("minkey", &["x", "x.p"]),
            ("maxkey", &["x", "x.p"]),
        ],
    )
    .expect("treap definition")
}

/// FWYB-annotated methods over treaps.
pub const TREAP_METHODS: &str = r#"
// Search is identical to the plain BST search; the heap priorities do not
// affect lookups.
procedure treap_find(x: Loc, k: Int) returns (found: Bool)
  requires Br == {} && x != nil;
  ensures Br == {};
  ensures found ==> old(x.minkey) <= k && k <= old(x.maxkey);
  modifies {};
  decreases x.rank;
{
  InferLCOutsideBr(x);
  if (x.key == k) {
    found := true;
  } else if (k < x.key) {
    if (x.left == nil) {
      found := false;
    } else {
      call found := treap_find(x.left, k);
    }
  } else {
    if (x.right == nil) {
      found := false;
    } else {
      call found := treap_find(x.right, k);
    }
  }
}

// Raise the priority of a root node (no rotation needed when it is already
// the subtree root): only the node itself needs re-checking.
procedure treap_raise_root_priority(x: Loc, pr: Int) returns ()
  requires Br == {} && x != nil && x.p == nil && x.priority <= pr;
  ensures Br == {};
  modifies {x};
{
  InferLCOutsideBr(x);
  if (x.left != nil) {
    InferLCOutsideBr(x.left);
  }
  if (x.right != nil) {
    InferLCOutsideBr(x.right);
  }
  Mut(x, priority, pr);
  AssertLCAndRemove(x);
}
"#;

/// AVL trees: BST plus a `height` map with the balance condition
/// `|height(l) - height(r)| <= 1` expressed locally.
pub fn avl() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "AVL Tree",
        &format!("{}\nfield ghost height: Int;", BST_FIELDS),
        &format!(
            "{} \
             && x.height >= 1 \
             && (x.left == nil && x.right == nil ==> x.height == 1) \
             && (x.left != nil ==> x.height >= x.left.height + 1) \
             && (x.right != nil ==> x.height >= x.right.height + 1) \
             && (x.left != nil && x.right == nil ==> x.left.height <= 1 && x.height == x.left.height + 1) \
             && (x.right != nil && x.left == nil ==> x.right.height <= 1 && x.height == x.right.height + 1) \
             && (x.left != nil && x.right != nil ==> \
                   x.left.height - x.right.height <= 1 \
                && x.right.height - x.left.height <= 1 \
                && (x.height == x.left.height + 1 || x.height == x.right.height + 1))",
            BST_LC
        ),
        "y",
        "y.p == nil",
        &[
            ("left", &["x", "old(x.left)"]),
            ("right", &["x", "old(x.right)"]),
            ("key", &["x", "x.p"]),
            ("p", &["x", "old(x.p)"]),
            ("rank", &["x", "x.p"]),
            ("minkey", &["x", "x.p"]),
            ("maxkey", &["x", "x.p"]),
            ("height", &["x", "x.p"]),
        ],
    )
    .expect("avl definition")
}

/// FWYB-annotated methods over AVL trees.
pub const AVL_METHODS: &str = r#"
// Minimum lookup: identical shape to the BST version, but the local condition
// carries the AVL balance facts along.
procedure avl_find_min(x: Loc) returns (m: Int)
  requires Br == {} && x != nil;
  ensures Br == {};
  ensures m == old(x.minkey);
  modifies {};
  decreases x.rank;
{
  InferLCOutsideBr(x);
  if (x.left == nil) {
    m := x.key;
  } else {
    call m := avl_find_min(x.left);
  }
}

// Search in an AVL tree.
procedure avl_find(x: Loc, k: Int) returns (found: Bool)
  requires Br == {} && x != nil;
  ensures Br == {};
  ensures found ==> old(x.minkey) <= k && k <= old(x.maxkey);
  modifies {};
  decreases x.rank;
{
  InferLCOutsideBr(x);
  if (x.key == k) {
    found := true;
  } else if (k < x.key) {
    if (x.left == nil) {
      found := false;
    } else {
      call found := avl_find(x.left, k);
    }
  } else {
    if (x.right == nil) {
      found := false;
    } else {
      call found := avl_find(x.right, k);
    }
  }
}
"#;

/// Red–black trees: BST plus a Boolean colour and a `bheight` (black-height)
/// map with the local colouring conditions.
pub fn red_black() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "Red-Black Tree",
        &format!(
            "{}\nfield ghost red: Bool;\nfield ghost bheight: Int;",
            BST_FIELDS
        ),
        &format!(
            "{} \
             && x.bheight >= 1 \
             && (x.red ==> x.p != nil) \
             && (x.red && x.left != nil ==> !(x.left.red)) \
             && (x.red && x.right != nil ==> !(x.right.red)) \
             && (x.left == nil ==> x.bheight == 1) \
             && (x.right == nil ==> x.bheight == 1) \
             && (x.left != nil ==> x.bheight == x.left.bheight + ite(x.left.red, 0, 1) \
                  && (x.red ==> x.bheight == x.left.bheight)) \
             && (x.right != nil ==> x.bheight == x.right.bheight + ite(x.right.red, 0, 1) \
                  && (x.red ==> x.bheight == x.right.bheight))",
            BST_LC
        ),
        "y",
        "y.p == nil && !(y.red)",
        &[
            ("left", &["x", "old(x.left)"]),
            ("right", &["x", "old(x.right)"]),
            ("key", &["x", "x.p"]),
            ("p", &["x", "old(x.p)"]),
            ("rank", &["x", "x.p"]),
            ("minkey", &["x", "x.p"]),
            ("maxkey", &["x", "x.p"]),
            ("red", &["x", "x.p"]),
            ("bheight", &["x", "x.p"]),
        ],
    )
    .expect("red-black definition")
}

/// FWYB-annotated methods over red–black trees.
pub const RED_BLACK_METHODS: &str = r#"
// Search in a red-black tree.
procedure rb_find(x: Loc, k: Int) returns (found: Bool)
  requires Br == {} && x != nil;
  ensures Br == {};
  ensures found ==> old(x.minkey) <= k && k <= old(x.maxkey);
  modifies {};
  decreases x.rank;
{
  InferLCOutsideBr(x);
  if (x.key == k) {
    found := true;
  } else if (k < x.key) {
    if (x.left == nil) {
      found := false;
    } else {
      call found := rb_find(x.left, k);
    }
  } else {
    if (x.right == nil) {
      found := false;
    } else {
      call found := rb_find(x.right, k);
    }
  }
}

// Minimum lookup in a red-black tree.
procedure rb_find_min(x: Loc) returns (m: Int)
  requires Br == {} && x != nil;
  ensures Br == {};
  ensures m == old(x.minkey);
  modifies {};
  decreases x.rank;
{
  InferLCOutsideBr(x);
  if (x.left == nil) {
    m := x.key;
  } else {
    call m := rb_find_min(x.left);
  }
}

// Recolour a red root-child to black (part of the insertion fix-up): the
// black height of the node increases, which is allowed when it is the root's
// only repair point (its parent is the scaffolding-free root, handled by the
// caller holding it in the broken set is avoided by requiring p == nil here).
procedure rb_blacken_root(x: Loc) returns ()
  requires Br == {} && x != nil && x.p == nil && !(x.red);
  ensures Br == {};
  modifies {x};
{
  InferLCOutsideBr(x);
  Mut(x, red, false);
  AssertLCAndRemove(x);
}
"#;

/// BST with a scaffolding (sentinel) node that is never deleted (§4.3 applies
/// the same trick to circular lists; the paper's benchmark uses it for BSTs).
pub fn bst_scaffolding() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "BST+Scaffolding",
        &format!("{}\nfield ghost scaff: Loc;", BST_FIELDS),
        &format!(
            "{} \
             && x.scaff != nil \
             && x.scaff.scaff == x.scaff \
             && (x.left != nil ==> x.left.scaff == x.scaff) \
             && (x.right != nil ==> x.right.scaff == x.scaff)",
            BST_LC
        ),
        "y",
        "y.scaff == y",
        &[
            ("left", &["x", "old(x.left)"]),
            ("right", &["x", "old(x.right)"]),
            ("key", &["x", "x.p"]),
            ("p", &["x", "old(x.p)"]),
            ("rank", &["x", "x.p"]),
            ("minkey", &["x", "x.p"]),
            ("maxkey", &["x", "x.p"]),
            ("scaff", &["x", "x.p"]),
        ],
    )
    .expect("bst scaffolding definition")
}

/// Methods over the scaffolding BST.
pub const BST_SCAFFOLDING_METHODS: &str = r#"
// Reading through the scaffolding pointer never needs repairs.
procedure scaffolding_of(x: Loc) returns (ghost s: Loc)
  requires Br == {} && x != nil;
  ensures Br == {} && s != nil;
  modifies {};
{
  InferLCOutsideBr(x);
  s := x.scaff;
  assert s != nil;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definitions_build() {
        assert!(bst().lc_size() >= 8);
        assert!(treap().lc_size() > bst().lc_size());
        assert!(avl().lc_size() > bst().lc_size());
        assert!(red_black().lc_size() > bst().lc_size());
        assert!(bst_scaffolding().lc_size() > bst().lc_size());
    }

    #[test]
    fn method_files_parse_and_typecheck() {
        for (ids, src) in [
            (bst(), BST_METHODS),
            (treap(), TREAP_METHODS),
            (avl(), AVL_METHODS),
            (red_black(), RED_BLACK_METHODS),
            (bst_scaffolding(), BST_SCAFFOLDING_METHODS),
        ] {
            ids_core::pipeline::load_methods(&ids, src).expect("methods load");
        }
    }
}
