//! List-shaped benchmark structures: singly-linked lists, sorted lists (plain
//! and with min/max maps) and circular lists.
//!
//! Each structure exposes its intrinsic definition (ghost monadic maps, local
//! condition, correlation formula, impact table — §4.1–4.3 and Appendix D of
//! the paper) and a file of FWYB-annotated methods in IVL surface syntax.

use ids_core::IntrinsicDefinition;

/// The singly-linked list: `next`/`key` user fields; ghost `prev`, `length`,
/// `keys`, `hslist` monadic maps. Acyclicity is witnessed by the strictly
/// decreasing `length` map; non-merging by the `prev` inverse pointer.
pub fn singly_linked_list() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "Singly-Linked List",
        r#"
        field next: Loc;
        field key: Int;
        field ghost prev: Loc;
        field ghost length: Int;
        field ghost keys: Set<Int>;
        field ghost hslist: Set<Loc>;
        "#,
        "(x.next != nil ==> x.next.prev == x \
            && x.length == x.next.length + 1 \
            && x.keys == union({x.key}, x.next.keys) \
            && x.hslist == union({x}, x.next.hslist) \
            && !(x in x.next.hslist)) \
         && (x.prev != nil ==> x.prev.next == x) \
         && (x.next == nil ==> x.length == 1 && x.keys == {x.key} && x.hslist == {x}) \
         && (x in x.hslist) \
         && x.length >= 1",
        "y",
        "y.prev == nil",
        &[
            ("next", &["x", "old(x.next)"]),
            ("key", &["x", "x.prev"]),
            ("prev", &["x", "old(x.prev)"]),
            ("length", &["x", "x.prev"]),
            ("keys", &["x", "x.prev"]),
            ("hslist", &["x", "x.prev"]),
        ],
    )
    .expect("singly-linked list definition")
}

/// FWYB-annotated methods over singly-linked lists.
pub const SINGLY_LINKED_LIST_METHODS: &str = r#"
// Insert a freshly allocated node carrying key k in front of the list head x.
procedure insert_front(x: Loc, k: Int) returns (r: Loc)
  requires Br == {} && x != nil && x.prev == nil;
  ensures Br == {} && r != nil && r.prev == nil;
  ensures r.length == old(x.length) + 1;
  ensures r.keys == union({k}, old(x.keys));
  ensures r.hslist == union({r}, old(x.hslist));
  modifies {x};
{
  InferLCOutsideBr(x);
  var z: Loc;
  NewObj(z);
  Mut(z, key, k);
  Mut(z, next, x);
  Mut(z, prev, nil);
  Mut(z, length, x.length + 1);
  Mut(z, keys, union({k}, x.keys));
  Mut(z, hslist, union({z}, x.hslist));
  Mut(x, prev, z);
  AssertLCAndRemove(z);
  AssertLCAndRemove(x);
  r := z;
}

// Insert a key at the back of the list rooted at x (recursive).
//
// The predecessor of x (if any) must lie outside x's own tail: the recursive
// call havocs everything in x.next.hslist, and without this requires nothing
// rules out x.prev sitting in that heaplet, which would let the havoc break
// the `x.prev.next == x` conjunct of LC(x) after the call. The clause is
// self-propagating: at the recursive call site y.prev == x and LC(x) gives
// !(x in y.hslist) directly.
procedure insert_back(x: Loc, k: Int) returns (r: Loc)
  requires Br == {} && x != nil;
  requires x.prev != nil ==> !(x.prev in x.hslist);
  ensures Br == ite(old(x.prev) == nil, {}, {old(x.prev)});
  ensures r == x;
  ensures r.length == old(x.length) + 1;
  ensures r.keys == union(old(x.keys), {k});
  ensures old(x.hslist) subset r.hslist;
  ensures r.prev == old(x.prev);
  ensures r.key == old(x.key);
  ensures inter(diff(r.hslist, old(x.hslist)), old(Alloc)) == {};
  modifies x.hslist;
  decreases x.length;
{
  InferLCOutsideBr(x);
  if (x.next == nil) {
    var z: Loc;
    NewObj(z);
    Mut(z, key, k);
    Mut(z, next, nil);
    Mut(z, length, 1);
    Mut(z, keys, {k});
    Mut(z, hslist, {z});
    Mut(x, next, z);
    Mut(z, prev, x);
    AssertLCAndRemove(z);
    Mut(x, length, 2);
    Mut(x, keys, union({x.key}, {k}));
    Mut(x, hslist, union({x}, {z}));
    AssertLCAndRemove(x);
    r := x;
  } else {
    var y: Loc;
    y := x.next;
    var t: Loc;
    call t := insert_back(y, k);
    InferLCOutsideBr(t);
    Mut(x, length, t.length + 1);
    Mut(x, keys, union({x.key}, t.keys));
    Mut(x, hslist, union({x}, t.hslist));
    AssertLCAndRemove(x);
    r := x;
  }
}

// Membership query: does key k occur in the list rooted at x? (recursive)
procedure find(x: Loc, k: Int) returns (found: Bool)
  requires Br == {} && x != nil;
  ensures Br == {};
  ensures found <==> (k in old(x.keys));
  modifies {};
  decreases x.length;
{
  InferLCOutsideBr(x);
  if (x.key == k) {
    found := true;
  } else if (x.next == nil) {
    found := false;
  } else {
    call found := find(x.next, k);
  }
}

// Append list y (a proper list head) to the last node x of another list.
procedure append_node(x: Loc, y: Loc) returns (r: Loc)
  requires Br == {} && x != nil && y != nil;
  requires x.next == nil && y.prev == nil;
  requires !(x in y.hslist) && !(y in x.hslist);
  ensures Br == ite(old(x.prev) == nil, {}, {old(x.prev)});
  ensures r == x && r.next == y;
  ensures r.length == old(x.length) + old(y.length);
  ensures r.keys == union(old(x.keys), old(y.keys));
  ensures r.hslist == union(old(x.hslist), old(y.hslist));
  modifies union(x.hslist, y.hslist);
{
  InferLCOutsideBr(x);
  InferLCOutsideBr(y);
  Mut(x, next, y);
  Mut(y, prev, x);
  Mut(x, length, 1 + y.length);
  Mut(x, keys, union({x.key}, y.keys));
  Mut(x, hslist, union({x}, y.hslist));
  AssertLCAndRemove(y);
  AssertLCAndRemove(x);
  r := x;
}

// Overwrite the key of the head node (exercises the key impact set).
procedure set_key(x: Loc, k: Int) returns ()
  requires Br == {} && x != nil && x.next == nil && x.prev == nil;
  ensures Br == {};
  ensures x.keys == {k};
  modifies {x};
{
  InferLCOutsideBr(x);
  Mut(x, key, k);
  Mut(x, keys, {k});
  AssertLCAndRemove(x);
}

// Detach the head of a list with at least two nodes and return the new head.
// The detached node becomes a valid singleton list, so both pieces remain
// intrinsically defined lists afterwards.
procedure delete_front(x: Loc) returns (r: Loc)
  requires Br == {} && x != nil && x.prev == nil && x.next != nil;
  ensures Br == {} && r != nil && r.prev == nil;
  ensures r == old(x.next);
  ensures r.length == old(x.length) - 1;
  ensures r.hslist == diff(old(x.hslist), {x});
  modifies {x};
{
  InferLCOutsideBr(x);
  r := x.next;
  InferLCOutsideBr(r);
  Mut(x, next, nil);
  Mut(r, prev, nil);
  Mut(x, length, 1);
  Mut(x, keys, {x.key});
  Mut(x, hslist, {x});
  AssertLCAndRemove(x);
  AssertLCAndRemove(r);
}
"#;

/// The sorted list of §4.1 (Fig. 7): the singly-linked list maps plus the
/// sortedness constraint `key(x) <= key(next(x))`.
pub fn sorted_list() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "Sorted List",
        r#"
        field next: Loc;
        field key: Int;
        field ghost prev: Loc;
        field ghost length: Int;
        field ghost keys: Set<Int>;
        field ghost hslist: Set<Loc>;
        "#,
        "(x.next != nil ==> x.key <= x.next.key \
            && x.next.prev == x \
            && x.length == x.next.length + 1 \
            && x.keys == union({x.key}, x.next.keys) \
            && x.hslist == union({x}, x.next.hslist) \
            && !(x in x.next.hslist)) \
         && (x.prev != nil ==> x.prev.next == x) \
         && (x.next == nil ==> x.length == 1 && x.keys == {x.key} && x.hslist == {x}) \
         && (x in x.hslist) \
         && x.length >= 1",
        "y",
        "y.prev == nil",
        &[
            ("next", &["x", "old(x.next)"]),
            ("key", &["x", "x.prev"]),
            ("prev", &["x", "old(x.prev)"]),
            ("length", &["x", "x.prev"]),
            ("keys", &["x", "x.prev"]),
            ("hslist", &["x", "x.prev"]),
        ],
    )
    .expect("sorted list definition")
}

/// FWYB-annotated methods over sorted lists, following Fig. 7 / Appendix D.1.
pub const SORTED_LIST_METHODS: &str = r#"
// Insertion into a sorted list (Fig. 7 of the paper, recursive).
procedure sorted_insert(x: Loc, k: Int) returns (r: Loc)
  requires Br == {} && x != nil;
  ensures Br == ite(old(x.prev) == nil, {}, {old(x.prev)});
  ensures r != nil && r.prev == nil;
  ensures r.length == old(x.length) + 1;
  ensures r.keys == union(old(x.keys), {k});
  ensures old(x.hslist) subset r.hslist;
  ensures r.key == ite(k <= old(x.key), k, old(x.key));
  ensures LC(r);
  ensures inter(diff(r.hslist, old(x.hslist)), old(Alloc)) == {};
  modifies x.hslist;
  decreases x.length;
{
  InferLCOutsideBr(x);
  if (x.key >= k) {
    // k is inserted before x.
    var z: Loc;
    NewObj(z);
    Mut(z, key, k);
    Mut(z, next, x);
    Mut(z, prev, nil);
    Mut(z, hslist, union({z}, x.hslist));
    Mut(z, length, 1 + x.length);
    Mut(z, keys, union({k}, x.keys));
    Mut(x, prev, z);
    AssertLCAndRemove(z);
    AssertLCAndRemove(x);
    r := z;
  } else {
    if (x.next == nil) {
      // One-element list: k goes after x.
      var z: Loc;
      NewObj(z);
      Mut(z, key, k);
      Mut(z, next, nil);
      Mut(z, hslist, {z});
      Mut(z, length, 1);
      Mut(z, keys, {k});
      Mut(x, next, z);
      Mut(z, prev, x);
      AssertLCAndRemove(z);
      Mut(x, prev, nil);
      Mut(x, hslist, union({x}, {z}));
      Mut(x, length, 2);
      Mut(x, keys, union({x.key}, {k}));
      AssertLCAndRemove(x);
      r := x;
    } else {
      // Recursive case (Fig. 7 of the paper).
      var y: Loc;
      y := x.next;
      var tmp: Loc;
      call tmp := sorted_insert(y, k);
      InferLCOutsideBr(y);
      if (y.prev == x) {
        Mut(y, prev, nil);
      }
      Mut(x, next, tmp);
      AssertLCAndRemove(y);
      Mut(tmp, prev, x);
      AssertLCAndRemove(tmp);
      Mut(x, hslist, union({x}, tmp.hslist));
      Mut(x, length, 1 + tmp.length);
      Mut(x, keys, union({x.key}, tmp.keys));
      Mut(x, prev, nil);
      AssertLCAndRemove(x);
      r := x;
    }
  }
}

// Membership query over a sorted list (recursive; can stop early but the
// simple full search keeps the specification identical to the list case).
procedure sorted_find(x: Loc, k: Int) returns (found: Bool)
  requires Br == {} && x != nil;
  ensures Br == {};
  ensures found <==> (k in old(x.keys));
  modifies {};
  decreases x.length;
{
  InferLCOutsideBr(x);
  if (x.key == k) {
    found := true;
  } else if (x.next == nil) {
    found := false;
  } else {
    call found := sorted_find(x.next, k);
  }
}

"#;

/// The sorted list extended with `min`/`max` maps (used by the paper for
/// `Concatenate` and `Find-Last`, LC size 20).
pub fn sorted_list_minmax() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "Sorted List (w. min, max)",
        r#"
        field next: Loc;
        field key: Int;
        field ghost prev: Loc;
        field ghost length: Int;
        field ghost keys: Set<Int>;
        field ghost hslist: Set<Loc>;
        field ghost minkey: Int;
        field ghost maxkey: Int;
        "#,
        "(x.next != nil ==> x.key <= x.next.key \
            && x.next.prev == x \
            && x.length == x.next.length + 1 \
            && x.keys == union({x.key}, x.next.keys) \
            && x.hslist == union({x}, x.next.hslist) \
            && !(x in x.next.hslist) \
            && x.maxkey == x.next.maxkey \
            && x.next.minkey == x.next.key) \
         && (x.prev != nil ==> x.prev.next == x) \
         && (x.next == nil ==> x.length == 1 && x.keys == {x.key} && x.hslist == {x} \
            && x.maxkey == x.key) \
         && x.minkey == x.key \
         && x.minkey <= x.maxkey \
         && (x in x.hslist) \
         && x.length >= 1",
        "y",
        "y.prev == nil",
        &[
            ("next", &["x", "old(x.next)"]),
            ("key", &["x", "x.prev"]),
            ("prev", &["x", "old(x.prev)"]),
            ("length", &["x", "x.prev"]),
            ("keys", &["x", "x.prev"]),
            ("hslist", &["x", "x.prev"]),
            ("minkey", &["x", "x.prev"]),
            ("maxkey", &["x", "x.prev"]),
        ],
    )
    .expect("sorted list min/max definition")
}

/// Methods over the min/max sorted list.
pub const SORTED_LIST_MINMAX_METHODS: &str = r#"
// Concatenate two sorted lists when every key of the first is below every key
// of the second; x is the last node of the first list.
procedure concatenate(x: Loc, y: Loc) returns (r: Loc)
  requires Br == {} && x != nil && y != nil;
  requires x.next == nil && y.prev == nil;
  requires x.maxkey <= y.minkey && x.key <= y.key;
  requires !(x in y.hslist) && !(y in x.hslist);
  ensures Br == ite(old(x.prev) == nil, {}, {old(x.prev)});
  ensures r == x;
  ensures r.keys == union(old(x.keys), old(y.keys));
  modifies union(x.hslist, y.hslist);
{
  InferLCOutsideBr(x);
  InferLCOutsideBr(y);
  Mut(x, next, y);
  Mut(y, prev, x);
  Mut(x, length, 1 + y.length);
  Mut(x, keys, union({x.key}, y.keys));
  Mut(x, hslist, union({x}, y.hslist));
  Mut(x, maxkey, y.maxkey);
  AssertLCAndRemove(y);
  AssertLCAndRemove(x);
  r := x;
}

// Return the largest key (the max map makes it O(1) at the head; the result
// is a ghost value, i.e. a specification-level query).
procedure find_last(x: Loc) returns (ghost m: Int)
  requires Br == {} && x != nil;
  ensures Br == {};
  ensures m == old(x.maxkey);
  modifies {};
{
  InferLCOutsideBr(x);
  m := x.maxkey;
}
"#;

/// Circular lists (§4.3): every node's `last` map points to the scaffolding
/// node; `length`/`rev_length` measure the distance to it in both directions.
pub fn circular_list() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "Circular List",
        r#"
        field next: Loc;
        field key: Int;
        field ghost prev: Loc;
        field ghost last: Loc;
        field ghost length: Int;
        field ghost rev_length: Int;
        "#,
        "x.next != nil && x.prev != nil && x.last != nil \
         && x.next.prev == x \
         && x.prev.next == x \
         && x.last.last == x.last \
         && (x.last == x ==> x.length == 0 && x.rev_length == 0) \
         && (x.next.last == x.last) \
         && (x != x.last ==> x.length == x.next.length + 1 \
              && x.rev_length == x.prev.rev_length + 1) \
         && x.length >= 0 && x.rev_length >= 0",
        "y",
        "y.last == y",
        &[
            ("next", &["x", "old(x.next)"]),
            ("key", &["x"]),
            ("prev", &["x", "old(x.prev)"]),
            ("last", &["x", "x.prev"]),
            ("length", &["x", "x.prev"]),
            ("rev_length", &["x", "x.next"]),
        ],
    )
    .expect("circular list definition")
}

/// Methods over circular lists.
pub const CIRCULAR_LIST_METHODS: &str = r#"
// Rotate the entry point of a circular list one step forward. The structure
// itself is untouched, so no repairs are needed; this exercises reading the
// scaffolding node.
procedure rotate_entry(x: Loc) returns (r: Loc)
  requires Br == {} && x != nil;
  ensures Br == {} && r != nil;
  modifies {};
{
  InferLCOutsideBr(x);
  r := x.next;
  assert r != nil;
}

// Overwrite the key stored at a node; keys are not part of the circular-list
// local condition, so only the node itself needs a (trivial) repair.
procedure set_node_key(x: Loc, k: Int) returns ()
  requires Br == {} && x != nil;
  ensures Br == {};
  modifies {x};
{
  InferLCOutsideBr(x);
  Mut(x, key, k);
  AssertLCAndRemove(x);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definitions_build() {
        assert_eq!(singly_linked_list().ghost_maps().count(), 4);
        assert!(sorted_list().lc_size() >= 10);
        assert!(sorted_list_minmax().lc_size() >= 15);
        assert_eq!(circular_list().impact_sets.len(), 6);
    }

    #[test]
    fn insert_back_previously_refuted_lc_assert_now_verifies() {
        // Regression for the latent benchmark bug surfaced by the PR-2
        // driver: in the recursive branch of `insert_back`, the final
        // `AssertLCAndRemove(x)` was refuted because nothing ruled out
        // `x.prev` sitting inside the callee's havoc heaplet
        // (`x.next.hslist`), letting the call frame break `x.prev.next == x`.
        // The fix adds a self-propagating requires clause. This test checks
        // the decisive VCs through one incremental session — the new
        // precondition obligation at the recursive call site and the
        // formerly refuted else-branch LC assert — rather than the whole
        // method, whose ensures VCs take minutes and are covered by the
        // `ids-verify suite` CLI run.
        let ids = singly_linked_list();
        let merged = ids_core::pipeline::load_methods(&ids, SINGLY_LINKED_LIST_METHODS).unwrap();
        let task = ids_core::pipeline::prepare_method_in(
            &ids,
            &merged,
            "insert_back",
            ids_core::pipeline::PipelineConfig::default(),
        )
        .unwrap();
        let mut lc_asserts = Vec::new();
        let mut precondition = None;
        for (i, vc) in task.vcs.iter().enumerate() {
            if vc.description.contains("call insert_back precondition #2") {
                precondition = Some(i);
            }
            if vc.description.starts_with("insert_back::assert")
                && vc.description.contains("x.next.prev == x")
            {
                lc_asserts.push(i);
            }
        }
        let precondition = precondition.expect("the fixed annotation adds a second precondition");
        assert_eq!(
            lc_asserts.len(),
            2,
            "expected the then- and else-branch LC(x) asserts"
        );
        let formerly_refuted = lc_asserts[1];
        assert!(precondition < formerly_refuted);
        // Pin the verdicts under BOTH solver heuristics profiles: the tuned
        // default (Luby restarts + clause deletion + hybrid pivoting) and
        // the legacy profile — heuristics must never move a verdict.
        for profile in [
            ids_smt::SolverProfile::Default,
            ids_smt::SolverProfile::Legacy,
        ] {
            let task = ids_core::pipeline::MethodTask {
                profile,
                ..task.clone()
            };
            let mut session =
                ids_core::pipeline::MethodSession::new(&task).expect("decidable encoding");
            for &i in &[precondition, formerly_refuted] {
                let r = session.check_vc(i);
                assert_eq!(
                    r.verdict,
                    ids_core::pipeline::VcVerdict::Valid,
                    "VC still failing under profile {}: {}",
                    profile.as_str(),
                    task.vcs[i].description
                );
                if profile == ids_smt::SolverProfile::Default {
                    // The decisive VCs are solver-heavy enough to exercise
                    // the new telemetry end to end.
                    assert!(r.stats.sat_decisions > 0, "{:?}", r.stats);
                }
            }
        }
    }

    #[test]
    fn method_files_parse_and_typecheck() {
        for (ids, src) in [
            (singly_linked_list(), SINGLY_LINKED_LIST_METHODS),
            (sorted_list(), SORTED_LIST_METHODS),
            (sorted_list_minmax(), SORTED_LIST_MINMAX_METHODS),
            (circular_list(), CIRCULAR_LIST_METHODS),
        ] {
            ids_core::pipeline::load_methods(&ids, src).expect("methods load");
        }
    }
}
