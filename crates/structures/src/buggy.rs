//! Deliberately broken method variants used by the negative tests: each one
//! violates the fix-what-you-break discipline or simply fails to repair a
//! monadic map, and the pipeline must reject it.

/// Broken singly-linked list methods.
pub const BUGGY_LIST_METHODS: &str = r#"
// Forgets to repair the new head's length map: AssertLCAndRemove(z) must fail.
procedure insert_front_forgets_length(x: Loc, k: Int) returns (r: Loc)
  requires Br == {} && x != nil && x.prev == nil;
  ensures Br == {} && r != nil;
  modifies {x};
{
  InferLCOutsideBr(x);
  var z: Loc;
  NewObj(z);
  Mut(z, key, k);
  Mut(z, next, x);
  Mut(z, prev, nil);
  Mut(z, keys, union({k}, x.keys));
  Mut(z, hslist, union({z}, x.hslist));
  Mut(x, prev, z);
  AssertLCAndRemove(z);
  AssertLCAndRemove(x);
  r := z;
}

// Mutates the head but never repairs anything: the broken set stays nonempty.
procedure leaves_broken_set_nonempty(x: Loc) returns ()
  requires Br == {} && x != nil;
  ensures Br == {};
  modifies {x};
{
  Mut(x, next, nil);
}

// Claims a postcondition about the keys that the code does not establish.
procedure wrong_keys_postcondition(x: Loc, k: Int) returns ()
  requires Br == {} && x != nil && x.next == nil && x.prev == nil;
  ensures Br == {};
  ensures x.keys == {k + 1};
  modifies {x};
{
  InferLCOutsideBr(x);
  Mut(x, key, k);
  Mut(x, keys, {k});
  AssertLCAndRemove(x);
}
"#;

/// A method file that is *not well-behaved*: it bypasses the FWYB macros.
pub const ILL_BEHAVED_METHODS: &str = r#"
procedure raw_mutation(x: Loc, y: Loc) returns ()
  requires Br == {};
  ensures Br == {};
{
  x.next := y;
  Br := {};
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::singly_linked_list;

    #[test]
    fn ill_behaved_file_is_flagged() {
        let merged =
            ids_core::pipeline::load_methods(&singly_linked_list(), ILL_BEHAVED_METHODS).unwrap();
        let violations = ids_core::wellbehaved::check_program(&merged);
        assert!(violations.len() >= 2);
    }
}
