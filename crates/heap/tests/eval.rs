//! Direct unit tests of `ids-heap`'s expression evaluator: set-operation
//! semantics and the panicking error paths (`nil` dereference, unbound
//! variables, type confusion) that the property tests never exercise.

use std::collections::BTreeMap;

use ids_heap::{check_local_condition, eval_expr, Heap, Type, Value};
use ids_ivl::parse_expr;

fn env_with(x: Value) -> BTreeMap<String, Value> {
    let mut env = BTreeMap::new();
    env.insert("x".to_string(), x);
    env
}

fn int_set_heap(s1: &[i64], s2: &[i64]) -> (Heap, BTreeMap<String, Value>) {
    let mut heap = Heap::new();
    let o = heap.alloc(&[("s1", Type::SetInt), ("s2", Type::SetInt)]);
    heap.set(o, "s1", Value::SetInt(s1.to_vec()));
    heap.set(o, "s2", Value::SetInt(s2.to_vec()));
    (heap, env_with(Value::Loc(Some(o))))
}

// ------------------------------------------------------------ set operations

#[test]
fn union_inter_diff_on_int_sets() {
    let (heap, env) = int_set_heap(&[1, 2, 3], &[3, 4]);
    for (src, expected) in [
        ("union(x.s1, x.s2)", vec![1, 2, 3, 4]),
        ("inter(x.s1, x.s2)", vec![3]),
        ("diff(x.s1, x.s2)", vec![1, 2]),
        ("diff(x.s2, x.s1)", vec![4]),
    ] {
        let e = parse_expr(src).unwrap();
        assert_eq!(
            eval_expr(&heap, &env, &e),
            Value::SetInt(expected),
            "{}",
            src
        );
    }
}

#[test]
fn set_equality_ignores_order_and_duplicates() {
    let (heap, env) = int_set_heap(&[3, 1, 1, 2], &[2, 3, 1]);
    let e = parse_expr("x.s1 == x.s2").unwrap();
    assert_eq!(eval_expr(&heap, &env, &e), Value::Bool(true));
    let e = parse_expr("x.s1 != union(x.s2, {9})").unwrap();
    assert_eq!(eval_expr(&heap, &env, &e), Value::Bool(true));
}

#[test]
fn membership_and_subset() {
    let (heap, env) = int_set_heap(&[1, 2], &[1, 2, 3]);
    let e = parse_expr("x.s1 subset x.s2 && !(x.s2 subset x.s1)").unwrap();
    assert_eq!(eval_expr(&heap, &env, &e), Value::Bool(true));
    let e = parse_expr("2 in x.s1 && !(3 in x.s1)").unwrap();
    assert_eq!(eval_expr(&heap, &env, &e), Value::Bool(true));
}

#[test]
fn loc_set_operations() {
    let mut heap = Heap::new();
    let a = heap.alloc(&[("peers", Type::SetLoc)]);
    let b = heap.alloc(&[("peers", Type::SetLoc)]);
    heap.set(a, "peers", Value::SetLoc(vec![a, b]));
    let env = env_with(Value::Loc(Some(a)));
    let e = parse_expr("x in x.peers").unwrap();
    assert_eq!(eval_expr(&heap, &env, &e), Value::Bool(true));
    let e = parse_expr("diff(x.peers, {x}) != x.peers").unwrap();
    assert_eq!(eval_expr(&heap, &env, &e), Value::Bool(true));
}

#[test]
fn nil_singleton_is_empty() {
    // {nil} contributes no location: the paper's sets range over objects.
    let heap = Heap::new();
    let env = env_with(Value::Loc(None));
    let e = parse_expr("{x} == {}").unwrap();
    assert_eq!(eval_expr(&heap, &env, &e), Value::Bool(true));
}

#[test]
fn membership_of_nil_is_false() {
    let mut heap = Heap::new();
    let a = heap.alloc(&[("peers", Type::SetLoc)]);
    heap.set(a, "peers", Value::SetLoc(vec![a]));
    let mut env = env_with(Value::Loc(Some(a)));
    env.insert("n".to_string(), Value::Loc(None));
    let e = parse_expr("n in x.peers").unwrap();
    assert_eq!(eval_expr(&heap, &env, &e), Value::Bool(false));
}

// ----------------------------------------------------------- short-circuiting

#[test]
fn implication_guard_prevents_nil_dereference() {
    // The canonical LC shape: a nil guard must protect the dereference.
    let mut heap = Heap::new();
    let o = heap.alloc(&[("next", Type::Loc), ("length", Type::Int)]);
    heap.set(o, "length", Value::Int(1));
    let e = parse_expr("x.next != nil ==> x.next.length >= 0").unwrap();
    assert!(check_local_condition(&heap, &e, o));
}

// ------------------------------------------------------------- error paths

#[test]
#[should_panic(expected = "nil dereference")]
fn dereferencing_nil_panics() {
    let heap = Heap::new();
    let env = env_with(Value::Loc(None));
    let e = parse_expr("x.next == nil").unwrap();
    eval_expr(&heap, &env, &e);
}

#[test]
#[should_panic(expected = "nil dereference")]
fn unguarded_two_hop_dereference_panics() {
    // x.next is nil on the last node: x.next.length must panic.
    let mut heap = Heap::new();
    let o = heap.alloc(&[("next", Type::Loc), ("length", Type::Int)]);
    let env = env_with(Value::Loc(Some(o)));
    let e = parse_expr("x.next.length == 1").unwrap();
    eval_expr(&heap, &env, &e);
}

#[test]
#[should_panic(expected = "unbound variable")]
fn unbound_variable_panics() {
    let heap = Heap::new();
    let e = parse_expr("y == nil").unwrap();
    eval_expr(&heap, &BTreeMap::new(), &e);
}

#[test]
#[should_panic(expected = "expected a boolean")]
fn type_confusion_panics() {
    let heap = Heap::new();
    let env = env_with(Value::Int(3));
    let e = parse_expr("x && x").unwrap();
    eval_expr(&heap, &env, &e);
}

#[test]
#[should_panic(expected = "bad membership")]
fn membership_in_non_set_panics() {
    let (heap, mut env) = int_set_heap(&[], &[]);
    env.insert("k".to_string(), Value::Int(1));
    let e = parse_expr("k in k").unwrap();
    // `k in k` typechecks nowhere, but the evaluator is untyped: it must
    // reject the shape at runtime rather than produce a value.
    eval_expr(&heap, &env, &e);
}

// --------------------------------------------------- local-condition checking

#[test]
fn check_local_condition_flags_only_broken_objects() {
    let mut heap = Heap::new();
    let a = heap.alloc(&[("next", Type::Loc), ("length", Type::Int)]);
    let b = heap.alloc(&[("next", Type::Loc), ("length", Type::Int)]);
    heap.set(a, "next", Value::Loc(Some(b)));
    heap.set(a, "length", Value::Int(2));
    heap.set(b, "length", Value::Int(1));
    let lc = parse_expr(
        "(x.next != nil ==> x.length == x.next.length + 1) \
         && (x.next == nil ==> x.length == 1)",
    )
    .unwrap();
    assert!(check_local_condition(&heap, &lc, a));
    assert!(check_local_condition(&heap, &lc, b));
    // Break a: wrong measure.
    heap.set(a, "length", Value::Int(7));
    assert!(!check_local_condition(&heap, &lc, a));
    assert!(check_local_condition(&heap, &lc, b), "b must stay intact");
}
