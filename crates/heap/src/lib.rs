//! `ids-heap` — concrete heaps and runtime checking of intrinsic definitions.
//!
//! The verification pipeline reasons about heaps symbolically; this crate
//! provides the *concrete* counterpart used for testing and as a lightweight
//! runtime checker (in the spirit of the incremental runtime checking of
//! linear measures the paper cites):
//!
//! * [`Heap`] — a finite `C`-heap: objects with pointer fields, data fields
//!   and ghost monadic-map values (Definition 2.2 of the paper);
//! * [`eval_expr`] / [`check_local_condition`] — evaluate IVL expressions and
//!   local conditions on concrete objects;
//! * builders for well-formed lists used in property-based tests, which check
//!   that the intrinsic (local-condition-based) characterisation agrees with
//!   the classical recursive definition on randomly generated heaps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use ids_ivl::{BinOp, Expr, UnOp};

pub use ids_ivl::Type;

/// A concrete value stored in a field or produced by evaluating an expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// A location (`Some(object id)`) or `nil` (`None`).
    Loc(Option<usize>),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A set of locations.
    SetLoc(Vec<usize>),
    /// A set of integers.
    SetInt(Vec<i64>),
}

impl Value {
    /// The default value of a type (what allocation initializes fields to).
    pub fn default_of(ty: Type) -> Value {
        match ty {
            Type::Loc => Value::Loc(None),
            Type::Int | Type::Real => Value::Int(0),
            Type::Bool => Value::Bool(false),
            Type::SetLoc => Value::SetLoc(Vec::new()),
            Type::SetInt => Value::SetInt(Vec::new()),
        }
    }

    /// The location payload of a `Loc` value.
    ///
    /// # Panics
    /// Panics if the value is not a location.
    pub fn as_loc(&self) -> Option<usize> {
        match self {
            Value::Loc(l) => *l,
            _ => panic!("expected a location, got {:?}", self),
        }
    }

    /// The boolean payload of a `Bool` value.
    ///
    /// # Panics
    /// Panics if the value is not a boolean.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            _ => panic!("expected a boolean, got {:?}", self),
        }
    }

    /// The integer payload of an `Int` value.
    ///
    /// # Panics
    /// Panics if the value is not an integer.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            _ => panic!("expected an integer, got {:?}", self),
        }
    }
}

/// A finite concrete heap: objects `0..len` with per-field values.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    objects: Vec<BTreeMap<String, Value>>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocates a new object with the given field defaults and returns its id.
    pub fn alloc(&mut self, fields: &[(&str, Type)]) -> usize {
        let mut map = BTreeMap::new();
        for (name, ty) in fields {
            map.insert((*name).to_string(), Value::default_of(*ty));
        }
        self.objects.push(map);
        self.objects.len() - 1
    }

    /// Number of allocated objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no objects are allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Sets a field of an object.
    pub fn set(&mut self, obj: usize, field: &str, value: Value) {
        self.objects[obj].insert(field.to_string(), value);
    }

    /// Reads a field of an object.
    pub fn get(&self, obj: usize, field: &str) -> Value {
        self.objects[obj]
            .get(field)
            .cloned()
            .unwrap_or(Value::Loc(None))
    }

    /// Iterates over all object ids.
    pub fn objects(&self) -> impl Iterator<Item = usize> {
        0..self.objects.len()
    }
}

/// Evaluates a (quantifier-free, `old`-free) IVL expression on a heap, with
/// `x` bound to the given object.
pub fn eval_expr(heap: &Heap, env: &BTreeMap<String, Value>, e: &Expr) -> Value {
    match e {
        Expr::BoolLit(b) => Value::Bool(*b),
        Expr::IntLit(n) => Value::Int(*n as i64),
        Expr::RealLit(n, d) => Value::Int((*n / *d) as i64),
        Expr::Nil => Value::Loc(None),
        Expr::EmptySet(Type::SetInt) => Value::SetInt(Vec::new()),
        Expr::EmptySet(_) => Value::SetLoc(Vec::new()),
        Expr::Var(v) => env
            .get(v)
            .cloned()
            .unwrap_or_else(|| panic!("unbound variable {}", v)),
        Expr::Field(obj, f) => {
            let o = eval_expr(heap, env, obj).as_loc();
            match o {
                Some(o) => heap.get(o, f),
                None => panic!("nil dereference of field {}", f),
            }
        }
        Expr::Old(inner) => eval_expr(heap, env, inner),
        Expr::Unary(UnOp::Not, inner) => Value::Bool(!eval_expr(heap, env, inner).as_bool()),
        Expr::Unary(UnOp::Neg, inner) => Value::Int(-eval_expr(heap, env, inner).as_int()),
        Expr::Singleton(inner) => match eval_expr(heap, env, inner) {
            Value::Loc(Some(o)) => Value::SetLoc(vec![o]),
            Value::Loc(None) => Value::SetLoc(vec![]),
            Value::Int(i) => Value::SetInt(vec![i]),
            other => panic!("cannot form singleton of {:?}", other),
        },
        Expr::Ite(c, t, f) => {
            if eval_expr(heap, env, c).as_bool() {
                eval_expr(heap, env, t)
            } else {
                eval_expr(heap, env, f)
            }
        }
        Expr::App(name, _) => panic!("cannot evaluate application {}", name),
        Expr::Binary(op, a, b) => {
            // Short-circuit the guards so that `x.next != nil ==> ...` does not
            // dereference nil.
            match op {
                BinOp::And => {
                    return Value::Bool(
                        eval_expr(heap, env, a).as_bool() && eval_expr(heap, env, b).as_bool(),
                    )
                }
                BinOp::Or => {
                    return Value::Bool(
                        eval_expr(heap, env, a).as_bool() || eval_expr(heap, env, b).as_bool(),
                    )
                }
                BinOp::Implies => {
                    return Value::Bool(
                        !eval_expr(heap, env, a).as_bool() || eval_expr(heap, env, b).as_bool(),
                    )
                }
                _ => {}
            }
            let va = eval_expr(heap, env, a);
            let vb = eval_expr(heap, env, b);
            match op {
                BinOp::Iff => Value::Bool(va.as_bool() == vb.as_bool()),
                BinOp::Eq => Value::Bool(sets_normal(va) == sets_normal(vb)),
                BinOp::Ne => Value::Bool(sets_normal(va) != sets_normal(vb)),
                BinOp::Add => Value::Int(va.as_int() + vb.as_int()),
                BinOp::Sub => Value::Int(va.as_int() - vb.as_int()),
                BinOp::Div => Value::Int(va.as_int() / vb.as_int()),
                BinOp::Lt => Value::Bool(va.as_int() < vb.as_int()),
                BinOp::Le => Value::Bool(va.as_int() <= vb.as_int()),
                BinOp::Gt => Value::Bool(va.as_int() > vb.as_int()),
                BinOp::Ge => Value::Bool(va.as_int() >= vb.as_int()),
                BinOp::Member => match (va, vb) {
                    (Value::Loc(Some(o)), Value::SetLoc(s)) => Value::Bool(s.contains(&o)),
                    (Value::Loc(None), Value::SetLoc(_)) => Value::Bool(false),
                    (Value::Int(i), Value::SetInt(s)) => Value::Bool(s.contains(&i)),
                    (a, b) => panic!("bad membership {:?} in {:?}", a, b),
                },
                BinOp::Subset => match (va, vb) {
                    (Value::SetLoc(a), Value::SetLoc(b)) => {
                        Value::Bool(a.iter().all(|x| b.contains(x)))
                    }
                    (Value::SetInt(a), Value::SetInt(b)) => {
                        Value::Bool(a.iter().all(|x| b.contains(x)))
                    }
                    (a, b) => panic!("bad subset {:?} {:?}", a, b),
                },
                BinOp::Union | BinOp::Inter | BinOp::Diff => set_op(*op, va, vb),
                BinOp::And | BinOp::Or | BinOp::Implies => unreachable!(),
            }
        }
    }
}

fn sets_normal(v: Value) -> Value {
    match v {
        Value::SetLoc(mut s) => {
            s.sort_unstable();
            s.dedup();
            Value::SetLoc(s)
        }
        Value::SetInt(mut s) => {
            s.sort_unstable();
            s.dedup();
            Value::SetInt(s)
        }
        other => other,
    }
}

fn set_op(op: BinOp, a: Value, b: Value) -> Value {
    fn combine<T: Ord + Copy>(op: BinOp, mut a: Vec<T>, b: Vec<T>) -> Vec<T> {
        match op {
            BinOp::Union => {
                a.extend(b);
            }
            BinOp::Inter => a.retain(|x| b.contains(x)),
            BinOp::Diff => a.retain(|x| !b.contains(x)),
            _ => unreachable!(),
        }
        a.sort_unstable();
        a.dedup();
        a
    }
    match (a, b) {
        (Value::SetLoc(a), Value::SetLoc(b)) => Value::SetLoc(combine(op, a, b)),
        (Value::SetInt(a), Value::SetInt(b)) => Value::SetInt(combine(op, a, b)),
        (Value::SetLoc(a), Value::SetInt(b)) if a.is_empty() => {
            Value::SetInt(combine(op, Vec::new(), b))
        }
        (Value::SetInt(a), Value::SetLoc(b)) if b.is_empty() => {
            Value::SetInt(combine(op, a, Vec::new()))
        }
        (a, b) => panic!("bad set operation on {:?} / {:?}", a, b),
    }
}

/// Checks a local condition (an expression over the free variable `x`) on a
/// single object of the heap.
pub fn check_local_condition(heap: &Heap, lc: &Expr, obj: usize) -> bool {
    let mut env = BTreeMap::new();
    env.insert("x".to_string(), Value::Loc(Some(obj)));
    eval_expr(heap, &env, lc).as_bool()
}

/// Checks the local condition on every object; returns the (possibly empty)
/// set of broken objects — the runtime analogue of the broken set `Br`.
pub fn broken_objects(heap: &Heap, lc: &Expr) -> Vec<usize> {
    heap.objects()
        .filter(|&o| !check_local_condition(heap, lc, o))
        .collect()
}

/// Builds a well-formed singly linked list (with `next`, `key`, `prev`,
/// `length` fields) carrying the given keys; returns the heap and the head.
pub fn build_list(keys: &[i64]) -> (Heap, Option<usize>) {
    let fields: &[(&str, Type)] = &[
        ("next", Type::Loc),
        ("key", Type::Int),
        ("prev", Type::Loc),
        ("length", Type::Int),
    ];
    let mut heap = Heap::new();
    let ids: Vec<usize> = keys.iter().map(|_| heap.alloc(fields)).collect();
    let n = ids.len();
    for (i, (&id, &k)) in ids.iter().zip(keys.iter()).enumerate() {
        heap.set(id, "key", Value::Int(k));
        heap.set(id, "length", Value::Int((n - i) as i64));
        heap.set(
            id,
            "next",
            Value::Loc(if i + 1 < n { Some(ids[i + 1]) } else { None }),
        );
        heap.set(
            id,
            "prev",
            Value::Loc(if i > 0 { Some(ids[i - 1]) } else { None }),
        );
    }
    (heap, ids.first().copied())
}

/// The classical recursive definition of "the objects reachable from `head`
/// by `next` form an acyclic list" — used as ground truth in property tests.
pub fn is_acyclic_list(heap: &Heap, head: Option<usize>) -> bool {
    let mut seen = Vec::new();
    let mut cur = head;
    while let Some(o) = cur {
        if seen.contains(&o) {
            return false;
        }
        seen.push(o);
        cur = heap.get(o, "next").as_loc();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_ivl::parse_expr;
    use proptest::prelude::*;

    fn list_lc() -> Expr {
        parse_expr(
            "(x.next != nil ==> x.next.prev == x && x.length == x.next.length + 1) \
             && (x.prev != nil ==> x.prev.next == x) \
             && (x.next == nil ==> x.length == 1) \
             && x.length >= 1",
        )
        .unwrap()
    }

    #[test]
    fn well_formed_list_satisfies_lc_everywhere() {
        let (heap, _head) = build_list(&[3, 1, 4, 1, 5]);
        assert!(broken_objects(&heap, &list_lc()).is_empty());
    }

    #[test]
    fn corrupting_a_pointer_breaks_the_lc_locally() {
        let (mut heap, head) = build_list(&[1, 2, 3, 4]);
        let head = head.unwrap();
        // Make the list merge back onto its head: prev-inverse breaks.
        let third = heap
            .get(heap.get(head, "next").as_loc().unwrap(), "next")
            .as_loc()
            .unwrap();
        heap.set(third, "next", Value::Loc(Some(head)));
        let broken = broken_objects(&heap, &list_lc());
        assert!(!broken.is_empty());
        assert!(broken.contains(&third));
    }

    #[test]
    fn evaluator_handles_sets() {
        let mut heap = Heap::new();
        let o = heap.alloc(&[("keys", Type::SetInt)]);
        heap.set(o, "keys", Value::SetInt(vec![1, 2, 3]));
        let mut env = BTreeMap::new();
        env.insert("x".into(), Value::Loc(Some(o)));
        let e = parse_expr("2 in x.keys && !(5 in x.keys)").unwrap();
        assert_eq!(eval_expr(&heap, &env, &e), Value::Bool(true));
        let e = parse_expr("union(x.keys, {5}) == union({5}, x.keys)").unwrap();
        assert_eq!(eval_expr(&heap, &env, &e), Value::Bool(true));
    }

    proptest! {
        /// On arbitrary generated key sequences, the intrinsically defined
        /// characterisation (local conditions hold everywhere) agrees with the
        /// classical recursive definition of an acyclic list.
        #[test]
        fn intrinsic_and_recursive_definitions_agree(keys in proptest::collection::vec(-50i64..50, 1..12)) {
            let (heap, head) = build_list(&keys);
            prop_assert!(broken_objects(&heap, &list_lc()).is_empty());
            prop_assert!(is_acyclic_list(&heap, head));
        }

        /// Randomly corrupting a next pointer to point at the head either
        /// leaves the list intact (when it rewires the last node's nil... it
        /// cannot) or is caught by the local conditions — the runtime checker
        /// never misses a cycle.
        #[test]
        fn corruption_is_always_caught(keys in proptest::collection::vec(-50i64..50, 2..10), idx in 0usize..9) {
            let (mut heap, head) = build_list(&keys);
            let head = head.unwrap();
            let victim = idx.min(keys.len() - 1);
            heap.set(victim, "next", Value::Loc(Some(head)));
            let now_acyclic = is_acyclic_list(&heap, Some(head));
            let lc_ok = broken_objects(&heap, &list_lc()).is_empty();
            // If the heap is no longer an acyclic well-formed list, the local
            // conditions must flag it.
            if !now_acyclic {
                prop_assert!(!lc_ok);
            }
        }

        /// The expression evaluator's set algebra is idempotent/commutative.
        #[test]
        fn set_algebra_properties(a in proptest::collection::vec(0i64..20, 0..8),
                                  b in proptest::collection::vec(0i64..20, 0..8)) {
            let mut heap = Heap::new();
            let o = heap.alloc(&[("s1", Type::SetInt), ("s2", Type::SetInt)]);
            heap.set(o, "s1", Value::SetInt(a));
            heap.set(o, "s2", Value::SetInt(b));
            let mut env = BTreeMap::new();
            env.insert("x".into(), Value::Loc(Some(o)));
            let comm = parse_expr("union(x.s1, x.s2) == union(x.s2, x.s1)").unwrap();
            prop_assert_eq!(eval_expr(&heap, &env, &comm), Value::Bool(true));
            let absorb = parse_expr("inter(x.s1, union(x.s1, x.s2)) == x.s1").unwrap();
            prop_assert_eq!(eval_expr(&heap, &env, &absorb), Value::Bool(true));
            let de_morgan = parse_expr(
                "diff(x.s1, inter(x.s1, x.s2)) == diff(x.s1, x.s2)").unwrap();
            prop_assert_eq!(eval_expr(&heap, &env, &de_morgan), Value::Bool(true));
        }
    }
}
