//! Expansion of the fix-what-you-break macro statements and of local-condition
//! applications.
//!
//! The verification engineer writes benchmark methods against four macro
//! statements (§4.1 of the paper); this module turns them into plain IVL so
//! that `ids-vcgen` can generate verification conditions:
//!
//! * `Mut(x, f, v)` — adds the impact set of `f` at `x` to the broken set(s),
//!   then performs `x.f := v`. Impact terms are evaluated in the pre-mutation
//!   state (the broken-set updates are emitted *before* the store, which is
//!   equivalent because the broken set does not live in the heap) and are
//!   added only when non-nil.
//! * `NewObj(x)` — `x := new();` followed by adding `x` to the broken set(s).
//! * `AssertLCAndRemove(x)` — if `x != nil`: assert `LC(x)` and remove `x`
//!   from the broken set. (`AssertLCAndRemove2` uses `LC2`/`Br2`.)
//! * `InferLCOutsideBr(x)` — assert `x != nil && !(x in Br)`, then assume
//!   `LC(x)`. (`InferLCOutsideBr2` uses `LC2`/`Br2`.)
//!
//! In addition, applications `LC(e)`, `LC2(e)` and `Phi(e, …)` occurring in
//! contracts, invariants, asserts and assumes are replaced by the instantiated
//! local condition / correlation formula of the active intrinsic definition.

use ids_ivl::{BinOp, Block, Expr, Lhs, Procedure, Program, Stmt, Type};

use crate::ids::IntrinsicDefinition;

/// Errors during macro expansion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExpandError {
    /// A macro was called with the wrong shape of arguments.
    BadMacro(String),
    /// An unknown macro statement was encountered.
    UnknownMacro(String),
    /// `LC2`/`Br2` was used but the definition has no secondary condition.
    NoSecondary(String),
}

impl std::fmt::Display for ExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpandError::BadMacro(m) => write!(f, "malformed macro use: {}", m),
            ExpandError::UnknownMacro(m) => write!(f, "unknown macro '{}'", m),
            ExpandError::NoSecondary(m) => {
                write!(f, "'{}' used without a secondary local condition", m)
            }
        }
    }
}

impl std::error::Error for ExpandError {}

/// Expands every procedure of the program against the intrinsic definition,
/// returning a macro-free program (prelude fields merged in).
pub fn expand_program(
    ids: &IntrinsicDefinition,
    methods: &Program,
) -> Result<Program, ExpandError> {
    let mut out = ids.prelude();
    // Keep any extra fields the method file declares (rare, but allowed).
    for f in &methods.fields {
        if out.field(&f.name).is_none() {
            out.fields.push(f.clone());
        }
    }
    for proc in &methods.procedures {
        out.procedures.push(expand_procedure(ids, proc)?);
    }
    Ok(out)
}

/// Expands one procedure.
pub fn expand_procedure(
    ids: &IntrinsicDefinition,
    proc: &Procedure,
) -> Result<Procedure, ExpandError> {
    let mut p = proc.clone();
    p.requires = p.requires.iter().map(|e| expand_expr(ids, e)).collect();
    p.ensures = p.ensures.iter().map(|e| expand_expr(ids, e)).collect();
    p.modifies = p.modifies.as_ref().map(|e| expand_expr(ids, e));
    p.body = match &p.body {
        Some(b) => Some(expand_block(ids, b)?),
        None => None,
    };
    Ok(p)
}

fn expand_block(ids: &IntrinsicDefinition, block: &Block) -> Result<Block, ExpandError> {
    let mut stmts = Vec::new();
    for s in &block.stmts {
        stmts.extend(expand_stmt(ids, s)?);
    }
    Ok(Block { stmts })
}

/// Expands `LC(e)`, `LC2(e)` and `Phi(e, …)` applications inside an expression.
pub fn expand_expr(ids: &IntrinsicDefinition, e: &Expr) -> Expr {
    match e {
        Expr::App(name, args) if name == "LC" && args.len() == 1 => {
            let target = expand_expr(ids, &args[0]);
            ids.lc_at(&target)
        }
        Expr::App(name, args) if name == "LC2" && args.len() == 1 => {
            let target = expand_expr(ids, &args[0]);
            ids.lc2_at(&target).unwrap_or(Expr::BoolLit(true))
        }
        Expr::App(name, args) if name == "Phi" => {
            let targets: Vec<Expr> = args.iter().map(|a| expand_expr(ids, a)).collect();
            ids.correlation_at(&targets)
        }
        Expr::Field(obj, f) => Expr::Field(Box::new(expand_expr(ids, obj)), f.clone()),
        Expr::Old(inner) => Expr::Old(Box::new(expand_expr(ids, inner))),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(expand_expr(ids, inner))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(expand_expr(ids, a)),
            Box::new(expand_expr(ids, b)),
        ),
        Expr::Ite(c, t, f) => Expr::Ite(
            Box::new(expand_expr(ids, c)),
            Box::new(expand_expr(ids, t)),
            Box::new(expand_expr(ids, f)),
        ),
        Expr::Singleton(inner) => Expr::Singleton(Box::new(expand_expr(ids, inner))),
        Expr::App(name, args) => Expr::App(
            name.clone(),
            args.iter().map(|a| expand_expr(ids, a)).collect(),
        ),
        _ => e.clone(),
    }
}

/// Strips `old(..)` markers from impact-set terms: the broken-set update is
/// emitted before the mutation, so pre-state values are read directly.
fn strip_old(e: &Expr) -> Expr {
    match e {
        Expr::Old(inner) => strip_old(inner),
        Expr::Field(obj, f) => Expr::Field(Box::new(strip_old(obj)), f.clone()),
        Expr::Binary(op, a, b) => Expr::Binary(*op, Box::new(strip_old(a)), Box::new(strip_old(b))),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(strip_old(a))),
        _ => e.clone(),
    }
}

/// `Br := union(Br, ite(t == nil, {}, {t}))` for one impact term.
fn add_to_broken(br: &str, term: &Expr) -> Stmt {
    let guarded = Expr::Ite(
        Box::new(Expr::bin(BinOp::Eq, term.clone(), Expr::Nil)),
        Box::new(Expr::EmptySet(Type::SetLoc)),
        Box::new(Expr::Singleton(Box::new(term.clone()))),
    );
    Stmt::Assign {
        lhs: Lhs::Var(br.to_string()),
        rhs: Expr::bin(BinOp::Union, Expr::var(br), guarded),
    }
}

/// `Br := diff(Br, {t})`.
fn remove_from_broken(br: &str, term: &Expr) -> Stmt {
    Stmt::Assign {
        lhs: Lhs::Var(br.to_string()),
        rhs: Expr::bin(
            BinOp::Diff,
            Expr::var(br),
            Expr::Singleton(Box::new(term.clone())),
        ),
    }
}

fn expand_stmt(ids: &IntrinsicDefinition, stmt: &Stmt) -> Result<Vec<Stmt>, ExpandError> {
    match stmt {
        Stmt::Macro { name, args } => expand_macro(ids, name, args),
        Stmt::Assert(e) => Ok(vec![Stmt::Assert(expand_expr(ids, e))]),
        Stmt::Assume(e) => Ok(vec![Stmt::Assume(expand_expr(ids, e))]),
        Stmt::Assign { lhs, rhs } => Ok(vec![Stmt::Assign {
            lhs: lhs.clone(),
            rhs: expand_expr(ids, rhs),
        }]),
        Stmt::VarDecl {
            name,
            ty,
            ghost,
            init,
        } => Ok(vec![Stmt::VarDecl {
            name: name.clone(),
            ty: *ty,
            ghost: *ghost,
            init: init.as_ref().map(|e| expand_expr(ids, e)),
        }]),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Ok(vec![Stmt::If {
            cond: expand_expr(ids, cond),
            then_branch: expand_block(ids, then_branch)?,
            else_branch: expand_block(ids, else_branch)?,
        }]),
        Stmt::While {
            cond,
            invariants,
            decreases,
            body,
        } => Ok(vec![Stmt::While {
            cond: expand_expr(ids, cond),
            invariants: invariants.iter().map(|e| expand_expr(ids, e)).collect(),
            decreases: decreases.as_ref().map(|e| expand_expr(ids, e)),
            body: expand_block(ids, body)?,
        }]),
        Stmt::Call { lhs, proc, args } => Ok(vec![Stmt::Call {
            lhs: lhs.clone(),
            proc: proc.clone(),
            args: args.iter().map(|e| expand_expr(ids, e)).collect(),
        }]),
        other => Ok(vec![other.clone()]),
    }
}

fn expand_macro(
    ids: &IntrinsicDefinition,
    name: &str,
    args: &[Expr],
) -> Result<Vec<Stmt>, ExpandError> {
    match name {
        "Mut" => {
            if args.len() != 3 {
                return Err(ExpandError::BadMacro("Mut(object, field, value)".into()));
            }
            let obj = expand_expr(ids, &args[0]);
            let obj_var = match &obj {
                Expr::Var(v) => v.clone(),
                _ => {
                    return Err(ExpandError::BadMacro(
                        "Mut target must be a variable".into(),
                    ))
                }
            };
            let field = match &args[1] {
                Expr::Var(f) => f.clone(),
                _ => {
                    return Err(ExpandError::BadMacro(
                        "Mut field must be a field name".into(),
                    ))
                }
            };
            let value = expand_expr(ids, &args[2]);
            let mut stmts = Vec::new();
            for term in ids.impact_at(&field, &obj) {
                stmts.push(add_to_broken("Br", &strip_old(&term)));
            }
            if ids.secondary.is_some() {
                for term in ids.impact2_at(&field, &obj) {
                    stmts.push(add_to_broken("Br2", &strip_old(&term)));
                }
            }
            stmts.push(Stmt::Assign {
                lhs: Lhs::Field(obj_var, field),
                rhs: value,
            });
            Ok(stmts)
        }
        "NewObj" => {
            if args.len() != 1 {
                return Err(ExpandError::BadMacro("NewObj(variable)".into()));
            }
            let var = match &args[0] {
                Expr::Var(v) => v.clone(),
                _ => {
                    return Err(ExpandError::BadMacro(
                        "NewObj target must be a variable".into(),
                    ))
                }
            };
            let mut stmts = vec![Stmt::Alloc { lhs: var.clone() }];
            stmts.push(add_to_broken("Br", &Expr::var(&var)));
            if ids.secondary.is_some() {
                stmts.push(add_to_broken("Br2", &Expr::var(&var)));
            }
            Ok(stmts)
        }
        "AssertLCAndRemove" | "AssertLCAndRemove2" => {
            if args.len() != 1 {
                return Err(ExpandError::BadMacro(format!("{}(object)", name)));
            }
            let secondary = name.ends_with('2');
            let target = expand_expr(ids, &args[0]);
            let lc = if secondary {
                ids.lc2_at(&target)
                    .ok_or_else(|| ExpandError::NoSecondary(name.to_string()))?
            } else {
                ids.lc_at(&target)
            };
            let br = if secondary { "Br2" } else { "Br" };
            let body = Block {
                stmts: vec![Stmt::Assert(lc), remove_from_broken(br, &target)],
            };
            Ok(vec![Stmt::If {
                cond: Expr::bin(BinOp::Ne, target, Expr::Nil),
                then_branch: body,
                else_branch: Block::default(),
            }])
        }
        "InferLCOutsideBr" | "InferLCOutsideBr2" => {
            if args.len() != 1 {
                return Err(ExpandError::BadMacro(format!("{}(object)", name)));
            }
            let secondary = name.ends_with('2');
            let target = expand_expr(ids, &args[0]);
            let lc = if secondary {
                ids.lc2_at(&target)
                    .ok_or_else(|| ExpandError::NoSecondary(name.to_string()))?
            } else {
                ids.lc_at(&target)
            };
            let br = if secondary { "Br2" } else { "Br" };
            let not_nil = Expr::bin(BinOp::Ne, target.clone(), Expr::Nil);
            let not_in_br = Expr::Unary(
                ids_ivl::UnOp::Not,
                Box::new(Expr::bin(BinOp::Member, target, Expr::var(br))),
            );
            Ok(vec![
                Stmt::Assert(Expr::bin(BinOp::And, not_nil, not_in_br)),
                Stmt::Assume(lc),
            ])
        }
        other => Err(ExpandError::UnknownMacro(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_ivl::parse_program;

    fn simple_ids() -> IntrinsicDefinition {
        IntrinsicDefinition::parse(
            "list",
            "field next: Loc;\nfield ghost length: Int;",
            "x.next != nil ==> x.length == x.next.length + 1",
            "y",
            "true",
            &[("next", &["x", "old(x.next)"]), ("length", &["x"])],
        )
        .unwrap()
    }

    #[test]
    fn mut_expands_to_broken_set_updates() {
        let ids = simple_ids();
        let program = parse_program(
            r#"
            procedure m(a: Loc, b: Loc) {
              Mut(a, next, b);
            }
            "#,
        )
        .unwrap();
        let expanded = expand_program(&ids, &program).unwrap();
        let body = expanded.procedure("m").unwrap().body.clone().unwrap();
        // Two impact terms + the store itself.
        assert_eq!(body.stmts.len(), 3);
        assert!(
            matches!(&body.stmts[2], Stmt::Assign { lhs: Lhs::Field(o, f), .. } if o == "a" && f == "next")
        );
        // No macros remain.
        assert!(!format!("{:?}", body).contains("Macro"));
    }

    #[test]
    fn lc_applications_are_substituted() {
        let ids = simple_ids();
        let program = parse_program(
            r#"
            procedure m(a: Loc)
              requires LC(a);
              ensures LC(a.next);
            {
              assert LC(a);
            }
            "#,
        )
        .unwrap();
        let expanded = expand_program(&ids, &program).unwrap();
        let proc = expanded.procedure("m").unwrap();
        let req = ids_ivl::printer::expr_to_string(&proc.requires[0]);
        assert!(req.contains("a.length"));
        let ens = ids_ivl::printer::expr_to_string(&proc.ensures[0]);
        assert!(ens.contains("a.next.length"));
    }

    #[test]
    fn assert_lc_and_remove_is_nil_guarded() {
        let ids = simple_ids();
        let program = parse_program(
            r#"
            procedure m(a: Loc) {
              AssertLCAndRemove(a);
            }
            "#,
        )
        .unwrap();
        let expanded = expand_program(&ids, &program).unwrap();
        let body = expanded.procedure("m").unwrap().body.clone().unwrap();
        assert!(matches!(&body.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn unknown_macro_is_rejected() {
        let ids = simple_ids();
        let program = parse_program("procedure m(a: Loc) { Frobnicate(a); }").unwrap();
        assert!(matches!(
            expand_program(&ids, &program),
            Err(ExpandError::UnknownMacro(_))
        ));
    }

    #[test]
    fn secondary_macros_require_secondary_condition() {
        let ids = simple_ids();
        let program = parse_program("procedure m(a: Loc) { AssertLCAndRemove2(a); }").unwrap();
        assert!(matches!(
            expand_program(&ids, &program),
            Err(ExpandError::NoSecondary(_))
        ));
    }
}
