//! The syntactic discipline of well-behaved programs (Fig. 2 of the paper).
//!
//! A benchmark method is *well-behaved* when every heap mutation, allocation
//! and broken-set manipulation goes through the FWYB macros, and control flow
//! never depends on the broken set. The soundness theorem (Theorem 3.8) only
//! applies to well-behaved programs, so the pipeline checks the discipline
//! before expanding macros and reports violations.

use ids_ivl::{Block, Expr, Lhs, Procedure, Program, Stmt};

/// A violation of the well-behavedness discipline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The procedure in which the violation occurs.
    pub procedure: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.procedure, self.message)
    }
}

/// Checks every procedure of a (pre-expansion) program.
pub fn check_program(program: &Program) -> Vec<Violation> {
    let mut out = Vec::new();
    for proc in &program.procedures {
        out.extend(check_procedure(proc));
    }
    out
}

/// Checks one procedure for well-behavedness.
pub fn check_procedure(proc: &Procedure) -> Vec<Violation> {
    let mut v = Vec::new();
    if let Some(body) = &proc.body {
        check_block(proc, body, &mut v);
    }
    v
}

fn violation(proc: &Procedure, message: impl Into<String>) -> Violation {
    Violation {
        procedure: proc.name.clone(),
        message: message.into(),
    }
}

fn mentions_broken_set(e: &Expr) -> bool {
    match e {
        Expr::Var(v) => v == "Br" || v == "Br2",
        Expr::Field(obj, _) => mentions_broken_set(obj),
        Expr::Old(i) | Expr::Unary(_, i) | Expr::Singleton(i) => mentions_broken_set(i),
        Expr::Binary(_, a, b) => mentions_broken_set(a) || mentions_broken_set(b),
        Expr::Ite(c, t, f) => {
            mentions_broken_set(c) || mentions_broken_set(t) || mentions_broken_set(f)
        }
        Expr::App(_, args) => args.iter().any(mentions_broken_set),
        _ => false,
    }
}

fn check_block(proc: &Procedure, block: &Block, out: &mut Vec<Violation>) {
    for s in &block.stmts {
        match s {
            Stmt::Assign { lhs, .. } => match lhs {
                Lhs::Field(_, field) => out.push(violation(
                    proc,
                    format!(
                        "raw field mutation of '{}' — use Mut(obj, {}, value)",
                        field, field
                    ),
                )),
                Lhs::Var(v) if v == "Br" || v == "Br2" => out.push(violation(
                    proc,
                    "direct manipulation of the broken set — use the FWYB macros",
                )),
                _ => {}
            },
            Stmt::Alloc { .. } => out.push(violation(
                proc,
                "raw allocation — use NewObj(variable) so the fresh object joins the broken set",
            )),
            Stmt::Havoc { name } if name == "Br" || name == "Br2" => out.push(violation(
                proc,
                "havoc of the broken set is not well-behaved",
            )),
            Stmt::Assume(_) => out.push(violation(
                proc,
                "raw assume — local conditions may only be assumed through InferLCOutsideBr",
            )),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if mentions_broken_set(cond) {
                    out.push(violation(proc, "branch condition mentions the broken set"));
                }
                check_block(proc, then_branch, out);
                check_block(proc, else_branch, out);
            }
            Stmt::While { cond, body, .. } => {
                if mentions_broken_set(cond) {
                    out.push(violation(proc, "loop condition mentions the broken set"));
                }
                check_block(proc, body, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_ivl::parse_program;

    #[test]
    fn macro_based_program_is_well_behaved() {
        let p = parse_program(
            r#"
            field next: Loc;
            procedure ok(x: Loc, y: Loc)
              requires Br == {};
              ensures Br == {};
            {
              InferLCOutsideBr(x);
              Mut(x, next, y);
              AssertLCAndRemove(x);
            }
            "#,
        )
        .unwrap();
        assert!(check_program(&p).is_empty());
    }

    #[test]
    fn raw_mutation_is_flagged() {
        let p = parse_program(
            r#"
            field next: Loc;
            procedure bad(x: Loc, y: Loc) {
              x.next := y;
            }
            "#,
        )
        .unwrap();
        let v = check_program(&p);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("raw field mutation"));
    }

    #[test]
    fn raw_allocation_and_br_manipulation_flagged() {
        let p = parse_program(
            r#"
            field next: Loc;
            procedure bad(x: Loc) {
              var z: Loc;
              z := new();
              Br := {};
            }
            "#,
        )
        .unwrap();
        let v = check_program(&p);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn control_flow_on_broken_set_flagged() {
        let p = parse_program(
            r#"
            field next: Loc;
            procedure bad(x: Loc) {
              if (x in Br) {
                x := x;
              }
            }
            "#,
        )
        .unwrap();
        let v = check_program(&p);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("branch condition"));
    }

    #[test]
    fn raw_assume_flagged() {
        let p = parse_program(
            r#"
            field next: Loc;
            procedure bad(x: Loc) {
              assume x != nil;
            }
            "#,
        )
        .unwrap();
        assert_eq!(check_program(&p).len(), 1);
    }
}
