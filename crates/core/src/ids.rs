//! Intrinsic definitions of data structures (Definition 2.4 of the paper).
//!
//! An intrinsic definition consists of ghost *monadic maps* `G` (unary maps
//! from locations to values — ghost fields), a quantifier-free *local
//! condition* `LC(x)` constraining a location and its one-hop neighbours, a
//! *correlation formula* `φ(y)` characterising the entry points of the data
//! structure, and, for the FWYB methodology, a declared *impact set* per
//! mutable field: the locations whose local condition may be broken when that
//! field of `x` is mutated.
//!
//! Definitions are written with the IVL expression syntax over a
//! distinguished free variable `x` (for `LC`) / the declared parameters (for
//! `φ`); field reads like `x.next.length` play the role of the monadic map
//! applications of the paper.

use std::collections::BTreeMap;

use ids_ivl::{parse_expr, parse_program, BinOp, Expr, FieldDecl, ParseError, Program};

/// An intrinsic definition `(G, LC, φ)` plus the FWYB impact-set table.
#[derive(Clone, Debug)]
pub struct IntrinsicDefinition {
    /// Name of the data structure (e.g. `"sorted-list"`).
    pub name: String,
    /// All field declarations: user fields `F` and ghost monadic maps `G`.
    pub fields: Vec<FieldDecl>,
    /// The local condition `LC(x)`, a quantifier-free formula over the free
    /// variable `x`.
    pub local_condition: Expr,
    /// Parameters of the correlation formula (usually one entry point).
    pub correlation_params: Vec<String>,
    /// The correlation formula `φ` over [`Self::correlation_params`].
    pub correlation: Expr,
    /// Impact sets: for each field name, the location terms (over `x`) whose
    /// local condition may be broken by mutating that field of `x`. Terms are
    /// included only when non-nil (the `Mut` expansion guards them).
    pub impact_sets: BTreeMap<String, Vec<Expr>>,
    /// Optional second local condition and impact table, used for overlaid
    /// structures verified with two broken sets (`Br2`).
    pub secondary: Option<SecondaryCondition>,
}

/// A second local condition with its own broken set (`Br2`) and impact table,
/// used for overlaid data structures (§4.4).
#[derive(Clone, Debug)]
pub struct SecondaryCondition {
    /// The second local condition `LC2(x)`.
    pub local_condition: Expr,
    /// Impact sets for the second condition.
    pub impact_sets: BTreeMap<String, Vec<Expr>>,
}

/// Errors building an intrinsic definition.
#[derive(Clone, Debug)]
pub enum IdsError {
    /// A sub-expression failed to parse.
    Parse(ParseError),
    /// The declared fields failed to parse or are inconsistent.
    Fields(String),
}

impl std::fmt::Display for IdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdsError::Parse(e) => write!(f, "{}", e),
            IdsError::Fields(m) => write!(f, "field declaration error: {}", m),
        }
    }
}

impl std::error::Error for IdsError {}

impl From<ParseError> for IdsError {
    fn from(e: ParseError) -> Self {
        IdsError::Parse(e)
    }
}

impl IntrinsicDefinition {
    /// Builds an intrinsic definition from surface-syntax fragments.
    ///
    /// * `fields_src` — a sequence of `field …;` declarations (user and ghost),
    /// * `local_condition` — `LC(x)` over the free variable `x`,
    /// * `correlation_param` — the entry-point variable of `φ`,
    /// * `correlation` — `φ` over that variable,
    /// * `impact` — per-field impact sets, each a list of location expressions
    ///   over `x`.
    pub fn parse(
        name: &str,
        fields_src: &str,
        local_condition: &str,
        correlation_param: &str,
        correlation: &str,
        impact: &[(&str, &[&str])],
    ) -> Result<IntrinsicDefinition, IdsError> {
        let fields_program: Program = parse_program(fields_src)?;
        if fields_program.fields.is_empty() {
            return Err(IdsError::Fields("no fields declared".into()));
        }
        let lc = parse_expr(local_condition)?;
        let corr = parse_expr(correlation)?;
        let mut impact_sets = BTreeMap::new();
        for (field, terms) in impact {
            let mut exprs = Vec::new();
            for t in *terms {
                exprs.push(parse_expr(t)?);
            }
            impact_sets.insert(field.to_string(), exprs);
        }
        for field in impact_sets.keys() {
            if fields_program.field(field).is_none() {
                return Err(IdsError::Fields(format!(
                    "impact set declared for unknown field '{}'",
                    field
                )));
            }
        }
        Ok(IntrinsicDefinition {
            name: name.to_string(),
            fields: fields_program.fields,
            local_condition: lc,
            correlation_params: vec![correlation_param.to_string()],
            correlation: corr,
            impact_sets,
            secondary: None,
        })
    }

    /// Attaches a second local condition / impact table (overlaid structures).
    pub fn with_secondary(
        mut self,
        local_condition: &str,
        impact: &[(&str, &[&str])],
    ) -> Result<IntrinsicDefinition, IdsError> {
        let lc = parse_expr(local_condition)?;
        let mut impact_sets = BTreeMap::new();
        for (field, terms) in impact {
            let mut exprs = Vec::new();
            for t in *terms {
                exprs.push(parse_expr(t)?);
            }
            impact_sets.insert(field.to_string(), exprs);
        }
        self.secondary = Some(SecondaryCondition {
            local_condition: lc,
            impact_sets,
        });
        Ok(self)
    }

    /// The ghost monadic maps `G`.
    pub fn ghost_maps(&self) -> impl Iterator<Item = &FieldDecl> {
        self.fields.iter().filter(|f| f.ghost)
    }

    /// The user fields `F`.
    pub fn user_fields(&self) -> impl Iterator<Item = &FieldDecl> {
        self.fields.iter().filter(|f| !f.ghost)
    }

    /// A program containing only the field declarations, used as the prelude
    /// that benchmark method files are merged into.
    pub fn prelude(&self) -> Program {
        Program {
            fields: self.fields.clone(),
            procedures: Vec::new(),
        }
    }

    /// The local condition instantiated at the given expression: `LC(target)`.
    pub fn lc_at(&self, target: &Expr) -> Expr {
        substitute_var(&self.local_condition, "x", target)
    }

    /// The secondary local condition instantiated at the given expression.
    pub fn lc2_at(&self, target: &Expr) -> Option<Expr> {
        self.secondary
            .as_ref()
            .map(|s| substitute_var(&s.local_condition, "x", target))
    }

    /// The correlation formula instantiated at the given entry points.
    pub fn correlation_at(&self, targets: &[Expr]) -> Expr {
        let mut e = self.correlation.clone();
        for (param, target) in self.correlation_params.iter().zip(targets.iter()) {
            e = substitute_var(&e, param, target);
        }
        e
    }

    /// The number of conjuncts of the local condition (the "LC size" column of
    /// Table 2). Conjunctions are counted recursively through `&&` and the
    /// right-hand sides of implications.
    pub fn lc_size(&self) -> usize {
        fn count(e: &Expr) -> usize {
            match e {
                Expr::Binary(BinOp::And, a, b) => count(a) + count(b),
                Expr::Binary(BinOp::Implies, _, b) => count(b),
                _ => 1,
            }
        }
        let primary = count(&self.local_condition);
        let secondary = self
            .secondary
            .as_ref()
            .map(|s| count(&s.local_condition))
            .unwrap_or(0);
        primary + secondary
    }

    /// The impact set of a field for the primary condition, instantiated at
    /// the mutated object.
    pub fn impact_at(&self, field: &str, target: &Expr) -> Vec<Expr> {
        self.impact_sets
            .get(field)
            .map(|terms| {
                terms
                    .iter()
                    .map(|t| substitute_var(t, "x", target))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The impact set of a field for the secondary condition, instantiated at
    /// the mutated object.
    pub fn impact2_at(&self, field: &str, target: &Expr) -> Vec<Expr> {
        self.secondary
            .as_ref()
            .and_then(|s| s.impact_sets.get(field))
            .map(|terms| {
                terms
                    .iter()
                    .map(|t| substitute_var(t, "x", target))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Substitutes every free occurrence of the variable `name` in `e` by
/// `replacement`.
pub fn substitute_var(e: &Expr, name: &str, replacement: &Expr) -> Expr {
    match e {
        Expr::Var(v) if v == name => replacement.clone(),
        Expr::BoolLit(_)
        | Expr::IntLit(_)
        | Expr::RealLit(_, _)
        | Expr::Nil
        | Expr::EmptySet(_)
        | Expr::Var(_) => e.clone(),
        Expr::Field(obj, f) => {
            Expr::Field(Box::new(substitute_var(obj, name, replacement)), f.clone())
        }
        Expr::Old(inner) => Expr::Old(Box::new(substitute_var(inner, name, replacement))),
        Expr::Unary(op, inner) => {
            Expr::Unary(*op, Box::new(substitute_var(inner, name, replacement)))
        }
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(substitute_var(a, name, replacement)),
            Box::new(substitute_var(b, name, replacement)),
        ),
        Expr::Ite(c, t, f) => Expr::Ite(
            Box::new(substitute_var(c, name, replacement)),
            Box::new(substitute_var(t, name, replacement)),
            Box::new(substitute_var(f, name, replacement)),
        ),
        Expr::Singleton(inner) => {
            Expr::Singleton(Box::new(substitute_var(inner, name, replacement)))
        }
        Expr::App(f, args) => Expr::App(
            f.clone(),
            args.iter()
                .map(|a| substitute_var(a, name, replacement))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_list_lite() -> IntrinsicDefinition {
        IntrinsicDefinition::parse(
            "sorted-list-lite",
            r#"
            field next: Loc;
            field key: Int;
            field ghost prev: Loc;
            field ghost length: Int;
            "#,
            "(x.next != nil ==> x.key <= x.next.key && x.next.prev == x && x.length == x.next.length + 1) \
             && (x.prev != nil ==> x.prev.next == x) \
             && (x.next == nil ==> x.length == 1)",
            "y",
            "y.prev == nil",
            &[
                ("next", &["x", "old(x.next)"]),
                ("key", &["x", "x.prev"]),
                ("prev", &["x", "old(x.prev)"]),
                ("length", &["x", "x.prev"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let ids = sorted_list_lite();
        assert_eq!(ids.ghost_maps().count(), 2);
        assert_eq!(ids.user_fields().count(), 2);
        assert_eq!(ids.lc_size(), 5);
        assert_eq!(ids.impact_sets.len(), 4);
    }

    #[test]
    fn lc_instantiation_substitutes() {
        let ids = sorted_list_lite();
        let at_z = ids.lc_at(&Expr::var("z"));
        let printed = ids_ivl::printer::expr_to_string(&at_z);
        assert!(printed.contains("z.next"));
        assert!(!printed.contains("x.next"));
    }

    #[test]
    fn correlation_instantiation() {
        let ids = sorted_list_lite();
        let phi = ids.correlation_at(&[Expr::var("head")]);
        assert_eq!(ids_ivl::printer::expr_to_string(&phi), "(head.prev == nil)");
    }

    #[test]
    fn impact_sets_instantiate_with_old() {
        let ids = sorted_list_lite();
        let at = ids.impact_at("next", &Expr::var("n"));
        let strs: Vec<String> = at.iter().map(ids_ivl::printer::expr_to_string).collect();
        assert_eq!(strs, vec!["n", "old(n.next)"]);
    }

    #[test]
    fn unknown_impact_field_rejected() {
        let bad = IntrinsicDefinition::parse(
            "bad",
            "field next: Loc;",
            "true",
            "y",
            "true",
            &[("nope", &["x"])],
        );
        assert!(bad.is_err());
    }
}
