//! `ids-core` — intrinsic definitions of data structures and the
//! fix-what-you-break (FWYB) verification methodology.
//!
//! This crate is the reproduction of the paper's primary contribution:
//!
//! * [`ids`] — [`ids::IntrinsicDefinition`]: a set of ghost *monadic maps*, a
//!   quantifier-free *local condition* `LC(x)` over a location and its
//!   neighbours, a *correlation formula* φ(y) characterising entry points, and
//!   a declared *impact set* per field (Table 1 / Tables 3–4 of the paper);
//! * [`impact`] — automatic checking that the declared impact sets are correct
//!   (the Hoare triple of Appendix C), reduced to decidable VCs;
//! * [`fwyb`] — expansion of the well-behaved-programming macro statements
//!   (`Mut`, `NewObj`, `AssertLCAndRemove`, `InferLCOutsideBr`, and their
//!   second-broken-set variants) into mutations plus broken-set updates, and
//!   substitution of `LC(e)` / `Phi(e)` applications in specifications;
//! * [`wellbehaved`] — the syntactic discipline of Fig. 2: raw heap mutation,
//!   allocation, or broken-set manipulation outside the macros is rejected;
//! * [`ghost`] — legality of ghost code (ghost data never flows into user
//!   data) and the projection that erases ghost code (Definition 3.3);
//! * [`pipeline`] — the end-to-end verifier: expand, check, generate VCs with
//!   `ids-vcgen`, discharge them with `ids-smt`, and report per-method
//!   statistics in the shape of Table 2.
//!
//! # Example
//!
//! ```
//! use ids_core::ids::IntrinsicDefinition;
//! use ids_core::pipeline::{verify_method, PipelineConfig};
//!
//! // A miniature intrinsic definition: acyclic singly-linked list segments
//! // witnessed by a strictly decreasing `length` map.
//! let ids = IntrinsicDefinition::parse(
//!     "list",
//!     &["field next: Loc;", "field ghost length: Int;"].join("\n"),
//!     "x.next != nil ==> x.length == x.next.length + 1",
//!     "y",
//!     "true",
//!     &[("next", &["x"]), ("length", &["x"])],
//! ).unwrap();
//!
//! let methods = r#"
//!     procedure set_tail_nil(x: Loc)
//!       requires x != nil && !(x in Br) && Br == {};
//!       ensures Br == {};
//!     {
//!       InferLCOutsideBr(x);
//!       Mut(x, next, nil);
//!       Mut(x, length, 1);
//!       AssertLCAndRemove(x);
//!     }
//! "#;
//! let report = verify_method(&ids, methods, "set_tail_nil", PipelineConfig::default()).unwrap();
//! assert!(report.outcome.is_verified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fwyb;
pub mod ghost;
pub mod ids;
pub mod impact;
pub mod pipeline;
pub mod report;
pub mod wellbehaved;

pub use ids::IntrinsicDefinition;
pub use pipeline::{verify_method, MethodReport, PipelineConfig};
pub use report::Table2Row;
