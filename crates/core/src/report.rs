//! Table-2-shaped reporting of verification results.

use std::fmt::Write as _;
use std::time::Duration;

use crate::pipeline::MethodReport;

/// One row of the reproduction of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Data structure name.
    pub structure: String,
    /// Local-condition size (number of conjuncts).
    pub lc_size: usize,
    /// Method name.
    pub method: String,
    /// Executable lines of code.
    pub loc: usize,
    /// Specification lines.
    pub spec: usize,
    /// Annotation (ghost code) lines.
    pub annotations: usize,
    /// Verification time.
    pub time: Duration,
    /// Whether the method verified.
    pub verified: bool,
    /// Number of VCs discharged.
    pub vcs: usize,
}

impl From<&MethodReport> for Table2Row {
    fn from(r: &MethodReport) -> Self {
        Table2Row {
            structure: r.structure.clone(),
            lc_size: r.lc_size,
            method: r.method.clone(),
            loc: r.loc,
            spec: r.spec,
            annotations: r.annotations,
            time: r.duration,
            verified: r.outcome.is_verified(),
            vcs: r.num_vcs,
        }
    }
}

/// Formats rows as an aligned text table in the layout of the paper's Table 2
/// (data structure, LC size, method, LOC+Spec+Ann, verification time).
pub fn format_table(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>3}  {:<22} {:>4} {:>5} {:>4}  {:>9}  {:>4}  Status",
        "Data Structure", "LC", "Method", "LOC", "Spec", "Ann", "Time(s)", "VCs"
    );
    let _ = writeln!(out, "{}", "-".repeat(100));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>3}  {:<22} {:>4} {:>5} {:>4}  {:>9.3}  {:>4}  {}",
            r.structure,
            r.lc_size,
            r.method,
            r.loc,
            r.spec,
            r.annotations,
            r.time.as_secs_f64(),
            r.vcs,
            if r.verified { "verified" } else { "FAILED" }
        );
    }
    out
}

/// Formats rows as machine-readable CSV.
pub fn format_csv(rows: &[Table2Row]) -> String {
    let mut out =
        String::from("structure,lc_size,method,loc,spec,annotations,time_s,vcs,verified\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.6},{},{}",
            r.structure,
            r.lc_size,
            r.method,
            r.loc,
            r.spec,
            r.annotations,
            r.time.as_secs_f64(),
            r.vcs,
            r.verified
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(structure: &str, method: &str) -> Table2Row {
        Table2Row {
            structure: structure.into(),
            lc_size: 8,
            method: method.into(),
            loc: 4,
            spec: 11,
            annotations: 10,
            time: Duration::from_millis(1234),
            verified: true,
            vcs: 7,
        }
    }

    #[test]
    fn table_formatting_contains_rows() {
        let rows = vec![
            row("Singly-Linked List", "Append"),
            row("Sorted List", "Insert"),
        ];
        let text = format_table(&rows);
        assert!(text.contains("Singly-Linked List"));
        assert!(text.contains("Insert"));
        assert!(text.contains("verified"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = vec![row("AVL Tree", "Balance")];
        let csv = format_csv(&rows);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("structure,"));
        assert!(csv.contains("AVL Tree,8,Balance"));
    }
}
