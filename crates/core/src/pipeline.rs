//! The end-to-end FWYB verification pipeline.
//!
//! ```text
//! IDS definition + annotated methods (surface syntax)
//!   → parse, typecheck
//!   → well-behavedness check (Fig. 2 discipline)
//!   → ghost-code legality check
//!   → macro expansion + LC substitution           (ids-core::fwyb)
//!   → VC generation (decidable or quantified)     (ids-vcgen)
//!   → SMT solving                                 (ids-smt)
//!   → per-method report (Table 2 row shape)
//! ```

use std::time::{Duration, Instant};

use ids_ivl::{ast, parse_program, Procedure, Program};
use ids_smt::{structural_hash, SatResult, SolverProfile, SolverStats, TermId, TermManager};
use ids_vcgen::{check_formula_with, Encoding, StructureVcs, Vc, VcGen, VcSession, VerifyOutcome};

use crate::fwyb::{expand_program, ExpandError};
use crate::ghost::{check_ghost_legality, GhostViolation};
use crate::ids::IntrinsicDefinition;
use crate::wellbehaved::Violation;

/// Pipeline configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineConfig {
    /// VC encoding mode (decidable by default).
    pub encoding: Encoding,
    /// If true (default false), well-behavedness violations abort verification
    /// instead of only being reported.
    pub strict_wellbehaved: bool,
    /// Solver heuristics profile. Never affects verdicts or VC cache keys —
    /// only how fast the solver reaches them.
    pub profile: SolverProfile,
}

/// Errors of the pipeline (before verification even starts).
#[derive(Debug)]
pub enum PipelineError {
    /// Method file failed to parse.
    Parse(ids_ivl::ParseError),
    /// Method file failed to typecheck against the definition's fields.
    Type(ids_ivl::TypeError),
    /// Macro expansion failed.
    Expand(ExpandError),
    /// VC generation failed.
    Vc(ids_vcgen::VcError),
    /// Strict mode: the program is not well-behaved.
    NotWellBehaved(Vec<Violation>),
    /// The requested method does not exist.
    NoSuchMethod(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{}", e),
            PipelineError::Type(e) => write!(f, "{}", e),
            PipelineError::Expand(e) => write!(f, "{}", e),
            PipelineError::Vc(e) => write!(f, "{}", e),
            PipelineError::NotWellBehaved(v) => {
                write!(f, "program is not well-behaved: {} violation(s)", v.len())
            }
            PipelineError::NoSuchMethod(m) => write!(f, "no such method '{}'", m),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ids_ivl::ParseError> for PipelineError {
    fn from(e: ids_ivl::ParseError) -> Self {
        PipelineError::Parse(e)
    }
}
impl From<ids_ivl::TypeError> for PipelineError {
    fn from(e: ids_ivl::TypeError) -> Self {
        PipelineError::Type(e)
    }
}
impl From<ExpandError> for PipelineError {
    fn from(e: ExpandError) -> Self {
        PipelineError::Expand(e)
    }
}
impl From<ids_vcgen::VcError> for PipelineError {
    fn from(e: ids_vcgen::VcError) -> Self {
        PipelineError::Vc(e)
    }
}

/// The per-method verification report (one row of Table 2).
#[derive(Clone, Debug)]
pub struct MethodReport {
    /// Data structure name.
    pub structure: String,
    /// Method name.
    pub method: String,
    /// Verification outcome.
    pub outcome: VerifyOutcome,
    /// Number of verification conditions discharged.
    pub num_vcs: usize,
    /// Wall-clock verification time (expansion + VC generation + solving).
    pub duration: Duration,
    /// Lines of executable code (LOC column).
    pub loc: usize,
    /// Lines of specification (Spec column).
    pub spec: usize,
    /// Lines of ghost annotation (Annotation column).
    pub annotations: usize,
    /// Size of the local condition in conjuncts.
    pub lc_size: usize,
    /// Well-behavedness violations (empty for the shipped benchmarks).
    pub wellbehaved_violations: Vec<Violation>,
    /// Ghost-code legality violations (empty for the shipped benchmarks).
    pub ghost_violations: Vec<GhostViolation>,
    /// Aggregated SMT solver statistics over the discharged VCs.
    pub solver: SolverStats,
    /// How many of the VCs were answered from a result cache rather than by a
    /// fresh solver query (always 0 in the sequential pipeline).
    pub cached_vcs: usize,
    /// Per-VC breakdown of the discharged VCs, in VC order. VCs that were
    /// never run (early-stopped after a refutation, or cancelled by the batch
    /// driver) are absent, so the vector can be shorter than `num_vcs`.
    pub vc_reports: Vec<VcReport>,
}

/// The per-VC row of a [`MethodReport`]: verdict, wall-clock latency and
/// solver statistics of one discharged verification condition (the unit of
/// batch-level tail-latency analysis).
#[derive(Clone, Debug)]
pub struct VcReport {
    /// Index of the VC inside its method.
    pub vc_index: usize,
    /// Stable content-addressed identity of the VC ([`MethodTask::vc_key`]),
    /// the join key the run ledger uses across machines and PRs.
    pub vc_key: u128,
    /// Human-readable description of the VC.
    pub description: String,
    /// The verdict.
    pub verdict: VcVerdict,
    /// Wall-clock time spent *solving* this VC (zero for cached results);
    /// excludes queue time.
    pub wall_time: Duration,
    /// Time the VC spent queued behind other work before its solve started
    /// (zero in the sequential pipeline and for cached results).
    pub queue_time: Duration,
    /// True if the result came from a cache instead of a solver run.
    pub cached: bool,
    /// Solver statistics of the query (zeroed for cached results).
    pub solver: SolverStats,
    /// Per-VC solver-dynamics histograms (empty unless metrics were armed
    /// via [`ids_obs::set_metrics`], and for cached results).
    pub hists: ids_obs::HistogramSet,
    /// The unsat core of a Valid verdict: which of the VC's positional
    /// hypotheses the refutation of the negated goal used (`Some(vec![])` if
    /// none at all). `None` for refuted/unknown/cached VCs and on the
    /// fresh-solver (non-session) path.
    pub core: Option<Vec<u32>>,
}

/// The verdict of one verification condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcVerdict {
    /// The VC is valid.
    Valid,
    /// The VC has a counterexample.
    Refuted,
    /// The solver could not decide the VC.
    Unknown,
}

/// The result of discharging one verification condition.
#[derive(Clone, Debug)]
pub struct VcResult {
    /// Index of the VC inside its [`MethodTask`].
    pub vc_index: usize,
    /// The verdict.
    pub verdict: VcVerdict,
    /// Solver statistics of the query (zeroed for cached results).
    pub stats: SolverStats,
    /// Wall-clock time of the solve itself.
    pub time: Duration,
    /// Time spent queued before the solve started (filled in by the batch
    /// driver; zero in the sequential pipeline).
    pub queue_time: Duration,
    /// True if the result came from a cache instead of a solver run.
    pub cached: bool,
    /// Per-VC solver-dynamics histograms (empty unless metrics are armed).
    pub hists: ids_obs::HistogramSet,
    /// The unsat core of a Valid verdict (see [`VcReport::core`]).
    pub core: Option<Vec<u32>>,
}

impl VcResult {
    /// A result answered from a cache (no solver query).
    pub fn from_cache(vc_index: usize, verdict: VcVerdict) -> VcResult {
        VcResult {
            vc_index,
            verdict,
            stats: SolverStats::default(),
            time: Duration::ZERO,
            queue_time: Duration::ZERO,
            cached: true,
            hists: ids_obs::HistogramSet::default(),
            core: None,
        }
    }
}

/// A fully prepared unit of verification work: one method, expanded and
/// lowered to its verification conditions, but with no solver run yet.
///
/// This is the decomposition point the batch driver (`ids-driver`) schedules
/// on: each `(task, vc_index)` pair is an independent SMT query — the owned
/// [`TermManager`] makes the task `Send`, so VCs of one method can be
/// discharged on different worker threads (each worker clones the manager,
/// which shares no state). The sequential pipeline entry points below are
/// thin wrappers over the same decomposition.
#[derive(Clone, Debug)]
pub struct MethodTask {
    /// Data structure (or file) label for reporting.
    pub structure: String,
    /// Method name.
    pub method: String,
    /// The term manager the VC formulas live in.
    pub tm: TermManager,
    /// The verification conditions, in generation order.
    pub vcs: Vec<Vc>,
    /// The method's shared hypothesis list: VC `i` depends on the prefix
    /// `hypotheses[..vcs[i].n_hyps]` (monotone in `i`). This is what an
    /// incremental [`MethodSession`] asserts once instead of per VC.
    pub hypotheses: Vec<TermId>,
    /// The encoding the VCs were generated under.
    pub encoding: Encoding,
    /// The solver heuristics profile the VCs will be discharged under
    /// (irrelevant to `vc_key`: the profile cannot change verdicts).
    pub profile: SolverProfile,
    /// Time spent expanding + generating VCs.
    pub prepare_time: Duration,
    /// Lines of executable code.
    pub loc: usize,
    /// Lines of specification.
    pub spec: usize,
    /// Lines of ghost annotation.
    pub annotations: usize,
    /// Size of the local condition in conjuncts.
    pub lc_size: usize,
    /// Well-behavedness violations.
    pub wellbehaved_violations: Vec<Violation>,
    /// Ghost-code legality violations.
    pub ghost_violations: Vec<GhostViolation>,
    /// Per-VC hypothesis-slice hints (one slot per VC, `None` = no hint):
    /// positional hypothesis indices — a previously recorded unsat core — to
    /// assert *first* when the VC is checked through a session. A Valid
    /// verdict on the slice is sound as-is; anything else falls back to the
    /// full hypothesis set, so hints can never change a verdict. Filled by
    /// the batch driver from the VC cache on `--recheck`; empty hints
    /// everywhere by default.
    pub slice_hints: Vec<Option<Vec<u32>>>,
}

impl MethodTask {
    /// Number of verification conditions.
    pub fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// A stable content-addressed key for one VC: the structural hash of its
    /// formula salted with the encoding mode (the same formula under the
    /// quantified encoding is a different solver problem). Stable across
    /// processes, so usable as an on-disk cache key.
    pub fn vc_key(&self, vc_index: usize) -> u128 {
        let h = structural_hash(&self.tm, self.vcs[vc_index].formula);
        match self.encoding {
            Encoding::Decidable => h,
            Encoding::Quantified => h ^ 0x9e37_79b9_7f4a_7c15_9e37_79b9_7f4a_7c15,
        }
    }

    /// Discharges one VC on a private clone of the term manager; safe to call
    /// concurrently for different indices from different threads.
    pub fn check_vc(&self, vc_index: usize) -> VcResult {
        let mut tm = self.tm.clone();
        self.check_vc_in(&mut tm, vc_index)
    }

    /// Discharges one VC inside the given term manager (the sequential path
    /// reuses one manager across the method's VCs to avoid re-cloning).
    pub fn check_vc_in(&self, tm: &mut TermManager, vc_index: usize) -> VcResult {
        let _obs = VcObsScope::open(&self.vcs[vc_index].description);
        let start = Instant::now();
        let (result, stats) =
            check_formula_with(tm, self.vcs[vc_index].formula, self.encoding, self.profile);
        let verdict = match result {
            SatResult::Sat => VcVerdict::Valid,
            SatResult::Unsat => VcVerdict::Refuted,
            SatResult::Unknown => VcVerdict::Unknown,
        };
        VcResult {
            vc_index,
            verdict,
            stats,
            time: start.elapsed(),
            queue_time: Duration::ZERO,
            hists: ids_obs::vc_take(),
            cached: false,
            core: None,
        }
    }

    /// Discharges the VCs in order, stopping at the first refuted/undecided
    /// one — the classic sequential pipeline behaviour.
    pub fn run_sequential(&self) -> Vec<VcResult> {
        let mut tm = self.tm.clone();
        let mut out = Vec::with_capacity(self.vcs.len());
        for i in 0..self.vcs.len() {
            let r = self.check_vc_in(&mut tm, i);
            let stop = r.verdict != VcVerdict::Valid;
            out.push(r);
            if stop {
                break;
            }
        }
        out
    }

    /// Like [`MethodTask::run_sequential`], but discharges the VCs through
    /// one incremental solver session (shared prelude lowered once). Falls
    /// back to the fresh-solver sequential loop when the encoding does not
    /// support sessions. Verdicts are identical either way.
    pub fn run_session(&self) -> Vec<VcResult> {
        let Some(mut session) = MethodSession::new(self) else {
            return self.run_sequential();
        };
        let mut out = Vec::with_capacity(self.vcs.len());
        for i in 0..self.vcs.len() {
            let r = session.check_vc(i);
            let stop = r.verdict != VcVerdict::Valid;
            out.push(r);
            if stop {
                break;
            }
        }
        out
    }

    /// Folds per-VC results into the method report.
    ///
    /// The outcome is derived by scanning the results in VC order, which gives
    /// verdicts identical to the sequential pipeline even when the results
    /// were computed out of order (or only partially, for an early stop).
    pub fn report(&self, results: &[VcResult]) -> MethodReport {
        let mut outcome = VerifyOutcome::Verified {
            vcs: self.vcs.len(),
        };
        let mut duration = self.prepare_time;
        let mut solver = SolverStats::default();
        let mut cached_vcs = 0;
        let mut vc_reports = Vec::with_capacity(results.len());
        let mut ordered: Vec<&VcResult> = results.iter().collect();
        ordered.sort_by_key(|r| r.vc_index);
        for r in &ordered {
            duration += r.time;
            solver.merge(&r.stats);
            if r.cached {
                cached_vcs += 1;
            }
            vc_reports.push(VcReport {
                vc_index: r.vc_index,
                vc_key: self.vc_key(r.vc_index),
                description: self.vcs[r.vc_index].description.clone(),
                verdict: r.verdict,
                wall_time: r.time,
                queue_time: r.queue_time,
                cached: r.cached,
                solver: r.stats,
                hists: r.hists.clone(),
                core: r.core.clone(),
            });
        }
        for r in &ordered {
            if r.verdict != VcVerdict::Valid {
                let description = self.vcs[r.vc_index].description.clone();
                outcome = match r.verdict {
                    VcVerdict::Refuted => VerifyOutcome::Refuted {
                        failed: description,
                    },
                    _ => VerifyOutcome::Unknown {
                        undecided: description,
                    },
                };
                break;
            }
        }
        MethodReport {
            structure: self.structure.clone(),
            method: self.method.clone(),
            outcome,
            num_vcs: self.vcs.len(),
            duration,
            loc: self.loc,
            spec: self.spec,
            annotations: self.annotations,
            lc_size: self.lc_size,
            wellbehaved_violations: self.wellbehaved_violations.clone(),
            ghost_violations: self.ghost_violations.clone(),
            solver,
            cached_vcs,
            vc_reports,
        }
    }
}

/// Observability scope of one VC check: labels heartbeats from this thread
/// with the VC's description and opens the `"vc"` trace span; both are undone
/// on drop. Free when instrumentation is disabled.
struct VcObsScope {
    _span: ids_obs::SpanGuard,
}

impl VcObsScope {
    fn open(description: &str) -> VcObsScope {
        if ids_obs::active() {
            ids_obs::set_task(Some(description.to_string()));
        }
        // Opens this VC on the thread's flight recorder (histograms + ring
        // buffer); the check site drains it with `ids_obs::vc_take()`.
        ids_obs::vc_begin(description);
        VcObsScope {
            _span: ids_obs::span_with("vc", || description.to_string()),
        }
    }
}

impl Drop for VcObsScope {
    fn drop(&mut self) {
        ids_obs::set_task(None);
    }
}

/// One incremental solving session over a method's VCs.
///
/// The session owns a private clone of the task's term manager and a
/// [`VcSession`] (an [`ids_smt::IncrementalSolver`] under the hood): the
/// method's hypothesis prefix is asserted once — heap axioms, local-condition
/// definitions and typing hypotheses are lowered and clause-converted a
/// single time — and each VC is then checked in its own push/pop scope.
///
/// VCs must be checked in ascending index order (their hypothesis prefixes
/// grow monotonically); indices may be skipped, e.g. when a batch driver
/// already answered some VCs from a cache.
pub struct MethodSession<'a> {
    task: &'a MethodTask,
    tm: TermManager,
    session: VcSession,
}

impl<'a> MethodSession<'a> {
    /// Opens a session for the task, or `None` when the task's encoding
    /// cannot be discharged incrementally (quantified RQ3 mode).
    pub fn new(task: &'a MethodTask) -> Option<MethodSession<'a>> {
        if !VcSession::supports(task.encoding) {
            return None;
        }
        Some(MethodSession {
            task,
            tm: task.tm.clone(),
            session: VcSession::with_profile(task.encoding, task.profile),
        })
    }

    /// Discharges one VC inside the session. Semantics (verdict kind, per-VC
    /// statistics shape) match [`MethodTask::check_vc`]. The task's
    /// [`slice hint`](MethodTask::slice_hints) for this VC, if any, is tried
    /// first (sound: a failed slice falls back to the full hypothesis set).
    pub fn check_vc(&mut self, vc_index: usize) -> VcResult {
        let _obs = VcObsScope::open(&self.task.vcs[vc_index].description);
        let start = Instant::now();
        let hint = self
            .task
            .slice_hints
            .get(vc_index)
            .and_then(|h| h.as_deref());
        let (result, stats, core) = self.session.check_vc_sliced(
            &mut self.tm,
            &self.task.hypotheses,
            &self.task.vcs[vc_index],
            hint,
        );
        let verdict = match result {
            SatResult::Sat => VcVerdict::Valid,
            SatResult::Unsat => VcVerdict::Refuted,
            SatResult::Unknown => VcVerdict::Unknown,
        };
        VcResult {
            vc_index,
            verdict,
            stats,
            time: start.elapsed(),
            queue_time: Duration::ZERO,
            cached: false,
            hists: ids_obs::vc_take(),
            core,
        }
    }
}

/// One warm solver pool over *all methods of one data structure*.
///
/// Where a [`MethodSession`] shares a solver across the VCs of one method, a
/// `StructureSession` shares it across the methods of a structure: every
/// task's terms are imported into one shared [`TermManager`] (structurally
/// identical terms collapse to identical ids — [`TermManager::import`] is the
/// cross-method hash-consing), the structure-common hypothesis prelude
/// ([`StructureVcs`]) is lowered and asserted once at structure scope, and
/// each method then runs inside a solver *method scope*: its residue
/// hypotheses and everything derived from them are retracted and rolled back
/// when [`StructureSession::end_method`] closes it, while the prelude's
/// lowered clauses, axiom instantiations and Skolem witnesses stay warm for
/// the next method.
///
/// Methods must be run one at a time ([`StructureSession::begin_method`] /
/// [`StructureSession::end_method`]), in any order; each method's VCs must be
/// checked in ascending index order (indices may be skipped, e.g. when a
/// batch driver already answered some VCs from a cache). Verdicts are
/// identical to [`MethodTask::check_vc`] and to a [`MethodSession`].
pub struct StructureSession {
    tm: TermManager,
    session: VcSession,
    methods: Vec<ImportedMethod>,
    open: Option<usize>,
}

/// One task's hypotheses and VCs, re-expressed in the pool's shared manager.
struct ImportedMethod {
    hypotheses: Vec<TermId>,
    vcs: Vec<Vc>,
    /// Slice hints are positional (hypothesis indices), so they survive the
    /// import unchanged.
    hints: Vec<Option<Vec<u32>>>,
}

impl StructureSession {
    /// Opens a warm pool over the given tasks (the methods of one structure),
    /// or `None` when their encoding cannot be discharged incrementally
    /// (quantified RQ3 mode — all tasks of a batch share one encoding).
    pub fn new(tasks: &[&MethodTask]) -> Option<StructureSession> {
        let mut obs_span = ids_obs::span("structure");
        obs_span.note(|| format!("methods={}", tasks.len()));
        let encoding = tasks.first()?.encoding;
        let profile = tasks.first()?.profile;
        if !VcSession::supports(encoding)
            || tasks
                .iter()
                .any(|t| t.encoding != encoding || t.profile != profile)
        {
            return None;
        }
        let group = StructureVcs::group(
            &tasks
                .iter()
                .map(|t| (&t.tm, &t.hypotheses[..], &t.vcs[..]))
                .collect::<Vec<_>>(),
        );
        let mut tm = TermManager::new();
        let methods: Vec<ImportedMethod> = tasks
            .iter()
            .map(|task| {
                // Import the task's *whole* manager in creation order, not
                // just the reachable roots: term-id order feeds heuristic
                // orderings downstream (theory literal order, conflict
                // clause shape), so preserving each method's relative
                // creation order keeps a pooled method's solver trajectory
                // essentially identical to a stand-alone session's.
                let mut memo = std::collections::HashMap::new();
                let all: Vec<TermId> = (0..task.tm.len() as u32).map(TermId).collect();
                tm.import(&task.tm, &all, &mut memo);
                let hypotheses = task.hypotheses.iter().map(|h| memo[h]).collect();
                let vcs = task
                    .vcs
                    .iter()
                    .map(|vc| Vc {
                        description: vc.description.clone(),
                        formula: memo[&vc.formula],
                        n_hyps: vc.n_hyps,
                        guard: memo[&vc.guard],
                        goal: memo[&vc.goal],
                    })
                    .collect();
                ImportedMethod {
                    hypotheses,
                    vcs,
                    hints: task.slice_hints.clone(),
                }
            })
            .collect();
        // The prelude was identified by structural hash across managers;
        // after hash-consing into the shared manager it must be id-identical
        // (this would only fire on a 128-bit hash collision).
        if let Some(first) = methods.iter().find(|m| !m.vcs.is_empty()) {
            for m in &methods {
                if !m.vcs.is_empty() {
                    debug_assert_eq!(
                        m.hypotheses[..group.prelude_len],
                        first.hypotheses[..group.prelude_len]
                    );
                }
            }
        }
        let mut session = VcSession::with_profile(encoding, profile);
        if let Some(first) = methods.iter().find(|m| !m.vcs.is_empty()) {
            session.assert_prelude(&mut tm, &first.hypotheses, group.prelude_len);
        }
        Some(StructureSession {
            tm,
            session,
            methods,
            open: None,
        })
    }

    /// Opens the method scope for the task at `method_idx` (its position in
    /// the slice the session was built from).
    ///
    /// # Panics
    /// Panics if another method is still open.
    pub fn begin_method(&mut self, method_idx: usize) {
        assert!(self.open.is_none(), "a method is already open");
        assert!(method_idx < self.methods.len());
        self.session.begin_method();
        self.open = Some(method_idx);
    }

    /// Closes the open method scope, rolling the pool back to its
    /// structure-scope state.
    pub fn end_method(&mut self) {
        assert!(self.open.take().is_some(), "no method open");
        self.session.end_method();
    }

    /// Discharges one VC of the open method. Semantics (verdict kind, per-VC
    /// statistics shape) match [`MethodTask::check_vc`].
    ///
    /// # Panics
    /// Panics if no method is open, or on out-of-order VC indices.
    pub fn check_vc(&mut self, method_idx: usize, vc_index: usize) -> VcResult {
        assert_eq!(self.open, Some(method_idx), "method not open");
        let _obs = VcObsScope::open(&self.methods[method_idx].vcs[vc_index].description);
        let start = Instant::now();
        let method = &self.methods[method_idx];
        let hint = method.hints.get(vc_index).and_then(|h| h.as_deref());
        let (result, stats, core) = self.session.check_vc_sliced(
            &mut self.tm,
            &method.hypotheses,
            &method.vcs[vc_index],
            hint,
        );
        let verdict = match result {
            SatResult::Sat => VcVerdict::Valid,
            SatResult::Unsat => VcVerdict::Refuted,
            SatResult::Unknown => VcVerdict::Unknown,
        };
        VcResult {
            vc_index,
            verdict,
            stats,
            time: start.elapsed(),
            queue_time: Duration::ZERO,
            cached: false,
            hists: ids_obs::vc_take(),
            core,
        }
    }

    /// Convenience: runs one method's VCs in order inside its own scope,
    /// stopping at the first non-valid result (sequential early-stop
    /// semantics).
    pub fn run_method(&mut self, method_idx: usize) -> Vec<VcResult> {
        let _obs = ids_obs::span("method");
        self.begin_method(method_idx);
        let mut out = Vec::with_capacity(self.methods[method_idx].vcs.len());
        for i in 0..self.methods[method_idx].vcs.len() {
            let r = self.check_vc(method_idx, i);
            let stop = r.verdict != VcVerdict::Valid;
            out.push(r);
            if stop {
                break;
            }
        }
        self.end_method();
        out
    }
}

/// Parses a method file and merges it with the definition's field prelude.
pub fn load_methods(
    ids: &IntrinsicDefinition,
    methods_src: &str,
) -> Result<Program, PipelineError> {
    let methods = parse_program(methods_src)?;
    let mut merged = ids.prelude();
    merged.extend(methods);
    ids_ivl::check_program(&merged)?;
    Ok(merged)
}

/// Verifies a single method of a method file against an intrinsic definition.
pub fn verify_method(
    ids: &IntrinsicDefinition,
    methods_src: &str,
    method: &str,
    config: PipelineConfig,
) -> Result<MethodReport, PipelineError> {
    let merged = load_methods(ids, methods_src)?;
    verify_method_in(ids, &merged, method, config)
}

/// Verifies a single method of an already-parsed program.
pub fn verify_method_in(
    ids: &IntrinsicDefinition,
    merged: &Program,
    method: &str,
    config: PipelineConfig,
) -> Result<MethodReport, PipelineError> {
    let task = prepare_method_in(ids, merged, method, config)?;
    let results = task.run_sequential();
    Ok(task.report(&results))
}

/// Checks the FWYB discipline of a procedure and expands nothing: the shared
/// front half of [`prepare_method_in`] and [`prepare_plain`].
fn check_discipline(
    merged: &Program,
    proc: &Procedure,
    method: &str,
    config: PipelineConfig,
) -> Result<(Vec<Violation>, Vec<GhostViolation>), PipelineError> {
    let wellbehaved_violations = crate::wellbehaved::check_procedure(proc);
    if config.strict_wellbehaved && !wellbehaved_violations.is_empty() {
        return Err(PipelineError::NotWellBehaved(wellbehaved_violations));
    }
    let ghost_violations = check_ghost_legality(merged)
        .into_iter()
        .filter(|v| v.procedure == method)
        .collect();
    Ok((wellbehaved_violations, ghost_violations))
}

/// Prepares one method of an already-parsed program for verification:
/// discipline checks, macro expansion, VC generation — everything up to (but
/// not including) the solver queries. The returned [`MethodTask`] owns its
/// term manager and can be discharged VC by VC, on any thread.
pub fn prepare_method_in(
    ids: &IntrinsicDefinition,
    merged: &Program,
    method: &str,
    config: PipelineConfig,
) -> Result<MethodTask, PipelineError> {
    let proc = merged
        .procedure(method)
        .ok_or_else(|| PipelineError::NoSuchMethod(method.to_string()))?
        .clone();
    let (wellbehaved_violations, ghost_violations) =
        check_discipline(merged, &proc, method, config)?;

    let _obs = ids_obs::span_with("prepare", || method.to_string());
    let start = Instant::now();
    let expanded = expand_program(ids, merged)?;
    let vcgen = VcGen::new(&expanded, config.encoding);
    let mut tm = TermManager::new();
    let generated = vcgen.method_vcs(&mut tm, method)?;
    let prepare_time = start.elapsed();

    Ok(MethodTask {
        structure: ids.name.clone(),
        method: method.to_string(),
        tm,
        slice_hints: vec![None; generated.vcs.len()],
        vcs: generated.vcs,
        hypotheses: generated.hypotheses,
        encoding: config.encoding,
        profile: config.profile,
        prepare_time,
        loc: ast::executable_loc(&proc),
        spec: ast::spec_lines(&proc),
        annotations: ast::annotation_lines(&proc),
        lc_size: ids.lc_size(),
        wellbehaved_violations,
        ghost_violations,
    })
}

/// Prepares one procedure of a plain IVL program (no intrinsic definition):
/// the `ids-verify verify <file>` path. FWYB macro statements are not
/// expanded — a program using them must be verified against a definition.
pub fn prepare_plain(
    structure: &str,
    program: &Program,
    method: &str,
    config: PipelineConfig,
) -> Result<MethodTask, PipelineError> {
    let proc = program
        .procedure(method)
        .ok_or_else(|| PipelineError::NoSuchMethod(method.to_string()))?
        .clone();
    let (wellbehaved_violations, ghost_violations) =
        check_discipline(program, &proc, method, config)?;

    let start = Instant::now();
    let vcgen = VcGen::new(program, config.encoding);
    let mut tm = TermManager::new();
    let generated = vcgen.method_vcs(&mut tm, method)?;
    let prepare_time = start.elapsed();

    Ok(MethodTask {
        structure: structure.to_string(),
        method: method.to_string(),
        tm,
        slice_hints: vec![None; generated.vcs.len()],
        vcs: generated.vcs,
        hypotheses: generated.hypotheses,
        encoding: config.encoding,
        profile: config.profile,
        prepare_time,
        loc: ast::executable_loc(&proc),
        spec: ast::spec_lines(&proc),
        annotations: ast::annotation_lines(&proc),
        lc_size: 0,
        wellbehaved_violations,
        ghost_violations,
    })
}

/// Verifies every procedure with a body in the method file.
pub fn verify_all(
    ids: &IntrinsicDefinition,
    methods_src: &str,
    config: PipelineConfig,
) -> Result<Vec<MethodReport>, PipelineError> {
    let merged = load_methods(ids, methods_src)?;
    let mut out = Vec::new();
    let names: Vec<String> = merged
        .procedures
        .iter()
        .filter(|p| p.body.is_some())
        .map(|p| p.name.clone())
        .collect();
    for name in names {
        out.push(verify_method_in(ids, &merged, &name, config)?);
    }
    Ok(out)
}

/// Full check of an intrinsic definition + benchmark file: impact sets first,
/// then every method. Mirrors the workflow of §5.3 (impact sets are proved
/// correct once per data structure, then each method is verified).
pub fn verify_structure(
    ids: &IntrinsicDefinition,
    methods_src: &str,
    config: PipelineConfig,
) -> Result<(Vec<crate::impact::ImpactCheckResult>, Vec<MethodReport>), PipelineError> {
    let impact = crate::impact::check_impact_sets(ids, config.encoding);
    let methods = verify_all(ids, methods_src, config)?;
    Ok((impact, methods))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_ids() -> IntrinsicDefinition {
        IntrinsicDefinition::parse(
            "acyclic-list",
            r#"
            field next: Loc;
            field ghost prev: Loc;
            field ghost length: Int;
            "#,
            "(x.next != nil ==> x.next.prev == x && x.length == x.next.length + 1) \
             && (x.prev != nil ==> x.prev.next == x) \
             && (x.next == nil ==> x.length == 1) \
             && (x.length >= 1)",
            "y",
            "y.prev == nil",
            &[
                ("next", &["x", "old(x.next)"]),
                ("prev", &["x", "old(x.prev)"]),
                ("length", &["x", "x.prev"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_front_verifies() {
        // Insert a new head in front of a list head: the paradigmatic FWYB
        // example (allocation + relinking + repairs).
        let ids = list_ids();
        let methods = r#"
            procedure insert_front(x: Loc) returns (r: Loc)
              requires Br == {} && x != nil && x.prev == nil;
              ensures Br == {} && r != nil && r.prev == nil;
              modifies {};
            {
              InferLCOutsideBr(x);
              var z: Loc;
              NewObj(z);
              Mut(z, next, x);
              Mut(z, length, x.length + 1);
              Mut(z, prev, nil);
              Mut(x, prev, z);
              AssertLCAndRemove(z);
              AssertLCAndRemove(x);
              r := z;
            }
        "#;
        let report =
            verify_method(&ids, methods, "insert_front", PipelineConfig::default()).unwrap();
        assert!(
            report.outcome.is_verified(),
            "outcome: {:?}",
            report.outcome
        );
        assert!(report.wellbehaved_violations.is_empty());
        assert!(report.ghost_violations.is_empty());
        assert!(report.num_vcs > 0);
    }

    #[test]
    fn session_runner_matches_sequential_pipeline() {
        // The incremental session must reproduce the fresh-per-VC runner's
        // results exactly — same number of results (early stop included),
        // same verdict per VC — on a verifying FWYB method.
        let ids = list_ids();
        let methods = r#"
            procedure insert_front(x: Loc) returns (r: Loc)
              requires Br == {} && x != nil && x.prev == nil;
              ensures Br == {} && r != nil && r.prev == nil;
              modifies {};
            {
              InferLCOutsideBr(x);
              var z: Loc;
              NewObj(z);
              Mut(z, next, x);
              Mut(z, length, x.length + 1);
              Mut(z, prev, nil);
              Mut(x, prev, z);
              AssertLCAndRemove(z);
              AssertLCAndRemove(x);
              r := z;
            }
        "#;
        let merged = load_methods(&ids, methods).unwrap();
        let task =
            prepare_method_in(&ids, &merged, "insert_front", PipelineConfig::default()).unwrap();
        let seq = task.run_sequential();
        let inc = task.run_session();
        assert_eq!(seq.len(), inc.len());
        for (s, i) in seq.iter().zip(&inc) {
            assert_eq!(s.vc_index, i.vc_index);
            assert_eq!(s.verdict, i.verdict, "vc#{} diverged", s.vc_index);
        }
        assert!(task.report(&inc).outcome.is_verified());
    }

    #[test]
    fn session_runner_matches_sequential_on_refuted_method() {
        // Early-stop parity: both runners must stop at the same failing VC.
        let ids = list_ids();
        let methods = r#"
            procedure detach_bad(x: Loc)
              requires Br == {} && x != nil;
              ensures Br == {};
              modifies {};
            {
              Mut(x, next, nil);
            }
        "#;
        let merged = load_methods(&ids, methods).unwrap();
        let task =
            prepare_method_in(&ids, &merged, "detach_bad", PipelineConfig::default()).unwrap();
        let seq = task.run_sequential();
        let inc = task.run_session();
        assert_eq!(seq.len(), inc.len());
        for (s, i) in seq.iter().zip(&inc) {
            assert_eq!(s.verdict, i.verdict, "vc#{} diverged", s.vc_index);
        }
        let (rs, ri) = (task.report(&seq), task.report(&inc));
        assert_eq!(rs.outcome, ri.outcome, "reported outcome must match");
        assert!(!ri.outcome.is_verified());
    }

    #[test]
    fn structure_session_matches_per_method_runners() {
        // Three methods of one structure — a verifying FWYB method, a cheap
        // check-only method and a refuted method — run through ONE warm
        // structure pool. Result lengths (early stop included) and verdicts
        // must match both the fresh-per-VC runner and the per-method
        // session; later methods must visibly reuse the structure prelude.
        let ids = list_ids();
        let methods = r#"
            procedure insert_front(x: Loc) returns (r: Loc)
              requires Br == {} && x != nil && x.prev == nil;
              ensures Br == {} && r != nil && r.prev == nil;
              modifies {};
            {
              InferLCOutsideBr(x);
              var z: Loc;
              NewObj(z);
              Mut(z, next, x);
              Mut(z, length, x.length + 1);
              Mut(z, prev, nil);
              Mut(x, prev, z);
              AssertLCAndRemove(z);
              AssertLCAndRemove(x);
              r := z;
            }
            procedure touch(x: Loc)
              requires Br == {} && x != nil;
              ensures Br == {};
              modifies {};
            {
              InferLCOutsideBr(x);
              AssertLCAndRemove(x);
            }
            procedure detach_bad(x: Loc)
              requires Br == {} && x != nil;
              ensures Br == {};
              modifies {};
            {
              Mut(x, next, nil);
            }
        "#;
        let merged = load_methods(&ids, methods).unwrap();
        let tasks: Vec<MethodTask> = ["insert_front", "touch", "detach_bad"]
            .iter()
            .map(|m| prepare_method_in(&ids, &merged, m, PipelineConfig::default()).unwrap())
            .collect();
        let task_refs: Vec<&MethodTask> = tasks.iter().collect();
        let mut pool = StructureSession::new(&task_refs).expect("decidable encoding");
        for (mi, task) in tasks.iter().enumerate() {
            let pooled = pool.run_method(mi);
            let seq = task.run_sequential();
            let inc = task.run_session();
            assert_eq!(pooled.len(), seq.len(), "{}: early stop", task.method);
            assert_eq!(pooled.len(), inc.len());
            for ((p, s), i) in pooled.iter().zip(&seq).zip(&inc) {
                assert_eq!(p.vc_index, s.vc_index);
                assert_eq!(
                    p.verdict, s.verdict,
                    "{} vc#{} diverged from sequential",
                    task.method, p.vc_index
                );
                assert_eq!(p.verdict, i.verdict);
            }
            assert_eq!(
                task.report(&pooled).outcome,
                task.report(&seq).outcome,
                "{}: outcome",
                task.method
            );
            let reused: u64 = pooled.iter().map(|r| r.stats.prelude_reused).sum();
            if mi > 0 {
                assert!(
                    reused > 0,
                    "{}: expected structure-prelude reuse, stats {:?}",
                    task.method,
                    pooled[0].stats
                );
            }
        }
        assert!(!tasks[2].report(&pool.run_method(2)).outcome.is_verified());
    }

    #[test]
    fn structure_session_allows_skipped_vc_indices() {
        // The driver skips cache-answered VCs: checking a sparse ascending
        // subset must work and agree with the fresh runner.
        let ids = list_ids();
        let methods = r#"
            procedure touch(x: Loc)
              requires Br == {} && x != nil;
              ensures Br == {};
              modifies {};
            {
              InferLCOutsideBr(x);
              AssertLCAndRemove(x);
            }
        "#;
        let merged = load_methods(&ids, methods).unwrap();
        let task = prepare_method_in(&ids, &merged, "touch", PipelineConfig::default()).unwrap();
        assert!(task.num_vcs() >= 2);
        let task_refs = [&task];
        let mut pool = StructureSession::new(&task_refs).unwrap();
        pool.begin_method(0);
        let last = task.num_vcs() - 1;
        let sparse = pool.check_vc(0, last);
        pool.end_method();
        assert_eq!(sparse.verdict, task.check_vc(last).verdict);
    }

    #[test]
    fn missing_repair_is_caught() {
        // Forgetting to update the new head's length leaves the local
        // condition broken: the final AssertLCAndRemove must fail.
        let ids = list_ids();
        let methods = r#"
            procedure insert_front_bad(x: Loc) returns (r: Loc)
              requires Br == {} && x != nil && x.prev == nil;
              ensures Br == {} && r != nil;
              modifies {};
            {
              InferLCOutsideBr(x);
              var z: Loc;
              NewObj(z);
              Mut(z, next, x);
              Mut(z, prev, nil);
              Mut(x, prev, z);
              AssertLCAndRemove(z);
              AssertLCAndRemove(x);
              r := z;
            }
        "#;
        let report =
            verify_method(&ids, methods, "insert_front_bad", PipelineConfig::default()).unwrap();
        assert!(
            !report.outcome.is_verified(),
            "outcome: {:?}",
            report.outcome
        );
    }

    #[test]
    fn forgetting_to_empty_broken_set_is_caught() {
        // Mutating without repairing: the ensures Br == {} fails.
        let ids = list_ids();
        let methods = r#"
            procedure detach_bad(x: Loc)
              requires Br == {} && x != nil;
              ensures Br == {};
              modifies {};
            {
              Mut(x, next, nil);
            }
        "#;
        let report = verify_method(&ids, methods, "detach_bad", PipelineConfig::default()).unwrap();
        assert!(!report.outcome.is_verified());
    }

    #[test]
    fn strict_mode_rejects_raw_mutation() {
        let ids = list_ids();
        let methods = r#"
            procedure raw(x: Loc)
            {
              x.next := nil;
            }
        "#;
        let config = PipelineConfig {
            strict_wellbehaved: true,
            ..PipelineConfig::default()
        };
        assert!(matches!(
            verify_method(&ids, methods, "raw", config),
            Err(PipelineError::NotWellBehaved(_))
        ));
    }
}
