//! The end-to-end FWYB verification pipeline.
//!
//! ```text
//! IDS definition + annotated methods (surface syntax)
//!   → parse, typecheck
//!   → well-behavedness check (Fig. 2 discipline)
//!   → ghost-code legality check
//!   → macro expansion + LC substitution           (ids-core::fwyb)
//!   → VC generation (decidable or quantified)     (ids-vcgen)
//!   → SMT solving                                 (ids-smt)
//!   → per-method report (Table 2 row shape)
//! ```

use std::time::{Duration, Instant};

use ids_ivl::{ast, parse_program, Program};
use ids_smt::TermManager;
use ids_vcgen::{Encoding, VcGen, VerifyOutcome};

use crate::fwyb::{expand_program, ExpandError};
use crate::ghost::{check_ghost_legality, GhostViolation};
use crate::ids::IntrinsicDefinition;
use crate::wellbehaved::Violation;

/// Pipeline configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineConfig {
    /// VC encoding mode (decidable by default).
    pub encoding: Encoding,
    /// If true (default false), well-behavedness violations abort verification
    /// instead of only being reported.
    pub strict_wellbehaved: bool,
}

/// Errors of the pipeline (before verification even starts).
#[derive(Debug)]
pub enum PipelineError {
    /// Method file failed to parse.
    Parse(ids_ivl::ParseError),
    /// Method file failed to typecheck against the definition's fields.
    Type(ids_ivl::TypeError),
    /// Macro expansion failed.
    Expand(ExpandError),
    /// VC generation failed.
    Vc(ids_vcgen::VcError),
    /// Strict mode: the program is not well-behaved.
    NotWellBehaved(Vec<Violation>),
    /// The requested method does not exist.
    NoSuchMethod(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{}", e),
            PipelineError::Type(e) => write!(f, "{}", e),
            PipelineError::Expand(e) => write!(f, "{}", e),
            PipelineError::Vc(e) => write!(f, "{}", e),
            PipelineError::NotWellBehaved(v) => {
                write!(f, "program is not well-behaved: {} violation(s)", v.len())
            }
            PipelineError::NoSuchMethod(m) => write!(f, "no such method '{}'", m),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ids_ivl::ParseError> for PipelineError {
    fn from(e: ids_ivl::ParseError) -> Self {
        PipelineError::Parse(e)
    }
}
impl From<ids_ivl::TypeError> for PipelineError {
    fn from(e: ids_ivl::TypeError) -> Self {
        PipelineError::Type(e)
    }
}
impl From<ExpandError> for PipelineError {
    fn from(e: ExpandError) -> Self {
        PipelineError::Expand(e)
    }
}
impl From<ids_vcgen::VcError> for PipelineError {
    fn from(e: ids_vcgen::VcError) -> Self {
        PipelineError::Vc(e)
    }
}

/// The per-method verification report (one row of Table 2).
#[derive(Clone, Debug)]
pub struct MethodReport {
    /// Data structure name.
    pub structure: String,
    /// Method name.
    pub method: String,
    /// Verification outcome.
    pub outcome: VerifyOutcome,
    /// Number of verification conditions discharged.
    pub num_vcs: usize,
    /// Wall-clock verification time (expansion + VC generation + solving).
    pub duration: Duration,
    /// Lines of executable code (LOC column).
    pub loc: usize,
    /// Lines of specification (Spec column).
    pub spec: usize,
    /// Lines of ghost annotation (Annotation column).
    pub annotations: usize,
    /// Size of the local condition in conjuncts.
    pub lc_size: usize,
    /// Well-behavedness violations (empty for the shipped benchmarks).
    pub wellbehaved_violations: Vec<Violation>,
    /// Ghost-code legality violations (empty for the shipped benchmarks).
    pub ghost_violations: Vec<GhostViolation>,
}

/// Parses a method file and merges it with the definition's field prelude.
pub fn load_methods(
    ids: &IntrinsicDefinition,
    methods_src: &str,
) -> Result<Program, PipelineError> {
    let methods = parse_program(methods_src)?;
    let mut merged = ids.prelude();
    merged.extend(methods);
    ids_ivl::check_program(&merged)?;
    Ok(merged)
}

/// Verifies a single method of a method file against an intrinsic definition.
pub fn verify_method(
    ids: &IntrinsicDefinition,
    methods_src: &str,
    method: &str,
    config: PipelineConfig,
) -> Result<MethodReport, PipelineError> {
    let merged = load_methods(ids, methods_src)?;
    verify_method_in(ids, &merged, method, config)
}

/// Verifies a single method of an already-parsed program.
pub fn verify_method_in(
    ids: &IntrinsicDefinition,
    merged: &Program,
    method: &str,
    config: PipelineConfig,
) -> Result<MethodReport, PipelineError> {
    let proc = merged
        .procedure(method)
        .ok_or_else(|| PipelineError::NoSuchMethod(method.to_string()))?
        .clone();

    let wellbehaved_violations = crate::wellbehaved::check_procedure(&proc);
    if config.strict_wellbehaved && !wellbehaved_violations.is_empty() {
        return Err(PipelineError::NotWellBehaved(wellbehaved_violations));
    }
    let ghost_violations = check_ghost_legality(merged)
        .into_iter()
        .filter(|v| v.procedure == method)
        .collect();

    let start = Instant::now();
    let expanded = expand_program(ids, merged)?;
    let vcgen = VcGen::new(&expanded, config.encoding);
    let mut tm = TermManager::new();
    let vcs = vcgen.vcs_for(&mut tm, method)?;
    let num_vcs = vcs.len();
    let outcome = vcgen.verify(&mut tm, method)?;
    let duration = start.elapsed();

    Ok(MethodReport {
        structure: ids.name.clone(),
        method: method.to_string(),
        outcome,
        num_vcs,
        duration,
        loc: ast::executable_loc(&proc),
        spec: ast::spec_lines(&proc),
        annotations: ast::annotation_lines(&proc),
        lc_size: ids.lc_size(),
        wellbehaved_violations,
        ghost_violations,
    })
}

/// Verifies every procedure with a body in the method file.
pub fn verify_all(
    ids: &IntrinsicDefinition,
    methods_src: &str,
    config: PipelineConfig,
) -> Result<Vec<MethodReport>, PipelineError> {
    let merged = load_methods(ids, methods_src)?;
    let mut out = Vec::new();
    let names: Vec<String> = merged
        .procedures
        .iter()
        .filter(|p| p.body.is_some())
        .map(|p| p.name.clone())
        .collect();
    for name in names {
        out.push(verify_method_in(ids, &merged, &name, config)?);
    }
    Ok(out)
}

/// Full check of an intrinsic definition + benchmark file: impact sets first,
/// then every method. Mirrors the workflow of §5.3 (impact sets are proved
/// correct once per data structure, then each method is verified).
pub fn verify_structure(
    ids: &IntrinsicDefinition,
    methods_src: &str,
    config: PipelineConfig,
) -> Result<(Vec<crate::impact::ImpactCheckResult>, Vec<MethodReport>), PipelineError> {
    let impact = crate::impact::check_impact_sets(ids, config.encoding);
    let methods = verify_all(ids, methods_src, config)?;
    Ok((impact, methods))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_ids() -> IntrinsicDefinition {
        IntrinsicDefinition::parse(
            "acyclic-list",
            r#"
            field next: Loc;
            field ghost prev: Loc;
            field ghost length: Int;
            "#,
            "(x.next != nil ==> x.next.prev == x && x.length == x.next.length + 1) \
             && (x.prev != nil ==> x.prev.next == x) \
             && (x.next == nil ==> x.length == 1) \
             && (x.length >= 1)",
            "y",
            "y.prev == nil",
            &[
                ("next", &["x", "old(x.next)"]),
                ("prev", &["x", "old(x.prev)"]),
                ("length", &["x", "x.prev"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_front_verifies() {
        // Insert a new head in front of a list head: the paradigmatic FWYB
        // example (allocation + relinking + repairs).
        let ids = list_ids();
        let methods = r#"
            procedure insert_front(x: Loc) returns (r: Loc)
              requires Br == {} && x != nil && x.prev == nil;
              ensures Br == {} && r != nil && r.prev == nil;
              modifies {};
            {
              InferLCOutsideBr(x);
              var z: Loc;
              NewObj(z);
              Mut(z, next, x);
              Mut(z, length, x.length + 1);
              Mut(z, prev, nil);
              Mut(x, prev, z);
              AssertLCAndRemove(z);
              AssertLCAndRemove(x);
              r := z;
            }
        "#;
        let report =
            verify_method(&ids, methods, "insert_front", PipelineConfig::default()).unwrap();
        assert!(
            report.outcome.is_verified(),
            "outcome: {:?}",
            report.outcome
        );
        assert!(report.wellbehaved_violations.is_empty());
        assert!(report.ghost_violations.is_empty());
        assert!(report.num_vcs > 0);
    }

    #[test]
    fn missing_repair_is_caught() {
        // Forgetting to update the new head's length leaves the local
        // condition broken: the final AssertLCAndRemove must fail.
        let ids = list_ids();
        let methods = r#"
            procedure insert_front_bad(x: Loc) returns (r: Loc)
              requires Br == {} && x != nil && x.prev == nil;
              ensures Br == {} && r != nil;
              modifies {};
            {
              InferLCOutsideBr(x);
              var z: Loc;
              NewObj(z);
              Mut(z, next, x);
              Mut(z, prev, nil);
              Mut(x, prev, z);
              AssertLCAndRemove(z);
              AssertLCAndRemove(x);
              r := z;
            }
        "#;
        let report =
            verify_method(&ids, methods, "insert_front_bad", PipelineConfig::default()).unwrap();
        assert!(
            !report.outcome.is_verified(),
            "outcome: {:?}",
            report.outcome
        );
    }

    #[test]
    fn forgetting_to_empty_broken_set_is_caught() {
        // Mutating without repairing: the ensures Br == {} fails.
        let ids = list_ids();
        let methods = r#"
            procedure detach_bad(x: Loc)
              requires Br == {} && x != nil;
              ensures Br == {};
              modifies {};
            {
              Mut(x, next, nil);
            }
        "#;
        let report = verify_method(&ids, methods, "detach_bad", PipelineConfig::default()).unwrap();
        assert!(!report.outcome.is_verified());
    }

    #[test]
    fn strict_mode_rejects_raw_mutation() {
        let ids = list_ids();
        let methods = r#"
            procedure raw(x: Loc)
            {
              x.next := nil;
            }
        "#;
        let config = PipelineConfig {
            strict_wellbehaved: true,
            ..PipelineConfig::default()
        };
        assert!(matches!(
            verify_method(&ids, methods, "raw", config),
            Err(PipelineError::NotWellBehaved(_))
        ));
    }
}
