//! Automatic correctness checking of declared impact sets (Appendix C).
//!
//! For every field `f` with declared impact set `A_f(x)` the paper checks the
//! Hoare triple
//!
//! ```text
//! { u ∉ A_f(x) ∧ LC(u) ∧ x ≠ nil }  x.f := v  { LC(u) }
//! ```
//!
//! i.e. mutating `x.f` cannot break the local condition of any location
//! outside the declared impact set. The triple is quantifier-free and
//! decidable; this module builds it as an IVL procedure and discharges it with
//! the standard pipeline. The paper reports these checks take under 3 seconds
//! per data structure — the `impact_times` bench harness reproduces that
//! measurement.

use std::time::{Duration, Instant};

use ids_ivl::{BinOp, Block, Expr, Lhs, Param, Procedure, Program, Stmt};
use ids_smt::TermManager;
use ids_vcgen::{Encoding, VcGen, VerifyOutcome};

use crate::ids::{substitute_var, IntrinsicDefinition};

/// The result of checking one field's impact set.
#[derive(Clone, Debug)]
pub struct ImpactCheckResult {
    /// The mutated field.
    pub field: String,
    /// Whether the check used the secondary local condition.
    pub secondary: bool,
    /// The verification outcome.
    pub outcome: VerifyOutcome,
    /// Wall-clock time of the check.
    pub duration: Duration,
}

impl ImpactCheckResult {
    /// True if the impact set was proved correct.
    pub fn is_correct(&self) -> bool {
        self.outcome.is_verified()
    }
}

/// Checks every declared impact set of the definition (primary and secondary).
pub fn check_impact_sets(ids: &IntrinsicDefinition, encoding: Encoding) -> Vec<ImpactCheckResult> {
    let mut results = Vec::new();
    for (field, terms) in &ids.impact_sets {
        results.push(check_one(
            ids,
            field,
            terms,
            &ids.local_condition,
            false,
            encoding,
        ));
    }
    if let Some(sec) = &ids.secondary {
        for (field, terms) in &sec.impact_sets {
            results.push(check_one(
                ids,
                field,
                terms,
                &sec.local_condition,
                true,
                encoding,
            ));
        }
    }
    results
}

fn strip_old(e: &Expr) -> Expr {
    match e {
        Expr::Old(inner) => strip_old(inner),
        Expr::Field(obj, f) => Expr::Field(Box::new(strip_old(obj)), f.clone()),
        _ => e.clone(),
    }
}

fn check_one(
    ids: &IntrinsicDefinition,
    field: &str,
    impact_terms: &[Expr],
    lc: &Expr,
    secondary: bool,
    encoding: Encoding,
) -> ImpactCheckResult {
    let start = Instant::now();
    let program = build_check_program(ids, field, impact_terms, lc);
    let mut tm = TermManager::new();
    let outcome = VcGen::new(&program, encoding)
        .verify(&mut tm, "impact_check")
        .unwrap_or(VerifyOutcome::Unknown {
            undecided: "vc generation failed".into(),
        });
    ImpactCheckResult {
        field: field.to_string(),
        secondary,
        outcome,
        duration: start.elapsed(),
    }
}

/// Builds the single-procedure program encoding the Appendix C triple.
fn build_check_program(
    ids: &IntrinsicDefinition,
    field: &str,
    impact_terms: &[Expr],
    lc: &Expr,
) -> Program {
    let field_decl = ids
        .fields
        .iter()
        .find(|f| f.name == field)
        .expect("impact set for a declared field");
    let xobj = Expr::var("xobj");
    let u = Expr::var("u");

    // requires xobj != nil && u != nil
    let mut requires = vec![
        Expr::bin(BinOp::Ne, xobj.clone(), Expr::Nil),
        Expr::bin(BinOp::Ne, u.clone(), Expr::Nil),
    ];
    // requires u ∉ A_f(xobj):  for each term t, u != t || t == nil
    for t in impact_terms {
        let inst = substitute_var(&strip_old(t), "x", &xobj);
        requires.push(Expr::bin(
            BinOp::Or,
            Expr::bin(BinOp::Ne, u.clone(), inst.clone()),
            Expr::bin(BinOp::Eq, inst, Expr::Nil),
        ));
    }
    // requires LC(u)
    requires.push(substitute_var(lc, "x", &u));
    // ensures LC(u)
    let ensures = vec![substitute_var(lc, "x", &u)];

    let body = Block {
        stmts: vec![Stmt::Assign {
            lhs: Lhs::Field("xobj".into(), field.to_string()),
            rhs: Expr::var("vval"),
        }],
    };
    let proc = Procedure {
        name: "impact_check".into(),
        params: vec![
            Param {
                name: "xobj".into(),
                ty: ids_ivl::Type::Loc,
                ghost: false,
            },
            Param {
                name: "u".into(),
                ty: ids_ivl::Type::Loc,
                ghost: false,
            },
            Param {
                name: "vval".into(),
                ty: field_decl.ty,
                ghost: false,
            },
        ],
        returns: vec![],
        requires,
        ensures,
        modifies: Some(Expr::Singleton(Box::new(xobj))),
        decreases: None,
        body: Some(body),
    };
    Program {
        fields: ids.fields.clone(),
        procedures: vec![proc],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_ids(impact_next: &[&str]) -> IntrinsicDefinition {
        IntrinsicDefinition::parse(
            "list",
            r#"
            field next: Loc;
            field ghost prev: Loc;
            field ghost length: Int;
            "#,
            "(x.next != nil ==> x.next.prev == x && x.length == x.next.length + 1) \
             && (x.prev != nil ==> x.prev.next == x) \
             && (x.next == nil ==> x.length == 1)",
            "y",
            "y.prev == nil",
            &[
                ("next", impact_next),
                ("prev", &["x", "old(x.prev)"]),
                ("length", &["x", "x.prev"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn correct_impact_sets_verify() {
        let ids = list_ids(&["x", "old(x.next)"]);
        let results = check_impact_sets(&ids, Encoding::Decidable);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.is_correct(), "field {} failed: {:?}", r.field, r.outcome);
        }
    }

    #[test]
    fn too_small_impact_set_is_rejected() {
        // Claiming that mutating `next` only impacts x itself is wrong: the
        // old successor's prev-link clause can break.
        let ids = list_ids(&["x"]);
        let results = check_impact_sets(&ids, Encoding::Decidable);
        let next_result = results.iter().find(|r| r.field == "next").unwrap();
        assert!(!next_result.is_correct());
    }
}
