//! Ghost-code legality and the projection that erases ghost code
//! (Appendix A.2 / Definition 3.3 of the paper).
//!
//! Ghost state (ghost fields, ghost variables, the broken sets) may read user
//! state, but user state must never depend on ghost state, and ghost control
//! flow must not steer user code. Under these conditions the *projection*
//! that deletes all ghost code yields a user program with identical behaviour
//! on user state — which is what makes the FWYB soundness theorem transfer
//! verification results from the augmented program back to the original one.

use std::collections::HashSet;

use ids_ivl::{Block, Expr, Lhs, Procedure, Program, Stmt};

/// A violation of ghost-code legality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GhostViolation {
    /// The procedure in which the violation occurs.
    pub procedure: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for GhostViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.procedure, self.message)
    }
}

fn ghost_fields(program: &Program) -> HashSet<String> {
    program
        .fields
        .iter()
        .filter(|f| f.ghost)
        .map(|f| f.name.clone())
        .collect()
}

fn ghost_vars(proc: &Procedure) -> HashSet<String> {
    let mut set: HashSet<String> = proc
        .params
        .iter()
        .chain(proc.returns.iter())
        .filter(|p| p.ghost)
        .map(|p| p.name.clone())
        .collect();
    set.insert("Br".into());
    set.insert("Br2".into());
    if let Some(body) = &proc.body {
        collect_ghost_locals(body, &mut set);
    }
    set
}

fn collect_ghost_locals(block: &Block, out: &mut HashSet<String>) {
    for s in &block.stmts {
        match s {
            Stmt::VarDecl { name, ghost, .. } if *ghost => {
                out.insert(name.clone());
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_ghost_locals(then_branch, out);
                collect_ghost_locals(else_branch, out);
            }
            Stmt::While { body, .. } => collect_ghost_locals(body, out),
            _ => {}
        }
    }
}

fn mentions_ghost(e: &Expr, gvars: &HashSet<String>, gfields: &HashSet<String>) -> bool {
    match e {
        Expr::Var(v) => gvars.contains(v),
        Expr::Field(obj, f) => gfields.contains(f) || mentions_ghost(obj, gvars, gfields),
        Expr::Old(i) | Expr::Unary(_, i) | Expr::Singleton(i) => mentions_ghost(i, gvars, gfields),
        Expr::Binary(_, a, b) => {
            mentions_ghost(a, gvars, gfields) || mentions_ghost(b, gvars, gfields)
        }
        Expr::Ite(c, t, f) => {
            mentions_ghost(c, gvars, gfields)
                || mentions_ghost(t, gvars, gfields)
                || mentions_ghost(f, gvars, gfields)
        }
        Expr::App(_, args) => args.iter().any(|a| mentions_ghost(a, gvars, gfields)),
        _ => false,
    }
}

/// Checks ghost-code legality for the whole (pre-expansion) program.
pub fn check_ghost_legality(program: &Program) -> Vec<GhostViolation> {
    let gfields = ghost_fields(program);
    let mut out = Vec::new();
    for proc in &program.procedures {
        let gvars = ghost_vars(proc);
        if let Some(body) = &proc.body {
            check_block(proc, body, &gvars, &gfields, &mut out);
        }
    }
    out
}

fn violation(proc: &Procedure, message: impl Into<String>) -> GhostViolation {
    GhostViolation {
        procedure: proc.name.clone(),
        message: message.into(),
    }
}

fn block_has_user_code(block: &Block, gvars: &HashSet<String>, gfields: &HashSet<String>) -> bool {
    block.stmts.iter().any(|s| match s {
        Stmt::Assign { lhs, .. } => match lhs {
            Lhs::Var(v) => !gvars.contains(v),
            Lhs::Field(_, f) => !gfields.contains(f),
        },
        Stmt::Alloc { .. } | Stmt::Call { .. } | Stmt::Return => true,
        Stmt::Macro { name, args } => match name.as_str() {
            "Mut" => matches!(&args[1], Expr::Var(f) if !gfields.contains(f)),
            "NewObj" => true,
            _ => false,
        },
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            block_has_user_code(then_branch, gvars, gfields)
                || block_has_user_code(else_branch, gvars, gfields)
        }
        Stmt::While { body, .. } => block_has_user_code(body, gvars, gfields),
        _ => false,
    })
}

fn check_block(
    proc: &Procedure,
    block: &Block,
    gvars: &HashSet<String>,
    gfields: &HashSet<String>,
    out: &mut Vec<GhostViolation>,
) {
    for s in &block.stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                let lhs_ghost = match lhs {
                    Lhs::Var(v) => gvars.contains(v),
                    Lhs::Field(_, f) => gfields.contains(f),
                };
                if !lhs_ghost && mentions_ghost(rhs, gvars, gfields) {
                    out.push(violation(
                        proc,
                        "ghost state flows into a non-ghost assignment",
                    ));
                }
            }
            Stmt::VarDecl {
                name,
                ghost,
                init: Some(e),
                ..
            } if !*ghost && !gvars.contains(name) && mentions_ghost(e, gvars, gfields) => {
                out.push(violation(
                    proc,
                    "ghost state flows into a non-ghost variable initializer",
                ));
            }
            Stmt::Macro { name, args } if name == "Mut" && args.len() == 3 => {
                if let Expr::Var(f) = &args[1] {
                    if !gfields.contains(f) && mentions_ghost(&args[2], gvars, gfields) {
                        out.push(violation(
                            proc,
                            format!("ghost value written into user field '{}'", f),
                        ));
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if mentions_ghost(cond, gvars, gfields)
                    && (block_has_user_code(then_branch, gvars, gfields)
                        || block_has_user_code(else_branch, gvars, gfields))
                {
                    out.push(violation(proc, "ghost condition controls non-ghost code"));
                }
                check_block(proc, then_branch, gvars, gfields, out);
                check_block(proc, else_branch, gvars, gfields, out);
            }
            Stmt::While {
                cond,
                body,
                decreases,
                ..
            } => {
                let ghost_cond = mentions_ghost(cond, gvars, gfields);
                if ghost_cond && block_has_user_code(body, gvars, gfields) {
                    out.push(violation(proc, "ghost condition controls non-ghost loop"));
                }
                if ghost_cond && decreases.is_none() {
                    out.push(violation(
                        proc,
                        "ghost loop must carry a decreases clause (termination)",
                    ));
                }
                check_block(proc, body, gvars, gfields, out);
            }
            _ => {}
        }
    }
}

/// The projection of Definition 3.3: erases all ghost code, yielding the user
/// program.
pub fn project(program: &Program) -> Program {
    let gfields = ghost_fields(program);
    let mut out = Program {
        fields: program
            .fields
            .iter()
            .filter(|f| !f.ghost)
            .cloned()
            .collect(),
        procedures: Vec::new(),
    };
    for proc in &program.procedures {
        let gvars = ghost_vars(proc);
        let mut p = proc.clone();
        p.params.retain(|pa| !pa.ghost);
        p.returns.retain(|pa| !pa.ghost);
        p.requires.clear();
        p.ensures.clear();
        p.modifies = None;
        p.body = proc
            .body
            .as_ref()
            .map(|b| project_block(program, b, &gvars, &gfields));
        out.procedures.push(p);
    }
    out
}

fn project_block(
    program: &Program,
    block: &Block,
    gvars: &HashSet<String>,
    gfields: &HashSet<String>,
) -> Block {
    let mut stmts = Vec::new();
    for s in &block.stmts {
        match s {
            Stmt::VarDecl { ghost, .. } if *ghost => {}
            Stmt::Assign { lhs, .. } => {
                let lhs_ghost = match lhs {
                    Lhs::Var(v) => gvars.contains(v),
                    Lhs::Field(_, f) => gfields.contains(f),
                };
                if !lhs_ghost {
                    stmts.push(s.clone());
                }
            }
            Stmt::Assume(_) | Stmt::Assert(_) => {}
            Stmt::Macro { name, args } => match name.as_str() {
                "Mut" if args.len() == 3 => {
                    if let (Expr::Var(obj), Expr::Var(f)) = (&args[0], &args[1]) {
                        if !gfields.contains(f) {
                            stmts.push(Stmt::Assign {
                                lhs: Lhs::Field(obj.clone(), f.clone()),
                                rhs: args[2].clone(),
                            });
                        }
                    }
                }
                "NewObj" if args.len() == 1 => {
                    if let Expr::Var(v) = &args[0] {
                        stmts.push(Stmt::Alloc { lhs: v.clone() });
                    }
                }
                _ => {}
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if mentions_ghost(cond, gvars, gfields) {
                    // Pure ghost conditional: eliminated entirely.
                    continue;
                }
                stmts.push(Stmt::If {
                    cond: cond.clone(),
                    then_branch: project_block(program, then_branch, gvars, gfields),
                    else_branch: project_block(program, else_branch, gvars, gfields),
                });
            }
            Stmt::While { cond, body, .. } => {
                if mentions_ghost(cond, gvars, gfields) {
                    continue;
                }
                stmts.push(Stmt::While {
                    cond: cond.clone(),
                    invariants: Vec::new(),
                    decreases: None,
                    body: project_block(program, body, gvars, gfields),
                });
            }
            Stmt::Call { lhs, proc, args } => {
                // Drop actuals bound to ghost parameters of the callee.
                let callee = program.procedure(proc);
                let args = match callee {
                    Some(c) => args
                        .iter()
                        .zip(c.params.iter())
                        .filter(|(_, p)| !p.ghost)
                        .map(|(a, _)| a.clone())
                        .collect(),
                    None => args.clone(),
                };
                stmts.push(Stmt::Call {
                    lhs: lhs.clone(),
                    proc: proc.clone(),
                    args,
                });
            }
            other => stmts.push(other.clone()),
        }
    }
    Block { stmts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_ivl::parse_program;

    #[test]
    fn legal_ghost_code_passes() {
        let p = parse_program(
            r#"
            field next: Loc;
            field ghost length: Int;
            procedure ok(x: Loc, y: Loc) {
              var ghost n: Int := x.length;
              Mut(x, length, n + 1);
              Mut(x, next, y);
            }
            "#,
        )
        .unwrap();
        assert!(check_ghost_legality(&p).is_empty());
    }

    #[test]
    fn ghost_to_user_flow_rejected() {
        let p = parse_program(
            r#"
            field key: Int;
            field ghost length: Int;
            procedure bad(x: Loc) {
              Mut(x, key, x.length);
            }
            "#,
        )
        .unwrap();
        let v = check_ghost_legality(&p);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("user field"));
    }

    #[test]
    fn ghost_condition_cannot_guard_user_code() {
        let p = parse_program(
            r#"
            field next: Loc;
            field ghost length: Int;
            procedure bad(x: Loc, y: Loc) {
              if (x.length > 0) {
                Mut(x, next, y);
              }
            }
            "#,
        )
        .unwrap();
        let v = check_ghost_legality(&p);
        assert!(v.iter().any(|x| x.message.contains("controls non-ghost")));
    }

    #[test]
    fn ghost_loop_needs_decreases() {
        let p = parse_program(
            r#"
            field ghost length: Int;
            procedure bad(x: Loc) {
              var ghost i: Int := 0;
              while (i < x.length) {
                i := i + 1;
              }
            }
            "#,
        )
        .unwrap();
        let v = check_ghost_legality(&p);
        assert!(v.iter().any(|x| x.message.contains("decreases")));
    }

    #[test]
    fn projection_erases_ghost_code() {
        let p = parse_program(
            r#"
            field next: Loc;
            field ghost length: Int;
            procedure m(x: Loc, y: Loc, ghost g: Int) returns (r: Loc)
              requires x != nil;
              ensures r != nil;
            {
              var ghost n: Int := x.length;
              Mut(x, length, n + 1);
              Mut(x, next, y);
              InferLCOutsideBr(y);
              AssertLCAndRemove(x);
              r := y;
            }
            "#,
        )
        .unwrap();
        let user = project(&p);
        assert_eq!(user.fields.len(), 1);
        let m = user.procedure("m").unwrap();
        assert_eq!(m.params.len(), 2);
        assert!(m.requires.is_empty());
        let body = m.body.clone().unwrap();
        // Only the user mutation and the result assignment remain.
        assert_eq!(body.stmts.len(), 2);
        let printed = ids_ivl::printer::block_to_string(&body, 0);
        assert!(printed.contains("x.next := y"));
        assert!(!printed.contains("length"));
    }
}
