//! `ids-verify` — command-line front end of the parallel batch verifier.
//!
//! ```text
//! ids-verify suite  [--quick] [--jobs N] [--cache PATH] [--json] [--quantified]
//! ids-verify verify <FILE> [--structure NAME] [--method NAME]
//!                   [--jobs N] [--cache PATH] [--json] [--quantified]
//! ids-verify compare <BASE> <NEW> [--threshold-pct P] [--threshold-ms MS]
//!                   [--advisory-timing] [--json]
//! ids-verify history <LEDGER> [--structure NAME] [--method NAME]
//! ```
//!
//! `suite` runs the Table-2 registry (optionally filtered by `--structure` /
//! `--method`); `verify` runs one IVL file, either stand-alone or merged with
//! a registry structure's definition. `compare` and `history` read run-ledger
//! files (`--ledger`) for longitudinal performance analysis.
//! Exit code 0 = everything verified, 1 = some method failed or was
//! undecided (for `compare`: a regression or verdict change), 2 = usage or
//! pipeline error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ids_core::pipeline::{prepare_plain, PipelineConfig, VcVerdict};
use ids_core::report::{format_table, Table2Row};
use ids_driver::json::Json;
use ids_driver::{
    ledger, verify_selections, verify_tasks, BatchReport, DriverConfig, PoolMode, Selection,
};
use ids_smt::{SolverProfile, SolverStats};
use ids_structures::{all_benchmarks, quick_benchmarks};
use ids_vcgen::Encoding;

const USAGE: &str = "\
ids-verify — parallel batch verification of intrinsically defined data structures

USAGE:
    ids-verify suite  [OPTIONS]          verify the whole Table-2 registry
    ids-verify verify <FILE> [OPTIONS]   verify every procedure of an IVL file
    ids-verify compare <BASE> <NEW>      join two run-ledger files per VC and
                                         report solve-time regressions with
                                         phase attribution (exit 1 on
                                         regression or verdict change)
    ids-verify history <LEDGER>          per-VC solve-time trajectory across
                                         every run recorded in a ledger file

OPTIONS:
    --jobs N           worker threads (default: available parallelism)
    --cache PATH       persistent VC cache file (created if missing)
    --json             machine-readable JSON output
    --quantified       use the quantified (Dafny-style) encoding
    --pool-mode MODE   solver-state sharing across queries (verdicts are
                       identical in every mode):
                         structure  one warm solver pool per data structure,
                                    the shared hypothesis prelude lowered
                                    once at structure scope (default)
                         method     one incremental session per method
                         none       a fresh solver per VC
    --no-incremental   deprecated alias for --pool-mode none
    --solver-profile P solver search heuristics (verdicts are identical in
                       every profile):
                         default    Luby restarts, LBD-based learned-clause
                                    deletion, hybrid simplex pivoting
                         legacy     geometric restarts, no clause deletion,
                                    Bland pivoting (pre-tuning behaviour)
    --trace PATH       write a Chrome trace_event JSON timeline of the run to
                       PATH (open in chrome://tracing or Perfetto): one lane
                       per worker thread, spans for each pipeline phase
                       (lowering, CNF, SAT search segmented by restart, EUF,
                       simplex), instants for cache hits, dedup hits and
                       early-stop cancellations
    --heartbeat SECS   print a liveness line to stderr at most every SECS
                       seconds while the solver works (conflict/pivot
                       counters of the VC currently in progress)
    --ledger PATH      append this run to the run-ledger JSONL at PATH (a
                       directory gets ids-ledger.jsonl inside it): per-VC
                       verdicts, queue/solve ms, phase seconds, solver
                       counters and histograms, keyed by stable VC keys for
                       ids-verify compare / history. Defaults to
                       <cache>.ledger.jsonl whenever --cache is given
    --no-ledger        disable the implicit --cache ledger
    --recheck          ignore cached verdicts and re-solve every VC; cached
                       unsat cores still serve as hypothesis-slice hints
                       (see --slice-hyps). Recomputed verdicts and cores are
                       written back to the cache
    --slice-hyps       on a --recheck, assert only each VC's previously
                       recorded unsat-core hypothesis subset first, falling
                       back to the full set when the slice is inconclusive
                       (default on; verdicts are identical either way)
    --no-slice-hyps    disable slice hints: --recheck re-solves every VC from
                       the full hypothesis set
    --vc-timeout SECS  watchdog: when a VC is in flight longer than SECS,
                       dump a stuck-VC dossier to stderr (current phase,
                       heartbeat trail, histogram snapshot) — once per VC
    --threshold-pct P  (compare) noise gate: a solve-time delta counts only
                       past P percent of the base time (default 25)
    --threshold-ms MS  (compare) ...and past MS absolute milliseconds
                       (default 50)
    --advisory-timing  (compare) report timing regressions without failing;
                       only verdict changes exit nonzero (cross-machine CI)
    --quick            (suite) only the quick benchmark subset
    --structure NAME   (suite) only structures whose name contains NAME
                       (substring match, case-insensitive);
                       (verify) merge the file with this registry structure's
                       definition; (history) filter rows by NAME
    --method NAME      only this method; repeatable; (history) filter rows
    -h, --help         this message
";

struct Options {
    jobs: Option<usize>,
    cache: Option<PathBuf>,
    json: bool,
    quantified: bool,
    pool_mode: PoolMode,
    solver_profile: SolverProfile,
    trace: Option<PathBuf>,
    heartbeat: Option<u64>,
    ledger: Option<PathBuf>,
    no_ledger: bool,
    recheck: bool,
    slice_hyps: bool,
    vc_timeout: Option<u64>,
    threshold_pct: Option<f64>,
    threshold_ms: Option<f64>,
    advisory_timing: bool,
    quick: bool,
    structure: Option<String>,
    methods: Vec<String>,
    positional: Vec<String>,
}

impl Options {
    /// True if `name` passes the `--method` filter.
    fn method_wanted(&self, name: &str) -> bool {
        self.methods.is_empty() || self.methods.iter().any(|m| m == name)
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        jobs: None,
        cache: None,
        json: false,
        quantified: false,
        pool_mode: PoolMode::default(),
        solver_profile: SolverProfile::default(),
        trace: None,
        heartbeat: None,
        ledger: None,
        no_ledger: false,
        recheck: false,
        slice_hyps: true,
        vc_timeout: None,
        threshold_pct: None,
        threshold_ms: None,
        advisory_timing: false,
        quick: false,
        structure: None,
        methods: Vec::new(),
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{} requires a value", flag))
        };
        match arg.as_str() {
            "--jobs" => {
                let v = value_of("--jobs")?;
                o.jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid --jobs value '{}'", v))?
                        .max(1),
                );
            }
            "--cache" => o.cache = Some(PathBuf::from(value_of("--cache")?)),
            "--json" => o.json = true,
            "--quantified" => o.quantified = true,
            "--pool-mode" => {
                let v = value_of("--pool-mode")?;
                o.pool_mode = PoolMode::parse(&v).ok_or_else(|| {
                    format!(
                        "invalid --pool-mode '{}' (expected structure, method or none)",
                        v
                    )
                })?;
            }
            "--no-incremental" => o.pool_mode = PoolMode::None,
            "--solver-profile" => {
                let v = value_of("--solver-profile")?;
                o.solver_profile = SolverProfile::parse(&v).ok_or_else(|| {
                    format!(
                        "invalid --solver-profile '{}' (expected default or legacy)",
                        v
                    )
                })?;
            }
            "--trace" => o.trace = Some(PathBuf::from(value_of("--trace")?)),
            "--heartbeat" => {
                let v = value_of("--heartbeat")?;
                o.heartbeat = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --heartbeat value '{}'", v))?,
                );
            }
            "--ledger" => o.ledger = Some(PathBuf::from(value_of("--ledger")?)),
            "--no-ledger" => o.no_ledger = true,
            "--recheck" => o.recheck = true,
            "--slice-hyps" => o.slice_hyps = true,
            "--no-slice-hyps" => o.slice_hyps = false,
            "--vc-timeout" => {
                let v = value_of("--vc-timeout")?;
                o.vc_timeout = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --vc-timeout value '{}'", v))?
                        .max(1),
                );
            }
            "--threshold-pct" => {
                let v = value_of("--threshold-pct")?;
                o.threshold_pct = Some(
                    v.parse::<f64>()
                        .map_err(|_| format!("invalid --threshold-pct value '{}'", v))?,
                );
            }
            "--threshold-ms" => {
                let v = value_of("--threshold-ms")?;
                o.threshold_ms = Some(
                    v.parse::<f64>()
                        .map_err(|_| format!("invalid --threshold-ms value '{}'", v))?,
                );
            }
            "--advisory-timing" => o.advisory_timing = true,
            "--quick" => o.quick = true,
            "--structure" => o.structure = Some(value_of("--structure")?),
            "--method" => o.methods.push(value_of("--method")?),
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option '{}'", other)),
            other => o.positional.push(other.to_string()),
        }
    }
    Ok(o)
}

fn driver_config(o: &Options) -> DriverConfig {
    let mut config = DriverConfig {
        encoding: if o.quantified {
            Encoding::Quantified
        } else {
            Encoding::Decidable
        },
        cache_path: o.cache.clone(),
        pool_mode: o.pool_mode,
        solver_profile: o.solver_profile,
        ledger_path: ledger_path(o),
        recheck: o.recheck,
        slice_hyps: o.slice_hyps,
        ..DriverConfig::default()
    };
    if let Some(jobs) = o.jobs {
        config.jobs = jobs;
    }
    config
}

/// Resolves `--ledger` / `--no-ledger` to the run-ledger file this run
/// appends to. An explicit directory gets `ids-ledger.jsonl` inside it; with
/// no explicit path, a `--cache` run keeps its ledger alongside the cache
/// (`<cache>.ledger.jsonl`) so the two artifacts travel together.
fn ledger_path(o: &Options) -> Option<PathBuf> {
    if o.no_ledger {
        return None;
    }
    if let Some(path) = &o.ledger {
        if path.is_dir() {
            return Some(path.join("ids-ledger.jsonl"));
        }
        return Some(path.clone());
    }
    o.cache.as_ref().map(|cache| {
        let mut name = cache
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".ledger.jsonl");
        cache.with_file_name(name)
    })
}

/// The `--heartbeat` observer: prints one `[hb]` liveness line to stderr,
/// rate-limited to at most one line per `every` (a `--heartbeat 0` prints
/// every solver callback — useful only for debugging the plumbing itself).
struct HeartbeatPrinter {
    every: Duration,
    last: Mutex<Option<Instant>>,
}

impl ids_obs::RunObserver for HeartbeatPrinter {
    fn heartbeat(&self, hb: &ids_obs::Heartbeat) {
        {
            let mut last = self.last.lock().expect("heartbeat lock");
            let now = Instant::now();
            if let Some(prev) = *last {
                if now.duration_since(prev) < self.every {
                    return;
                }
            }
            *last = Some(now);
        }
        eprintln!(
            "[hb] {} [{}] conflicts {} decisions {} propagations {} restarts {} learned {} rounds {} pivots {}",
            hb.task.as_deref().unwrap_or("-"),
            hb.phase,
            hb.conflicts,
            hb.decisions,
            hb.propagations,
            hb.restarts,
            hb.learned,
            hb.theory_rounds,
            hb.pivots,
        );
    }
}

/// Arms `--trace` / `--heartbeat` / `--vc-timeout` / the run ledger before
/// the batch runs. The initial `[hb]` line guarantees at least one heartbeat
/// line even on runs that finish before the first solver callback fires.
fn install_observability(o: &Options, config: &DriverConfig) {
    if o.trace.is_some() {
        ids_obs::trace_start();
        ids_obs::set_thread_label("main".to_string());
    }
    if let Some(secs) = o.heartbeat {
        ids_obs::set_heartbeat_conflicts(1024);
        ids_obs::set_observer(Some(Arc::new(HeartbeatPrinter {
            every: Duration::from_secs(secs),
            last: Mutex::new(None),
        })));
        eprintln!("[hb] liveness lines at most every {}s", secs);
    }
    // Histograms feed both the ledger and the stuck-VC dossiers; the flight
    // recorder additionally needs heartbeat snapshots, so the watchdog arms a
    // cadence if --heartbeat did not.
    if config.ledger_path.is_some() || o.vc_timeout.is_some() {
        ids_obs::set_metrics(true);
    }
    if o.vc_timeout.is_some() && o.heartbeat.is_none() {
        ids_obs::set_heartbeat_conflicts(1024);
    }
    install_flush_guards(o);
}

/// Serializes every write of the `--trace` file: the supervisor thread
/// flushes partial snapshots while the run is still in flight, and the main
/// thread writes the final timeline at exit.
static TRACE_WRITE: Mutex<()> = Mutex::new(());

/// Set by the SIGINT handler; the supervisor thread turns it into a flush.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sigint {
    // Minimal binding to libc's `signal` (libc is already linked via std);
    // avoids depending on the `libc` crate for one constant and one call.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        // Only async-signal-safe work here: set a flag, let the supervisor
        // thread do the flushing and the exit.
        super::INTERRUPTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod sigint {
    pub fn install() {}
}

/// Writes whatever the tracer has buffered so far without stopping it — used
/// by the supervisor thread, the panic hook and the SIGINT path so that an
/// interrupted run still leaves a loadable (partial) Perfetto timeline.
fn flush_partial_trace(path: &std::path::Path) {
    let _guard = TRACE_WRITE.lock().unwrap_or_else(|e| e.into_inner());
    let lanes = ids_obs::trace_snapshot();
    if lanes.iter().all(|l| l.events.is_empty()) {
        return;
    }
    let json = ids_obs::chrome_trace_json(&lanes);
    if let Err(e) = std::fs::write(path, json) {
        eprintln!(
            "warning: cannot flush partial trace {}: {}",
            path.display(),
            e
        );
    }
}

/// Dumps a dossier for every VC still in flight — the interrupt/panic
/// counterpart of the watchdog's stuck-VC reports.
fn dump_flight_dossiers(reason: &str) {
    let dossiers = ids_obs::flight_dossiers();
    if dossiers.is_empty() {
        return;
    }
    eprintln!("[dossier] {}: {} VC(s) in flight", reason, dossiers.len());
    for d in &dossiers {
        eprint!("{}", ids_obs::render_dossier(d));
    }
}

/// Spawns the supervisor thread (stuck-VC watchdog + interrupt flush +
/// periodic partial-trace flush) and installs the panic hook and SIGINT
/// handler. All three exist so that aborted runs still leave their
/// observability artifacts behind; none of them is armed unless the run
/// asked for --trace or --vc-timeout.
fn install_flush_guards(o: &Options) {
    let trace = o.trace.clone();
    let vc_timeout = o.vc_timeout.map(Duration::from_secs);
    if trace.is_none() && vc_timeout.is_none() {
        return;
    }

    {
        let trace = trace.clone();
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            default_hook(info);
            dump_flight_dossiers("panic");
            if let Some(path) = &trace {
                flush_partial_trace(path);
                eprintln!("trace: partial timeline flushed to {}", path.display());
            }
        }));
    }

    sigint::install();
    std::thread::Builder::new()
        .name("obs-supervisor".to_string())
        .spawn(move || {
            const TICK: Duration = Duration::from_millis(200);
            const TRACE_FLUSH_EVERY: Duration = Duration::from_secs(5);
            let mut last_trace_flush = Instant::now();
            loop {
                std::thread::sleep(TICK);
                if INTERRUPTED.load(Ordering::SeqCst) {
                    dump_flight_dossiers("interrupted");
                    if let Some(path) = &trace {
                        flush_partial_trace(path);
                        eprintln!("trace: partial timeline flushed to {}", path.display());
                    }
                    // 130 = 128 + SIGINT, the conventional Ctrl-C exit code.
                    std::process::exit(130);
                }
                if let Some(timeout) = vc_timeout {
                    for d in ids_obs::stuck_dossiers(timeout) {
                        eprint!("{}", ids_obs::render_dossier(&d));
                    }
                }
                if trace.is_some() && last_trace_flush.elapsed() >= TRACE_FLUSH_EVERY {
                    last_trace_flush = Instant::now();
                    if let Some(path) = &trace {
                        flush_partial_trace(path);
                    }
                }
            }
        })
        .expect("spawn obs supervisor");
}

/// Writes the `--trace` timeline (if armed). Returns the exit code to use
/// instead of the verdict-derived one when the file cannot be written.
fn write_trace(o: &Options) -> Option<ExitCode> {
    let path = o.trace.as_ref()?;
    let _guard = TRACE_WRITE.lock().unwrap_or_else(|e| e.into_inner());
    let lanes = ids_obs::trace_stop();
    let json = ids_obs::chrome_trace_json(&lanes);
    match std::fs::write(path, json) {
        Ok(()) => {
            let events: usize = lanes.iter().map(|l| l.events.len()).sum();
            eprintln!(
                "trace: {} events on {} lanes written to {}",
                events,
                lanes.len(),
                path.display()
            );
            None
        }
        Err(e) => {
            eprintln!("error: cannot write trace {}: {}", path.display(), e);
            Some(ExitCode::from(2))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprint!("{}", USAGE);
        return ExitCode::from(2);
    };
    let options = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", USAGE);
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {}\n\n{}", msg, USAGE);
            return ExitCode::from(2);
        }
    };
    match command.as_str() {
        "suite" => run_suite(&options),
        "verify" => run_verify(&options),
        "compare" => run_compare(&options),
        "history" => run_history(&options),
        "-h" | "--help" => {
            print!("{}", USAGE);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command '{}'\n\n{}", other, USAGE);
            ExitCode::from(2)
        }
    }
}

fn run_suite(options: &Options) -> ExitCode {
    if !options.positional.is_empty() {
        eprintln!("error: 'suite' takes no positional arguments\n\n{}", USAGE);
        return ExitCode::from(2);
    }
    let mut benchmarks = if options.quick {
        quick_benchmarks()
    } else {
        all_benchmarks()
    };
    if let Some(wanted) = &options.structure {
        let needle = wanted.to_lowercase();
        benchmarks.retain(|b| b.name.to_lowercase().contains(&needle));
        if benchmarks.is_empty() {
            eprintln!("error: no registry structure matches '{}'", wanted);
            return ExitCode::from(2);
        }
    }
    let mut selections: Vec<Selection> = benchmarks.iter().map(Selection::from_benchmark).collect();
    for sel in &mut selections {
        sel.methods.retain(|m| options.method_wanted(m));
    }
    // A --method name that matched nothing is almost always a typo (or a
    // renamed benchmark method): fail loudly instead of silently shrinking
    // the run — CI smoke steps depend on every listed method actually running.
    let mut unmatched = false;
    for wanted in &options.methods {
        if !selections
            .iter()
            .any(|sel| sel.methods.iter().any(|m| m == wanted))
        {
            eprintln!(
                "error: --method '{}' matches no method in the suite",
                wanted
            );
            unmatched = true;
        }
    }
    if unmatched {
        return ExitCode::from(2);
    }
    selections.retain(|sel| !sel.methods.is_empty());
    if selections.is_empty() {
        eprintln!("error: the --method filter matched no methods");
        return ExitCode::from(2);
    }
    let config = driver_config(options);
    install_observability(options, &config);
    let batch = verify_selections(&selections, &config);
    let trace_failure = write_trace(options);
    let code = emit(&batch, &config, "suite", options.json);
    trace_failure.unwrap_or(code)
}

fn run_verify(options: &Options) -> ExitCode {
    let [file] = options.positional.as_slice() else {
        eprintln!("error: 'verify' takes exactly one file\n\n{}", USAGE);
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {}", file, e);
            return ExitCode::from(2);
        }
    };
    let config = driver_config(options);
    install_observability(options, &config);
    let pipeline_config = PipelineConfig {
        encoding: config.encoding,
        profile: config.solver_profile,
        ..PipelineConfig::default()
    };

    let batch = if let Some(wanted) = &options.structure {
        // Merge the file with a registry definition; FWYB macros expand.
        // The name must match exactly one structure — verifying against a
        // silently guessed definition would produce meaningless verdicts.
        let registry = all_benchmarks();
        let needle = wanted.to_lowercase();
        let matches: Vec<&ids_structures::Benchmark> = registry
            .iter()
            .filter(|b| b.name.to_lowercase().contains(&needle))
            .collect();
        let benchmark = match matches.as_slice() {
            [one] => *one,
            [] => {
                eprintln!("error: no registry structure matches '{}'", wanted);
                eprintln!("known structures:");
                for b in &registry {
                    eprintln!("  {}", b.name);
                }
                return ExitCode::from(2);
            }
            several => {
                eprintln!("error: --structure '{}' is ambiguous; it matches:", wanted);
                for b in several {
                    eprintln!("  {}", b.name);
                }
                return ExitCode::from(2);
            }
        };
        let methods = match methods_in(&src, options) {
            Ok(m) => m,
            Err(code) => return code,
        };
        if let Some(code) = check_method_filter(&methods, options) {
            return code;
        }
        let selection = Selection {
            name: benchmark.name,
            definition: &benchmark.definition,
            methods_src: &src,
            methods,
        };
        verify_selections(std::slice::from_ref(&selection), &config)
    } else {
        // Stand-alone program: no definition, no macro expansion.
        let program = match ids_ivl::parse_program(&src)
            .map_err(|e| e.to_string())
            .and_then(|p| {
                ids_ivl::check_program(&p)
                    .map(|_| p)
                    .map_err(|e| e.to_string())
            }) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {}: {}", file, e);
                return ExitCode::from(2);
            }
        };
        let label = PathBuf::from(file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| file.clone());
        let selected: Vec<&str> = program
            .procedures
            .iter()
            .filter(|p| p.body.is_some())
            .map(|p| p.name.as_str())
            .filter(|n| options.method_wanted(n))
            .collect();
        if let Some(code) = check_method_filter(&selected, options) {
            return code;
        }
        let mut tasks = Vec::new();
        let mut batch = BatchReport::default();
        for name in selected {
            match prepare_plain(&label, &program, name, pipeline_config) {
                Ok(task) => tasks.push(task),
                Err(e) => batch.errors.push(ids_driver::BatchError {
                    structure: label.clone(),
                    method: name.to_string(),
                    message: e.to_string(),
                }),
            }
        }
        let mut solved = verify_tasks(tasks, &config);
        solved.errors.extend(batch.errors);
        solved
    };
    let trace_failure = write_trace(options);
    let code = emit(&batch, &config, "verify", options.json);
    trace_failure.unwrap_or(code)
}

/// Loads a ledger file for `compare`/`history`, with a uniform error shape.
fn load_ledger(path: &str) -> Result<Vec<ledger::RunRecord>, ExitCode> {
    match ledger::load_runs(std::path::Path::new(path)) {
        Ok(runs) if runs.is_empty() => {
            eprintln!("error: {} contains no parseable runs", path);
            Err(ExitCode::from(2))
        }
        Ok(runs) => Ok(runs),
        Err(e) => {
            eprintln!("error: cannot read ledger {}: {}", path, e);
            Err(ExitCode::from(2))
        }
    }
}

/// One-line description of a run used in `compare`/`history` headers.
fn run_label(r: &ledger::RunRecord) -> String {
    format!(
        "ts {} host {} pool {} profile {} jobs {} ({} VCs, wall {:.2}s)",
        r.meta.timestamp,
        r.meta.hostname,
        r.meta.pool_mode,
        r.meta.profile,
        r.meta.jobs,
        r.vcs.len(),
        r.meta.wall_s,
    )
}

fn compare_opts(options: &Options) -> ledger::CompareOpts {
    let mut opts = ledger::CompareOpts::default();
    if let Some(pct) = options.threshold_pct {
        opts.threshold_pct = pct;
    }
    if let Some(ms) = options.threshold_ms {
        opts.threshold_ms = ms;
    }
    opts.advisory_timing = options.advisory_timing;
    opts
}

/// `ids-verify compare BASE NEW`: joins the most recent run of each ledger
/// per VC key, reports timing deltas with phase attribution, and exits 1 on
/// a regression or a verdict change (0 otherwise, 2 on usage/IO errors).
fn run_compare(options: &Options) -> ExitCode {
    let [base_path, new_path] = options.positional.as_slice() else {
        eprintln!(
            "error: 'compare' takes exactly two ledger files\n\n{}",
            USAGE
        );
        return ExitCode::from(2);
    };
    let (base_runs, new_runs) = match (load_ledger(base_path), load_ledger(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let base = base_runs.last().expect("nonempty");
    let new = new_runs.last().expect("nonempty");
    let opts = compare_opts(options);
    let report = ledger::compare(base, new, &opts);

    if options.json {
        println!("{}", compare_json(&report, &opts));
    } else {
        println!("base: {} — {}", base_path, run_label(base));
        println!("new:  {} — {}", new_path, run_label(new));
        for d in &report.deltas {
            if d.verdict_changed {
                println!(
                    "  VERDICT CHANGE {}: {} -> {}",
                    d.label, d.base_verdict, d.new_verdict
                );
            }
            if d.regressed || d.improved {
                let tag = if d.regressed {
                    "REGRESSION"
                } else {
                    "improved"
                };
                let pct = if d.base_ms > 0.0 {
                    (d.new_ms - d.base_ms) / d.base_ms * 100.0
                } else {
                    0.0
                };
                println!(
                    "  {} {}: {:.1} -> {:.1} ms ({:+.0}%){}{}",
                    tag,
                    d.label,
                    d.base_ms,
                    d.new_ms,
                    pct,
                    if d.attribution.is_empty() {
                        ""
                    } else {
                        " — "
                    },
                    d.attribution,
                );
            }
        }
        for label in &report.only_base {
            println!("  only in base: {}", label);
        }
        for label in &report.only_new {
            println!("  only in new: {}", label);
        }
        println!(
            "{} VCs joined | {} regressions{}, {} improvements, {} verdict changes",
            report.deltas.len(),
            report.regressions,
            if opts.advisory_timing && report.regressions > 0 {
                " (advisory)"
            } else {
                ""
            },
            report.improvements,
            report.verdict_mismatches,
        );
    }
    if report.failed(&opts) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn compare_json(report: &ledger::CompareReport, opts: &ledger::CompareOpts) -> String {
    let mut j = Json::new();
    j.begin_object();
    j.str_field("command", "compare");
    j.num_field("threshold_pct", opts.threshold_pct);
    j.num_field("threshold_ms", opts.threshold_ms);
    j.bool_field("advisory_timing", opts.advisory_timing);
    j.key("deltas");
    j.begin_array();
    for d in &report.deltas {
        j.begin_object();
        j.str_field("key", &format!("{:032x}", d.key));
        j.str_field("label", &d.label);
        j.str_field("base_verdict", &d.base_verdict);
        j.str_field("new_verdict", &d.new_verdict);
        j.num_field("base_ms", d.base_ms);
        j.num_field("new_ms", d.new_ms);
        j.bool_field("verdict_changed", d.verdict_changed);
        j.bool_field("regressed", d.regressed);
        j.bool_field("improved", d.improved);
        j.bool_field("cached", d.cached);
        if let Some(phase) = &d.attributed_phase {
            j.str_field("attributed_phase", phase);
        }
        if !d.attribution.is_empty() {
            j.str_field("attribution", &d.attribution);
        }
        j.end_object();
    }
    j.end_array();
    j.key("only_base");
    j.begin_array();
    for label in &report.only_base {
        j.str_value(label);
    }
    j.end_array();
    j.key("only_new");
    j.begin_array();
    for label in &report.only_new {
        j.str_value(label);
    }
    j.end_array();
    j.num_field("regressions", report.regressions as f64);
    j.num_field("improvements", report.improvements as f64);
    j.num_field("verdict_changes", report.verdict_mismatches as f64);
    j.bool_field("failed", report.failed(opts));
    j.end_object();
    j.finish()
}

/// `ids-verify history LEDGER`: per-VC solve-time trajectory across every
/// run in a ledger file, optionally filtered by `--structure` / `--method`.
fn run_history(options: &Options) -> ExitCode {
    let [path] = options.positional.as_slice() else {
        eprintln!(
            "error: 'history' takes exactly one ledger file\n\n{}",
            USAGE
        );
        return ExitCode::from(2);
    };
    let runs = match load_ledger(path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    println!("{}: {} runs", path, runs.len());
    for (i, r) in runs.iter().enumerate() {
        println!("  run {}: {}", i + 1, run_label(r));
    }
    let lines = ledger::history_lines(&runs, None);
    let structure = options.structure.as_deref().map(str::to_lowercase);
    let methods: Vec<String> = options.methods.iter().map(|m| m.to_lowercase()).collect();
    let mut shown = 0usize;
    for line in &lines {
        let lower = line.to_lowercase();
        if let Some(s) = &structure {
            if !lower.contains(s.as_str()) {
                continue;
            }
        }
        if !methods.is_empty() && !methods.iter().any(|m| lower.contains(m.as_str())) {
            continue;
        }
        println!("{}", line);
        shown += 1;
    }
    if shown == 0 {
        eprintln!("error: no ledger rows match the filter");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// Rejects a run in which a `--method` name matched nothing, or nothing is
/// left to verify — an empty "all verified" run is a trap for scripts.
fn check_method_filter<S: AsRef<str>>(selected: &[S], options: &Options) -> Option<ExitCode> {
    let mut bad = false;
    for wanted in &options.methods {
        if !selected.iter().any(|m| m.as_ref() == wanted) {
            eprintln!("error: --method '{}' matches no procedure", wanted);
            bad = true;
        }
    }
    if selected.is_empty() {
        eprintln!("error: no procedures with a body to verify");
        bad = true;
    }
    if bad {
        Some(ExitCode::from(2))
    } else {
        None
    }
}

/// The bodies of a methods file, restricted to the `--method` filter.
fn methods_in(src: &str, options: &Options) -> Result<Vec<String>, ExitCode> {
    match ids_ivl::parse_program(src) {
        Ok(p) => Ok(p
            .procedures
            .iter()
            .filter(|p| p.body.is_some())
            .map(|p| p.name.clone())
            .filter(|n| options.method_wanted(n))
            .collect()),
        Err(e) => {
            eprintln!("error: {}", e);
            Err(ExitCode::from(2))
        }
    }
}

fn emit(batch: &BatchReport, config: &DriverConfig, command: &str, json: bool) -> ExitCode {
    if json {
        println!("{}", to_json(batch, config, command));
    } else {
        let rows: Vec<Table2Row> = batch.reports.iter().map(Table2Row::from).collect();
        print!("{}", format_table(&rows));
        for e in &batch.errors {
            eprintln!("error: [{}::{}] {}", e.structure, e.method, e.message);
        }
        let s = &batch.stats;
        let verified = batch
            .reports
            .iter()
            .filter(|r| r.outcome.is_verified())
            .count();
        println!(
            "\n{} methods ({} verified, {} failed), {} VCs | cache hits {}, SMT queries {}, skipped {} ({} cancelled in flight) | prelude reused {}, lowered {} | wall {:.2}s (jobs={}, pool={}, profile={})",
            s.methods,
            verified,
            s.methods - verified,
            s.vcs,
            s.cache_hits,
            s.smt_queries,
            s.skipped_vcs,
            s.cancellations,
            s.solver.prelude_reused,
            s.solver.prelude_lowered,
            s.wall.as_secs_f64(),
            config.jobs,
            config.pool_mode.as_str(),
            config.solver_profile.as_str(),
        );
    }
    if !batch.errors.is_empty() {
        ExitCode::from(2)
    } else if batch.all_verified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn solver_json(j: &mut Json, s: &SolverStats) {
    j.begin_object();
    j.num_field("decisions", s.sat_decisions as f64);
    j.num_field("conflicts", s.sat_conflicts as f64);
    j.num_field("propagations", s.sat_propagations as f64);
    j.num_field("theory_rounds", s.theory_rounds as f64);
    j.num_field("sat_time_s", s.sat_time.as_secs_f64());
    j.num_field("theory_time_s", s.theory_time.as_secs_f64());
    j.num_field("lower_time_s", s.lower_time.as_secs_f64());
    j.num_field("euf_time_s", s.euf_time.as_secs_f64());
    j.num_field("simplex_time_s", s.simplex_time.as_secs_f64());
    j.num_field("prelude_reused", s.prelude_reused as f64);
    j.num_field("prelude_lowered", s.prelude_lowered as f64);
    j.num_field("restarts", s.restarts as f64);
    j.num_field("learned_kept", s.learned_kept as f64);
    j.num_field("learned_deleted", s.learned_deleted as f64);
    j.num_field("max_lbd", s.max_lbd as f64);
    j.num_field("pivots", s.pivots as f64);
    j.num_field("unsat_cores", s.unsat_cores as f64);
    j.num_field("unsat_core_size", s.unsat_core_size as f64);
    j.num_field("slice_hits", s.slice_hits as f64);
    j.num_field("slice_fallbacks", s.slice_fallbacks as f64);
    j.num_field("slice_dropped_hyps", s.slice_dropped_hyps as f64);
    j.end_object();
}

/// The per-phase wall-clock breakdown advertised by the observability layer.
/// `overhead_s` is everything the four instrumented phases do not cover
/// (Tseitin conversion, clause management, scheduling) — clamped at zero
/// because cached VCs have wall time without solver time.
fn phases_json(j: &mut Json, s: &SolverStats, wall: Duration) {
    let lower = s.lower_time.as_secs_f64();
    let sat = s.sat_time.as_secs_f64();
    let euf = s.euf_time.as_secs_f64();
    let simplex = s.simplex_time.as_secs_f64();
    let overhead = (wall.as_secs_f64() - lower - sat - euf - simplex).max(0.0);
    j.begin_object();
    j.num_field("lower_s", lower);
    j.num_field("sat_s", sat);
    j.num_field("euf_s", euf);
    j.num_field("simplex_s", simplex);
    j.num_field("overhead_s", overhead);
    j.end_object();
}

/// Histogram summaries for `--json` per-VC rows: count/sum/max plus the p50
/// and p90 log-bucket upper bounds, per non-empty metric.
fn hists_json(j: &mut Json, hists: &ids_obs::HistogramSet) {
    j.begin_object();
    for metric in ids_obs::Metric::ALL {
        let h = hists.get(metric);
        if h.is_empty() {
            continue;
        }
        j.key(metric.name());
        j.begin_object();
        j.num_field("count", h.count() as f64);
        j.num_field("sum", h.sum() as f64);
        j.num_field("max", h.max() as f64);
        j.num_field("p50", h.quantile(0.5) as f64);
        j.num_field("p90", h.quantile(0.9) as f64);
        j.end_object();
    }
    j.end_object();
}

fn verdict_str(v: VcVerdict) -> &'static str {
    match v {
        VcVerdict::Valid => "valid",
        VcVerdict::Refuted => "refuted",
        VcVerdict::Unknown => "unknown",
    }
}

fn to_json(batch: &BatchReport, config: &DriverConfig, command: &str) -> String {
    let mut j = Json::new();
    j.begin_object();
    j.str_field("command", command);
    j.num_field("jobs", config.jobs as f64);
    j.str_field("pool_mode", config.pool_mode.as_str());
    j.str_field("solver_profile", config.solver_profile.as_str());
    j.key("rows");
    j.begin_array();
    for r in &batch.reports {
        j.begin_object();
        j.str_field("structure", &r.structure);
        j.str_field("method", &r.method);
        j.bool_field("verified", r.outcome.is_verified());
        if let ids_vcgen::VerifyOutcome::Refuted { failed } = &r.outcome {
            j.str_field("failed_vc", failed);
        }
        j.num_field("vcs", r.num_vcs as f64);
        j.num_field("cached_vcs", r.cached_vcs as f64);
        j.num_field("time_s", r.duration.as_secs_f64());
        j.num_field("loc", r.loc as f64);
        j.num_field("spec", r.spec as f64);
        j.num_field("annotations", r.annotations as f64);
        j.num_field("lc_size", r.lc_size as f64);
        j.key("solver");
        solver_json(&mut j, &r.solver);
        j.key("phases");
        phases_json(&mut j, &r.solver, r.duration);
        j.key("vc_reports");
        j.begin_array();
        for vc in &r.vc_reports {
            j.begin_object();
            j.num_field("index", vc.vc_index as f64);
            j.str_field("key", &format!("{:032x}", vc.vc_key));
            j.str_field("description", &vc.description);
            j.str_field("verdict", verdict_str(vc.verdict));
            j.bool_field("cached", vc.cached);
            j.num_field("queue_ms", vc.queue_time.as_secs_f64() * 1e3);
            j.num_field("solve_ms", vc.wall_time.as_secs_f64() * 1e3);
            j.num_field("unsat_cores", vc.solver.unsat_cores as f64);
            j.num_field("unsat_core_size", vc.solver.unsat_core_size as f64);
            j.num_field("slice_hits", vc.solver.slice_hits as f64);
            j.num_field("slice_fallbacks", vc.solver.slice_fallbacks as f64);
            j.num_field("slice_dropped_hyps", vc.solver.slice_dropped_hyps as f64);
            if let Some(core) = &vc.core {
                j.key("core");
                j.begin_array();
                for &t in core {
                    j.num_value(t as f64);
                }
                j.end_array();
            }
            j.key("phases");
            phases_json(&mut j, &vc.solver, vc.wall_time);
            if !vc.hists.is_empty() {
                j.key("hists");
                hists_json(&mut j, &vc.hists);
            }
            j.end_object();
        }
        j.end_array();
        j.end_object();
    }
    j.end_array();
    j.key("errors");
    j.begin_array();
    for e in &batch.errors {
        j.begin_object();
        j.str_field("structure", &e.structure);
        j.str_field("method", &e.method);
        j.str_field("message", &e.message);
        j.end_object();
    }
    j.end_array();
    j.key("stats");
    j.begin_object();
    j.num_field("methods", batch.stats.methods as f64);
    j.num_field("vcs", batch.stats.vcs as f64);
    j.num_field("cache_hits", batch.stats.cache_hits as f64);
    j.num_field("smt_queries", batch.stats.smt_queries as f64);
    j.num_field("skipped_vcs", batch.stats.skipped_vcs as f64);
    j.num_field("cancellations", batch.stats.cancellations as f64);
    j.num_field("wall_s", batch.stats.wall.as_secs_f64());
    j.key("solver");
    solver_json(&mut j, &batch.stats.solver);
    j.key("phases");
    phases_json(&mut j, &batch.stats.solver, batch.stats.wall);
    j.end_object();
    j.end_object();
    j.finish()
}
