//! `ids-verify` — command-line front end of the parallel batch verifier.
//!
//! ```text
//! ids-verify suite  [--quick] [--jobs N] [--cache PATH] [--json] [--quantified]
//! ids-verify verify <FILE> [--structure NAME] [--method NAME]
//!                   [--jobs N] [--cache PATH] [--json] [--quantified]
//! ```
//!
//! `suite` runs the Table-2 registry (optionally filtered by `--structure` /
//! `--method`); `verify` runs one IVL file, either stand-alone or merged with
//! a registry structure's definition.
//! Exit code 0 = everything verified, 1 = some method failed or was
//! undecided, 2 = usage or pipeline error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ids_core::pipeline::{prepare_plain, PipelineConfig, VcVerdict};
use ids_core::report::{format_table, Table2Row};
use ids_driver::json::Json;
use ids_driver::{verify_selections, verify_tasks, BatchReport, DriverConfig, PoolMode, Selection};
use ids_smt::{SolverProfile, SolverStats};
use ids_structures::{all_benchmarks, quick_benchmarks};
use ids_vcgen::Encoding;

const USAGE: &str = "\
ids-verify — parallel batch verification of intrinsically defined data structures

USAGE:
    ids-verify suite  [OPTIONS]          verify the whole Table-2 registry
    ids-verify verify <FILE> [OPTIONS]   verify every procedure of an IVL file

OPTIONS:
    --jobs N           worker threads (default: available parallelism)
    --cache PATH       persistent VC cache file (created if missing)
    --json             machine-readable JSON output
    --quantified       use the quantified (Dafny-style) encoding
    --pool-mode MODE   solver-state sharing across queries (verdicts are
                       identical in every mode):
                         structure  one warm solver pool per data structure,
                                    the shared hypothesis prelude lowered
                                    once at structure scope (default)
                         method     one incremental session per method
                         none       a fresh solver per VC
    --no-incremental   deprecated alias for --pool-mode none
    --solver-profile P solver search heuristics (verdicts are identical in
                       every profile):
                         default    Luby restarts, LBD-based learned-clause
                                    deletion, hybrid simplex pivoting
                         legacy     geometric restarts, no clause deletion,
                                    Bland pivoting (pre-tuning behaviour)
    --trace PATH       write a Chrome trace_event JSON timeline of the run to
                       PATH (open in chrome://tracing or Perfetto): one lane
                       per worker thread, spans for each pipeline phase
                       (lowering, CNF, SAT search segmented by restart, EUF,
                       simplex), instants for cache hits, dedup hits and
                       early-stop cancellations
    --heartbeat SECS   print a liveness line to stderr at most every SECS
                       seconds while the solver works (conflict/pivot
                       counters of the VC currently in progress)
    --quick            (suite) only the quick benchmark subset
    --structure NAME   (suite) only structures whose name contains NAME
                       (substring match, case-insensitive);
                       (verify) merge the file with this registry structure's
                       definition
    --method NAME      only this method; repeatable
    -h, --help         this message
";

struct Options {
    jobs: Option<usize>,
    cache: Option<PathBuf>,
    json: bool,
    quantified: bool,
    pool_mode: PoolMode,
    solver_profile: SolverProfile,
    trace: Option<PathBuf>,
    heartbeat: Option<u64>,
    quick: bool,
    structure: Option<String>,
    methods: Vec<String>,
    positional: Vec<String>,
}

impl Options {
    /// True if `name` passes the `--method` filter.
    fn method_wanted(&self, name: &str) -> bool {
        self.methods.is_empty() || self.methods.iter().any(|m| m == name)
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        jobs: None,
        cache: None,
        json: false,
        quantified: false,
        pool_mode: PoolMode::default(),
        solver_profile: SolverProfile::default(),
        trace: None,
        heartbeat: None,
        quick: false,
        structure: None,
        methods: Vec::new(),
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{} requires a value", flag))
        };
        match arg.as_str() {
            "--jobs" => {
                let v = value_of("--jobs")?;
                o.jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid --jobs value '{}'", v))?
                        .max(1),
                );
            }
            "--cache" => o.cache = Some(PathBuf::from(value_of("--cache")?)),
            "--json" => o.json = true,
            "--quantified" => o.quantified = true,
            "--pool-mode" => {
                let v = value_of("--pool-mode")?;
                o.pool_mode = PoolMode::parse(&v).ok_or_else(|| {
                    format!(
                        "invalid --pool-mode '{}' (expected structure, method or none)",
                        v
                    )
                })?;
            }
            "--no-incremental" => o.pool_mode = PoolMode::None,
            "--solver-profile" => {
                let v = value_of("--solver-profile")?;
                o.solver_profile = SolverProfile::parse(&v).ok_or_else(|| {
                    format!(
                        "invalid --solver-profile '{}' (expected default or legacy)",
                        v
                    )
                })?;
            }
            "--trace" => o.trace = Some(PathBuf::from(value_of("--trace")?)),
            "--heartbeat" => {
                let v = value_of("--heartbeat")?;
                o.heartbeat = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --heartbeat value '{}'", v))?,
                );
            }
            "--quick" => o.quick = true,
            "--structure" => o.structure = Some(value_of("--structure")?),
            "--method" => o.methods.push(value_of("--method")?),
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option '{}'", other)),
            other => o.positional.push(other.to_string()),
        }
    }
    Ok(o)
}

fn driver_config(o: &Options) -> DriverConfig {
    let mut config = DriverConfig {
        encoding: if o.quantified {
            Encoding::Quantified
        } else {
            Encoding::Decidable
        },
        cache_path: o.cache.clone(),
        pool_mode: o.pool_mode,
        solver_profile: o.solver_profile,
        ..DriverConfig::default()
    };
    if let Some(jobs) = o.jobs {
        config.jobs = jobs;
    }
    config
}

/// The `--heartbeat` observer: prints one `[hb]` liveness line to stderr,
/// rate-limited to at most one line per `every` (a `--heartbeat 0` prints
/// every solver callback — useful only for debugging the plumbing itself).
struct HeartbeatPrinter {
    every: Duration,
    last: Mutex<Option<Instant>>,
}

impl ids_obs::RunObserver for HeartbeatPrinter {
    fn heartbeat(&self, hb: &ids_obs::Heartbeat) {
        {
            let mut last = self.last.lock().expect("heartbeat lock");
            let now = Instant::now();
            if let Some(prev) = *last {
                if now.duration_since(prev) < self.every {
                    return;
                }
            }
            *last = Some(now);
        }
        eprintln!(
            "[hb] {} [{}] conflicts {} decisions {} propagations {} restarts {} learned {} rounds {} pivots {}",
            hb.task.as_deref().unwrap_or("-"),
            hb.phase,
            hb.conflicts,
            hb.decisions,
            hb.propagations,
            hb.restarts,
            hb.learned,
            hb.theory_rounds,
            hb.pivots,
        );
    }
}

/// Arms `--trace` / `--heartbeat` before the batch runs. The initial `[hb]`
/// line guarantees at least one heartbeat line even on runs that finish
/// before the first solver callback fires.
fn install_observability(o: &Options) {
    if o.trace.is_some() {
        ids_obs::trace_start();
        ids_obs::set_thread_label("main".to_string());
    }
    if let Some(secs) = o.heartbeat {
        ids_obs::set_heartbeat_conflicts(1024);
        ids_obs::set_observer(Some(Arc::new(HeartbeatPrinter {
            every: Duration::from_secs(secs),
            last: Mutex::new(None),
        })));
        eprintln!("[hb] liveness lines at most every {}s", secs);
    }
}

/// Writes the `--trace` timeline (if armed). Returns the exit code to use
/// instead of the verdict-derived one when the file cannot be written.
fn write_trace(o: &Options) -> Option<ExitCode> {
    let path = o.trace.as_ref()?;
    let lanes = ids_obs::trace_stop();
    let json = ids_obs::chrome_trace_json(&lanes);
    match std::fs::write(path, json) {
        Ok(()) => {
            let events: usize = lanes.iter().map(|l| l.events.len()).sum();
            eprintln!(
                "trace: {} events on {} lanes written to {}",
                events,
                lanes.len(),
                path.display()
            );
            None
        }
        Err(e) => {
            eprintln!("error: cannot write trace {}: {}", path.display(), e);
            Some(ExitCode::from(2))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprint!("{}", USAGE);
        return ExitCode::from(2);
    };
    let options = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", USAGE);
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {}\n\n{}", msg, USAGE);
            return ExitCode::from(2);
        }
    };
    match command.as_str() {
        "suite" => run_suite(&options),
        "verify" => run_verify(&options),
        "-h" | "--help" => {
            print!("{}", USAGE);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command '{}'\n\n{}", other, USAGE);
            ExitCode::from(2)
        }
    }
}

fn run_suite(options: &Options) -> ExitCode {
    if !options.positional.is_empty() {
        eprintln!("error: 'suite' takes no positional arguments\n\n{}", USAGE);
        return ExitCode::from(2);
    }
    let mut benchmarks = if options.quick {
        quick_benchmarks()
    } else {
        all_benchmarks()
    };
    if let Some(wanted) = &options.structure {
        let needle = wanted.to_lowercase();
        benchmarks.retain(|b| b.name.to_lowercase().contains(&needle));
        if benchmarks.is_empty() {
            eprintln!("error: no registry structure matches '{}'", wanted);
            return ExitCode::from(2);
        }
    }
    let mut selections: Vec<Selection> = benchmarks.iter().map(Selection::from_benchmark).collect();
    for sel in &mut selections {
        sel.methods.retain(|m| options.method_wanted(m));
    }
    // A --method name that matched nothing is almost always a typo (or a
    // renamed benchmark method): fail loudly instead of silently shrinking
    // the run — CI smoke steps depend on every listed method actually running.
    let mut unmatched = false;
    for wanted in &options.methods {
        if !selections
            .iter()
            .any(|sel| sel.methods.iter().any(|m| m == wanted))
        {
            eprintln!(
                "error: --method '{}' matches no method in the suite",
                wanted
            );
            unmatched = true;
        }
    }
    if unmatched {
        return ExitCode::from(2);
    }
    selections.retain(|sel| !sel.methods.is_empty());
    if selections.is_empty() {
        eprintln!("error: the --method filter matched no methods");
        return ExitCode::from(2);
    }
    let config = driver_config(options);
    install_observability(options);
    let batch = verify_selections(&selections, &config);
    let trace_failure = write_trace(options);
    let code = emit(&batch, &config, "suite", options.json);
    trace_failure.unwrap_or(code)
}

fn run_verify(options: &Options) -> ExitCode {
    let [file] = options.positional.as_slice() else {
        eprintln!("error: 'verify' takes exactly one file\n\n{}", USAGE);
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {}", file, e);
            return ExitCode::from(2);
        }
    };
    let config = driver_config(options);
    install_observability(options);
    let pipeline_config = PipelineConfig {
        encoding: config.encoding,
        profile: config.solver_profile,
        ..PipelineConfig::default()
    };

    let batch = if let Some(wanted) = &options.structure {
        // Merge the file with a registry definition; FWYB macros expand.
        // The name must match exactly one structure — verifying against a
        // silently guessed definition would produce meaningless verdicts.
        let registry = all_benchmarks();
        let needle = wanted.to_lowercase();
        let matches: Vec<&ids_structures::Benchmark> = registry
            .iter()
            .filter(|b| b.name.to_lowercase().contains(&needle))
            .collect();
        let benchmark = match matches.as_slice() {
            [one] => *one,
            [] => {
                eprintln!("error: no registry structure matches '{}'", wanted);
                eprintln!("known structures:");
                for b in &registry {
                    eprintln!("  {}", b.name);
                }
                return ExitCode::from(2);
            }
            several => {
                eprintln!("error: --structure '{}' is ambiguous; it matches:", wanted);
                for b in several {
                    eprintln!("  {}", b.name);
                }
                return ExitCode::from(2);
            }
        };
        let methods = match methods_in(&src, options) {
            Ok(m) => m,
            Err(code) => return code,
        };
        if let Some(code) = check_method_filter(&methods, options) {
            return code;
        }
        let selection = Selection {
            name: benchmark.name,
            definition: &benchmark.definition,
            methods_src: &src,
            methods,
        };
        verify_selections(std::slice::from_ref(&selection), &config)
    } else {
        // Stand-alone program: no definition, no macro expansion.
        let program = match ids_ivl::parse_program(&src)
            .map_err(|e| e.to_string())
            .and_then(|p| {
                ids_ivl::check_program(&p)
                    .map(|_| p)
                    .map_err(|e| e.to_string())
            }) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {}: {}", file, e);
                return ExitCode::from(2);
            }
        };
        let label = PathBuf::from(file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| file.clone());
        let selected: Vec<&str> = program
            .procedures
            .iter()
            .filter(|p| p.body.is_some())
            .map(|p| p.name.as_str())
            .filter(|n| options.method_wanted(n))
            .collect();
        if let Some(code) = check_method_filter(&selected, options) {
            return code;
        }
        let mut tasks = Vec::new();
        let mut batch = BatchReport::default();
        for name in selected {
            match prepare_plain(&label, &program, name, pipeline_config) {
                Ok(task) => tasks.push(task),
                Err(e) => batch.errors.push(ids_driver::BatchError {
                    structure: label.clone(),
                    method: name.to_string(),
                    message: e.to_string(),
                }),
            }
        }
        let mut solved = verify_tasks(tasks, &config);
        solved.errors.extend(batch.errors);
        solved
    };
    let trace_failure = write_trace(options);
    let code = emit(&batch, &config, "verify", options.json);
    trace_failure.unwrap_or(code)
}

/// Rejects a run in which a `--method` name matched nothing, or nothing is
/// left to verify — an empty "all verified" run is a trap for scripts.
fn check_method_filter<S: AsRef<str>>(selected: &[S], options: &Options) -> Option<ExitCode> {
    let mut bad = false;
    for wanted in &options.methods {
        if !selected.iter().any(|m| m.as_ref() == wanted) {
            eprintln!("error: --method '{}' matches no procedure", wanted);
            bad = true;
        }
    }
    if selected.is_empty() {
        eprintln!("error: no procedures with a body to verify");
        bad = true;
    }
    if bad {
        Some(ExitCode::from(2))
    } else {
        None
    }
}

/// The bodies of a methods file, restricted to the `--method` filter.
fn methods_in(src: &str, options: &Options) -> Result<Vec<String>, ExitCode> {
    match ids_ivl::parse_program(src) {
        Ok(p) => Ok(p
            .procedures
            .iter()
            .filter(|p| p.body.is_some())
            .map(|p| p.name.clone())
            .filter(|n| options.method_wanted(n))
            .collect()),
        Err(e) => {
            eprintln!("error: {}", e);
            Err(ExitCode::from(2))
        }
    }
}

fn emit(batch: &BatchReport, config: &DriverConfig, command: &str, json: bool) -> ExitCode {
    if json {
        println!("{}", to_json(batch, config, command));
    } else {
        let rows: Vec<Table2Row> = batch.reports.iter().map(Table2Row::from).collect();
        print!("{}", format_table(&rows));
        for e in &batch.errors {
            eprintln!("error: [{}::{}] {}", e.structure, e.method, e.message);
        }
        let s = &batch.stats;
        let verified = batch
            .reports
            .iter()
            .filter(|r| r.outcome.is_verified())
            .count();
        println!(
            "\n{} methods ({} verified, {} failed), {} VCs | cache hits {}, SMT queries {}, skipped {} ({} cancelled in flight) | prelude reused {}, lowered {} | wall {:.2}s (jobs={}, pool={}, profile={})",
            s.methods,
            verified,
            s.methods - verified,
            s.vcs,
            s.cache_hits,
            s.smt_queries,
            s.skipped_vcs,
            s.cancellations,
            s.solver.prelude_reused,
            s.solver.prelude_lowered,
            s.wall.as_secs_f64(),
            config.jobs,
            config.pool_mode.as_str(),
            config.solver_profile.as_str(),
        );
    }
    if !batch.errors.is_empty() {
        ExitCode::from(2)
    } else if batch.all_verified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn solver_json(j: &mut Json, s: &SolverStats) {
    j.begin_object();
    j.num_field("decisions", s.sat_decisions as f64);
    j.num_field("conflicts", s.sat_conflicts as f64);
    j.num_field("propagations", s.sat_propagations as f64);
    j.num_field("theory_rounds", s.theory_rounds as f64);
    j.num_field("sat_time_s", s.sat_time.as_secs_f64());
    j.num_field("theory_time_s", s.theory_time.as_secs_f64());
    j.num_field("lower_time_s", s.lower_time.as_secs_f64());
    j.num_field("euf_time_s", s.euf_time.as_secs_f64());
    j.num_field("simplex_time_s", s.simplex_time.as_secs_f64());
    j.num_field("prelude_reused", s.prelude_reused as f64);
    j.num_field("prelude_lowered", s.prelude_lowered as f64);
    j.num_field("restarts", s.restarts as f64);
    j.num_field("learned_kept", s.learned_kept as f64);
    j.num_field("learned_deleted", s.learned_deleted as f64);
    j.num_field("max_lbd", s.max_lbd as f64);
    j.num_field("pivots", s.pivots as f64);
    j.end_object();
}

/// The per-phase wall-clock breakdown advertised by the observability layer.
/// `overhead_s` is everything the four instrumented phases do not cover
/// (Tseitin conversion, clause management, scheduling) — clamped at zero
/// because cached VCs have wall time without solver time.
fn phases_json(j: &mut Json, s: &SolverStats, wall: Duration) {
    let lower = s.lower_time.as_secs_f64();
    let sat = s.sat_time.as_secs_f64();
    let euf = s.euf_time.as_secs_f64();
    let simplex = s.simplex_time.as_secs_f64();
    let overhead = (wall.as_secs_f64() - lower - sat - euf - simplex).max(0.0);
    j.begin_object();
    j.num_field("lower_s", lower);
    j.num_field("sat_s", sat);
    j.num_field("euf_s", euf);
    j.num_field("simplex_s", simplex);
    j.num_field("overhead_s", overhead);
    j.end_object();
}

fn verdict_str(v: VcVerdict) -> &'static str {
    match v {
        VcVerdict::Valid => "valid",
        VcVerdict::Refuted => "refuted",
        VcVerdict::Unknown => "unknown",
    }
}

fn to_json(batch: &BatchReport, config: &DriverConfig, command: &str) -> String {
    let mut j = Json::new();
    j.begin_object();
    j.str_field("command", command);
    j.num_field("jobs", config.jobs as f64);
    j.str_field("pool_mode", config.pool_mode.as_str());
    j.str_field("solver_profile", config.solver_profile.as_str());
    j.key("rows");
    j.begin_array();
    for r in &batch.reports {
        j.begin_object();
        j.str_field("structure", &r.structure);
        j.str_field("method", &r.method);
        j.bool_field("verified", r.outcome.is_verified());
        if let ids_vcgen::VerifyOutcome::Refuted { failed } = &r.outcome {
            j.str_field("failed_vc", failed);
        }
        j.num_field("vcs", r.num_vcs as f64);
        j.num_field("cached_vcs", r.cached_vcs as f64);
        j.num_field("time_s", r.duration.as_secs_f64());
        j.num_field("loc", r.loc as f64);
        j.num_field("spec", r.spec as f64);
        j.num_field("annotations", r.annotations as f64);
        j.num_field("lc_size", r.lc_size as f64);
        j.key("solver");
        solver_json(&mut j, &r.solver);
        j.key("phases");
        phases_json(&mut j, &r.solver, r.duration);
        j.key("vc_reports");
        j.begin_array();
        for vc in &r.vc_reports {
            j.begin_object();
            j.num_field("index", vc.vc_index as f64);
            j.str_field("description", &vc.description);
            j.str_field("verdict", verdict_str(vc.verdict));
            j.bool_field("cached", vc.cached);
            j.num_field("wall_time_ms", vc.wall_time.as_secs_f64() * 1e3);
            j.key("phases");
            phases_json(&mut j, &vc.solver, vc.wall_time);
            j.end_object();
        }
        j.end_array();
        j.end_object();
    }
    j.end_array();
    j.key("errors");
    j.begin_array();
    for e in &batch.errors {
        j.begin_object();
        j.str_field("structure", &e.structure);
        j.str_field("method", &e.method);
        j.str_field("message", &e.message);
        j.end_object();
    }
    j.end_array();
    j.key("stats");
    j.begin_object();
    j.num_field("methods", batch.stats.methods as f64);
    j.num_field("vcs", batch.stats.vcs as f64);
    j.num_field("cache_hits", batch.stats.cache_hits as f64);
    j.num_field("smt_queries", batch.stats.smt_queries as f64);
    j.num_field("skipped_vcs", batch.stats.skipped_vcs as f64);
    j.num_field("cancellations", batch.stats.cancellations as f64);
    j.num_field("wall_s", batch.stats.wall.as_secs_f64());
    j.key("solver");
    solver_json(&mut j, &batch.stats.solver);
    j.key("phases");
    phases_json(&mut j, &batch.stats.solver, batch.stats.wall);
    j.end_object();
    j.end_object();
    j.finish()
}
