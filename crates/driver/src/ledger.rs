//! The run ledger: longitudinal performance records for `ids-verify`.
//!
//! A ledger is an append-only JSONL file; every batch run appends one
//! schema-versioned [`RunRecord`] line capturing per-VC verdicts, queue/solve
//! times, per-phase seconds, solver counters and histogram summaries, plus
//! run metadata (pool mode, profile, jobs, solver-logic fingerprint,
//! hostname). Records are keyed by the same stable 128-bit
//! [`MethodTask::vc_key`](ids_core::pipeline::MethodTask::vc_key) the VC
//! cache uses, so two runs — different machines, different PRs — are joinable
//! per VC.
//!
//! On top of the records sit the two longitudinal primitives:
//!
//! * [`compare`] joins two runs per VC, attributes solve-time deltas to
//!   phases ("euf +38%, pivots 4.0x"), applies configurable noise thresholds
//!   and reports regressions — the engine behind `ids-verify compare` and the
//!   CI perf gate.
//! * [`history_lines`] renders a per-VC solve-time trajectory across every
//!   run of one ledger file (`ids-verify history`).
//!
//! Appends reuse the [`CacheLock`] advisory-lockfile discipline, so
//! concurrent runs sharing one ledger interleave whole lines instead of
//! corrupting each other. Malformed or foreign-schema lines are skipped (with
//! a warning) when reading — a ledger survives schema evolution the same way
//! the VC cache survives fingerprint changes.

use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

use ids_core::pipeline::{MethodReport, MethodTask, VcReport, VcVerdict};
use ids_obs::{Histogram, HistogramSet, Metric};

use crate::cache::CacheLock;
use crate::json::{Json, Value};
use crate::{DriverConfig, DriverStats};

/// Current ledger schema version; bump when a field changes meaning.
///
/// History: v2 appended the `unsat_cores` / `unsat_core_size` solver
/// counters (assumption-core extraction). v3 appended the `slice_hits` /
/// `slice_fallbacks` / `slice_dropped_hyps` counters (unsat-core-driven
/// hypothesis slicing) and the optional per-VC `core` array (the positional
/// hypothesis indices a Valid verdict's refutation used). Older lines still
/// parse — the new counters read as zero, the core as absent — so pre-bump
/// baselines remain comparable.
pub const LEDGER_SCHEMA: u64 = 3;

/// Oldest schema version [`RunRecord::parse`] still accepts.
pub const LEDGER_SCHEMA_MIN: u64 = 1;

/// How long an append waits for the ledger lockfile before proceeding
/// unlocked (fail-open, like the VC cache).
const APPEND_LOCK_TIMEOUT: Duration = Duration::from_secs(10);

/// Run-level metadata of one ledger record.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMeta {
    /// Unix timestamp (seconds) when the record was written.
    pub timestamp: u64,
    /// Hostname of the machine the run executed on (`"unknown"` if
    /// undeterminable).
    pub hostname: String,
    /// The invoking command line (argv minus the binary path).
    pub command: String,
    /// Pool mode (`structure` / `method` / `none`).
    pub pool_mode: String,
    /// Solver heuristics profile (`default` / `legacy`).
    pub profile: String,
    /// Worker threads.
    pub jobs: u64,
    /// VC encoding (`decidable` / `quantified`).
    pub encoding: String,
    /// `ids_smt::SOLVER_LOGIC_FINGERPRINT` of the binary, in hex.
    pub fingerprint: String,
    /// Wall-clock seconds of the whole batch.
    pub wall_s: f64,
}

/// One VC's row in a ledger record.
#[derive(Clone, Debug, PartialEq)]
pub struct VcLedgerEntry {
    /// Stable content-addressed VC key (the join key across runs).
    pub key: u128,
    /// Structure the VC belongs to.
    pub structure: String,
    /// Method the VC belongs to.
    pub method: String,
    /// VC index inside the method.
    pub vc_index: u64,
    /// Human-readable VC description.
    pub description: String,
    /// Verdict (`valid` / `refuted` / `unknown`).
    pub verdict: String,
    /// True if answered from a cache instead of a solver run.
    pub cached: bool,
    /// Milliseconds spent queued behind other work.
    pub queue_ms: f64,
    /// Milliseconds of the solve itself.
    pub solve_ms: f64,
    /// Per-phase seconds: lower, sat, euf, simplex, overhead.
    pub phases: [f64; PHASES.len()],
    /// Solver counters, in [`SOLVER_COUNTERS`] order.
    pub solver: [u64; SOLVER_COUNTERS.len()],
    /// Solver-dynamics histograms (empty unless metrics were armed).
    pub hists: HistogramSet,
    /// The unsat core of a Valid verdict: positional hypothesis indices the
    /// refutation used (`Some(vec![])` = none at all). Absent on pre-v3
    /// lines, refuted/unknown/cached rows and the fresh-solver path.
    pub core: Option<Vec<u32>>,
}

/// The phase names of [`VcLedgerEntry::phases`], in storage order.
pub const PHASES: [&str; 5] = ["lower", "sat", "euf", "simplex", "overhead"];

/// The counter names of [`VcLedgerEntry::solver`], in storage order.
pub const SOLVER_COUNTERS: [&str; 13] = [
    "theory_rounds",
    "conflicts",
    "decisions",
    "propagations",
    "restarts",
    "pivots",
    "learned_kept",
    "max_lbd",
    "unsat_cores",
    "unsat_core_size",
    "slice_hits",
    "slice_fallbacks",
    "slice_dropped_hyps",
];

/// One run's ledger record: metadata plus one entry per discharged VC.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Schema version of the parsed line.
    pub schema: u64,
    /// Run metadata.
    pub meta: RunMeta,
    /// Per-VC entries, in (task, VC) order.
    pub vcs: Vec<VcLedgerEntry>,
}

fn hostname() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.is_empty() {
            return h;
        }
    }
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .map(|s| s.trim().to_string())
        .ok()
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn vc_entry(task: &MethodTask, vc: &VcReport) -> VcLedgerEntry {
    let wall_s = vc.wall_time.as_secs_f64();
    let lower = vc.solver.lower_time.as_secs_f64();
    let sat = vc.solver.sat_time.as_secs_f64();
    let euf = vc.solver.euf_time.as_secs_f64();
    let simplex = vc.solver.simplex_time.as_secs_f64();
    let overhead = (wall_s - lower - sat - euf - simplex).max(0.0);
    VcLedgerEntry {
        key: vc.vc_key,
        structure: task.structure.clone(),
        method: task.method.clone(),
        vc_index: vc.vc_index as u64,
        description: vc.description.clone(),
        verdict: match vc.verdict {
            VcVerdict::Valid => "valid",
            VcVerdict::Refuted => "refuted",
            VcVerdict::Unknown => "unknown",
        }
        .to_string(),
        cached: vc.cached,
        queue_ms: vc.queue_time.as_secs_f64() * 1e3,
        solve_ms: wall_s * 1e3,
        phases: [lower, sat, euf, simplex, overhead],
        solver: [
            vc.solver.theory_rounds,
            vc.solver.sat_conflicts,
            vc.solver.sat_decisions,
            vc.solver.sat_propagations,
            vc.solver.restarts,
            vc.solver.pivots,
            vc.solver.learned_kept,
            vc.solver.max_lbd,
            vc.solver.unsat_cores,
            vc.solver.unsat_core_size,
            vc.solver.slice_hits,
            vc.solver.slice_fallbacks,
            vc.solver.slice_dropped_hyps,
        ],
        hists: vc.hists.clone(),
        core: vc.core.clone(),
    }
}

impl RunRecord {
    /// Builds the record for one finished batch (tasks and reports are in the
    /// same order — the driver's aggregate stage guarantees it).
    pub fn from_batch(
        tasks: &[MethodTask],
        reports: &[MethodReport],
        stats: &DriverStats,
        config: &DriverConfig,
    ) -> RunRecord {
        let command: Vec<String> = std::env::args().skip(1).collect();
        let vcs = tasks
            .iter()
            .zip(reports)
            .flat_map(|(task, report)| report.vc_reports.iter().map(|vc| vc_entry(task, vc)))
            .collect();
        RunRecord {
            schema: LEDGER_SCHEMA,
            meta: RunMeta {
                timestamp: std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0),
                hostname: hostname(),
                command: command.join(" "),
                pool_mode: config.pool_mode.as_str().to_string(),
                profile: config.solver_profile.as_str().to_string(),
                jobs: config.jobs as u64,
                encoding: format!("{:?}", config.encoding).to_lowercase(),
                fingerprint: format!("{:016x}", ids_smt::SOLVER_LOGIC_FINGERPRINT),
                wall_s: stats.wall.as_secs_f64(),
            },
            vcs,
        }
    }

    /// Serializes the record as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut j = Json::new();
        j.begin_object();
        j.num_field("schema", self.schema as f64);
        j.key("meta");
        j.begin_object();
        j.num_field("timestamp", self.meta.timestamp as f64);
        j.str_field("hostname", &self.meta.hostname);
        j.str_field("command", &self.meta.command);
        j.str_field("pool_mode", &self.meta.pool_mode);
        j.str_field("profile", &self.meta.profile);
        j.num_field("jobs", self.meta.jobs as f64);
        j.str_field("encoding", &self.meta.encoding);
        j.str_field("fingerprint", &self.meta.fingerprint);
        j.num_field("wall_s", self.meta.wall_s);
        j.end_object();
        j.key("vcs");
        j.begin_array();
        for vc in &self.vcs {
            j.begin_object();
            j.str_field("key", &format!("{:032x}", vc.key));
            j.str_field("structure", &vc.structure);
            j.str_field("method", &vc.method);
            j.num_field("vc", vc.vc_index as f64);
            j.str_field("desc", &vc.description);
            j.str_field("verdict", &vc.verdict);
            j.bool_field("cached", vc.cached);
            j.num_field("queue_ms", ms3(vc.queue_ms));
            j.num_field("solve_ms", ms3(vc.solve_ms));
            j.key("phases");
            j.begin_object();
            for (name, s) in PHASES.iter().zip(vc.phases) {
                j.num_field(&format!("{name}_s"), s6(s));
            }
            j.end_object();
            j.key("solver");
            j.begin_object();
            for (name, v) in SOLVER_COUNTERS.iter().zip(vc.solver) {
                j.num_field(name, v as f64);
            }
            j.end_object();
            if let Some(core) = &vc.core {
                j.key("core");
                j.begin_array();
                for &t in core {
                    j.num_value(t as f64);
                }
                j.end_array();
            }
            if !vc.hists.is_empty() {
                j.key("hists");
                j.begin_object();
                for metric in Metric::ALL {
                    let h = vc.hists.get(metric);
                    if h.is_empty() {
                        continue;
                    }
                    j.key(metric.name());
                    hist_json(&mut j, h);
                }
                j.end_object();
            }
            j.end_object();
        }
        j.end_array();
        j.end_object();
        j.finish()
    }

    /// Parses one JSONL line back into a record.
    pub fn parse(line: &str) -> Result<RunRecord, String> {
        let v = Value::parse(line)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("missing schema")?;
        if !(LEDGER_SCHEMA_MIN..=LEDGER_SCHEMA).contains(&schema) {
            return Err(format!("unsupported ledger schema {schema}"));
        }
        let m = v.get("meta").ok_or("missing meta")?;
        let s = |f: &str| {
            m.get(f)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing meta.{f}"))
        };
        let meta = RunMeta {
            timestamp: m.get("timestamp").and_then(Value::as_u64).unwrap_or(0),
            hostname: s("hostname")?,
            command: s("command")?,
            pool_mode: s("pool_mode")?,
            profile: s("profile")?,
            jobs: m.get("jobs").and_then(Value::as_u64).unwrap_or(0),
            encoding: s("encoding")?,
            fingerprint: s("fingerprint")?,
            wall_s: m.get("wall_s").and_then(Value::as_f64).unwrap_or(0.0),
        };
        let mut vcs = Vec::new();
        for vc in v
            .get("vcs")
            .and_then(Value::as_array)
            .ok_or("missing vcs")?
        {
            vcs.push(parse_vc(vc)?);
        }
        Ok(RunRecord { schema, meta, vcs })
    }
}

/// Round milliseconds to 3 decimals (microsecond resolution) for stable,
/// compact ledger lines.
fn ms3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

/// Round seconds to 6 decimals (microsecond resolution).
fn s6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

fn hist_json(j: &mut Json, h: &Histogram) {
    j.begin_object();
    j.num_field("count", h.count() as f64);
    j.num_field("sum", h.sum() as f64);
    j.num_field("max", h.max() as f64);
    j.num_field("p50", h.quantile(0.5) as f64);
    j.num_field("p90", h.quantile(0.9) as f64);
    j.key("buckets");
    j.begin_array();
    // Trailing zero buckets are trimmed; `Histogram::from_parts` zero-extends.
    let counts = h.bucket_counts();
    let used = counts
        .iter()
        .rposition(|&c| c != 0)
        .map(|p| p + 1)
        .unwrap_or(0);
    for &c in &counts[..used] {
        j.num_value(c as f64);
    }
    j.end_array();
    j.end_object();
}

fn parse_vc(vc: &Value) -> Result<VcLedgerEntry, String> {
    let key_hex = vc.get("key").and_then(Value::as_str).ok_or("missing key")?;
    let key = u128::from_str_radix(key_hex, 16).map_err(|e| format!("bad key: {e}"))?;
    let s = |f: &str| {
        vc.get(f)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing vc.{f}"))
    };
    let mut phases = [0.0; PHASES.len()];
    if let Some(p) = vc.get("phases") {
        for (slot, name) in phases.iter_mut().zip(PHASES) {
            *slot = p
                .get(&format!("{name}_s"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
        }
    }
    let mut solver = [0u64; SOLVER_COUNTERS.len()];
    if let Some(c) = vc.get("solver") {
        for (slot, name) in solver.iter_mut().zip(SOLVER_COUNTERS) {
            *slot = c.get(name).and_then(Value::as_u64).unwrap_or(0);
        }
    }
    let mut hists = HistogramSet::default();
    if let Some(hs) = vc.get("hists") {
        for metric in Metric::ALL {
            let Some(h) = hs.get(metric.name()) else {
                continue;
            };
            let buckets: Vec<u64> = h
                .get("buckets")
                .and_then(Value::as_array)
                .map(|a| a.iter().filter_map(Value::as_u64).collect())
                .unwrap_or_default();
            *hists.get_mut(metric) = Histogram::from_parts(
                &buckets,
                h.get("count").and_then(Value::as_u64).unwrap_or(0),
                h.get("sum").and_then(Value::as_u64).unwrap_or(0),
                h.get("max").and_then(Value::as_u64).unwrap_or(0),
            );
        }
    }
    let core = vc.get("core").and_then(Value::as_array).map(|a| {
        a.iter()
            .filter_map(Value::as_u64)
            .map(|n| n as u32)
            .collect()
    });
    Ok(VcLedgerEntry {
        key,
        structure: s("structure")?,
        method: s("method")?,
        vc_index: vc.get("vc").and_then(Value::as_u64).unwrap_or(0),
        description: s("desc")?,
        verdict: s("verdict")?,
        cached: vc.get("cached").and_then(Value::as_bool).unwrap_or(false),
        queue_ms: vc.get("queue_ms").and_then(Value::as_f64).unwrap_or(0.0),
        solve_ms: vc.get("solve_ms").and_then(Value::as_f64).unwrap_or(0.0),
        phases,
        solver,
        hists,
        core,
    })
}

// ------------------------------------------------------------------ file I/O

/// Appends one record to the ledger at `path` (creating the file and parent
/// directory as needed), holding the [`CacheLock`] so concurrent runs
/// interleave whole lines.
pub fn append_run(path: &Path, record: &RunRecord) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let _lock = CacheLock::acquire(path, APPEND_LOCK_TIMEOUT);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut line = record.to_json_line();
    line.push('\n');
    file.write_all(line.as_bytes())?;
    file.flush()
}

/// Loads every parseable record of a ledger file, oldest first. Malformed or
/// foreign-schema lines are skipped with a warning on stderr; a missing file
/// is an error (the CLI turns it into a friendly message).
pub fn load_runs(path: &Path) -> std::io::Result<Vec<RunRecord>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match RunRecord::parse(line) {
            Ok(r) => out.push(r),
            Err(e) => eprintln!(
                "warning: skipping ledger line {} of {}: {}",
                i + 1,
                path.display(),
                e
            ),
        }
    }
    Ok(out)
}

// ------------------------------------------------------------------- compare

/// Noise thresholds and policy of a [`compare`] run.
#[derive(Clone, Copy, Debug)]
pub struct CompareOpts {
    /// A solve-time delta must exceed this percentage of the base time...
    pub threshold_pct: f64,
    /// ...*and* this many absolute milliseconds to count as a regression
    /// (or improvement). Both gates together keep micro-VC jitter quiet.
    pub threshold_ms: f64,
    /// When true, timing regressions are reported but do not fail the run —
    /// only verdict changes do (the CI cross-machine mode, where absolute
    /// times are not comparable).
    pub advisory_timing: bool,
}

impl Default for CompareOpts {
    fn default() -> Self {
        CompareOpts {
            threshold_pct: 25.0,
            threshold_ms: 50.0,
            advisory_timing: false,
        }
    }
}

/// The per-VC join row of a [`CompareReport`].
#[derive(Clone, Debug)]
pub struct VcDelta {
    /// The VC's stable key.
    pub key: u128,
    /// `structure/method/description` display label.
    pub label: String,
    /// Verdict in the base run.
    pub base_verdict: String,
    /// Verdict in the new run.
    pub new_verdict: String,
    /// Solve milliseconds in the base run.
    pub base_ms: f64,
    /// Solve milliseconds in the new run.
    pub new_ms: f64,
    /// True when the verdict changed between the runs (always a failure).
    pub verdict_changed: bool,
    /// True when the solve time regressed past both thresholds.
    pub regressed: bool,
    /// True when the solve time improved past both thresholds.
    pub improved: bool,
    /// True when either side was answered from cache (timing not compared).
    pub cached: bool,
    /// Name of the phase the delta is attributed to (largest absolute phase
    /// movement in the delta's direction), when timing was compared.
    pub attributed_phase: Option<String>,
    /// Human-readable attribution, e.g. `"euf +210% (+0.42s), pivots 4.0x"`.
    pub attribution: String,
}

/// The result of joining two runs per VC.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Joined rows, sorted by descending absolute solve-time delta.
    pub deltas: Vec<VcDelta>,
    /// Labels of VCs only present in the base run.
    pub only_base: Vec<String>,
    /// Labels of VCs only present in the new run.
    pub only_new: Vec<String>,
    /// Number of rows flagged as regressions.
    pub regressions: usize,
    /// Number of rows flagged as improvements.
    pub improvements: usize,
    /// Number of rows whose verdict changed.
    pub verdict_mismatches: usize,
}

impl CompareReport {
    /// True when the comparison should fail the process (nonzero exit):
    /// any verdict change, or — unless `advisory_timing` — any regression.
    pub fn failed(&self, opts: &CompareOpts) -> bool {
        self.verdict_mismatches > 0 || (!opts.advisory_timing && self.regressions > 0)
    }
}

fn label_of(vc: &VcLedgerEntry) -> String {
    format!("{}/{}/{}", vc.structure, vc.method, vc.description)
}

/// Attributes a solve-time delta to the phase that moved the most in the
/// delta's direction, and annotates notable pivot-count swings.
fn attribute(base: &VcLedgerEntry, new: &VcLedgerEntry, slower: bool) -> (Option<String>, String) {
    let sign = if slower { 1.0 } else { -1.0 };
    let mut best: Option<(usize, f64)> = None;
    for (i, (b, n)) in base.phases.iter().zip(new.phases).enumerate() {
        let moved = (n - b) * sign;
        if moved > 0.0 && best.map(|(_, m)| moved > m).unwrap_or(true) {
            best = Some((i, moved));
        }
    }
    let Some((phase_idx, moved_s)) = best else {
        return (None, String::new());
    };
    let base_s = base.phases[phase_idx];
    let mut text = if base_s > 0.0 {
        format!(
            "{} {}{:.0}% ({}{:.3}s)",
            PHASES[phase_idx],
            if slower { "+" } else { "-" },
            moved_s / base_s * 100.0,
            if slower { "+" } else { "-" },
            moved_s
        )
    } else {
        format!(
            "{} {}{:.3}s",
            PHASES[phase_idx],
            if slower { "+" } else { "-" },
            moved_s
        )
    };
    // Pivot-count swings are the classic simplex-regression smoking gun;
    // surface them whenever the ratio is notable.
    let pivots_idx = SOLVER_COUNTERS.iter().position(|&c| c == "pivots");
    if let Some(pi) = pivots_idx {
        let (bp, np) = (base.solver[pi], new.solver[pi]);
        if bp > 0 && np > 0 {
            let ratio = np as f64 / bp as f64;
            if !(0.5..=2.0).contains(&ratio) {
                text.push_str(&format!(", pivots {ratio:.1}x"));
            }
        }
    }
    (Some(PHASES[phase_idx].to_string()), text)
}

/// Joins two runs per VC key and classifies every joined row against the
/// thresholds. VCs answered from cache on either side join for verdict
/// comparison but are excluded from timing classification.
pub fn compare(base: &RunRecord, new: &RunRecord, opts: &CompareOpts) -> CompareReport {
    let mut report = CompareReport::default();
    let base_by_key: std::collections::BTreeMap<u128, &VcLedgerEntry> =
        base.vcs.iter().map(|vc| (vc.key, vc)).collect();
    let new_by_key: std::collections::BTreeMap<u128, &VcLedgerEntry> =
        new.vcs.iter().map(|vc| (vc.key, vc)).collect();
    for (key, b) in &base_by_key {
        if !new_by_key.contains_key(key) {
            report.only_base.push(label_of(b));
        }
    }
    for (key, n) in &new_by_key {
        let Some(b) = base_by_key.get(key) else {
            report.only_new.push(label_of(n));
            continue;
        };
        let verdict_changed = b.verdict != n.verdict;
        if verdict_changed {
            report.verdict_mismatches += 1;
        }
        let cached = b.cached || n.cached;
        let delta_ms = n.solve_ms - b.solve_ms;
        // A zero-ms baseline (fully cached, or a run predating per-VC
        // timing) makes the percentage gate vacuous — any delta would be
        // infinitely many percent — so such rows are excluded from timing
        // classification entirely, like cached rows.
        let timed = !cached && b.solve_ms > 0.0;
        let past_thresholds = delta_ms.abs() > opts.threshold_ms
            && delta_ms.abs() > b.solve_ms * opts.threshold_pct / 100.0;
        let regressed = timed && past_thresholds && delta_ms > 0.0;
        let improved = timed && past_thresholds && delta_ms < 0.0;
        if regressed {
            report.regressions += 1;
        }
        if improved {
            report.improvements += 1;
        }
        let (attributed_phase, attribution) = if regressed || improved {
            attribute(b, n, regressed)
        } else {
            (None, String::new())
        };
        report.deltas.push(VcDelta {
            key: *key,
            label: label_of(n),
            base_verdict: b.verdict.clone(),
            new_verdict: n.verdict.clone(),
            base_ms: b.solve_ms,
            new_ms: n.solve_ms,
            verdict_changed,
            regressed,
            improved,
            cached,
            attributed_phase,
            attribution,
        });
    }
    report.deltas.sort_by(|a, d| {
        let (da, dd) = ((a.new_ms - a.base_ms).abs(), (d.new_ms - d.base_ms).abs());
        dd.partial_cmp(&da)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key.cmp(&d.key))
    });
    report
}

// ------------------------------------------------------------------- history

/// Renders the per-VC solve-time trajectory across `runs` (oldest first) as
/// display lines, one VC per line, most recent label wins. `filter` is an
/// optional case-insensitive substring match against the VC label.
pub fn history_lines(runs: &[RunRecord], filter: Option<&str>) -> Vec<String> {
    use std::collections::BTreeMap;
    // key → (label, per-run Option<solve_ms>)
    let mut series: BTreeMap<u128, (String, Vec<Option<f64>>)> = BTreeMap::new();
    for (ri, run) in runs.iter().enumerate() {
        for vc in &run.vcs {
            let entry = series
                .entry(vc.key)
                .or_insert_with(|| (label_of(vc), vec![None; runs.len()]));
            entry.0 = label_of(vc);
            entry.1[ri] = Some(if vc.cached { -1.0 } else { vc.solve_ms });
        }
    }
    let matches = |label: &str| {
        filter
            .map(|f| label.to_lowercase().contains(&f.to_lowercase()))
            .unwrap_or(true)
    };
    let mut out = Vec::new();
    for (_, (label, points)) in series {
        if !matches(&label) {
            continue;
        }
        let cells: Vec<String> = points
            .iter()
            .map(|p| match p {
                None => "-".to_string(),
                Some(ms) if *ms < 0.0 => "cached".to_string(),
                Some(ms) => format!("{ms:.1}"),
            })
            .collect();
        out.push(format!("{label}: {} ms", cells.join(" -> ")));
    }
    out
}
