//! `ids-driver` — the parallel batch-verification engine.
//!
//! The paper's evaluation discharges dozens of methods across 10+ data
//! structures; verifying them one method and one VC at a time leaves all but
//! one core idle on what is an embarrassingly parallel workload. This crate
//! turns a suite into a batch job:
//!
//! 1. **Decompose** — every `(structure, method)` pair is prepared into a
//!    [`MethodTask`] (parse, discipline checks, FWYB expansion, VC
//!    generation), itself in parallel; every `(task, vc)` pair is then an
//!    independent SMT query.
//! 2. **Memoize** — each VC is keyed by the stable structural hash of its
//!    formula ([`MethodTask::vc_key`]). Identical VCs across the batch are
//!    solved once, previously solved VCs are answered from a persistent
//!    [`cache::VcCache`] file, so re-runs are incremental.
//! 3. **Schedule** — remaining queries go through a channel-fed
//!    [`pool`] of `std::thread` workers ([`DriverConfig::jobs`] wide). Once a
//!    method's VC is refuted, its not-yet-started VCs are cancelled — the
//!    parallel analogue of the sequential pipeline's early stop. A final
//!    repair pass then fills every VC *before* the first non-valid one, so
//!    the reported outcome (kind and failing VC alike) is exactly what the
//!    sequential pipeline reports, regardless of interleaving or cache state.
//! 4. **Aggregate** — per-VC verdicts fold back into the existing
//!    [`MethodReport`] / `Table2Row` reporting by scanning results in VC
//!    order; only VCs past a method's first failure are skipped.
//!
//! The `ids-verify` binary is the command-line front end.
//!
//! # Example
//!
//! (One small method here — doctests build unoptimized, and real suite runs
//! belong to `ids-verify suite` / the integration tests.)
//!
//! ```
//! use ids_driver::{verify_selections, DriverConfig, Selection};
//! use ids_structures::lists;
//!
//! let ids = lists::singly_linked_list();
//! let selection = Selection {
//!     name: "Singly-Linked List",
//!     definition: &ids,
//!     methods_src: lists::SINGLY_LINKED_LIST_METHODS,
//!     methods: vec!["set_key".into()],
//! };
//! let report = verify_selections(&[selection], &DriverConfig::default());
//! assert!(report.all_verified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod ledger;
pub mod pool;

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ids_core::pipeline::{
    load_methods, prepare_method_in, MethodReport, MethodTask, PipelineConfig, VcResult,
};
use ids_core::IntrinsicDefinition;
use ids_smt::{SolverProfile, SolverStats};
use ids_structures::Benchmark;
use ids_vcgen::Encoding;

use crate::cache::VcCache;

/// How solver state is shared across the batch's SMT queries.
///
/// Verdicts, VC cache keys and batch-dedup behaviour are byte-identical
/// across all three modes; only the amount of lowering/clause-conversion work
/// shared between queries differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PoolMode {
    /// One warm solver pool per *data structure*: all pending methods of a
    /// structure form one unit on a worker, the structure-common hypothesis
    /// prelude is lowered once at structure scope, and each method runs in a
    /// retractable method scope ([`ids_core::pipeline::StructureSession`]).
    /// The default.
    #[default]
    Structure,
    /// One incremental session per *method* (the PR-3 behaviour): a method's
    /// VCs share its lowered prelude, methods share nothing.
    Method,
    /// A fresh solver per VC (the PR-2 behaviour, `--pool-mode none`).
    None,
}

impl PoolMode {
    /// Parses a CLI value (`structure` / `method` / `none`).
    pub fn parse(s: &str) -> Option<PoolMode> {
        match s {
            "structure" => Some(PoolMode::Structure),
            "method" => Some(PoolMode::Method),
            "none" => Some(PoolMode::None),
            _ => None,
        }
    }

    /// The CLI spelling of this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            PoolMode::Structure => "structure",
            PoolMode::Method => "method",
            PoolMode::None => "none",
        }
    }
}

/// Configuration of a batch run.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Worker threads for both the prepare and the solve stage.
    pub jobs: usize,
    /// VC encoding mode.
    pub encoding: Encoding,
    /// Optional path of the persistent VC cache; loaded before and saved
    /// after the batch. `None` still memoizes within the batch, in memory.
    pub cache_path: Option<PathBuf>,
    /// Solver-state sharing across queries (see [`PoolMode`]).
    pub pool_mode: PoolMode,
    /// Solver search-heuristics profile (`--solver-profile`). Verdicts, VC
    /// cache keys and dedup behaviour are byte-identical across profiles;
    /// only solve times and solver-internal telemetry differ.
    pub solver_profile: SolverProfile,
    /// Optional path of the run-ledger JSONL file; every batch appends one
    /// schema-versioned [`ledger::RunRecord`] line (see [`ledger`]). `None`
    /// disables longitudinal recording.
    pub ledger_path: Option<PathBuf>,
    /// Re-verification mode (`--recheck`): cached *verdicts* are ignored —
    /// every VC is re-solved — but cached unsat *cores* remain available as
    /// hypothesis-slice hints. Recomputed verdicts and cores are stored back.
    pub recheck: bool,
    /// Use cached unsat cores as hypothesis-slice hints on a re-check
    /// (`--slice-hyps`, on by default): a hinted VC asserts only its cored
    /// hypothesis subset first, falling back to the full set when the slice
    /// is inconclusive. Never changes verdicts or cache keys; `false`
    /// (`--no-slice-hyps`) re-solves everything from the full hypothesis set.
    pub slice_hyps: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            encoding: Encoding::default(),
            cache_path: None,
            pool_mode: PoolMode::default(),
            solver_profile: SolverProfile::default(),
            ledger_path: None,
            recheck: false,
            slice_hyps: true,
        }
    }
}

impl DriverConfig {
    /// The pipeline configuration used to prepare each method.
    fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig {
            encoding: self.encoding,
            profile: self.solver_profile,
            ..PipelineConfig::default()
        }
    }
}

/// One structure to verify: a definition, its methods file, and which methods
/// of it to run.
pub struct Selection<'a> {
    /// Structure name (reporting label).
    pub name: &'a str,
    /// The intrinsic definition.
    pub definition: &'a IntrinsicDefinition,
    /// IVL source of the annotated methods.
    pub methods_src: &'a str,
    /// Methods to verify, in report order.
    pub methods: Vec<String>,
}

impl<'a> Selection<'a> {
    /// Every method of a benchmark.
    pub fn from_benchmark(b: &'a Benchmark) -> Selection<'a> {
        Selection {
            name: b.name,
            definition: &b.definition,
            methods_src: b.methods_src,
            methods: b.methods.clone(),
        }
    }

    /// A subset of a benchmark's methods.
    pub fn methods_of(b: &'a Benchmark, methods: &[&str]) -> Selection<'a> {
        Selection {
            methods: methods.iter().map(|m| m.to_string()).collect(),
            ..Selection::from_benchmark(b)
        }
    }
}

/// A non-verdict failure (parse/type/expansion error) of one batch unit.
#[derive(Clone, Debug)]
pub struct BatchError {
    /// Structure the failure belongs to.
    pub structure: String,
    /// Method, or `"*"` when the whole structure failed to load.
    pub method: String,
    /// Human-readable error.
    pub message: String,
}

/// Aggregate statistics of a batch run.
#[derive(Clone, Debug, Default)]
pub struct DriverStats {
    /// Methods verified.
    pub methods: usize,
    /// Total VCs across all methods.
    pub vcs: usize,
    /// VCs answered from the cache (on-disk hits plus in-batch duplicates).
    pub cache_hits: usize,
    /// Fresh SMT queries actually discharged.
    pub smt_queries: usize,
    /// VCs skipped because their method was already refuted (the parallel
    /// analogue of the sequential pipeline's early stop).
    pub skipped_vcs: usize,
    /// Early-stop cancellations observed by workers during the solve stage:
    /// the number of scheduled VC executions that were abandoned because a
    /// sibling VC's refutation cancelled their method. Not a subset of
    /// `skipped_vcs` in either direction: a cancelled VC that precedes the
    /// refutation in VC order is re-solved by the repair pass (cancelled but
    /// not skipped), and a VC of a cache-refuted method is never scheduled
    /// at all (skipped but not cancelled).
    pub cancellations: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Merged solver statistics over all fresh queries.
    pub solver: SolverStats,
}

/// The result of a batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Per-method reports, in selection order.
    pub reports: Vec<MethodReport>,
    /// Units that failed before reaching the solver.
    pub errors: Vec<BatchError>,
    /// Aggregate statistics.
    pub stats: DriverStats,
}

impl BatchReport {
    /// True if nothing errored and every method verified.
    pub fn all_verified(&self) -> bool {
        self.errors.is_empty() && self.reports.iter().all(|r| r.outcome.is_verified())
    }
}

/// Verifies every method of every benchmark (the full Table-2 run).
pub fn verify_suite(benchmarks: &[Benchmark], config: &DriverConfig) -> BatchReport {
    let selections: Vec<Selection> = benchmarks.iter().map(Selection::from_benchmark).collect();
    verify_selections(&selections, config)
}

/// Verifies the given selections through the parallel engine.
pub fn verify_selections(selections: &[Selection], config: &DriverConfig) -> BatchReport {
    let start = Instant::now();
    let mut errors = Vec::new();

    // ---------------------------------------------------------- load stage
    // Parse + typecheck each methods file once per structure (cheap, serial).
    let mut loaded: Vec<(&Selection, ids_ivl::Program)> = Vec::new();
    for sel in selections {
        match load_methods(sel.definition, sel.methods_src) {
            Ok(merged) => loaded.push((sel, merged)),
            Err(e) => errors.push(BatchError {
                structure: sel.name.to_string(),
                method: "*".to_string(),
                message: e.to_string(),
            }),
        }
    }

    // ------------------------------------------------------- prepare stage
    // One job per (structure, method): expansion + VC generation in parallel.
    struct PrepJob<'a> {
        sel: &'a Selection<'a>,
        merged: &'a ids_ivl::Program,
        method: &'a str,
    }
    let prep_jobs: Vec<PrepJob> = loaded
        .iter()
        .flat_map(|(sel, merged)| {
            sel.methods.iter().map(move |m| PrepJob {
                sel,
                merged,
                method: m,
            })
        })
        .collect();
    let pipeline_config = config.pipeline_config();
    let prepared = pool::run(config.jobs, prep_jobs, |job| {
        prepare_method_in(job.sel.definition, job.merged, job.method, pipeline_config).map_err(
            |e| BatchError {
                structure: job.sel.name.to_string(),
                method: job.method.to_string(),
                message: e.to_string(),
            },
        )
    });
    let mut tasks = Vec::new();
    for res in prepared {
        match res {
            Ok(task) => tasks.push(task),
            Err(e) => errors.push(e),
        }
    }

    let mut report = verify_tasks(tasks, config);
    report.errors.extend(errors);
    report.stats.wall = start.elapsed();
    report
}

/// Discharges already-prepared tasks through the cache and the worker pool.
///
/// This is the lowest-level entry point; `ids-verify verify <file>` uses it
/// with tasks built by [`ids_core::pipeline::prepare_plain`].
pub fn verify_tasks(mut tasks: Vec<MethodTask>, config: &DriverConfig) -> BatchReport {
    let start = Instant::now();
    let mut cache = match &config.cache_path {
        Some(path) => VcCache::load(path).unwrap_or_else(|e| {
            eprintln!("warning: could not read cache {}: {}", path.display(), e);
            VcCache::new()
        }),
        None => VcCache::new(),
    };

    // ------------------------------------------------------- resolve stage
    // Hash every VC; answer what the cache already knows; group the rest by
    // key so identical formulas across the batch are solved exactly once.
    let mut results: Vec<Vec<Option<VcResult>>> =
        tasks.iter().map(|t| vec![None; t.num_vcs()]).collect();
    let resolve_span = ids_obs::span("resolve");
    let mut cache_hits = 0usize;
    let mut smt_queries = 0usize;
    // BTreeMap: deterministic job order regardless of hash values.
    let mut pending: BTreeMap<u128, Vec<(usize, usize)>> = BTreeMap::new();
    // Tasks with a known-refuted VC (mapped to when the refutation was
    // learned, for cancellation-latency telemetry): their remaining VCs are
    // skipped, the parallel analogue of the sequential early stop. Seeded
    // from the cache, extended concurrently by workers as refutations come
    // in.
    let mut refuted_tasks: std::collections::HashMap<usize, Instant> =
        std::collections::HashMap::new();
    // Hash every VC once; the resolve and repair passes share the keys
    // (structural hashing walks the whole formula DAG — not free).
    let keys: Vec<Vec<u128>> = tasks
        .iter()
        .map(|t| (0..t.num_vcs()).map(|vi| t.vc_key(vi)).collect())
        .collect();
    // Re-check mode: cached verdicts are NOT replayed (the whole point is to
    // re-solve), but cached unsat cores become hypothesis-slice hints — the
    // sessions assert only the cored subset first, falling back soundly when
    // the slice is inconclusive.
    if config.recheck && config.slice_hyps {
        for (ti, task_keys) in keys.iter().enumerate() {
            for (vi, &key) in task_keys.iter().enumerate() {
                if let Some(core) = cache.get_core(key) {
                    tasks[ti].slice_hints[vi] = Some(core.to_vec());
                }
            }
        }
    }
    for (ti, slots) in results.iter_mut().enumerate() {
        for (vi, slot) in slots.iter_mut().enumerate() {
            let key = keys[ti][vi];
            let known = if config.recheck { None } else { cache.get(key) };
            if let Some(verdict) = known {
                *slot = Some(VcResult::from_cache(vi, verdict));
                cache_hits += 1;
                ids_obs::instant_with("cache_hit", || format!("{} vc {}", tasks[ti].method, vi));
                if verdict == ids_core::pipeline::VcVerdict::Refuted {
                    refuted_tasks.entry(ti).or_insert_with(Instant::now);
                }
            } else {
                pending.entry(key).or_default().push((ti, vi));
            }
        }
    }
    drop(resolve_span);

    // --------------------------------------------------------- solve stage
    // Each pending key is solved at one "primary" site — preferably one whose
    // method is not already refuted, so a cancellation cannot starve a
    // sibling method that shares the formula.
    let solve_span = ids_obs::span("solve");
    // Every pending VC is enqueued now; the gap between this instant and the
    // moment a worker actually starts a VC is that VC's queue time
    // (`VcResult::queue_time`) — scheduler imbalance, as opposed to solver
    // cost.
    let solve_start = Instant::now();
    let jobs: Vec<(u128, usize, usize)> = pending
        .iter()
        .filter_map(|(&key, sites)| {
            sites
                .iter()
                .find(|(ti, _)| !refuted_tasks.contains_key(ti))
                .or_else(|| sites.first())
                .map(|&(ti, vi)| (key, ti, vi))
        })
        .collect();
    let tasks_ref = &tasks;
    let cancelled = std::sync::Mutex::new(refuted_tasks);
    let cancelled_ref = &cancelled;
    let cancellation_count = std::sync::atomic::AtomicUsize::new(0);
    // Records one worker-observed early stop: a scheduled VC abandoned
    // because its method was cancelled `since` ago.
    let note_cancellation = |ti: usize, vi: usize, since: Instant| {
        cancellation_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        ids_obs::instant_with("cancelled", || {
            format!(
                "{} vc {} stopped {}us after refutation",
                tasks_ref[ti].method,
                vi,
                since.elapsed().as_micros()
            )
        });
    };
    let note_cancellation = &note_cancellation;
    // Runs one method's pending VCs in index order (hypothesis prefixes are
    // monotone; cache-answered indices are simply skipped) through `check`,
    // honouring per-VC cancellation; a refuted VC cancels the method's rest —
    // exactly the sequential pipeline's early stop.
    let run_method_items = |ti: usize,
                            mut items: Vec<(u128, usize)>,
                            out: &mut Vec<(u128, usize, usize, Option<VcResult>)>,
                            check: &mut dyn FnMut(usize) -> VcResult| {
        items.sort_by_key(|&(_, vi)| vi);
        for (key, vi) in items {
            let since = cancelled_ref.lock().expect("cancel set").get(&ti).copied();
            if let Some(since) = since {
                note_cancellation(ti, vi, since);
                out.push((key, ti, vi, None));
                continue;
            }
            let started = Instant::now();
            let mut result = check(vi);
            result.queue_time = started.duration_since(solve_start);
            if result.verdict == ids_core::pipeline::VcVerdict::Refuted {
                cancelled_ref
                    .lock()
                    .expect("cancel set")
                    .entry(ti)
                    .or_insert_with(Instant::now);
            }
            out.push((key, ti, vi, Some(result)));
        }
    };
    // A method's share of the pending queue: its task index and the
    // (cache key, VC index) pairs to discharge.
    type MethodItems = (usize, Vec<(u128, usize)>);
    let solved: Vec<(u128, usize, usize, Option<VcResult>)> = match config.pool_mode {
        PoolMode::Structure => {
            // Structure mode: all pending methods of one structure form one
            // *warm-pool unit* on a worker. A StructureSession lowers the
            // structure-common hypothesis prelude once at structure scope;
            // each method then runs in a retractable method scope.
            let mut by_task: BTreeMap<usize, Vec<(u128, usize)>> = BTreeMap::new();
            for (key, ti, vi) in jobs {
                by_task.entry(ti).or_default().push((key, vi));
            }
            // BTreeMap order: a unit's methods run in ascending task index.
            let mut by_structure: BTreeMap<&str, Vec<MethodItems>> = BTreeMap::new();
            for (ti, items) in by_task {
                by_structure
                    .entry(tasks_ref[ti].structure.as_str())
                    .or_default()
                    .push((ti, items));
            }
            let units: Vec<Vec<MethodItems>> = by_structure.into_values().collect();
            pool::run(config.jobs, units, move |unit| {
                let unit_tasks: Vec<&MethodTask> =
                    unit.iter().map(|&(ti, _)| &tasks_ref[ti]).collect();
                // Quantified-encoding tasks fall back to fresh solvers
                // inside the same unit.
                let mut pool_session = ids_core::pipeline::StructureSession::new(&unit_tasks);
                let mut out = Vec::new();
                for (slot, (ti, items)) in unit.into_iter().enumerate() {
                    match pool_session.as_mut() {
                        Some(s) => {
                            s.begin_method(slot);
                            run_method_items(ti, items, &mut out, &mut |vi| s.check_vc(slot, vi));
                            s.end_method();
                        }
                        None => {
                            let task = &tasks_ref[ti];
                            run_method_items(ti, items, &mut out, &mut |vi| task.check_vc(vi));
                        }
                    }
                }
                out
            })
            .into_iter()
            .flatten()
            .collect()
        }
        PoolMode::Method => {
            // Method mode (PR 3): a method's pending VCs form one session
            // unit on a worker; methods share nothing.
            let mut by_task: BTreeMap<usize, Vec<(u128, usize)>> = BTreeMap::new();
            for (key, ti, vi) in jobs {
                by_task.entry(ti).or_default().push((key, vi));
            }
            let session_jobs: Vec<(usize, Vec<(u128, usize)>)> = by_task.into_iter().collect();
            pool::run(config.jobs, session_jobs, move |(ti, items)| {
                let task = &tasks_ref[ti];
                let mut session = ids_core::pipeline::MethodSession::new(task);
                let mut out = Vec::with_capacity(items.len());
                run_method_items(ti, items, &mut out, &mut |vi| match session.as_mut() {
                    Some(s) => s.check_vc(vi),
                    None => task.check_vc(vi),
                });
                out
            })
            .into_iter()
            .flatten()
            .collect()
        }
        PoolMode::None => pool::run(config.jobs, jobs, move |(key, ti, vi)| {
            let since = cancelled_ref.lock().expect("cancel set").get(&ti).copied();
            if let Some(since) = since {
                note_cancellation(ti, vi, since);
                return (key, ti, vi, None);
            }
            let started = Instant::now();
            let mut result = tasks_ref[ti].check_vc(vi);
            result.queue_time = started.duration_since(solve_start);
            if result.verdict == ids_core::pipeline::VcVerdict::Refuted {
                cancelled_ref
                    .lock()
                    .expect("cancel set")
                    .entry(ti)
                    .or_insert_with(Instant::now);
            }
            (key, ti, vi, Some(result))
        }),
    };
    drop(cancelled);
    let cancellations = cancellation_count.load(std::sync::atomic::Ordering::Relaxed);
    for (key, ti, vi, result) in solved {
        let Some(result) = result else { continue };
        smt_queries += 1;
        cache.insert_core(key, result.verdict, result.core.clone());
        // The solving site keeps the real stats; duplicates across the batch
        // are answered as cache hits.
        for &(sti, svi) in &pending[&key] {
            if (sti, svi) == (ti, vi) {
                results[sti][svi] = Some(VcResult {
                    vc_index: svi,
                    ..result.clone()
                });
            } else {
                results[sti][svi] = Some(VcResult::from_cache(svi, result.verdict));
                cache_hits += 1;
                ids_obs::instant_with("dedup_hit", || {
                    format!("{} vc {}", tasks_ref[sti].method, svi)
                });
            }
        }
    }
    drop(solve_span);

    // ---------------------------------------------------------- repair pass
    // Walk every method's VCs in order and fill any slot the parallel stage
    // left unsolved (a cancelled primary site, or a sibling's duplicate whose
    // solver was skipped), stopping at the first non-valid result. This
    // restores the exact sequential semantics: the reported outcome — kind
    // *and* failing VC — is the first non-valid VC in VC order, with every VC
    // before it discharged, no matter how the concurrent stage interleaved or
    // what the cache already knew. VCs after that boundary stay unsolved
    // (`skipped_vcs`), the early-stop saving.
    let repair_span = ids_obs::span("repair");
    for (ti, (task, slots)) in tasks.iter().zip(results.iter_mut()).enumerate() {
        // Repaired VCs share one incremental session per method too (opened
        // lazily: most methods need no repair). Indices may be skipped —
        // sessions only require ascending order, which this walk guarantees.
        let mut session: Option<ids_core::pipeline::MethodSession> = None;
        for (vi, slot) in slots.iter_mut().enumerate() {
            if let Some(present) = slot {
                if present.verdict != ids_core::pipeline::VcVerdict::Valid {
                    break;
                }
                continue;
            }
            let key = keys[ti][vi];
            let known = if config.recheck { None } else { cache.get(key) };
            let result = if let Some(verdict) = known {
                cache_hits += 1;
                VcResult::from_cache(vi, verdict)
            } else {
                if session.is_none() && config.pool_mode != PoolMode::None {
                    session = ids_core::pipeline::MethodSession::new(task);
                }
                let result = match session.as_mut() {
                    Some(s) => s.check_vc(vi),
                    None => task.check_vc(vi),
                };
                smt_queries += 1;
                cache.insert_core(key, result.verdict, result.core.clone());
                result
            };
            let stop = result.verdict != ids_core::pipeline::VcVerdict::Valid;
            *slot = Some(result);
            if stop {
                break;
            }
        }
    }
    drop(repair_span);

    if let (Some(path), true) = (&config.cache_path, cache.is_dirty()) {
        // Merge-under-lock: concurrent ids-verify runs sharing this cache
        // union their verdicts instead of clobbering each other.
        if let Err(e) = cache.save_merged(path) {
            eprintln!("warning: could not write cache {}: {}", path.display(), e);
        }
    }

    // ----------------------------------------------------- aggregate stage
    let mut stats = DriverStats {
        smt_queries,
        cache_hits,
        cancellations,
        ..DriverStats::default()
    };
    let mut reports = Vec::with_capacity(tasks.len());
    for (task, vc_results) in tasks.iter().zip(results) {
        // Missing entries are VCs skipped after their method was refuted;
        // `MethodTask::report` scans what is present in VC order, exactly as
        // it does for a sequential early stop.
        let vc_results: Vec<VcResult> = vc_results.into_iter().flatten().collect();
        stats.skipped_vcs += task.num_vcs() - vc_results.len();
        let report = task.report(&vc_results);
        stats.methods += 1;
        stats.vcs += report.num_vcs;
        stats.solver.merge(&report.solver);
        reports.push(report);
    }
    stats.wall = start.elapsed();

    // ------------------------------------------------------- ledger stage
    // Longitudinal record: one schema-versioned JSONL line per run, keyed by
    // the same stable vc_keys the cache uses, so runs are joinable across
    // machines and PRs (`ids-verify compare` / `history`).
    if let Some(path) = &config.ledger_path {
        let record = ledger::RunRecord::from_batch(&tasks, &reports, &stats, config);
        if let Err(e) = ledger::append_run(path, &record) {
            eprintln!(
                "warning: could not append run ledger {}: {}",
                path.display(),
                e
            );
        }
    }

    BatchReport {
        reports,
        errors: Vec::new(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_structures::lists;

    fn sll_selection(b: &Benchmark) -> Selection<'_> {
        Selection::methods_of(b, &["set_key", "delete_front"])
    }

    #[test]
    fn batch_matches_sequential_verdicts() {
        let bench = ids_structures::Benchmark {
            name: "Singly-Linked List",
            definition: lists::singly_linked_list(),
            methods_src: lists::SINGLY_LINKED_LIST_METHODS,
            methods: vec![],
        };
        let sel = vec![sll_selection(&bench)];
        let batch = verify_selections(&sel, &DriverConfig::default());
        assert!(batch.errors.is_empty(), "{:?}", batch.errors);
        assert_eq!(batch.reports.len(), 2);

        let merged = load_methods(&bench.definition, bench.methods_src).unwrap();
        for report in &batch.reports {
            let seq = ids_core::pipeline::verify_method_in(
                &bench.definition,
                &merged,
                &report.method,
                PipelineConfig::default(),
            )
            .unwrap();
            assert_eq!(
                report.outcome.is_verified(),
                seq.outcome.is_verified(),
                "{} diverged",
                report.method
            );
            assert_eq!(report.num_vcs, seq.num_vcs, "{} vc count", report.method);
        }
    }

    #[test]
    fn pool_modes_match_each_other() {
        // The same batch through structure pools (default), per-method
        // sessions and fresh per-VC jobs: verdict kind, VC counts and
        // failing VC must be byte-identical; only solver-internal statistics
        // may differ. Includes a refuted method so the early-stop paths are
        // compared too, and a two-method structure so the structure pool
        // actually spans methods.
        let good = ids_structures::Benchmark {
            name: "Singly-Linked List",
            definition: lists::singly_linked_list(),
            methods_src: lists::SINGLY_LINKED_LIST_METHODS,
            methods: vec![],
        };
        let bad = ids_structures::Benchmark {
            name: "Singly-Linked List (buggy)",
            definition: lists::singly_linked_list(),
            methods_src: ids_structures::buggy::BUGGY_LIST_METHODS,
            methods: vec![],
        };
        let sel = vec![
            Selection::methods_of(&good, &["set_key", "find"]),
            Selection::methods_of(&bad, &["insert_front_forgets_length"]),
        ];
        let run = |mode: PoolMode| {
            verify_selections(
                &sel,
                &DriverConfig {
                    jobs: 2,
                    pool_mode: mode,
                    ..DriverConfig::default()
                },
            )
        };
        let structure = run(PoolMode::Structure);
        let method = run(PoolMode::Method);
        let fresh = run(PoolMode::None);
        for batch in [&structure, &method, &fresh] {
            assert!(batch.errors.is_empty());
            assert_eq!(batch.reports.len(), structure.reports.len());
        }
        for other in [&method, &fresh] {
            for (a, b) in structure.reports.iter().zip(&other.reports) {
                assert_eq!(a.method, b.method);
                assert_eq!(a.outcome, b.outcome, "{} diverged", a.method);
                assert_eq!(a.num_vcs, b.num_vcs);
            }
        }
        assert!(structure.reports[0].outcome.is_verified());
        assert!(structure.reports[1].outcome.is_verified());
        assert!(!structure.reports[2].outcome.is_verified());
        // The structure pool's prelude reuse is observable in the second
        // method's stats (methods of one structure run in task order): it
        // strictly exceeds the per-method session's within-method reuse
        // (re-asserted guards), because the structure-common hypothesis
        // prelude is answered from structure scope on top of that. Fresh
        // per-VC solving reuses nothing at all.
        assert!(
            structure.reports[1].solver.prelude_reused > method.reports[1].solver.prelude_reused,
            "structure {:?} vs method {:?}",
            structure.reports[1].solver,
            method.reports[1].solver
        );
        assert_eq!(fresh.reports[1].solver.prelude_reused, 0);
        assert_eq!(fresh.reports[1].solver.prelude_lowered, 0);
    }

    #[test]
    fn in_memory_memoization_dedupes_identical_vcs() {
        let b = ids_structures::Benchmark {
            name: "Singly-Linked List",
            definition: lists::singly_linked_list(),
            methods_src: lists::SINGLY_LINKED_LIST_METHODS,
            methods: vec![],
        };
        // The same method twice in one batch: the second copy's VCs are
        // byte-identical, so they must all be deduplicated.
        let sel = vec![
            Selection::methods_of(&b, &["set_key"]),
            Selection::methods_of(&b, &["set_key"]),
        ];
        let batch = verify_selections(&sel, &DriverConfig::default());
        assert!(batch.all_verified(), "{:?}", batch.errors);
        let per_method_vcs = batch.reports[0].num_vcs;
        assert_eq!(batch.stats.vcs, 2 * per_method_vcs);
        assert_eq!(batch.stats.smt_queries, per_method_vcs);
        assert_eq!(batch.stats.cache_hits, per_method_vcs);
        assert_eq!(batch.reports[1].cached_vcs, per_method_vcs);
    }

    #[test]
    fn cached_refutation_skips_the_rest_of_the_method() {
        let cache =
            std::env::temp_dir().join(format!("ids-driver-cancel-{}.cache", std::process::id()));
        std::fs::remove_file(&cache).ok();
        let b = ids_structures::Benchmark {
            name: "Singly-Linked List (buggy)",
            definition: lists::singly_linked_list(),
            methods_src: ids_structures::buggy::BUGGY_LIST_METHODS,
            methods: vec![],
        };
        let sel = vec![Selection::methods_of(&b, &["leaves_broken_set_nonempty"])];
        let config = DriverConfig {
            jobs: 2,
            cache_path: Some(cache.clone()),
            ..DriverConfig::default()
        };
        let cold = verify_selections(&sel, &config);
        assert!(!cold.reports[0].outcome.is_verified());
        assert!(cold.stats.smt_queries > 0);

        // The cache now holds a refuted VC for this method: the re-run skips
        // everything that was never solved instead of solving it now.
        let warm = verify_selections(&sel, &config);
        assert!(!warm.reports[0].outcome.is_verified());
        assert_eq!(
            warm.stats.smt_queries, 0,
            "a cached refutation must cancel the method's remaining VCs"
        );
        assert_eq!(
            warm.stats.cache_hits + warm.stats.skipped_vcs,
            warm.stats.vcs
        );
        std::fs::remove_file(&cache).ok();
    }

    #[test]
    fn refutation_cancels_trailing_vcs_and_counts_them() {
        // A method refuted mid-way: every VC scheduled after the refuting
        // one is abandoned, and each abandonment is surfaced as a
        // cancellation. With jobs=1 the whole job list is enqueued before
        // the inline worker starts, so every trailing VC deterministically
        // observes the refutation. In structure/method modes a session runs
        // its VCs in VC order, so exactly the skipped VCs are cancelled; in
        // none mode jobs run in cache-key order, so VCs *before* the
        // refutation can be cancelled too and then re-solved by the repair
        // pass — cancellations can only exceed skipped_vcs.
        let b = ids_structures::Benchmark {
            name: "Singly-Linked List (buggy)",
            definition: lists::singly_linked_list(),
            methods_src: ids_structures::buggy::BUGGY_LIST_METHODS,
            methods: vec![],
        };
        let sel = vec![Selection::methods_of(&b, &["insert_front_forgets_length"])];
        for mode in [PoolMode::Structure, PoolMode::Method, PoolMode::None] {
            let batch = verify_selections(
                &sel,
                &DriverConfig {
                    jobs: 1,
                    pool_mode: mode,
                    ..DriverConfig::default()
                },
            );
            assert!(batch.errors.is_empty(), "{:?}", batch.errors);
            assert!(!batch.reports[0].outcome.is_verified());
            assert!(
                batch.stats.skipped_vcs > 0,
                "{:?}: the fixture no longer early-stops anything",
                mode
            );
            if mode == PoolMode::None {
                assert!(
                    batch.stats.cancellations >= batch.stats.skipped_vcs,
                    "{:?}: {} cancellations < {} skipped",
                    mode,
                    batch.stats.cancellations,
                    batch.stats.skipped_vcs
                );
            } else {
                assert_eq!(
                    batch.stats.cancellations, batch.stats.skipped_vcs,
                    "{:?}: a session cancels exactly the VCs after the refutation",
                    mode
                );
            }
        }
    }

    #[test]
    fn recheck_replays_cached_cores_as_slice_hints() {
        let cache =
            std::env::temp_dir().join(format!("ids-driver-recheck-{}.cache", std::process::id()));
        std::fs::remove_file(&cache).ok();
        let b = ids_structures::Benchmark {
            name: "Singly-Linked List",
            definition: lists::singly_linked_list(),
            methods_src: lists::SINGLY_LINKED_LIST_METHODS,
            methods: vec![],
        };
        let sel = vec![Selection::methods_of(&b, &["set_key", "find"])];
        let config = DriverConfig {
            jobs: 2,
            cache_path: Some(cache.clone()),
            ..DriverConfig::default()
        };
        let cold = verify_selections(&sel, &config);
        assert!(cold.all_verified(), "{:?}", cold.errors);
        assert_eq!(cold.stats.solver.slice_hits, 0, "no hints on a cold run");

        // --recheck ignores cached verdicts (everything re-solves) but uses
        // the cached cores as slice hints: at least one VC must discharge
        // from a strict hypothesis subset, with zero verdict changes.
        let recheck = DriverConfig {
            recheck: true,
            ..config.clone()
        };
        let sliced = verify_selections(&sel, &recheck);
        assert!(sliced.all_verified());
        assert!(sliced.stats.smt_queries > 0, "recheck must re-solve");
        assert!(
            sliced.stats.solver.slice_hits > 0,
            "cached cores must slice: {:?}",
            sliced.stats.solver
        );
        assert!(sliced.stats.solver.slice_dropped_hyps > 0);

        // --no-slice-hyps re-solves from the full hypothesis set; outcomes
        // are identical either way.
        let unsliced_config = DriverConfig {
            slice_hyps: false,
            ..recheck.clone()
        };
        let unsliced = verify_selections(&sel, &unsliced_config);
        assert_eq!(unsliced.stats.solver.slice_hits, 0);
        assert_eq!(unsliced.stats.solver.slice_fallbacks, 0);
        for (a, b) in sliced.reports.iter().zip(&unsliced.reports) {
            assert_eq!(a.outcome, b.outcome, "{} diverged under slicing", a.method);
            assert_eq!(a.num_vcs, b.num_vcs);
        }
        std::fs::remove_file(&cache).ok();
    }

    #[test]
    fn poisoned_cores_fall_back_without_changing_verdicts() {
        // Rewrite every cached core to the empty slice: no goal can be
        // discharged from zero hypotheses alone, so every hinted check must
        // fall back to the full set — fallback counter fires, verdicts and
        // outcomes stay byte-identical.
        let cache =
            std::env::temp_dir().join(format!("ids-driver-poison-{}.cache", std::process::id()));
        std::fs::remove_file(&cache).ok();
        let b = ids_structures::Benchmark {
            name: "Singly-Linked List",
            definition: lists::singly_linked_list(),
            methods_src: lists::SINGLY_LINKED_LIST_METHODS,
            methods: vec![],
        };
        let sel = vec![Selection::methods_of(&b, &["set_key"])];
        let config = DriverConfig {
            jobs: 1,
            cache_path: Some(cache.clone()),
            ..DriverConfig::default()
        };
        let cold = verify_selections(&sel, &config);
        assert!(cold.all_verified());

        let text = std::fs::read_to_string(&cache).unwrap();
        assert!(text.contains(" #"), "cold run should have recorded cores");
        let poisoned: String = text
            .lines()
            .map(|l| match l.split_once(" #") {
                Some((pre, _)) => format!("{pre} #\n"),
                None => format!("{l}\n"),
            })
            .collect();
        std::fs::write(&cache, poisoned).unwrap();

        let recheck = DriverConfig {
            recheck: true,
            ..config.clone()
        };
        let warm = verify_selections(&sel, &recheck);
        assert!(warm.all_verified(), "fallback must recover every verdict");
        // VCs whose goal genuinely needs no hypothesis still hit on the
        // empty slice; every other one must fall back.
        assert!(
            warm.stats.solver.slice_fallbacks > 0,
            "empty slices must fall back on hypothesis-dependent VCs: {:?}",
            warm.stats.solver
        );
        for (a, b) in cold.reports.iter().zip(&warm.reports) {
            assert_eq!(a.outcome, b.outcome, "{} diverged", a.method);
        }
        std::fs::remove_file(&cache).ok();
    }

    #[test]
    fn load_errors_are_reported_not_panicked() {
        let b = ids_structures::Benchmark {
            name: "Broken",
            definition: lists::singly_linked_list(),
            methods_src: "procedure oops( {",
            methods: vec!["oops".into()],
        };
        let sel = vec![Selection::from_benchmark(&b)];
        let batch = verify_selections(&sel, &DriverConfig::default());
        assert!(batch.reports.is_empty());
        assert_eq!(batch.errors.len(), 1);
        assert_eq!(batch.errors[0].method, "*");
    }
}
