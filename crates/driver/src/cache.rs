//! The persistent, content-addressed VC result cache.
//!
//! Solved verification conditions are keyed by the stable 128-bit structural
//! hash of their formula (see [`ids_smt::hash`]), salted with the encoding
//! mode, and mapped to their verdict. Within a batch the cache deduplicates
//! identical VCs across methods; persisted to disk it makes re-runs
//! incremental — an unchanged suite discharges zero new SMT queries.
//!
//! # On-disk format
//!
//! A deliberately hand-rolled, line-oriented text format (the build
//! environment has no serialization crates):
//!
//! ```text
//! ids-vc-cache v3 fp=0000000000000002
//! 00731f95c3a1be8e55f20ac7135a4d22 V #0,3,7
//! 2b9e0d4c81f6a3570c44de9a0b6f1e88 R
//! 5c11a0f2e94d38b6071cc5529ae07d41 V #
//! ```
//!
//! Line 1 is a magic+version header carrying the solver-logic fingerprint
//! ([`ids_smt::SOLVER_LOGIC_FINGERPRINT`]); every following line is the
//! zero-padded lowercase hex key, a verdict letter (`V`alid / `R`efuted),
//! and an optional `#`-prefixed unsat core — the comma-separated positional
//! hypothesis indices the refutation of the negated goal actually used. A
//! bare `#` is an *empty* core (the goal needed no hypothesis); no third
//! token means no core was recorded. Cores are slicing *hints* for
//! re-verification, never trusted for verdicts. Undecided VCs are never
//! cached (they should be re-attempted).
//!
//! A file with an unknown header or a malformed line is ignored wholesale —
//! a cache is always safe to delete or truncate. Because a VC's key hashes
//! only its *formula*, a verdict is stale the moment the solver or lowering
//! logic changes; the fingerprint in the header makes such caches (v1 and v2
//! files included) read as empty instead of silently replaying old verdicts.
//!
//! # Concurrent runs
//!
//! Several `ids-verify` processes may share one cache file. Two defences keep
//! them from corrupting or clobbering each other:
//!
//! * writes go through a temporary file in the same directory followed by an
//!   atomic rename, so readers never observe a half-written cache;
//! * [`VcCache::save_merged`] takes an advisory [`CacheLock`] (a lockfile
//!   beside the cache file), re-reads whatever a concurrent run persisted in
//!   the meantime, merges it with the in-memory entries and only then writes
//!   — the classic read-modify-write under lock, so a slow run finishing
//!   last cannot silently discard a fast run's verdicts.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

use ids_core::pipeline::VcVerdict;

/// The file header identifying format version and solver-logic generation.
fn header() -> String {
    format!(
        "ids-vc-cache v3 fp={:016x}",
        ids_smt::SOLVER_LOGIC_FINGERPRINT
    )
}

/// One cached VC: its verdict plus, when one was recorded, the unsat core —
/// the positional hypothesis indices the refutation used, kept as a slicing
/// hint for later re-verification.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CacheEntry {
    verdict: VcVerdict,
    core: Option<Vec<u32>>,
}

/// An advisory cross-process lock: a lockfile created with `create_new`
/// (atomic on every platform/filesystem we care about) beside the protected
/// file, removed on drop.
///
/// The lock is *advisory* — it only coordinates processes that also take it —
/// and deliberately fail-open: if the lock cannot be acquired within the
/// timeout (a crashed holder is additionally broken by age), the caller
/// proceeds unlocked with a warning rather than wedging a verification run on
/// a stale lockfile.
#[derive(Debug)]
pub struct CacheLock {
    path: PathBuf,
    owned: bool,
}

/// A lock older than this is considered leaked by a crashed process and is
/// broken. Cache writes hold the lock for milliseconds; minutes of age means
/// nobody is coming back for it.
const LOCK_STALE_AFTER: Duration = Duration::from_secs(300);

impl CacheLock {
    /// The lockfile guarding `target` (`<target>.lock`).
    fn lock_path(target: &Path) -> PathBuf {
        let mut name = target.file_name().unwrap_or_default().to_os_string();
        name.push(".lock");
        target.with_file_name(name)
    }

    /// Acquires the lock for `target`, waiting up to `timeout`. Always
    /// returns a guard; `owned` records whether the lock was actually taken
    /// (callers proceed either way — advisory, fail-open).
    pub fn acquire(target: &Path, timeout: Duration) -> CacheLock {
        let path = CacheLock::lock_path(target);
        let start = Instant::now();
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => return CacheLock { path, owned: true },
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    // Break locks leaked by a crashed holder.
                    let stale = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| SystemTime::now().duration_since(m).ok())
                        .is_some_and(|age| age > LOCK_STALE_AFTER);
                    if stale {
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    if start.elapsed() >= timeout {
                        eprintln!(
                            "warning: could not acquire cache lock {} within {:?}; proceeding unlocked",
                            path.display(),
                            timeout
                        );
                        return CacheLock { path, owned: false };
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => {
                    // Unwritable directory etc.: locking is best-effort.
                    eprintln!(
                        "warning: could not create cache lock {}: {}",
                        path.display(),
                        e
                    );
                    return CacheLock { path, owned: false };
                }
            }
        }
    }

    /// True if the lockfile was actually created by this guard.
    pub fn owned(&self) -> bool {
        self.owned
    }
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        if self.owned {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// An in-memory VC verdict cache with optional on-disk persistence.
#[derive(Clone, Debug, Default)]
pub struct VcCache {
    entries: HashMap<u128, CacheEntry>,
    dirty: bool,
}

impl VcCache {
    /// Creates an empty cache.
    pub fn new() -> VcCache {
        VcCache::default()
    }

    /// Loads a cache file. A missing file yields an empty cache; a file with
    /// an unrecognized header or malformed entries is ignored (treated as
    /// empty) rather than failing the run.
    pub fn load(path: &Path) -> io::Result<VcCache> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(VcCache::new()),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        if lines.next() != Some(header().as_str()) {
            // Unknown version or a different solver generation: every cached
            // verdict is potentially stale, so the whole file is ignored.
            return Ok(VcCache::new());
        }
        let mut entries = HashMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((key_hex, rest)) = line.split_once(' ') else {
                return Ok(VcCache::new());
            };
            let Ok(key) = u128::from_str_radix(key_hex, 16) else {
                return Ok(VcCache::new());
            };
            let (verdict, core_tok) = match rest.split_once(' ') {
                Some((v, c)) => (v, Some(c)),
                None => (rest, None),
            };
            let verdict = match verdict {
                "V" => VcVerdict::Valid,
                "R" => VcVerdict::Refuted,
                _ => return Ok(VcCache::new()),
            };
            let core = match core_tok {
                None => None,
                Some(tok) => {
                    let Some(list) = tok.strip_prefix('#') else {
                        return Ok(VcCache::new());
                    };
                    if list.is_empty() {
                        Some(Vec::new())
                    } else {
                        let mut indices = Vec::new();
                        for part in list.split(',') {
                            let Ok(n) = part.parse::<u32>() else {
                                return Ok(VcCache::new());
                            };
                            indices.push(n);
                        }
                        Some(indices)
                    }
                }
            };
            entries.insert(key, CacheEntry { verdict, core });
        }
        Ok(VcCache {
            entries,
            dirty: false,
        })
    }

    /// Writes the cache to disk (sorted, so the file is deterministic for a
    /// given content) and clears the dirty flag. The write is atomic
    /// (temporary file + rename), so concurrent readers never observe a
    /// half-written cache.
    pub fn save(&mut self, path: &Path) -> io::Result<()> {
        let mut keys: Vec<&u128> = self.entries.keys().collect();
        keys.sort();
        let mut out = String::with_capacity(40 + keys.len() * 35);
        out.push_str(&header());
        out.push('\n');
        for k in keys {
            let entry = &self.entries[k];
            let letter = match entry.verdict {
                VcVerdict::Valid => 'V',
                VcVerdict::Refuted => 'R',
                VcVerdict::Unknown => continue,
            };
            out.push_str(&format!("{:032x} {}", k, letter));
            if let Some(core) = &entry.core {
                out.push_str(" #");
                for (i, t) in core.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&t.to_string());
                }
            }
            out.push('\n');
        }
        let tmp = {
            // Unique per call, not just per process: two threads racing past
            // a failed-open lock must not share a temp file.
            static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut name = path.file_name().unwrap_or_default().to_os_string();
            name.push(format!(".tmp.{}.{}", std::process::id(), seq));
            path.with_file_name(name)
        };
        std::fs::write(&tmp, out)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        self.dirty = false;
        Ok(())
    }

    /// Saves under the advisory [`CacheLock`], first absorbing whatever a
    /// concurrent run persisted since this cache was loaded, so parallel
    /// `ids-verify` processes sharing one cache file union their verdicts
    /// instead of the last writer clobbering the others.
    pub fn save_merged(&mut self, path: &Path) -> io::Result<()> {
        let _lock = CacheLock::acquire(path, Duration::from_secs(10));
        if let Ok(disk) = VcCache::load(path) {
            self.absorb(disk);
        }
        self.save(path)
    }

    /// Merges another cache's entries into this one. Existing entries win on
    /// conflict (they are this run's freshly computed verdicts; a well-formed
    /// cache never disagrees on a key within one solver generation anyway) —
    /// except that a core-less entry is completed by the other side's core
    /// when the verdicts agree, so a slicing hint computed by a concurrent
    /// run is never discarded.
    pub fn absorb(&mut self, other: VcCache) {
        for (key, entry) in other.entries {
            match self.entries.entry(key) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(entry);
                    self.dirty = true;
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let mine = slot.get_mut();
                    if mine.core.is_none() && mine.verdict == entry.verdict && entry.core.is_some()
                    {
                        mine.core = entry.core;
                        self.dirty = true;
                    }
                }
            }
        }
    }

    /// Looks up a verdict.
    pub fn get(&self, key: u128) -> Option<VcVerdict> {
        self.entries.get(&key).map(|e| e.verdict)
    }

    /// Looks up the recorded unsat core (the hypothesis-slice hint), if any.
    /// `Some(&[])` is a real (empty) core; `None` means none was recorded.
    pub fn get_core(&self, key: u128) -> Option<&[u32]> {
        self.entries.get(&key).and_then(|e| e.core.as_deref())
    }

    /// Records a verdict. `Unknown` verdicts are not cached. A core already
    /// recorded under the same verdict is kept — re-confirming a verdict
    /// (e.g. from a cache hit or a dedup within the batch) must not erase
    /// the slicing hint.
    pub fn insert(&mut self, key: u128, verdict: VcVerdict) {
        if verdict == VcVerdict::Unknown {
            return;
        }
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(CacheEntry {
                    verdict,
                    core: None,
                });
                self.dirty = true;
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let entry = slot.get_mut();
                if entry.verdict != verdict {
                    // A verdict flip within one generation is pathological;
                    // whatever core went with the old verdict is meaningless.
                    *entry = CacheEntry {
                        verdict,
                        core: None,
                    };
                    self.dirty = true;
                }
            }
        }
    }

    /// Records a verdict together with its unsat core. `Unknown` verdicts
    /// are not cached; a `None` core behaves exactly like [`VcCache::insert`].
    pub fn insert_core(&mut self, key: u128, verdict: VcVerdict, core: Option<Vec<u32>>) {
        if verdict == VcVerdict::Unknown {
            return;
        }
        let Some(core) = core else {
            self.insert(key, verdict);
            return;
        };
        let entry = CacheEntry {
            verdict,
            core: Some(core),
        };
        if self.entries.get(&key) != Some(&entry) {
            self.entries.insert(key, entry);
            self.dirty = true;
        }
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the cache changed since it was loaded/saved.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ids-vc-cache-test-{}-{}", std::process::id(), tag))
    }

    #[test]
    fn roundtrips_through_disk() {
        let path = temp_path("roundtrip");
        let mut cache = VcCache::new();
        cache.insert(42, VcVerdict::Valid);
        cache.insert(
            0xdead_beef_dead_beef_dead_beef_dead_beef,
            VcVerdict::Refuted,
        );
        cache.insert(7, VcVerdict::Unknown); // dropped
        assert!(cache.is_dirty());
        cache.save(&path).unwrap();
        assert!(!cache.is_dirty());

        let loaded = VcCache::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(42), Some(VcVerdict::Valid));
        assert_eq!(
            loaded.get(0xdead_beef_dead_beef_dead_beef_dead_beef),
            Some(VcVerdict::Refuted)
        );
        assert_eq!(loaded.get(7), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cores_roundtrip_through_disk() {
        let path = temp_path("core-roundtrip");
        let mut cache = VcCache::new();
        cache.insert_core(1, VcVerdict::Valid, Some(vec![0, 3, 7]));
        cache.insert_core(2, VcVerdict::Valid, Some(vec![])); // empty core: `#`
        cache.insert_core(3, VcVerdict::Valid, None); // no core recorded
        cache.insert(4, VcVerdict::Refuted);
        cache.save(&path).unwrap();

        let loaded = VcCache::load(&path).unwrap();
        assert_eq!(loaded.get_core(1), Some(&[0, 3, 7][..]));
        assert_eq!(loaded.get_core(2), Some(&[][..]));
        assert_eq!(loaded.get_core(3), None);
        assert_eq!(loaded.get(3), Some(VcVerdict::Valid));
        assert_eq!(loaded.get_core(4), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reconfirming_a_verdict_keeps_the_core() {
        let mut cache = VcCache::new();
        cache.insert_core(1, VcVerdict::Valid, Some(vec![2, 5]));
        // A plain verdict re-insert (cache hit, dedup) must not erase the
        // slicing hint...
        cache.insert(1, VcVerdict::Valid);
        assert_eq!(cache.get_core(1), Some(&[2, 5][..]));
        // ...and neither must an insert_core with no core to offer.
        cache.insert_core(1, VcVerdict::Valid, None);
        assert_eq!(cache.get_core(1), Some(&[2, 5][..]));
        // A verdict flip invalidates the core with the verdict.
        cache.insert(1, VcVerdict::Refuted);
        assert_eq!(cache.get(1), Some(VcVerdict::Refuted));
        assert_eq!(cache.get_core(1), None);
    }

    #[test]
    fn absorb_completes_missing_cores_but_never_overrides() {
        let mut mine = VcCache::new();
        mine.insert(1, VcVerdict::Valid); // no core yet
        mine.insert_core(2, VcVerdict::Valid, Some(vec![9]));
        let mut theirs = VcCache::new();
        theirs.insert_core(1, VcVerdict::Valid, Some(vec![4, 6]));
        theirs.insert_core(2, VcVerdict::Valid, Some(vec![0, 1, 2]));
        theirs.insert(3, VcVerdict::Refuted);
        mine.absorb(theirs);
        // Filled where missing, kept where present, unioned where vacant.
        assert_eq!(mine.get_core(1), Some(&[4, 6][..]));
        assert_eq!(mine.get_core(2), Some(&[9][..]));
        assert_eq!(mine.get(3), Some(VcVerdict::Refuted));
    }

    #[test]
    fn malformed_core_tokens_invalidate_the_file() {
        let path = temp_path("bad-core");
        for bad in [
            "00000000000000000000000000000001 V 0,1\n", // missing '#'
            "00000000000000000000000000000001 V #x\n",  // non-numeric index
            "00000000000000000000000000000001 V #1,\n", // trailing comma
        ] {
            std::fs::write(&path, format!("{}\n{}", header(), bad)).unwrap();
            assert!(
                VcCache::load(&path).unwrap().is_empty(),
                "accepted malformed line {bad:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let cache = VcCache::load(&temp_path("missing-never-created")).unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn corrupt_file_is_ignored() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "some other format\n123 V\n").unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        std::fs::write(&path, format!("{}\nnot-hex V\n", header())).unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_solver_generations_are_invalidated() {
        let key_line = "000000000000000000000000000000ff V\n";
        // A v1 cache (no fingerprint) is stale by definition.
        let path = temp_path("v1-stale");
        std::fs::write(&path, format!("ids-vc-cache v1\n{}", key_line)).unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        // A v2 cache reads as empty even at the current fingerprint — the
        // version bump itself invalidates (same discipline as v1→v2).
        std::fs::write(
            &path,
            format!(
                "ids-vc-cache v2 fp={:016x}\n{}",
                ids_smt::SOLVER_LOGIC_FINGERPRINT,
                key_line
            ),
        )
        .unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        // A v3 cache from a different solver generation is equally stale.
        std::fs::write(
            &path,
            format!("ids-vc-cache v3 fp=00000000deadbeef\n{}", key_line),
        )
        .unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        // The current generation's own header is accepted.
        std::fs::write(&path, format!("{}\n{}", header(), key_line)).unwrap();
        let cache = VcCache::load(&path).unwrap();
        assert_eq!(cache.get(0xff), Some(VcVerdict::Valid));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lock_excludes_and_releases() {
        let target = temp_path("lock");
        let a = CacheLock::acquire(&target, Duration::from_millis(10));
        assert!(a.owned());
        // While held, a second acquire times out un-owned (fail-open).
        let b = CacheLock::acquire(&target, Duration::from_millis(50));
        assert!(!b.owned());
        drop(b);
        drop(a);
        // Released: acquirable again.
        let c = CacheLock::acquire(&target, Duration::from_millis(10));
        assert!(c.owned());
    }

    #[test]
    fn concurrent_saves_union_instead_of_clobbering() {
        let path = temp_path("merge");
        std::fs::remove_file(&path).ok();
        // Two "processes" that each computed disjoint verdicts, saving in
        // either order: both sets must survive.
        let mut first = VcCache::new();
        first.insert(1, VcVerdict::Valid);
        let mut second = VcCache::new();
        second.insert(2, VcVerdict::Refuted);
        first.save_merged(&path).unwrap();
        second.save_merged(&path).unwrap();
        let loaded = VcCache::load(&path).unwrap();
        assert_eq!(loaded.get(1), Some(VcVerdict::Valid));
        assert_eq!(loaded.get(2), Some(VcVerdict::Refuted));
        std::fs::remove_file(&path).ok();

        // The same from many threads at once: every thread's verdict lands.
        let path2 = temp_path("merge-threads");
        std::fs::remove_file(&path2).ok();
        std::thread::scope(|scope| {
            for i in 0..8u128 {
                let path2 = &path2;
                scope.spawn(move || {
                    let mut c = VcCache::new();
                    c.insert(100 + i, VcVerdict::Valid);
                    c.save_merged(path2).unwrap();
                });
            }
        });
        let loaded = VcCache::load(&path2).unwrap();
        for i in 0..8u128 {
            assert_eq!(loaded.get(100 + i), Some(VcVerdict::Valid), "thread {}", i);
        }
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn stale_lock_is_broken() {
        let target = temp_path("stale-lock");
        let lock_file = CacheLock::lock_path(&target);
        std::fs::write(&lock_file, "pid 0").unwrap();
        // Backdate the lockfile beyond the staleness horizon.
        let old = SystemTime::now() - LOCK_STALE_AFTER - Duration::from_secs(60);
        let ok = set_mtime(&lock_file, old);
        if !ok {
            // No portable mtime API without deps; skip silently where the
            // filetime trick is unavailable.
            std::fs::remove_file(&lock_file).ok();
            return;
        }
        let l = CacheLock::acquire(&target, Duration::from_millis(50));
        assert!(l.owned(), "a stale lock must be broken and re-acquired");
    }

    /// Best-effort mtime backdating for the staleness test. Uses the
    /// (unix-only) `touch -d` via the filesystem; returns false if that is
    /// unavailable.
    fn set_mtime(path: &Path, when: SystemTime) -> bool {
        let secs = match when.duration_since(SystemTime::UNIX_EPOCH) {
            Ok(d) => d.as_secs(),
            Err(_) => return false,
        };
        std::process::Command::new("touch")
            .arg("-d")
            .arg(format!("@{}", secs))
            .arg(path)
            .status()
            .map(|s| s.success())
            .unwrap_or(false)
    }

    #[test]
    fn reinserting_same_verdict_keeps_clean() {
        let path = temp_path("clean");
        let mut cache = VcCache::new();
        cache.insert(1, VcVerdict::Valid);
        cache.save(&path).unwrap();
        cache.insert(1, VcVerdict::Valid);
        assert!(!cache.is_dirty(), "identical re-insert must not dirty");
        std::fs::remove_file(&path).ok();
    }
}
