//! The persistent, content-addressed VC result cache.
//!
//! Solved verification conditions are keyed by the stable 128-bit structural
//! hash of their formula (see [`ids_smt::hash`]), salted with the encoding
//! mode, and mapped to their verdict. Within a batch the cache deduplicates
//! identical VCs across methods; persisted to disk it makes re-runs
//! incremental — an unchanged suite discharges zero new SMT queries.
//!
//! # On-disk format
//!
//! A deliberately hand-rolled, line-oriented text format (the build
//! environment has no serialization crates):
//!
//! ```text
//! ids-vc-cache v2 fp=0000000000000002
//! 00731f95c3a1be8e55f20ac7135a4d22 V
//! 2b9e0d4c81f6a3570c44de9a0b6f1e88 R
//! ```
//!
//! Line 1 is a magic+version header carrying the solver-logic fingerprint
//! ([`ids_smt::SOLVER_LOGIC_FINGERPRINT`]); every following line is the
//! zero-padded lowercase hex key and a verdict letter (`V`alid /
//! `R`efuted). Undecided VCs are never cached (they should be re-attempted).
//!
//! A file with an unknown header or a malformed line is ignored wholesale —
//! a cache is always safe to delete or truncate. Because a VC's key hashes
//! only its *formula*, a verdict is stale the moment the solver or lowering
//! logic changes; the fingerprint in the header makes such caches (v1 files
//! included) read as empty instead of silently replaying old verdicts.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use ids_core::pipeline::VcVerdict;

/// The file header identifying format version and solver-logic generation.
fn header() -> String {
    format!(
        "ids-vc-cache v2 fp={:016x}",
        ids_smt::SOLVER_LOGIC_FINGERPRINT
    )
}

/// An in-memory VC verdict cache with optional on-disk persistence.
#[derive(Clone, Debug, Default)]
pub struct VcCache {
    entries: HashMap<u128, VcVerdict>,
    dirty: bool,
}

impl VcCache {
    /// Creates an empty cache.
    pub fn new() -> VcCache {
        VcCache::default()
    }

    /// Loads a cache file. A missing file yields an empty cache; a file with
    /// an unrecognized header or malformed entries is ignored (treated as
    /// empty) rather than failing the run.
    pub fn load(path: &Path) -> io::Result<VcCache> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(VcCache::new()),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        if lines.next() != Some(header().as_str()) {
            // Unknown version or a different solver generation: every cached
            // verdict is potentially stale, so the whole file is ignored.
            return Ok(VcCache::new());
        }
        let mut entries = HashMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((key_hex, verdict)) = line.split_once(' ') else {
                return Ok(VcCache::new());
            };
            let Ok(key) = u128::from_str_radix(key_hex, 16) else {
                return Ok(VcCache::new());
            };
            let verdict = match verdict {
                "V" => VcVerdict::Valid,
                "R" => VcVerdict::Refuted,
                _ => return Ok(VcCache::new()),
            };
            entries.insert(key, verdict);
        }
        Ok(VcCache {
            entries,
            dirty: false,
        })
    }

    /// Writes the cache to disk (sorted, so the file is deterministic for a
    /// given content) and clears the dirty flag.
    pub fn save(&mut self, path: &Path) -> io::Result<()> {
        let mut keys: Vec<&u128> = self.entries.keys().collect();
        keys.sort();
        let mut out = String::with_capacity(40 + keys.len() * 35);
        out.push_str(&header());
        out.push('\n');
        for k in keys {
            let letter = match self.entries[k] {
                VcVerdict::Valid => 'V',
                VcVerdict::Refuted => 'R',
                VcVerdict::Unknown => continue,
            };
            out.push_str(&format!("{:032x} {}\n", k, letter));
        }
        std::fs::write(path, out)?;
        self.dirty = false;
        Ok(())
    }

    /// Looks up a verdict.
    pub fn get(&self, key: u128) -> Option<VcVerdict> {
        self.entries.get(&key).copied()
    }

    /// Records a verdict. `Unknown` verdicts are not cached.
    pub fn insert(&mut self, key: u128, verdict: VcVerdict) {
        if verdict == VcVerdict::Unknown {
            return;
        }
        if self.entries.insert(key, verdict) != Some(verdict) {
            self.dirty = true;
        }
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the cache changed since it was loaded/saved.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ids-vc-cache-test-{}-{}", std::process::id(), tag))
    }

    #[test]
    fn roundtrips_through_disk() {
        let path = temp_path("roundtrip");
        let mut cache = VcCache::new();
        cache.insert(42, VcVerdict::Valid);
        cache.insert(
            0xdead_beef_dead_beef_dead_beef_dead_beef,
            VcVerdict::Refuted,
        );
        cache.insert(7, VcVerdict::Unknown); // dropped
        assert!(cache.is_dirty());
        cache.save(&path).unwrap();
        assert!(!cache.is_dirty());

        let loaded = VcCache::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(42), Some(VcVerdict::Valid));
        assert_eq!(
            loaded.get(0xdead_beef_dead_beef_dead_beef_dead_beef),
            Some(VcVerdict::Refuted)
        );
        assert_eq!(loaded.get(7), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let cache = VcCache::load(&temp_path("missing-never-created")).unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn corrupt_file_is_ignored() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "some other format\n123 V\n").unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        std::fs::write(&path, format!("{}\nnot-hex V\n", header())).unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_solver_generations_are_invalidated() {
        let key_line = "000000000000000000000000000000ff V\n";
        // A v1 cache (no fingerprint) is stale by definition.
        let path = temp_path("v1-stale");
        std::fs::write(&path, format!("ids-vc-cache v1\n{}", key_line)).unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        // A v2 cache from a different solver generation is equally stale.
        std::fs::write(
            &path,
            format!("ids-vc-cache v2 fp=00000000deadbeef\n{}", key_line),
        )
        .unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        // The current generation's own header is accepted.
        std::fs::write(&path, format!("{}\n{}", header(), key_line)).unwrap();
        let cache = VcCache::load(&path).unwrap();
        assert_eq!(cache.get(0xff), Some(VcVerdict::Valid));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reinserting_same_verdict_keeps_clean() {
        let path = temp_path("clean");
        let mut cache = VcCache::new();
        cache.insert(1, VcVerdict::Valid);
        cache.save(&path).unwrap();
        cache.insert(1, VcVerdict::Valid);
        assert!(!cache.is_dirty(), "identical re-insert must not dirty");
        std::fs::remove_file(&path).ok();
    }
}
