//! The persistent, content-addressed VC result cache.
//!
//! Solved verification conditions are keyed by the stable 128-bit structural
//! hash of their formula (see [`ids_smt::hash`]), salted with the encoding
//! mode, and mapped to their verdict. Within a batch the cache deduplicates
//! identical VCs across methods; persisted to disk it makes re-runs
//! incremental — an unchanged suite discharges zero new SMT queries.
//!
//! # On-disk format
//!
//! A deliberately hand-rolled, line-oriented text format (the build
//! environment has no serialization crates):
//!
//! ```text
//! ids-vc-cache v2 fp=0000000000000002
//! 00731f95c3a1be8e55f20ac7135a4d22 V
//! 2b9e0d4c81f6a3570c44de9a0b6f1e88 R
//! ```
//!
//! Line 1 is a magic+version header carrying the solver-logic fingerprint
//! ([`ids_smt::SOLVER_LOGIC_FINGERPRINT`]); every following line is the
//! zero-padded lowercase hex key and a verdict letter (`V`alid /
//! `R`efuted). Undecided VCs are never cached (they should be re-attempted).
//!
//! A file with an unknown header or a malformed line is ignored wholesale —
//! a cache is always safe to delete or truncate. Because a VC's key hashes
//! only its *formula*, a verdict is stale the moment the solver or lowering
//! logic changes; the fingerprint in the header makes such caches (v1 files
//! included) read as empty instead of silently replaying old verdicts.
//!
//! # Concurrent runs
//!
//! Several `ids-verify` processes may share one cache file. Two defences keep
//! them from corrupting or clobbering each other:
//!
//! * writes go through a temporary file in the same directory followed by an
//!   atomic rename, so readers never observe a half-written cache;
//! * [`VcCache::save_merged`] takes an advisory [`CacheLock`] (a lockfile
//!   beside the cache file), re-reads whatever a concurrent run persisted in
//!   the meantime, merges it with the in-memory entries and only then writes
//!   — the classic read-modify-write under lock, so a slow run finishing
//!   last cannot silently discard a fast run's verdicts.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

use ids_core::pipeline::VcVerdict;

/// The file header identifying format version and solver-logic generation.
fn header() -> String {
    format!(
        "ids-vc-cache v2 fp={:016x}",
        ids_smt::SOLVER_LOGIC_FINGERPRINT
    )
}

/// An advisory cross-process lock: a lockfile created with `create_new`
/// (atomic on every platform/filesystem we care about) beside the protected
/// file, removed on drop.
///
/// The lock is *advisory* — it only coordinates processes that also take it —
/// and deliberately fail-open: if the lock cannot be acquired within the
/// timeout (a crashed holder is additionally broken by age), the caller
/// proceeds unlocked with a warning rather than wedging a verification run on
/// a stale lockfile.
#[derive(Debug)]
pub struct CacheLock {
    path: PathBuf,
    owned: bool,
}

/// A lock older than this is considered leaked by a crashed process and is
/// broken. Cache writes hold the lock for milliseconds; minutes of age means
/// nobody is coming back for it.
const LOCK_STALE_AFTER: Duration = Duration::from_secs(300);

impl CacheLock {
    /// The lockfile guarding `target` (`<target>.lock`).
    fn lock_path(target: &Path) -> PathBuf {
        let mut name = target.file_name().unwrap_or_default().to_os_string();
        name.push(".lock");
        target.with_file_name(name)
    }

    /// Acquires the lock for `target`, waiting up to `timeout`. Always
    /// returns a guard; `owned` records whether the lock was actually taken
    /// (callers proceed either way — advisory, fail-open).
    pub fn acquire(target: &Path, timeout: Duration) -> CacheLock {
        let path = CacheLock::lock_path(target);
        let start = Instant::now();
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => return CacheLock { path, owned: true },
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    // Break locks leaked by a crashed holder.
                    let stale = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| SystemTime::now().duration_since(m).ok())
                        .is_some_and(|age| age > LOCK_STALE_AFTER);
                    if stale {
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    if start.elapsed() >= timeout {
                        eprintln!(
                            "warning: could not acquire cache lock {} within {:?}; proceeding unlocked",
                            path.display(),
                            timeout
                        );
                        return CacheLock { path, owned: false };
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => {
                    // Unwritable directory etc.: locking is best-effort.
                    eprintln!(
                        "warning: could not create cache lock {}: {}",
                        path.display(),
                        e
                    );
                    return CacheLock { path, owned: false };
                }
            }
        }
    }

    /// True if the lockfile was actually created by this guard.
    pub fn owned(&self) -> bool {
        self.owned
    }
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        if self.owned {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// An in-memory VC verdict cache with optional on-disk persistence.
#[derive(Clone, Debug, Default)]
pub struct VcCache {
    entries: HashMap<u128, VcVerdict>,
    dirty: bool,
}

impl VcCache {
    /// Creates an empty cache.
    pub fn new() -> VcCache {
        VcCache::default()
    }

    /// Loads a cache file. A missing file yields an empty cache; a file with
    /// an unrecognized header or malformed entries is ignored (treated as
    /// empty) rather than failing the run.
    pub fn load(path: &Path) -> io::Result<VcCache> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(VcCache::new()),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        if lines.next() != Some(header().as_str()) {
            // Unknown version or a different solver generation: every cached
            // verdict is potentially stale, so the whole file is ignored.
            return Ok(VcCache::new());
        }
        let mut entries = HashMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((key_hex, verdict)) = line.split_once(' ') else {
                return Ok(VcCache::new());
            };
            let Ok(key) = u128::from_str_radix(key_hex, 16) else {
                return Ok(VcCache::new());
            };
            let verdict = match verdict {
                "V" => VcVerdict::Valid,
                "R" => VcVerdict::Refuted,
                _ => return Ok(VcCache::new()),
            };
            entries.insert(key, verdict);
        }
        Ok(VcCache {
            entries,
            dirty: false,
        })
    }

    /// Writes the cache to disk (sorted, so the file is deterministic for a
    /// given content) and clears the dirty flag. The write is atomic
    /// (temporary file + rename), so concurrent readers never observe a
    /// half-written cache.
    pub fn save(&mut self, path: &Path) -> io::Result<()> {
        let mut keys: Vec<&u128> = self.entries.keys().collect();
        keys.sort();
        let mut out = String::with_capacity(40 + keys.len() * 35);
        out.push_str(&header());
        out.push('\n');
        for k in keys {
            let letter = match self.entries[k] {
                VcVerdict::Valid => 'V',
                VcVerdict::Refuted => 'R',
                VcVerdict::Unknown => continue,
            };
            out.push_str(&format!("{:032x} {}\n", k, letter));
        }
        let tmp = {
            // Unique per call, not just per process: two threads racing past
            // a failed-open lock must not share a temp file.
            static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut name = path.file_name().unwrap_or_default().to_os_string();
            name.push(format!(".tmp.{}.{}", std::process::id(), seq));
            path.with_file_name(name)
        };
        std::fs::write(&tmp, out)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        self.dirty = false;
        Ok(())
    }

    /// Saves under the advisory [`CacheLock`], first absorbing whatever a
    /// concurrent run persisted since this cache was loaded, so parallel
    /// `ids-verify` processes sharing one cache file union their verdicts
    /// instead of the last writer clobbering the others.
    pub fn save_merged(&mut self, path: &Path) -> io::Result<()> {
        let _lock = CacheLock::acquire(path, Duration::from_secs(10));
        if let Ok(disk) = VcCache::load(path) {
            self.absorb(disk);
        }
        self.save(path)
    }

    /// Merges another cache's entries into this one. Existing entries win on
    /// conflict (they are this run's freshly computed verdicts; a well-formed
    /// cache never disagrees on a key within one solver generation anyway).
    pub fn absorb(&mut self, other: VcCache) {
        for (key, verdict) in other.entries {
            if let std::collections::hash_map::Entry::Vacant(slot) = self.entries.entry(key) {
                slot.insert(verdict);
                self.dirty = true;
            }
        }
    }

    /// Looks up a verdict.
    pub fn get(&self, key: u128) -> Option<VcVerdict> {
        self.entries.get(&key).copied()
    }

    /// Records a verdict. `Unknown` verdicts are not cached.
    pub fn insert(&mut self, key: u128, verdict: VcVerdict) {
        if verdict == VcVerdict::Unknown {
            return;
        }
        if self.entries.insert(key, verdict) != Some(verdict) {
            self.dirty = true;
        }
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the cache changed since it was loaded/saved.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ids-vc-cache-test-{}-{}", std::process::id(), tag))
    }

    #[test]
    fn roundtrips_through_disk() {
        let path = temp_path("roundtrip");
        let mut cache = VcCache::new();
        cache.insert(42, VcVerdict::Valid);
        cache.insert(
            0xdead_beef_dead_beef_dead_beef_dead_beef,
            VcVerdict::Refuted,
        );
        cache.insert(7, VcVerdict::Unknown); // dropped
        assert!(cache.is_dirty());
        cache.save(&path).unwrap();
        assert!(!cache.is_dirty());

        let loaded = VcCache::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(42), Some(VcVerdict::Valid));
        assert_eq!(
            loaded.get(0xdead_beef_dead_beef_dead_beef_dead_beef),
            Some(VcVerdict::Refuted)
        );
        assert_eq!(loaded.get(7), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let cache = VcCache::load(&temp_path("missing-never-created")).unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn corrupt_file_is_ignored() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "some other format\n123 V\n").unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        std::fs::write(&path, format!("{}\nnot-hex V\n", header())).unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_solver_generations_are_invalidated() {
        let key_line = "000000000000000000000000000000ff V\n";
        // A v1 cache (no fingerprint) is stale by definition.
        let path = temp_path("v1-stale");
        std::fs::write(&path, format!("ids-vc-cache v1\n{}", key_line)).unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        // A v2 cache from a different solver generation is equally stale.
        std::fs::write(
            &path,
            format!("ids-vc-cache v2 fp=00000000deadbeef\n{}", key_line),
        )
        .unwrap();
        assert!(VcCache::load(&path).unwrap().is_empty());
        // The current generation's own header is accepted.
        std::fs::write(&path, format!("{}\n{}", header(), key_line)).unwrap();
        let cache = VcCache::load(&path).unwrap();
        assert_eq!(cache.get(0xff), Some(VcVerdict::Valid));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lock_excludes_and_releases() {
        let target = temp_path("lock");
        let a = CacheLock::acquire(&target, Duration::from_millis(10));
        assert!(a.owned());
        // While held, a second acquire times out un-owned (fail-open).
        let b = CacheLock::acquire(&target, Duration::from_millis(50));
        assert!(!b.owned());
        drop(b);
        drop(a);
        // Released: acquirable again.
        let c = CacheLock::acquire(&target, Duration::from_millis(10));
        assert!(c.owned());
    }

    #[test]
    fn concurrent_saves_union_instead_of_clobbering() {
        let path = temp_path("merge");
        std::fs::remove_file(&path).ok();
        // Two "processes" that each computed disjoint verdicts, saving in
        // either order: both sets must survive.
        let mut first = VcCache::new();
        first.insert(1, VcVerdict::Valid);
        let mut second = VcCache::new();
        second.insert(2, VcVerdict::Refuted);
        first.save_merged(&path).unwrap();
        second.save_merged(&path).unwrap();
        let loaded = VcCache::load(&path).unwrap();
        assert_eq!(loaded.get(1), Some(VcVerdict::Valid));
        assert_eq!(loaded.get(2), Some(VcVerdict::Refuted));
        std::fs::remove_file(&path).ok();

        // The same from many threads at once: every thread's verdict lands.
        let path2 = temp_path("merge-threads");
        std::fs::remove_file(&path2).ok();
        std::thread::scope(|scope| {
            for i in 0..8u128 {
                let path2 = &path2;
                scope.spawn(move || {
                    let mut c = VcCache::new();
                    c.insert(100 + i, VcVerdict::Valid);
                    c.save_merged(path2).unwrap();
                });
            }
        });
        let loaded = VcCache::load(&path2).unwrap();
        for i in 0..8u128 {
            assert_eq!(loaded.get(100 + i), Some(VcVerdict::Valid), "thread {}", i);
        }
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn stale_lock_is_broken() {
        let target = temp_path("stale-lock");
        let lock_file = CacheLock::lock_path(&target);
        std::fs::write(&lock_file, "pid 0").unwrap();
        // Backdate the lockfile beyond the staleness horizon.
        let old = SystemTime::now() - LOCK_STALE_AFTER - Duration::from_secs(60);
        let ok = set_mtime(&lock_file, old);
        if !ok {
            // No portable mtime API without deps; skip silently where the
            // filetime trick is unavailable.
            std::fs::remove_file(&lock_file).ok();
            return;
        }
        let l = CacheLock::acquire(&target, Duration::from_millis(50));
        assert!(l.owned(), "a stale lock must be broken and re-acquired");
    }

    /// Best-effort mtime backdating for the staleness test. Uses the
    /// (unix-only) `touch -d` via the filesystem; returns false if that is
    /// unavailable.
    fn set_mtime(path: &Path, when: SystemTime) -> bool {
        let secs = match when.duration_since(SystemTime::UNIX_EPOCH) {
            Ok(d) => d.as_secs(),
            Err(_) => return false,
        };
        std::process::Command::new("touch")
            .arg("-d")
            .arg(format!("@{}", secs))
            .arg(path)
            .status()
            .map(|s| s.success())
            .unwrap_or(false)
    }

    #[test]
    fn reinserting_same_verdict_keeps_clean() {
        let path = temp_path("clean");
        let mut cache = VcCache::new();
        cache.insert(1, VcVerdict::Valid);
        cache.save(&path).unwrap();
        cache.insert(1, VcVerdict::Valid);
        assert!(!cache.is_dirty(), "identical re-insert must not dirty");
        std::fs::remove_file(&path).ok();
    }
}
