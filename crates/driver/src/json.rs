//! A tiny JSON emitter for the `--json` CLI output.
//!
//! The build environment has no serialization crates, so this module provides
//! just enough: string escaping and a builder for objects/arrays that keeps
//! the punctuation straight. Output is compact (no pretty-printing) and
//! emitted in insertion order.

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An append-only JSON document builder.
///
/// # Example
/// ```
/// use ids_driver::json::Json;
/// let mut j = Json::new();
/// j.begin_object();
/// j.str_field("name", "sorted list");
/// j.num_field("vcs", 12.0);
/// j.bool_field("verified", true);
/// j.end_object();
/// assert_eq!(j.finish(), r#"{"name":"sorted list","vcs":12,"verified":true}"#);
/// ```
#[derive(Debug, Default)]
pub struct Json {
    buf: String,
    need_comma: Vec<bool>,
}

impl Json {
    /// Creates an empty document.
    pub fn new() -> Json {
        Json::default()
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.buf.push(',');
            }
            *need = true;
        }
    }

    /// Opens an object value (`{`).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.need_comma.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.buf.push('}');
    }

    /// Opens an array value (`[`).
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.need_comma.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.buf.push(']');
    }

    /// Emits the key of a field; must be followed by exactly one value.
    pub fn key(&mut self, name: &str) {
        self.pre_value();
        let _ = write!(self.buf, "\"{}\":", escape(name));
        // The field's value follows directly, without a comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Emits a string value.
    pub fn str_value(&mut self, v: &str) {
        self.pre_value();
        let _ = write!(self.buf, "\"{}\"", escape(v));
    }

    /// Emits a numeric value (integers are printed without a fraction).
    pub fn num_value(&mut self, v: f64) {
        self.pre_value();
        if v.fract() == 0.0 && v.abs() < 1e15 {
            let _ = write!(self.buf, "{}", v as i64);
        } else {
            let _ = write!(self.buf, "{}", v);
        }
    }

    /// Emits a boolean value.
    pub fn bool_value(&mut self, v: bool) {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Shorthand for a string field.
    pub fn str_field(&mut self, name: &str, v: &str) {
        self.key(name);
        self.str_value(v);
    }

    /// Shorthand for a numeric field.
    pub fn num_field(&mut self, name: &str, v: f64) {
        self.key(name);
        self.num_value(v);
    }

    /// Shorthand for a boolean field.
    pub fn bool_field(&mut self, name: &str, v: bool) {
        self.key(name);
        self.bool_value(v);
    }

    /// Returns the document.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn nested_structures() {
        let mut j = Json::new();
        j.begin_object();
        j.key("rows");
        j.begin_array();
        for i in 0..2 {
            j.begin_object();
            j.num_field("i", f64::from(i));
            j.end_object();
        }
        j.end_array();
        j.str_field("status", "ok");
        j.end_object();
        assert_eq!(j.finish(), r#"{"rows":[{"i":0},{"i":1}],"status":"ok"}"#);
    }

    #[test]
    fn float_formatting() {
        let mut j = Json::new();
        j.begin_array();
        j.num_value(1.5);
        j.num_value(3.0);
        j.end_array();
        assert_eq!(j.finish(), "[1.5,3]");
    }
}
