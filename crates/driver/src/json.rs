//! A tiny JSON emitter and parser for the `--json` CLI output and the run
//! ledger.
//!
//! The build environment has no serialization crates, so this module provides
//! just enough: string escaping, a builder for objects/arrays that keeps the
//! punctuation straight, and a recursive-descent [`Value`] parser for reading
//! ledger records back (`ids-verify compare` / `history`). Output is compact
//! (no pretty-printing) and emitted in insertion order.

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An append-only JSON document builder.
///
/// # Example
/// ```
/// use ids_driver::json::Json;
/// let mut j = Json::new();
/// j.begin_object();
/// j.str_field("name", "sorted list");
/// j.num_field("vcs", 12.0);
/// j.bool_field("verified", true);
/// j.end_object();
/// assert_eq!(j.finish(), r#"{"name":"sorted list","vcs":12,"verified":true}"#);
/// ```
#[derive(Debug, Default)]
pub struct Json {
    buf: String,
    need_comma: Vec<bool>,
}

impl Json {
    /// Creates an empty document.
    pub fn new() -> Json {
        Json::default()
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.buf.push(',');
            }
            *need = true;
        }
    }

    /// Opens an object value (`{`).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.need_comma.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.buf.push('}');
    }

    /// Opens an array value (`[`).
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.need_comma.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.buf.push(']');
    }

    /// Emits the key of a field; must be followed by exactly one value.
    pub fn key(&mut self, name: &str) {
        self.pre_value();
        let _ = write!(self.buf, "\"{}\":", escape(name));
        // The field's value follows directly, without a comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Emits a string value.
    pub fn str_value(&mut self, v: &str) {
        self.pre_value();
        let _ = write!(self.buf, "\"{}\"", escape(v));
    }

    /// Emits a numeric value (integers are printed without a fraction).
    pub fn num_value(&mut self, v: f64) {
        self.pre_value();
        if v.fract() == 0.0 && v.abs() < 1e15 {
            let _ = write!(self.buf, "{}", v as i64);
        } else {
            let _ = write!(self.buf, "{}", v);
        }
    }

    /// Emits a boolean value.
    pub fn bool_value(&mut self, v: bool) {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Shorthand for a string field.
    pub fn str_field(&mut self, name: &str, v: &str) {
        self.key(name);
        self.str_value(v);
    }

    /// Shorthand for a numeric field.
    pub fn num_field(&mut self, name: &str, v: f64) {
        self.key(name);
        self.num_value(v);
    }

    /// Shorthand for a boolean field.
    pub fn bool_field(&mut self, name: &str, v: bool) {
        self.key(name);
        self.bool_value(v);
    }

    /// Returns the document.
    pub fn finish(self) -> String {
        self.buf
    }
}

// -------------------------------------------------------------------- parser

/// A parsed JSON value. Objects keep insertion order (the emitter half of
/// this module writes them that way, and ledger diffs read nicer when field
/// order is stable).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; the ledger keeps 128-bit keys as hex
    /// strings precisely because JSON numbers are doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses one complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (truncating), if a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n.max(0.0) as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the high half must be
                                // immediately followed by a \uXXXX low half in
                                // 0xDC00..0xE000. Anything else (lone high,
                                // mismatched pair) is a parse error, never a
                                // garbage code point.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                // from_u32 rejects lone low surrogates
                                // (0xDC00..0xE000) on its own.
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| "invalid \\u escape".to_string())?);
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn nested_structures() {
        let mut j = Json::new();
        j.begin_object();
        j.key("rows");
        j.begin_array();
        for i in 0..2 {
            j.begin_object();
            j.num_field("i", f64::from(i));
            j.end_object();
        }
        j.end_array();
        j.str_field("status", "ok");
        j.end_object();
        assert_eq!(j.finish(), r#"{"rows":[{"i":0},{"i":1}],"status":"ok"}"#);
    }

    #[test]
    fn float_formatting() {
        let mut j = Json::new();
        j.begin_array();
        j.num_value(1.5);
        j.num_value(3.0);
        j.end_array();
        assert_eq!(j.finish(), "[1.5,3]");
    }

    #[test]
    fn parser_round_trips_emitter_output() {
        let mut j = Json::new();
        j.begin_object();
        j.str_field("name", "a\"b\\c\nd");
        j.num_field("n", 1.5);
        j.num_field("i", 42.0);
        j.bool_field("ok", true);
        j.key("items");
        j.begin_array();
        j.num_value(1.0);
        j.str_value("two");
        j.end_array();
        j.end_object();
        let text = j.finish();
        let v = Value::parse(&text).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("a\"b\\c\nd"));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("i").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let items = v.get("items").and_then(Value::as_array).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].as_str(), Some("two"));
    }

    #[test]
    fn parser_handles_edges_and_rejects_garbage() {
        assert_eq!(Value::parse(" null ").unwrap(), Value::Null);
        assert_eq!(Value::parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(Value::parse("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(Value::parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(
            Value::parse(r#""Aé""#).unwrap(),
            Value::Str("Aé".to_string())
        );
        // Escaped surrogate pair (U+1F600) and a BMP escape.
        assert_eq!(
            Value::parse("\"\\uD83D\\uDE00 \\u00e9\"").unwrap(),
            Value::Str("😀 é".to_string())
        );
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":1} extra").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn malformed_unicode_escapes_are_rejected() {
        // Lone high surrogate: end of string, plain text, or a non-\u escape
        // where the low half should be.
        assert!(Value::parse("\"\\uD83D\"").is_err());
        assert!(Value::parse("\"\\uD83Dx\"").is_err());
        assert!(Value::parse("\"\\uD83D\\n\"").is_err());
        // Lone low surrogate.
        assert!(Value::parse("\"\\uDE00\"").is_err());
        // Mismatched pair: second escape is not a low surrogate. The old
        // decoder masked this into an unrelated code point.
        assert!(Value::parse("\"\\uD83D\\u0041\"").is_err());
        // High surrogate followed by another high surrogate.
        assert!(Value::parse("\"\\uD83D\\uD83D\"").is_err());
        // Truncated escapes: fewer than four hex digits before the quote or
        // end of input.
        assert!(Value::parse("\"\\u00\"").is_err());
        assert!(Value::parse("\"\\u").is_err());
        assert!(Value::parse("\"\\uD83D\\uDE\"").is_err());
        // Non-hex digits in the escape body.
        assert!(Value::parse("\"\\uZZZZ\"").is_err());
        // Well-formed neighbours still parse.
        assert_eq!(
            Value::parse("\"\\uD83D\\uDE00\"").unwrap(),
            Value::Str("😀".to_string())
        );
        assert_eq!(
            Value::parse("\"\\uFFFD\"").unwrap(),
            Value::Str("\u{FFFD}".to_string())
        );
    }
}
