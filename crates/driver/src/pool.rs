//! A minimal channel-fed worker pool over scoped `std::thread`s.
//!
//! Jobs are pushed into an `mpsc` channel up front; each worker repeatedly
//! pops the next job from the shared receiver (a `Mutex` makes the
//! single-consumer receiver multi-consumer) and sends its tagged result back.
//! This is deliberately a *work queue*, not a static partition: SMT query
//! times vary by orders of magnitude across VCs, so dynamic stealing from a
//! shared queue is what makes the batch finish in (roughly) the time of the
//! longest single query rather than the unluckiest partition.

use std::sync::mpsc;
use std::sync::Mutex;

/// Runs `f` over every item on `jobs` worker threads fed by a shared channel
/// queue; returns the results in input order.
///
/// With `jobs <= 1` the items are processed inline on the calling thread (no
/// thread or channel overhead), which is also the mode the driver's
/// sequential-vs-parallel comparisons use as a baseline.
///
/// # Panics
/// Propagates panics from worker threads (via scope join).
pub fn run<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let workers = jobs.min(n);
    let (job_tx, job_rx) = mpsc::channel::<(usize, T)>();
    for pair in items.into_iter().enumerate() {
        job_tx.send(pair).expect("queue open");
    }
    drop(job_tx); // workers drain until the queue is empty
    let job_rx = Mutex::new(job_rx);
    let (res_tx, res_rx) = mpsc::channel::<(usize, R)>();

    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let res_tx = res_tx.clone();
            let job_rx = &job_rx;
            let f = &f;
            scope.spawn(move || {
                // Trace exports show one lane per worker; label it.
                if ids_obs::active() {
                    ids_obs::set_thread_label(format!("worker-{w}"));
                }
                loop {
                    // Hold the lock only while popping, not while working.
                    let job = job_rx.lock().expect("queue lock").recv();
                    match job {
                        Ok((i, item)) => {
                            if res_tx.send((i, f(item))).is_err() {
                                return;
                            }
                        }
                        Err(_) => return, // queue drained
                    }
                }
            });
        }
        drop(res_tx);
        for (i, r) in res_rx.iter() {
            out[i] = Some(r);
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker delivered result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = run(4, items.clone(), |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_inline() {
        let out = run(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = run(16, vec![5, 6], |x| x);
        assert_eq!(out, vec![5, 6]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run(4, Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
