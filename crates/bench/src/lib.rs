//! `ids-bench` — the harness that regenerates every table and figure of the
//! paper's evaluation (§5.3).
//!
//! Three binaries print the evaluation artefacts:
//!
//! * `table2` — the per-method verification table (Table 2),
//! * `fig_scatter` — the decidable-vs-quantified encoding comparison (the
//!   Boogie-vs-Dafny scatter plot of RQ3),
//! * `impact_times` — per-structure impact-set correctness checking times.
//!
//! The Criterion benches (`table2_bench`, `encoding_bench`, `smt_bench`)
//! measure the same pipelines with statistical rigour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use ids_core::pipeline::{verify_method_in, MethodReport, PipelineConfig};
use ids_core::report::Table2Row;
use ids_structures::Benchmark;
use ids_vcgen::Encoding;

/// Runs the whole Table 2 suite in the given encoding; returns one report per
/// method, in registry order. Methods whose VC generation fails produce a row
/// with `verified = false` rather than aborting the run.
pub fn run_table2(benchmarks: &[Benchmark], encoding: Encoding) -> Vec<MethodReport> {
    let config = PipelineConfig {
        encoding,
        ..PipelineConfig::default()
    };
    let mut out = Vec::new();
    for b in benchmarks {
        let merged = match ids_core::pipeline::load_methods(&b.definition, b.methods_src) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("[{}] failed to load methods: {}", b.name, e);
                continue;
            }
        };
        for m in &b.methods {
            match verify_method_in(&b.definition, &merged, m, config) {
                Ok(report) => out.push(report),
                Err(e) => eprintln!("[{}::{}] pipeline error: {}", b.name, m, e),
            }
        }
    }
    out
}

/// A point of the RQ3 scatter plot: one method verified under both encodings.
#[derive(Clone, Debug)]
pub struct ScatterPoint {
    /// Data structure name.
    pub structure: String,
    /// Method name.
    pub method: String,
    /// Verification time with the decidable encoding.
    pub decidable: Duration,
    /// Verification time with the quantified (Dafny-style) encoding.
    pub quantified: Duration,
    /// Whether the decidable run verified.
    pub decidable_ok: bool,
    /// Whether the quantified run verified (it may time out / give up — the
    /// predictability gap the paper discusses).
    pub quantified_ok: bool,
}

/// Runs each method of the given benchmarks under both encodings.
pub fn run_scatter(benchmarks: &[Benchmark]) -> Vec<ScatterPoint> {
    let mut out = Vec::new();
    for b in benchmarks {
        let merged = match ids_core::pipeline::load_methods(&b.definition, b.methods_src) {
            Ok(m) => m,
            Err(_) => continue,
        };
        for m in &b.methods {
            let dec = verify_method_in(
                &b.definition,
                &merged,
                m,
                PipelineConfig {
                    encoding: Encoding::Decidable,
                    ..PipelineConfig::default()
                },
            );
            let quant = verify_method_in(
                &b.definition,
                &merged,
                m,
                PipelineConfig {
                    encoding: Encoding::Quantified,
                    ..PipelineConfig::default()
                },
            );
            if let (Ok(d), Ok(q)) = (dec, quant) {
                out.push(ScatterPoint {
                    structure: b.name.to_string(),
                    method: m.clone(),
                    decidable: d.duration,
                    quantified: q.duration,
                    decidable_ok: d.outcome.is_verified(),
                    quantified_ok: q.outcome.is_verified(),
                });
            }
        }
    }
    out
}

/// Renders scatter points as an aligned table plus a per-point slowdown.
pub fn format_scatter(points: &[ScatterPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:<22} {:>12} {:>12} {:>9}  quant. status",
        "Data Structure", "Method", "decid.(s)", "quant.(s)", "slowdown"
    );
    let _ = writeln!(out, "{}", "-".repeat(104));
    for p in points {
        let slow = p.quantified.as_secs_f64() / p.decidable.as_secs_f64().max(1e-9);
        let _ = writeln!(
            out,
            "{:<34} {:<22} {:>12.3} {:>12.3} {:>8.1}x  {}",
            p.structure,
            p.method,
            p.decidable.as_secs_f64(),
            p.quantified.as_secs_f64(),
            slow,
            if p.quantified_ok {
                "verified"
            } else {
                "gave up / unknown"
            }
        );
    }
    out
}

/// Converts reports to Table-2 rows.
pub fn to_rows(reports: &[MethodReport]) -> Vec<Table2Row> {
    reports.iter().map(Table2Row::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_produces_rows() {
        // Verify one small method end-to-end and check the row formatting;
        // the full Table 2 is regenerated by the `table2` binary.
        let benches = ids_structures::quick_benchmarks();
        let sll = &benches[0];
        let merged =
            ids_core::pipeline::load_methods(&sll.definition, sll.methods_src).expect("load");
        let config = PipelineConfig {
            encoding: Encoding::Decidable,
            ..PipelineConfig::default()
        };
        let report =
            verify_method_in(&sll.definition, &merged, "set_key", config).expect("pipeline");
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
        let rows = to_rows(std::slice::from_ref(&report));
        let table = ids_core::report::format_table(&rows);
        assert!(table.contains("Singly-Linked List"));
    }
}
