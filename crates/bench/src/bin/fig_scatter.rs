//! Regenerates the RQ3 figure of the paper (§5.3): the scatter plot comparing
//! verification times with decidable VCs (Boogie-style, pointwise map
//! updates) against quantified VCs (Dafny-style frame axioms).
//!
//! Usage: `cargo run -p ids-bench --bin fig_scatter --release [-- --full]`
//!
//! By default a fast subset of the suite is used; `--full` runs every method.

use ids_bench::{format_scatter, run_scatter};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let benchmarks = if full {
        ids_structures::all_benchmarks()
    } else {
        ids_structures::quick_benchmarks()
    };
    eprintln!(
        "Comparing encodings on {} structures (RQ3 scatter)…",
        benchmarks.len()
    );
    let points = run_scatter(&benchmarks);
    println!("RQ3: decidable vs. quantified verification conditions\n");
    print!("{}", format_scatter(&points));
    let slowdowns: Vec<f64> = points
        .iter()
        .map(|p| p.quantified.as_secs_f64() / p.decidable.as_secs_f64().max(1e-9))
        .collect();
    if !slowdowns.is_empty() {
        let mean = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
        println!("\nmean slowdown of the quantified encoding: {:.1}x", mean);
    }
}
