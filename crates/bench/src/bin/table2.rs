//! Regenerates Table 2 of the paper: per-method verification statistics
//! (LC size, LOC / spec / annotation counts, verification time) for the whole
//! benchmark suite, using the decidable encoding.
//!
//! Usage: `cargo run -p ids-bench --bin table2 --release [-- --csv]`

use ids_bench::{run_table2, to_rows};
use ids_core::report::{format_csv, format_table};
use ids_vcgen::Encoding;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let benchmarks = ids_structures::all_benchmarks();
    eprintln!(
        "Running the Table 2 suite: {} structures, {} methods (decidable encoding)…",
        benchmarks.len(),
        benchmarks.iter().map(|b| b.methods.len()).sum::<usize>()
    );
    let reports = run_table2(&benchmarks, Encoding::Decidable);
    let rows = to_rows(&reports);
    if csv {
        print!("{}", format_csv(&rows));
    } else {
        println!("Table 2 (reproduction): implementation and verification of the benchmarks\n");
        print!("{}", format_table(&rows));
        let verified = rows.iter().filter(|r| r.verified).count();
        let total_time: f64 = rows.iter().map(|r| r.time.as_secs_f64()).sum();
        println!(
            "\n{} / {} methods verified, total verification time {:.1}s",
            verified,
            rows.len(),
            total_time
        );
    }
}
