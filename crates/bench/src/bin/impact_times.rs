//! Regenerates the impact-set correctness measurement of §5.3: for every data
//! structure, the time to prove the declared impact sets correct (the paper
//! reports under 3 seconds per structure on its testbed).
//!
//! Usage: `cargo run -p ids-bench --bin impact_times --release`

use ids_vcgen::Encoding;

fn main() {
    println!("Impact-set correctness checks (Appendix C triples)\n");
    println!(
        "{:<36} {:>8} {:>10} {:>10}",
        "Data Structure", "fields", "correct", "time (s)"
    );
    println!("{}", "-".repeat(70));
    for b in ids_structures::all_benchmarks() {
        let start = std::time::Instant::now();
        let results = ids_core::impact::check_impact_sets(&b.definition, Encoding::Decidable);
        let elapsed = start.elapsed();
        let correct = results.iter().filter(|r| r.is_correct()).count();
        println!(
            "{:<36} {:>8} {:>10} {:>10.2}",
            b.name,
            results.len(),
            format!("{}/{}", correct, results.len()),
            elapsed.as_secs_f64()
        );
    }
}
