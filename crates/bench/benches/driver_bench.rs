//! Sequential vs. parallel batch driver, the three solver pool modes, and
//! cold vs. warm VC cache, on singly-linked-list slices (mid-size:
//! `delete_front`, 8 real SMT queries, seconds of single-core solving;
//! multi-method: `set_key` + `delete_front` + `find` for the
//! structure-scoped warm pool). On a multicore host the parallel run
//! approaches `1/jobs` of the sequential time; the per-method session
//! amortizes a method's shared-prelude lowering across its VCs (≈3× on
//! `delete_front`); the structure pool additionally shares the
//! structure-common prelude across methods; the warm-cache run collapses to
//! hashing + report assembly because every verdict is answered from the
//! persisted cache. The `observer_off`/`observer_on` pair pins the cost of
//! the `ids-obs` instrumentation: disarmed it is one relaxed atomic load per
//! would-be event, armed it buys the full `--trace` timeline.

use criterion::{criterion_group, criterion_main, Criterion};
use ids_driver::{verify_selections, DriverConfig, PoolMode, Selection};
use ids_smt::SolverProfile;
use ids_structures::lists;

fn sll_selection<'a>(
    ids: &'a ids_core::IntrinsicDefinition,
    methods: &[&str],
) -> Vec<Selection<'a>> {
    vec![Selection {
        name: "Singly-Linked List",
        definition: ids,
        methods_src: lists::SINGLY_LINKED_LIST_METHODS,
        methods: methods.iter().map(|m| m.to_string()).collect(),
    }]
}

fn bench_driver(c: &mut Criterion) {
    let ids = lists::singly_linked_list();
    let methods = ["delete_front"];
    let mut group = c.benchmark_group("driver");
    group.sample_size(2);

    group.bench_function("sequential_jobs1", |b| {
        let selections = sll_selection(&ids, &methods);
        let config = DriverConfig {
            jobs: 1,
            cache_path: None,
            ..DriverConfig::default()
        };
        b.iter(|| {
            let batch = verify_selections(&selections, &config);
            assert!(batch.errors.is_empty());
            batch.reports.len()
        });
    });

    // The PR-2 baseline: every VC in its own fresh solver (`--pool-mode
    // none`). Comparing against `sequential_jobs1` above isolates the win of
    // sharing one incremental solver session across a method's VCs.
    group.bench_function("fresh_per_vc_jobs1", |b| {
        let selections = sll_selection(&ids, &methods);
        let config = DriverConfig {
            jobs: 1,
            cache_path: None,
            pool_mode: PoolMode::None,
            ..DriverConfig::default()
        };
        b.iter(|| {
            let batch = verify_selections(&selections, &config);
            assert!(batch.errors.is_empty());
            batch.reports.len()
        });
    });

    // Structure pool vs per-method sessions on a *multi-method* slice of one
    // structure: the pair isolates the win of keeping the structure-common
    // hypothesis prelude warm across methods.
    let pool_methods = ["set_key", "delete_front", "find"];
    for (label, mode) in [
        ("method_pool_3methods_jobs1", PoolMode::Method),
        ("structure_pool_3methods_jobs1", PoolMode::Structure),
    ] {
        group.bench_function(label, |b| {
            let selections = sll_selection(&ids, &pool_methods);
            let config = DriverConfig {
                jobs: 1,
                cache_path: None,
                pool_mode: mode,
                ..DriverConfig::default()
            };
            b.iter(|| {
                let batch = verify_selections(&selections, &config);
                assert!(batch.errors.is_empty());
                batch.reports.len()
            });
        });
    }

    // Solver heuristics profiles on the same multi-method slice: `default`
    // (Luby restarts + LBD clause deletion + hybrid pivoting + fast hashing)
    // vs `legacy` (the pre-tuning geometric/keep-everything/Bland solver).
    // Verdicts are identical; this pair measures the heuristics alone.
    for (label, profile) in [
        ("profile_default_3methods_jobs1", SolverProfile::Default),
        ("profile_legacy_3methods_jobs1", SolverProfile::Legacy),
    ] {
        group.bench_function(label, |b| {
            let selections = sll_selection(&ids, &pool_methods);
            let config = DriverConfig {
                jobs: 1,
                cache_path: None,
                solver_profile: profile,
                ..DriverConfig::default()
            };
            b.iter(|| {
                let batch = verify_selections(&selections, &config);
                assert!(batch.errors.is_empty());
                batch.reports.len()
            });
        });
    }

    // The observability overhead pair: the same single-method run with the
    // subsystem disarmed (the shipping default — one relaxed atomic load per
    // would-be event, histogram and flight-recorder hooks included) vs fully
    // armed (tracing buffers + a heartbeat observer firing every 1024
    // conflicts + the metrics histograms/ring buffer). The pair pins the
    // "near-zero overhead when disabled" claim; `observer_on` bounds the
    // combined cost of `--trace` + `--ledger` instrumentation.
    group.bench_function("observer_off", |b| {
        let selections = sll_selection(&ids, &methods);
        let config = DriverConfig {
            jobs: 1,
            cache_path: None,
            ..DriverConfig::default()
        };
        b.iter(|| {
            let batch = verify_selections(&selections, &config);
            assert!(batch.errors.is_empty());
            batch.reports.len()
        });
    });

    group.bench_function("observer_on", |b| {
        struct Sink;
        impl ids_obs::RunObserver for Sink {
            fn heartbeat(&self, hb: &ids_obs::Heartbeat) {
                std::hint::black_box(hb.conflicts);
            }
        }
        let selections = sll_selection(&ids, &methods);
        let config = DriverConfig {
            jobs: 1,
            cache_path: None,
            ..DriverConfig::default()
        };
        ids_obs::set_heartbeat_conflicts(1024);
        ids_obs::set_observer(Some(std::sync::Arc::new(Sink)));
        ids_obs::set_metrics(true);
        b.iter(|| {
            ids_obs::trace_start();
            let batch = verify_selections(&selections, &config);
            assert!(batch.errors.is_empty());
            let hist_events: u64 = batch
                .reports
                .iter()
                .flat_map(|r| &r.vc_reports)
                .flat_map(|vc| ids_obs::Metric::ALL.map(|m| vc.hists.get(m).count()))
                .sum();
            std::hint::black_box(hist_events);
            let lanes = ids_obs::trace_stop();
            std::hint::black_box(lanes.len());
            batch.reports.len()
        });
        ids_obs::set_metrics(false);
        ids_obs::set_observer(None);
        ids_obs::set_heartbeat_conflicts(0);
    });

    // Per-round theory cost with the persistent trail session. The solver
    // retracts/asserts only the literal delta between consecutive SAT
    // models instead of rebuilding EUF + simplex from scratch each round;
    // `insert_back` is the heaviest SLL method (longest methods, most
    // rounds), so this case pins the per-round cost that the trail
    // optimisation targets. Metrics are armed so the `theory_delta_lits`
    // histogram (delta literals per round — a rebuild would count every
    // literal every round) is recorded and sanity-checked.
    group.bench_function("trail_rounds_insert_back_jobs1", |b| {
        let selections = sll_selection(&ids, &["insert_back"]);
        let config = DriverConfig {
            jobs: 1,
            cache_path: None,
            ..DriverConfig::default()
        };
        ids_obs::set_metrics(true);
        b.iter(|| {
            let batch = verify_selections(&selections, &config);
            assert!(batch.errors.is_empty());
            let (rounds, delta_lits): (u64, u64) = batch
                .reports
                .iter()
                .flat_map(|r| &r.vc_reports)
                .map(|vc| {
                    let h = vc.hists.get(ids_obs::Metric::TheoryDeltaLits);
                    (h.count(), h.sum())
                })
                .fold((0, 0), |(c, s), (hc, hs)| (c + hc, s + hs));
            assert!(rounds > 0, "insert_back must run theory rounds");
            std::hint::black_box(delta_lits);
            batch.reports.len()
        });
        ids_obs::set_metrics(false);
    });

    group.bench_function("parallel_jobs4", |b| {
        let selections = sll_selection(&ids, &methods);
        let config = DriverConfig {
            jobs: 4,
            cache_path: None,
            ..DriverConfig::default()
        };
        b.iter(|| {
            let batch = verify_selections(&selections, &config);
            assert!(batch.errors.is_empty());
            batch.reports.len()
        });
    });

    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let ids = lists::singly_linked_list();
    let methods = ["delete_front"];
    let cache = std::env::temp_dir().join(format!("ids-driver-bench-{}.cache", std::process::id()));
    let mut group = c.benchmark_group("cache");
    group.sample_size(2);

    group.bench_function("cold", |b| {
        let selections = sll_selection(&ids, &methods);
        let config = DriverConfig {
            jobs: 4,
            cache_path: None, // no persistence: every iteration solves anew
            ..DriverConfig::default()
        };
        b.iter(|| verify_selections(&selections, &config).reports.len());
    });

    group.bench_function("warm", |b| {
        std::fs::remove_file(&cache).ok();
        let selections = sll_selection(&ids, &methods);
        let config = DriverConfig {
            jobs: 4,
            cache_path: Some(cache.clone()),
            ..DriverConfig::default()
        };
        // Populate the cache once; every measured iteration then runs warm.
        let seeded = verify_selections(&selections, &config);
        assert!(seeded.stats.smt_queries > 0);
        b.iter(|| {
            let batch = verify_selections(&selections, &config);
            assert_eq!(batch.stats.smt_queries, 0, "warm run must not query");
            batch.reports.len()
        });
    });

    group.finish();
    std::fs::remove_file(&cache).ok();
}

criterion_group!(benches, bench_driver, bench_cache);
criterion_main!(benches);
