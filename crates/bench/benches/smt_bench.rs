//! Criterion bench of the SMT substrate itself, plus the ablation called out
//! in DESIGN.md: how much of the verification time is spent below the
//! methodology layer (SAT + theories + finite instantiation), measured on
//! solver-level workloads shaped like FWYB verification conditions.

use criterion::{criterion_group, criterion_main, Criterion};
use ids_smt::{SatResult, Solver, Sort, TermManager};

/// A chain of store/select reasoning like the heap updates of a FWYB method.
fn store_chain(depth: usize) -> (TermManager, Vec<ids_smt::TermId>) {
    let mut tm = TermManager::new();
    let arr = Sort::array_of(Sort::Loc, Sort::Int);
    let mut map = tm.var("f0", arr);
    let mut asserts = Vec::new();
    let mut locs = Vec::new();
    for i in 0..depth {
        let x = tm.var(&format!("x{}", i), Sort::Loc);
        locs.push(x);
        let v = tm.int(i as i128);
        map = tm.store(map, x, v);
    }
    // All locations distinct.
    let distinct = tm.distinct(locs.clone());
    asserts.push(distinct);
    // Claim the first write was overwritten (false): expect Unsat when negated
    // correctly, i.e. the assertion set is satisfiable check.
    let sel = tm.select(map, locs[0]);
    let zero = tm.int(0);
    let eq = tm.eq(sel, zero);
    let ne = tm.not(eq);
    asserts.push(ne);
    (tm, asserts)
}

fn euf_chain(n: usize) -> (TermManager, Vec<ids_smt::TermId>) {
    let mut tm = TermManager::new();
    let mut asserts = Vec::new();
    let xs: Vec<_> = (0..n)
        .map(|i| tm.var(&format!("a{}", i), Sort::Loc))
        .collect();
    for w in xs.windows(2) {
        let e = tm.eq(w[0], w[1]);
        asserts.push(e);
    }
    let f_first = tm.app("f", vec![xs[0]], Sort::Int);
    let f_last = tm.app("f", vec![xs[n - 1]], Sort::Int);
    let ne = tm.neq(f_first, f_last);
    asserts.push(ne);
    (tm, asserts)
}

fn smt_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("smt");
    g.bench_function("store_chain_unsat_depth8", |b| {
        b.iter(|| {
            let (mut tm, asserts) = store_chain(8);
            let mut s = Solver::new();
            assert_eq!(s.check(&mut tm, &asserts), SatResult::Unsat);
        })
    });
    g.bench_function("euf_transitivity_chain_40", |b| {
        b.iter(|| {
            let (mut tm, asserts) = euf_chain(40);
            let mut s = Solver::new();
            assert_eq!(s.check(&mut tm, &asserts), SatResult::Unsat);
        })
    });
    g.bench_function("set_algebra_valid", |b| {
        b.iter(|| {
            let mut tm = TermManager::new();
            let set = Sort::set_of(Sort::Loc);
            let a = tm.var("A", set.clone());
            let bb = tm.var("B", set.clone());
            let cset = tm.var("C", set);
            let ab = tm.union(a, bb);
            let abc = tm.union(ab, cset);
            let bc = tm.union(bb, cset);
            let abc2 = tm.union(a, bc);
            let ne = tm.neq(abc, abc2);
            let mut s = Solver::new();
            assert_eq!(s.check(&mut tm, &[ne]), SatResult::Unsat);
        })
    });
    g.finish();
}

criterion_group!(benches, smt_workloads);
criterion_main!(benches);
