//! Criterion bench regenerating (a statistically sampled subset of) Table 2:
//! end-to-end verification time per benchmark method with the decidable
//! encoding. The `table2` binary prints the full table; this bench focuses on
//! a representative method per data-structure family so that Criterion can
//! afford several samples of each.

use criterion::{criterion_group, criterion_main, Criterion};
use ids_core::pipeline::{load_methods, verify_method_in, PipelineConfig};
use ids_structures::{lists, trees};
use ids_vcgen::Encoding;

fn bench_method(
    c: &mut Criterion,
    group: &str,
    ids: &ids_core::IntrinsicDefinition,
    src: &str,
    method: &str,
) {
    let merged = load_methods(ids, src).expect("methods load");
    let config = PipelineConfig {
        encoding: Encoding::Decidable,
        ..PipelineConfig::default()
    };
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function(method, |b| {
        b.iter(|| {
            let report = verify_method_in(ids, &merged, method, config).expect("pipeline");
            assert!(
                !matches!(report.outcome, ids_vcgen::VerifyOutcome::Unknown { .. }),
                "verification must be conclusive"
            );
            report
        })
    });
    g.finish();
}

fn table2_representatives(c: &mut Criterion) {
    let sll = lists::singly_linked_list();
    bench_method(
        c,
        "table2/singly-linked-list",
        &sll,
        lists::SINGLY_LINKED_LIST_METHODS,
        "set_key",
    );
    let bst = trees::bst();
    bench_method(c, "table2/bst", &bst, trees::BST_METHODS, "bst_find_min");
    let circ = lists::circular_list();
    bench_method(
        c,
        "table2/circular-list",
        &circ,
        lists::CIRCULAR_LIST_METHODS,
        "set_node_key",
    );
}

fn impact_set_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("impact-sets");
    g.sample_size(10);
    g.bench_function("singly-linked-list", |b| {
        b.iter(|| {
            let results = ids_core::impact::check_impact_sets(
                &lists::singly_linked_list(),
                Encoding::Decidable,
            );
            assert!(results.iter().all(|r| r.is_correct()));
            results
        })
    });
    g.finish();
}

criterion_group!(benches, table2_representatives, impact_set_checks);
criterion_main!(benches);
